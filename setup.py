"""Setuptools shim.

The sandbox this reproduction runs in has no network access and no
``wheel`` package, so PEP 660 editable installs (``pip install -e .``)
cannot build their wheel. This shim lets ``python setup.py develop``
provide the equivalent editable install; all metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
