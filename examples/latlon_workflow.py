"""Real-world-style workflow: WGS84 lat/lon records in, lat/lon out.

The library's core works in a planar local frame; this example shows the
full adapter path a user with real GPS logs would follow:

1. project raw (lat, lon, timestamp) records into the local frame,
2. train KAMEL and impute a sparse trajectory,
3. inverse-project the dense result back to lat/lon.

Since the sandbox has no real dataset, the "GPS logs" are synthesized by
projecting a simulated city onto a Porto-like reference coordinate.

Run with::

    python examples/latlon_workflow.py
"""

from repro import Kamel, KamelConfig, LocalProjection, make_porto_like
from repro.geo import projection_for, trajectory_from_latlon, trajectory_to_latlon

REF_LAT, REF_LON = 41.1579, -8.6291  # Porto city center


def synthesize_latlon_logs():
    """Planar synthetic trips re-expressed as WGS84 records."""
    dataset = make_porto_like(n_trajectories=300)
    projection = LocalProjection(REF_LAT, REF_LON)
    logs = []
    for traj in dataset.trajectories:
        records = []
        for p in traj.points:
            lat, lon = projection.to_latlon(p)
            records.append((lat, lon, p.t))
        logs.append((traj.traj_id, records))
    return logs


def main() -> None:
    logs = synthesize_latlon_logs()
    print(f"loaded {len(logs)} GPS logs; first record: {logs[0][1][0]}")

    # 1. One shared projection for the whole fleet, centered on the data.
    all_records = [record for _, records in logs for record in records]
    projection = projection_for(all_records)

    trajectories = [
        trajectory_from_latlon(tid, records, projection) for tid, records in logs
    ]
    train, test = trajectories[:240], trajectories[240:]

    # 2. Train and impute in the planar frame.
    system = Kamel(KamelConfig()).fit(train)
    sparse = test[0].sparsify(1000.0)
    result = system.impute(sparse)
    print(
        f"imputed {test[0].traj_id}: {len(sparse)} -> {len(result.trajectory)} points "
        f"({result.num_failed}/{result.num_segments} segments fell back to a line)"
    )

    # 3. Ship the dense trajectory back as lat/lon.
    dense_records = trajectory_to_latlon(result.trajectory, projection)
    lat, lon, t = dense_records[len(dense_records) // 2]
    print(f"a newly imputed point: lat={lat:.6f}, lon={lon:.6f}, t={t:.1f}s")


if __name__ == "__main__":
    main()
