"""Compare KAMEL's two masked-model backends on the same workload.

The ``bert`` backend is the faithful reproduction of the paper's model: a
transformer encoder trained with the masked-LM objective on the numpy
autograd engine. The ``counting`` backend answers the same queries from
bidirectional context counts and is orders of magnitude faster — it is
what the benchmark sweeps use. This example trains both on one small city
and prints accuracy and wall-clock side by side.

Run with::

    python examples/bert_vs_counting.py
"""

import time

from repro import Kamel, KamelConfig, make_porto_like
from repro.eval import evaluate_imputation


def run_backend(backend: str, train, test, sparse) -> None:
    config = KamelConfig(
        model_backend=backend,
        bert_epochs=50,
        use_partitioning=False,  # one model: keeps the comparison apples-to-apples
        max_model_calls=500,
    )
    t0 = time.perf_counter()
    system = Kamel(config).fit(train)
    train_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    results = system.impute_batch(sparse)
    impute_s = time.perf_counter() - t0

    scores = evaluate_imputation(test, results, maxgap_m=100.0, delta_m=50.0)
    print(
        f"{backend:>9s}: recall {scores.recall:.2f}  precision {scores.precision:.2f}  "
        f"failure {scores.failure_rate:.2f}  train {train_s:6.1f}s  impute {impute_s:5.1f}s"
    )


def main() -> None:
    # Small city so the transformer trains in under a minute on CPU.
    dataset = make_porto_like(n_trajectories=220, scale=0.6)
    train, test = dataset.split()
    test = test[:5]
    sparse = [t.sparsify(600.0) for t in test]
    print(f"workload: {len(train)} training trajectories, {len(test)} test\n")
    run_backend("counting", train, test, sparse)
    run_backend("bert", train, test, sparse)
    print(
        "\nThe transformer reaches comparable accuracy but pays the paper's"
        "\nFigure-11 training cost; the counting backend is the sweep workhorse."
    )


if __name__ == "__main__":
    main()
