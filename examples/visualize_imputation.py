"""Render imputation results to SVG for visual inspection.

Produces ``imputation_<k>.svg`` files in the working directory: the road
network in grey, the ground-truth trajectory in green, the KAMEL-imputed
path in blue (failed straight-line segments dashed red), and the sparse
input fixes as black dots.

Run with::

    python examples/visualize_imputation.py
"""

from repro import Kamel, KamelConfig, make_jakarta_like
from repro.viz import render_imputation

N_PICTURES = 3


def main() -> None:
    dataset = make_jakarta_like(n_trajectories=150)
    train, test = dataset.split()
    system = Kamel(KamelConfig()).fit(train)

    for k, truth in enumerate(test[:N_PICTURES]):
        sparse = truth.sparsify(1000.0)
        result = system.impute(sparse)
        canvas = render_imputation(truth, sparse, result, network=dataset.network)
        path = canvas.save(f"imputation_{k}.svg")
        print(
            f"{path}: {len(sparse)} sparse -> {len(result.trajectory)} points, "
            f"{result.num_failed}/{result.num_segments} failures"
        )
    print("\nOpen the SVGs in any browser to inspect the imputations.")


if __name__ == "__main__":
    main()
