"""Online mode: impute an incoming stream of sparse trajectories.

KAMEL "receives data either in bulk offline mode or as a stream of
incoming trajectories" (paper Section 2). This example simulates a live
feed: trips arrive one at a time, each is imputed on arrival using the
models trained offline, and running statistics are reported — no
retraining happens on the hot path, which is what makes the imputation
side scale.

Run with::

    python examples/streaming_imputation.py
"""

import itertools
import time

from repro import Kamel, KamelConfig, make_porto_like
from repro.roadnet import TrajectorySimulator, SimulatorConfig

STREAM_LENGTH = 15


def main() -> None:
    dataset = make_porto_like(n_trajectories=300)
    train, _ = dataset.split()
    system = Kamel(KamelConfig()).fit(train)
    print(f"offline training done: {system.repository}\n")

    # A live feed of new trips over the same (hidden) road network,
    # sparsified the way a low-power tracker would report them.
    feed_sim = TrajectorySimulator(
        dataset.network,
        SimulatorConfig(sample_interval_s=15.0, min_trip_length_m=900.0, seed=999),
    )
    feed = (t.sparsify(800.0) for t in feed_sim.stream(id_prefix="live"))

    total_in = total_out = total_failed = total_segments = 0
    t0 = time.perf_counter()
    for result in system.impute_stream(itertools.islice(feed, STREAM_LENGTH)):
        total_in += len(result.trajectory) - sum(
            s.imputed_points for s in result.segments
        )
        total_out += len(result.trajectory)
        total_failed += result.num_failed
        total_segments += result.num_segments
        print(
            f"{result.trajectory.traj_id:>8s}: -> {len(result.trajectory):3d} points, "
            f"{result.num_segments} gaps, {result.num_failed} fallbacks"
        )
    elapsed = time.perf_counter() - t0

    print(
        f"\nstream summary: {STREAM_LENGTH} trajectories in {elapsed:.2f}s "
        f"({elapsed / STREAM_LENGTH * 1000:.0f} ms each)"
    )
    print(
        f"points {total_in} -> {total_out}; "
        f"failure rate {total_failed / max(1, total_segments):.1%}"
    )


if __name__ == "__main__":
    main()
