"""Online mode: impute an incoming stream of sparse trajectories.

KAMEL "receives data either in bulk offline mode or as a stream of
incoming trajectories" (paper Section 2). This example simulates a live
feed: trips arrive one at a time, each is imputed on arrival using the
models trained offline, and running statistics are reported — no
retraining happens on the hot path, which is what makes the imputation
side scale.

The service also exposes a live telemetry endpoint (Prometheus
``/metrics``, JSON ``/healthz``, Chrome-trace ``/spans``); at the end of
the stream this script scrapes its own endpoint once, so running it
doubles as an endpoint smoke test.

Run with::

    python examples/streaming_imputation.py
"""

import itertools
import time
import urllib.request

from repro import Kamel, KamelConfig, make_porto_like
from repro.core.streaming import StreamingConfig, StreamingImputationService
from repro.roadnet import TrajectorySimulator, SimulatorConfig

STREAM_LENGTH = 15


def main() -> None:
    dataset = make_porto_like(n_trajectories=300)
    train, _ = dataset.split()
    system = Kamel(KamelConfig()).fit(train)
    print(f"offline training done: {system.repository}\n")

    # The deployable wrapper: cleaning chain + per-trip imputation, with
    # the telemetry endpoint on an ephemeral localhost port and an alert
    # if the windowed failure rate degrades past 75%.
    service = StreamingImputationService(
        system,
        StreamingConfig(metrics_port=0, alert_failure_rate=0.75),
    )
    print(f"telemetry endpoint: {service.metrics_url}/metrics\n")

    # A live feed of new trips over the same (hidden) road network,
    # sparsified the way a low-power tracker would report them.
    feed_sim = TrajectorySimulator(
        dataset.network,
        SimulatorConfig(sample_interval_s=15.0, min_trip_length_m=900.0, seed=999),
    )
    feed = (t.sparsify(800.0) for t in feed_sim.stream(id_prefix="live"))

    t0 = time.perf_counter()
    for trajectory in itertools.islice(feed, STREAM_LENGTH):
        for result in service.process(trajectory):
            print(
                f"{result.trajectory.traj_id:>8s}: -> {len(result.trajectory):3d} points, "
                f"{result.num_segments} gaps, {result.num_failed} fallbacks"
            )
    elapsed = time.perf_counter() - t0

    stats = service.stats
    print(
        f"\nstream summary: {stats.trajectories_in} trajectories in {elapsed:.2f}s "
        f"({elapsed / max(1, stats.trajectories_in) * 1000:.0f} ms each)"
    )
    print(
        f"points {stats.points_in} -> {stats.points_out}; "
        f"failure rate {stats.failure_rate:.1%}; degraded={service.degraded}"
    )

    # Scrape our own endpoint once — exactly what a Prometheus job would do.
    with urllib.request.urlopen(f"{service.metrics_url}/metrics") as response:
        exposition = response.read().decode("utf-8")
    interesting = (
        "repro_kamel_failure_rate",
        "repro_streaming_trips_out_total",
        "repro_streaming_process_seconds_count",
        "repro_streaming_process_seconds_sum",
    )
    print("\nscraped /metrics (excerpt):")
    for line in exposition.splitlines():
        if line.startswith(interesting):
            print(f"  {line}")
    service.close()


if __name__ == "__main__":
    main()
