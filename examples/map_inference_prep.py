"""Map inference preparation: KAMEL's motivating application.

The paper positions KAMEL as a pre-processing step for *map inference* —
reconstructing an unknown road network from trajectories. This example
shows why: it renders a coarse "inferred map" (an ASCII density raster of
cell visits) from (a) the sparse trajectories, (b) the KAMEL-imputed
trajectories, and (c) the ground truth, and reports how much of the truly
travelled road surface each variant covers.

Run with::

    python examples/map_inference_prep.py
"""

from collections import Counter

from repro import Kamel, KamelConfig, Trajectory, make_jakarta_like

CELL_M = 150.0
SHADES = " .:*#"


def density_raster(trajectories: list[Trajectory]) -> Counter:
    """Visit counts per CELL_M x CELL_M raster cell.

    Only actual GPS points vote — no interpolation between them. That is
    precisely what a map-inference algorithm sees, and why sparse input
    produces a map full of holes.
    """
    counts: Counter = Counter()
    for traj in trajectories:
        seen = set()
        for p in traj.points:
            cell = (int(p.x // CELL_M), int(p.y // CELL_M))
            if cell not in seen:
                seen.add(cell)
                counts[cell] += 1
    return counts


def render(counts: Counter, title: str) -> None:
    if not counts:
        print(f"{title}: empty")
        return
    xs = [c[0] for c in counts]
    ys = [c[1] for c in counts]
    peak = max(counts.values())
    print(f"\n{title} (peak {peak} trips/cell)")
    for y in range(max(ys), min(ys) - 1, -1):
        row = ""
        for x in range(min(xs), max(xs) + 1):
            level = counts.get((x, y), 0) / peak
            row += SHADES[min(len(SHADES) - 1, int(level * len(SHADES)))]
        print(row)


def coverage(counts: Counter, reference: Counter) -> float:
    """Fraction of the reference map's cells present in ``counts``."""
    if not reference:
        return 0.0
    return len(set(counts) & set(reference)) / len(reference)


def main() -> None:
    dataset = make_jakarta_like(n_trajectories=150)
    train, test = dataset.split()
    system = Kamel(KamelConfig()).fit(train)

    sparse = [t.sparsify(1000.0) for t in test]
    imputed = [r.trajectory for r in system.impute_batch(sparse)]

    truth_map = density_raster(list(test))
    sparse_map = density_raster(sparse)
    imputed_map = density_raster(imputed)

    render(truth_map, "ground-truth road usage")
    render(sparse_map, "map inferred from SPARSE trajectories")
    render(imputed_map, "map inferred from KAMEL-IMPUTED trajectories")

    print(
        f"\nroad-surface coverage vs ground truth: "
        f"sparse {coverage(sparse_map, truth_map):.0%}, "
        f"imputed {coverage(imputed_map, truth_map):.0%}"
    )

    # The quantitative version, against the actual (hidden) road network:
    # a proper map-inference run scored GEO-style (repro.mapinference).
    from repro.mapinference import TrajectoryMapInference, evaluate_inferred_map

    engine = TrajectoryMapInference()
    print("\nGEO scores of inferred maps vs the true road network:")
    for label, trajectories in (
        ("sparse", sparse),
        ("imputed", imputed),
        ("ground truth", list(test)),
    ):
        scores = evaluate_inferred_map(
            engine.infer(trajectories), dataset.network, min_visits=1
        )
        print(
            f"  {label:>12s}: precision {scores.precision:.2f}  "
            f"recall {scores.recall:.2f}  F1 {scores.f1:.2f}"
        )


if __name__ == "__main__":
    main()
