"""Fault tolerance end-to-end: chaos, degradation, crash, and recovery.

KAMEL is pitched as an *online* system, so this example stresses the
deployable wrapper the way production would: a seeded ``ChaosMonkey``
injects model failures and latency spikes while trajectories stream
through a service with a per-trajectory deadline, a write-ahead journal,
and a dead-letter quarantine. The pipeline degrades down an explicit
ladder (full beam -> reduced beam -> counting model -> linear) instead of
hanging or dropping work — then the process "crashes" mid-stream and a
second incarnation resumes from the journal without reprocessing or
losing anything.

Run with::

    python examples/chaos_streaming.py

See docs/resilience.md for the full design.
"""

import tempfile
from collections import Counter
from pathlib import Path

from repro import Kamel, KamelConfig, make_porto_like
from repro.core.streaming import StreamingConfig, StreamingImputationService
from repro.geo import Point, Trajectory
from repro.resilience import ChaosConfig, ChaosMonkey, InjectedCrash, chaos_scope

STREAM_LENGTH = 12


def main() -> None:
    dataset = make_porto_like(n_trajectories=200)
    train, test = dataset.split()
    system = Kamel(
        KamelConfig(
            trajectory_deadline_s=2.0,   # SLA: no impute call past 2 s
            breaker_recovery_s=1.0,      # quick half-open probes for the demo
        )
    ).fit(train)
    print(f"offline training done: {system.repository}\n")

    workdir = Path(tempfile.mkdtemp(prefix="kamel-chaos-"))
    config = StreamingConfig(
        journal_path=str(workdir / "wal.jsonl"),
        quarantine_path=str(workdir / "dead.jsonl"),
        alert_failure_rate=0.5,
        alert_degraded_rate=0.25,
    )
    service = StreamingImputationService(system, config)

    feed = [t.sparsify(800.0) for t in test[:STREAM_LENGTH]]
    # One poisoned input: a NaN coordinate no ladder rung can process.
    feed.insert(3, Trajectory(
        "poisoned", [Point(float("nan"), 0.0, t=0.0), Point(700.0, 100.0, t=60.0)]
    ))

    # Seeded chaos: 25% of guarded model calls fail (enough to trip the
    # circuit breaker, pushing segments down to the counting rung), 5%
    # get a latency spike, and the process dies on the 9th trajectory.
    monkey = ChaosMonkey(ChaosConfig(
        seed=42, failure_rate=0.25, latency_rate=0.05, latency_s=0.02, crash_after=9
    ))
    rungs: Counter = Counter()
    print("--- first incarnation (under chaos) ---")
    crashed_after = len(feed)
    with chaos_scope(monkey, system=system, service=service):
        for i, trajectory in enumerate(feed):
            try:
                for result in service.process(trajectory):
                    rungs.update(result.rung_counts)
                    flag = " DEGRADED" if result.num_degraded else ""
                    print(
                        f"{result.trajectory.traj_id:>10s}: "
                        f"{len(result.trajectory):3d} points, "
                        f"{result.num_segments} gaps{flag}"
                    )
            except InjectedCrash:
                crashed_after = i
                print(f"\n*** process killed mid-trajectory #{i} ***")
                break
    service.journal.close()

    print(f"\nchaos report: {monkey.report.to_dict()}")
    print(f"quarantined:  {[e.traj_id for e in service.quarantine.entries()]}")
    stats = service.stats
    print(
        f"survived:     {stats.trajectories_in} trajectories, "
        f"failure rate {stats.failure_rate:.1%}, "
        f"degraded rate {stats.degraded_rate:.1%}"
    )

    # --- second incarnation: same journal, no chaos, nothing lost. ---
    print("\n--- second incarnation (recovery) ---")
    system.guards.reset()
    service2 = StreamingImputationService(system, config)
    for result in service2.recover():
        rungs.update(result.rung_counts)
        print(f"{result.trajectory.traj_id:>10s}: replayed from journal")
    for trajectory in feed[crashed_after + 1:]:
        for result in service2.process(trajectory):
            rungs.update(result.rung_counts)
            print(f"{result.trajectory.traj_id:>10s}: processed normally")
    assert service2.journal.pending() == [], "journal must drain"

    # trajectories_in counts every accepted submission, quarantined ones
    # included — only the one killed mid-flight is missing from the first
    # incarnation, and the journal replay restores exactly it.
    submitted = len(feed)
    accounted = stats.trajectories_in + service2.stats.trajectories_in
    print(
        f"\naccounting: submitted={submitted} "
        f"processed+quarantined across both incarnations={accounted}"
    )
    assert accounted == submitted, "no trajectory may be lost"

    print("\nrung distribution (how hard the ladder worked):")
    for rung in ("full", "reduced_beam", "counting", "linear"):
        if rungs.get(rung):
            print(f"  {rung:>12s}: {rungs[rung]:3d} segments")
    service2.close()


if __name__ == "__main__":
    main()
