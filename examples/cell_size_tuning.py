"""Cell-size auto-tuning (paper Section 3.2, Figure 3d).

The tokenization cell size trades off two failure modes: tiny cells make
tokens too rare to learn ("training data factor"), huge cells stop being
representative of the points inside them. This example sweeps the cell
size manually to expose the accuracy curve, then lets KAMEL's auto-tuner
pick a size by itself.

Run with::

    python examples/cell_size_tuning.py
"""

import dataclasses

from repro import Kamel, KamelConfig, make_porto_like
from repro.core.tuning import tune_cell_size
from repro.eval import evaluate_imputation

SIZES_M = (25.0, 50.0, 75.0, 150.0, 300.0)


def main() -> None:
    dataset = make_porto_like(n_trajectories=300)
    train, test = dataset.split()
    test = test[:6]
    sparse = [t.sparsify(800.0) for t in test]

    print("manual sweep (recall / precision at delta = 50 m):")
    base = KamelConfig()
    for size in SIZES_M:
        config = dataclasses.replace(base, cell_edge_m=size)
        system = Kamel(config).fit(train)
        results = system.impute_batch(sparse)
        scores = evaluate_imputation(test, results, maxgap_m=100.0, delta_m=50.0)
        bar = "#" * int(scores.recall * 40)
        print(f"  H = {size:5.0f} m  recall {scores.recall:.2f}  "
              f"precision {scores.precision:.2f}  {bar}")

    chosen = tune_cell_size(train, base)
    print(f"\nauto-tuner choice: H = {chosen:.0f} m")
    tuned = Kamel(dataclasses.replace(base, cell_edge_m=chosen)).fit(train)
    results = tuned.impute_batch(sparse)
    scores = evaluate_imputation(test, results, maxgap_m=100.0, delta_m=50.0)
    print(f"tuned system: recall {scores.recall:.2f}, precision {scores.precision:.2f}")


if __name__ == "__main__":
    main()
