"""Quickstart: train KAMEL on a synthetic city and impute one trajectory.

Run with::

    python examples/quickstart.py
"""

from repro import Kamel, KamelConfig, make_porto_like
from repro.eval import evaluate_imputation

def main() -> None:
    # A Porto-style workload: many short taxi trips over a synthetic city
    # whose road network KAMEL never sees.
    dataset = make_porto_like(n_trajectories=300)
    train, test = dataset.split(train_fraction=0.8)
    print(
        f"dataset: {len(dataset.trajectories)} trajectories, "
        f"{dataset.num_points} GPS points, "
        f"{dataset.mean_points_per_trajectory:.0f} points/trajectory"
    )

    # Train the full system: tokenization (75 m hexagons), the pyramid
    # model repository, spatial constraints, and detokenization clusters.
    system = Kamel(KamelConfig()).fit(train)
    print(f"trained: {system.repository}, vocabulary {len(system.tokenizer.vocabulary)}")

    # Take a ground-truth test trajectory and impose 1 km gaps, the way the
    # paper's evaluation does, then impute them back.
    truth = test[0]
    sparse = truth.sparsify(1000.0)
    result = system.impute(sparse)
    print(
        f"\ntrajectory {truth.traj_id}: {len(truth)} ground-truth points "
        f"-> sparsified to {len(sparse)} -> imputed back to {len(result.trajectory)}"
    )
    print(
        f"segments imputed: {result.num_segments}, "
        f"failed (straight-line fallback): {result.num_failed}, "
        f"model calls: {result.total_model_calls}"
    )

    # Score it with the paper's metrics (maxgap 100 m, delta 50 m).
    scores = evaluate_imputation([truth], [result], maxgap_m=100.0, delta_m=50.0)
    print(
        f"recall {scores.recall:.2f}, precision {scores.precision:.2f}, "
        f"failure rate {scores.failure_rate:.2f}"
    )


if __name__ == "__main__":
    main()
