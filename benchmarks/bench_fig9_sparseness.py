"""Figure 9: impact of data sparseness on recall, precision, failure rate.

Regenerates all six panels (recall/precision/failure x Porto-like /
Jakarta-like) and asserts the paper's shape: KAMEL dominates TrImpute and
linear interpolation, map matching is the upper bound, and linear's
failure rate is 100 % by definition.
"""

import pytest

from repro.eval.figures import Scale, fig9_sparseness

from conftest import run_once, show


@pytest.fixture(scope="module")
def fig9(bench_scale: Scale):
    return fig9_sparseness(bench_scale)


def test_fig9_regenerate(benchmark, capsys, bench_scale):
    result = run_once(benchmark, fig9_sparseness, bench_scale)
    xs = result["sparseness_m"]
    for dataset, series in result["datasets"].items():
        for metric, panel in (
            ("recall", "(a/c)"),
            ("precision", "(b/d)"),
            ("failure_rate", "(e/f)"),
        ):
            show(
                capsys,
                f"Figure 9{panel} {dataset} - {metric} vs sparseness",
                "sparse_m",
                xs,
                {m: series[m][metric] for m in series},
            )
    assert result["datasets"]


def test_kamel_beats_linear_everywhere(fig9):
    for series in fig9["datasets"].values():
        for k_val, l_val in zip(series["KAMEL"]["recall"], series["Linear"]["recall"]):
            assert k_val > l_val


def test_kamel_competitive_with_trimpute(fig9):
    """Paper: KAMEL 1.5-3x TrImpute at medium gaps. Assert dominance on
    average and no worse than a small margin anywhere."""
    for series in fig9["datasets"].values():
        kamel = series["KAMEL"]["recall"]
        trimpute = series["TrImpute"]["recall"]
        assert sum(kamel) / len(kamel) >= sum(trimpute) / len(trimpute) - 0.03
        for k_val, t_val in zip(kamel, trimpute):
            assert k_val >= t_val - 0.15


def test_map_matching_is_upper_bound(fig9):
    for series in fig9["datasets"].values():
        for m_val, k_val in zip(series["MapMatch"]["recall"], series["KAMEL"]["recall"]):
            assert m_val >= k_val - 0.05


def test_linear_failure_rate_is_total(fig9):
    for series in fig9["datasets"].values():
        assert all(f == 1.0 for f in series["Linear"]["failure_rate"])


def test_kamel_failure_rate_below_linear(fig9):
    for series in fig9["datasets"].values():
        assert all(f < 1.0 for f in series["KAMEL"]["failure_rate"])


def test_linear_recall_collapses_with_sparseness(fig9):
    """Fig. 9's most basic trend: straight lines get worse as gaps grow."""
    for series in fig9["datasets"].values():
        lin = series["Linear"]["recall"]
        assert lin[-1] < lin[0]
