"""Quality-observability overhead and signal quality.

Quality observability is off by default, and the impute hot loop then
pays exactly one ``is None`` branch per hook — the committed perf-gate
baseline holds the disabled-path cost honest via its exact model-call
counters. This benchmark covers the *enabled* side: what drift tracking
and calibration bookkeeping cost per imputed batch, and whether the
signals behave on an in-distribution workload (serving traffic drawn
from the training city must stay under the drift limit, and the
ground-truth ECE must be a sane probability-scale number). The
``repro.drift.*`` / ``repro.quality.*`` gauges it records flow into the
continuous snapshot like every other bench module's metrics.
"""

import time

import pytest

from repro.core.config import KamelConfig
from repro.core.kamel import Kamel
from repro.eval.figures import Scale, porto_workload
from repro.eval.harness import calibrate
from repro.obs.drift import DEFAULT_DRIFT_LIMIT

from conftest import run_once, show


def _run(bench_scale):
    workload = porto_workload(bench_scale).with_sparseness(800.0)
    system = Kamel(KamelConfig(maxgap_m=workload.maxgap_m)).fit(list(workload.train))
    sparse = list(workload.test_sparse)

    start = time.perf_counter()
    system.impute_batch(sparse)
    disabled_s = time.perf_counter() - start

    system.enable_quality_observability()
    start = time.perf_counter()
    results = system.impute_batch(sparse)
    enabled_s = time.perf_counter() - start

    ledger = calibrate(
        workload, results, tracker=system.quality_tracker, grid=system.tokenizer.grid
    )
    detector = system.drift_detector
    tracker = system.quality_tracker
    return {
        "impute_disabled_s": disabled_s,
        "impute_enabled_s": enabled_s,
        "ece": ledger.ece(),
        "scored_segments": ledger.total,
        "unseen_cell_mass": detector.scores.get("unseen_cell_mass", 0.0),
        "cells_tracked": len(tracker.spatial),
    }


@pytest.fixture(scope="module")
def quality_run(bench_scale: Scale):
    return _run(bench_scale)


def test_quality_obs_regenerate(benchmark, capsys, bench_scale):
    result = run_once(benchmark, _run, bench_scale)
    metrics = [
        "impute_disabled_s",
        "impute_enabled_s",
        "ece",
        "scored_segments",
        "unseen_cell_mass",
        "cells_tracked",
    ]
    show(
        capsys,
        "Quality observability: enabled-path cost and signals",
        "metric",
        metrics,
        {"quality_obs": [result[m] for m in metrics]},
    )
    assert result["scored_segments"] > 0
    assert result["cells_tracked"] > 0


def test_in_distribution_serving_stays_under_drift_limit(quality_run):
    # Serving traffic drawn from the training split's own city must not
    # look like drift; a breach here would mean false alarms everywhere.
    assert quality_run["unseen_cell_mass"] < DEFAULT_DRIFT_LIMIT


def test_ece_is_probability_scaled(quality_run):
    assert 0.0 <= quality_run["ece"] <= 1.0
