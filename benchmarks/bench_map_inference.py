"""Extension experiment E11: map inference quality with/without KAMEL.

The paper's introduction motivates imputation as "a preparation step
before any map inference technique". This benchmark quantifies that claim
end to end on the synthetic city: infer the road map (a) from the sparse
trajectories, (b) from the KAMEL-imputed trajectories, and (c) from the
dense ground truth, then score each against the true network (GEO-style
precision/recall).

Expected shape: imputed >> sparse on F1; imputed approaches the
ground-truth ceiling.
"""

import pytest

from repro.eval.figures import Scale, jakarta_workload
from repro.eval.harness import ExperimentRunner, kamel_builder
from repro.mapinference import TrajectoryMapInference, evaluate_inferred_map

from conftest import run_once, show

MIN_VISITS = 1


def _map_scores(bench_scale):
    workload = jakarta_workload(bench_scale).with_sparseness(1000.0)
    runner = ExperimentRunner(workload)
    results, _ = runner.impute("KAMEL", kamel_builder())
    imputed = [r.trajectory for r in results]

    engine = TrajectoryMapInference()
    network = workload.dataset.network
    out = {}
    for label, trajectories in (
        ("sparse", list(workload.test_sparse)),
        ("imputed", imputed),
        ("ground truth", list(workload.test_truth)),
    ):
        scores = evaluate_inferred_map(
            engine.infer(trajectories), network, min_visits=MIN_VISITS
        )
        out[label] = scores
    return out


@pytest.fixture(scope="module")
def map_scores(bench_scale: Scale):
    return _map_scores(bench_scale)


def test_map_inference_regenerate(benchmark, capsys, bench_scale):
    scores = run_once(benchmark, _map_scores, bench_scale)
    show(
        capsys,
        "E11 map inference quality (GEO precision/recall vs true network)",
        "input",
        list(scores),
        {
            "precision": [scores[k].precision for k in scores],
            "recall": [scores[k].recall for k in scores],
            "f1": [scores[k].f1 for k in scores],
        },
    )
    assert scores


def test_imputation_improves_map_f1(map_scores):
    assert map_scores["imputed"].f1 > map_scores["sparse"].f1


def test_imputation_improves_map_precision(map_scores):
    """Sparse chords cut across blocks: hallucinated roads."""
    assert map_scores["imputed"].precision > map_scores["sparse"].precision


def test_imputed_map_approaches_ground_truth(map_scores):
    assert map_scores["imputed"].f1 >= 0.8 * map_scores["ground truth"].f1
