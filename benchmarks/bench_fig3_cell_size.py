"""Figure 3(d): accuracy as a function of the tokenization cell size.

Sweeps the hexagon edge length through the paper's trade-off (Section
3.2): tiny cells make tokens too rare to learn (training-data factor),
huge cells stop being representative. Shape claim: the curve is unimodal
with an interior optimum — both extremes underperform the middle.
"""

import pytest

from repro.eval.figures import Scale, fig3_cell_size

from conftest import run_once, show

SIZES = (25.0, 50.0, 75.0, 150.0, 300.0)


@pytest.fixture(scope="module")
def fig3(bench_scale: Scale):
    return fig3_cell_size(bench_scale, cell_sizes_m=SIZES)


def test_fig3_cell_size_regenerate(benchmark, capsys, bench_scale):
    result = run_once(benchmark, fig3_cell_size, bench_scale, cell_sizes_m=SIZES)
    show(
        capsys,
        "Figure 3(d) accuracy vs cell size",
        "edge_m",
        result["cell_sizes_m"],
        result["series"],
    )
    assert len(result["series"]["recall"]) == len(SIZES)


def test_interior_optimum(fig3):
    recall = fig3["series"]["recall"]
    best = max(range(len(recall)), key=lambda i: recall[i])
    assert 0 < best < len(recall) - 1, "optimum must not sit at either extreme"


def test_extremes_below_peak(fig3):
    recall = fig3["series"]["recall"]
    peak = max(recall)
    assert recall[0] <= peak
    assert recall[-1] <= peak
