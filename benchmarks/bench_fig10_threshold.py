"""Figure 10: impact of the accuracy threshold delta on recall/precision.

Regenerates the four panels (recall/precision x Porto-like/Jakarta-like).
Shape claims: every method improves as delta loosens; KAMEL dominates at
tight thresholds where competitors become "almost useless" (paper 8.2),
and the competitors close the gap at 100 m.
"""

import pytest

from repro.eval.figures import Scale, fig10_threshold

from conftest import run_once, show


@pytest.fixture(scope="module")
def fig10(bench_scale: Scale):
    return fig10_threshold(bench_scale)


def test_fig10_regenerate(benchmark, capsys, bench_scale):
    result = run_once(benchmark, fig10_threshold, bench_scale)
    xs = result["deltas_m"]
    for dataset, series in result["datasets"].items():
        for metric in ("recall", "precision"):
            show(
                capsys,
                f"Figure 10 {dataset} - {metric} vs accuracy threshold",
                "delta_m",
                xs,
                {m: series[m][metric] for m in series},
            )
    assert result["datasets"]


def test_recall_monotone_in_delta(fig10):
    for series in fig10["datasets"].values():
        for method, metrics in series.items():
            values = metrics["recall"]
            for tight, loose in zip(values, values[1:]):
                assert loose >= tight - 1e-9, method


def test_kamel_dominates_at_tight_delta(fig10):
    """delta = 10 m: linear and TrImpute become almost useless while
    KAMEL keeps a usable recall (paper: ~40-50 %)."""
    for series in fig10["datasets"].values():
        assert series["KAMEL"]["recall"][0] >= series["Linear"]["recall"][0]
        # TrImpute's mean-point snapping benefits from the dense synthetic
        # training data; allow a modest margin at the tightest delta.
        assert series["KAMEL"]["recall"][0] >= series["TrImpute"]["recall"][0] - 0.1


def test_competitors_catch_up_at_loose_delta(fig10):
    """At 100 m the spread between KAMEL and TrImpute shrinks (8.2)."""
    for series in fig10["datasets"].values():
        tight_gap = series["KAMEL"]["recall"][0] - series["TrImpute"]["recall"][0]
        loose_gap = series["KAMEL"]["recall"][-1] - series["TrImpute"]["recall"][-1]
        assert loose_gap <= tight_gap + 0.1


def test_map_match_nearly_perfect_at_loose_delta(fig10):
    for series in fig10["datasets"].values():
        assert series["MapMatch"]["recall"][-1] > 0.95
