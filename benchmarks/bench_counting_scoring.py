"""Design ablation: the counting backend's scoring rule.

DESIGN.md documents the fast counting backend as a BERT substitute; its
default *policy-times-value* scoring (local transition evidence multiplied
by route evidence toward the gap's far endpoint) was chosen over a plain
additive interpolation of the same count tables. This benchmark justifies
that choice at both the model level (held-out masked-prediction accuracy)
and the system level (imputation recall).
"""

import dataclasses

import pytest

from repro.core.config import KamelConfig
from repro.core.kamel import Kamel
from repro.eval.figures import Scale, jakarta_workload
from repro.eval.metrics import evaluate_imputation
from repro.mlm import CountingMaskedLM, evaluate_masked_model
from repro.core.tokenization import Tokenizer, make_grid

from conftest import run_once, show


def _compare(bench_scale):
    workload = jakarta_workload(bench_scale).with_sparseness(1000.0)

    # Model-level: masked accuracy on held-out tokenized trajectories.
    tokenizer = Tokenizer(make_grid("hex", 75.0))
    train_seqs = [tokenizer.tokenize(t, grow=True).tokens for t in workload.train]
    test_seqs = [tokenizer.tokenize(t, grow=False).tokens for t in workload.test_truth]
    test_seqs = [
        [t for t in seq if not tokenizer.vocabulary.is_special(t)] for seq in test_seqs
    ]
    vocab_size = len(tokenizer.vocabulary)

    out = {}
    for scoring in ("policy_value", "interpolation"):
        model = CountingMaskedLM(scoring=scoring).fit(train_seqs, vocab_size)
        model_eval = evaluate_masked_model(model, test_seqs, top_k=10, max_predictions=800)

        # System-level: swap the backend scoring inside a full KAMEL run.
        system = Kamel(KamelConfig(maxgap_m=workload.maxgap_m))
        system._model_factory = lambda s=scoring: CountingMaskedLM(scoring=s)  # type: ignore[assignment]
        system.fit(list(workload.train))
        results = system.impute_batch(list(workload.test_sparse))
        scores = evaluate_imputation(
            list(workload.test_truth), results, workload.maxgap_m, workload.delta_m
        )
        out[scoring] = {
            "masked_top1": model_eval.top1_accuracy,
            "masked_top10": model_eval.topk_accuracy,
            "system_recall": scores.recall,
            "system_failure": scores.failure_rate,
        }
    return out


@pytest.fixture(scope="module")
def comparison(bench_scale: Scale):
    return _compare(bench_scale)


def test_counting_scoring_regenerate(benchmark, capsys, bench_scale):
    result = run_once(benchmark, _compare, bench_scale)
    metrics = ["masked_top1", "masked_top10", "system_recall", "system_failure"]
    show(
        capsys,
        "Design ablation: counting-backend scoring rule",
        "metric",
        metrics,
        {name: [series[m] for m in metrics] for name, series in result.items()},
    )
    assert set(result) == {"policy_value", "interpolation"}


def test_policy_value_wins_masked_accuracy(comparison):
    assert (
        comparison["policy_value"]["masked_top1"]
        >= comparison["interpolation"]["masked_top1"]
    )


def test_policy_value_not_worse_at_system_level(comparison):
    assert (
        comparison["policy_value"]["system_recall"]
        >= comparison["interpolation"]["system_recall"] - 0.05
    )
