"""Figure 12-I/II: impact of road type (straight vs curved segments).

Test segments are classified straight/curved by comparing the endpoint
Euclidean distance against the distance travelled along the ground truth
(5 m criterion, Section 8.4), then each class is scored separately.

Shape claims: on straight segments linear interpolation is competitive
(its geometry is exactly right); on curved segments KAMEL clearly beats
linear, which must cut the curve.
"""

import pytest

from repro.eval.figures import Scale, fig12_road_type

from conftest import run_once, show


@pytest.fixture(scope="module")
def fig12(bench_scale: Scale):
    return fig12_road_type(bench_scale)


def test_fig12_road_type_regenerate(benchmark, capsys, bench_scale):
    result = run_once(benchmark, fig12_road_type, bench_scale)
    xs = result["sparseness_m"]
    for road_class, series in result["classes"].items():
        for metric in ("recall", "precision", "failure_rate", "num_segments"):
            show(
                capsys,
                f"Figure 12-{'I' if road_class == 'straight' else 'II'} "
                f"{road_class} segments - {metric}",
                "sparse_m",
                xs,
                {m: series[m][metric] for m in series},
            )
    assert result["classes"]


def _populated(series):
    """Indices of sweep points where the class actually has segments
    (wide gaps on a small city may contain no straight segments at all)."""
    return [i for i, n in enumerate(series["num_segments"]) if n > 0]


def test_linear_competitive_on_straight_segments(fig12):
    straight = fig12["classes"]["straight"]
    populated = _populated(straight["Linear"])
    assert populated, "no straight segments classified at any sparseness"
    # Straight lines on straight roads: high recall by construction.
    for i in populated:
        assert straight["Linear"]["recall"][i] > 0.5


def test_linear_collapses_on_curved_segments(fig12):
    straight = fig12["classes"]["straight"]
    curved = fig12["classes"]["curved"]
    for i in _populated(straight["Linear"]):
        assert straight["Linear"]["recall"][i] > curved["Linear"]["recall"][i]


def test_kamel_beats_linear_on_curves(fig12):
    curved = fig12["classes"]["curved"]
    for k_val, l_val in zip(curved["KAMEL"]["recall"], curved["Linear"]["recall"]):
        assert k_val > l_val


def test_kamel_resilient_across_classes(fig12):
    """Paper: KAMEL has the highest performance on curved segments and
    stays strong on straight ones."""
    for road_class in ("straight", "curved"):
        series = fig12["classes"][road_class]
        kamel = series["KAMEL"]["recall"]
        trimpute = series["TrImpute"]["recall"]
        assert sum(kamel) / len(kamel) >= sum(trimpute) / len(trimpute) - 0.05
