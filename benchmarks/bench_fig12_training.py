"""Figure 12-IV/V: impact of training data size and density.

IV — KAMEL trained on 100/75/50/25 % of the training trajectories.
Shape claim (paper 8.6): 100/75/50 % perform almost identically; only
25 % shows a noticeable reduction.

V — KAMEL trained on the same trajectories down-sampled to 1/15/30/60 s
intervals. Shape claim: 1 s and 15 s are nearly identical ("KAMEL can
still work perfectly fine with only 7 % of its available data"); 30/60 s
degrade.
"""

import pytest

from repro.eval.figures import Scale, fig12_training_density, fig12_training_size

from conftest import run_once, show


@pytest.fixture(scope="module")
def size_fig(bench_scale: Scale):
    return fig12_training_size(bench_scale)


@pytest.fixture(scope="module")
def density_fig(bench_scale: Scale):
    return fig12_training_density(bench_scale)


def test_fig12_training_size_regenerate(benchmark, capsys, bench_scale):
    result = run_once(benchmark, fig12_training_size, bench_scale)
    labels = list(result["series"])
    for metric in ("recall", "precision", "failure_rate"):
        show(
            capsys,
            f"Figure 12-IV training size - {metric}",
            "fraction",
            labels,
            {metric: [result["series"][label][metric] for label in labels]},
        )
    assert result["series"]


def test_fig12_training_density_regenerate(benchmark, capsys, bench_scale):
    result = run_once(benchmark, fig12_training_density, bench_scale)
    labels = list(result["series"])
    for metric in ("recall", "precision", "failure_rate"):
        show(
            capsys,
            f"Figure 12-V training density - {metric}",
            "sampling",
            labels,
            {metric: [result["series"][label][metric] for label in labels]},
        )
    assert result["series"]


def test_half_data_nearly_as_good(size_fig):
    series = size_fig["series"]
    assert series["50%"]["recall"] >= series["100%"]["recall"] - 0.12


def test_quarter_data_noticeably_worse_or_equal(size_fig):
    series = size_fig["series"]
    assert series["25%"]["recall"] <= series["100%"]["recall"] + 0.05


def test_more_data_never_hurts_much(size_fig):
    series = size_fig["series"]
    assert series["100%"]["recall"] >= series["25%"]["recall"] - 0.05


def test_15s_sampling_retains_most_quality(density_fig):
    """Paper: 1 s and 15 s are nearly identical. With the far smaller
    synthetic training set the drop is larger but 15 s still retains the
    bulk of the 1 s quality (deviation recorded in EXPERIMENTS.md)."""
    series = density_fig["series"]
    assert series["15s"]["recall"] >= 0.7 * series["1s"]["recall"]


def test_density_degradation_is_monotone(density_fig):
    series = density_fig["series"]
    values = [series[k]["recall"] for k in ("1s", "15s", "30s", "60s")]
    for denser, sparser in zip(values, values[1:]):
        assert sparser <= denser + 0.05


def test_sparse_sampling_degrades(density_fig):
    series = density_fig["series"]
    assert series["60s"]["recall"] <= series["1s"]["recall"] + 0.05
