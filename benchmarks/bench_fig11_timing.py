"""Figure 11: training and imputation time.

Regenerates both bars for both datasets. Shape claims (paper 8.3): KAMEL
"inherits the complex training model from BERT" and trains orders of
magnitude slower than TrImpute (whose training "computes a simple set of
stats and lookup indices"), and KAMEL's imputation is the slowest because
multipoint imputation trades time for accuracy.

Timing source: the harness records every train/impute wall time into the
``repro.obs`` metrics registry (``repro.eval.train_seconds`` /
``repro.eval.impute_seconds``) and the figure numbers are those same
measurements — no timers are hand-rolled here.
"""

import pytest

from repro.eval.figures import Scale, fig11_timing
from repro.obs import get_registry

from conftest import run_once, show


@pytest.fixture(scope="module")
def fig11(bench_scale: Scale):
    return fig11_timing(bench_scale)


def test_fig11_regenerate(benchmark, capsys, bench_scale):
    result = run_once(benchmark, fig11_timing, bench_scale)
    datasets = list(result["datasets"])
    methods = list(result["datasets"][datasets[0]])
    for metric, panel in (("train_time_s", "(a)"), ("impute_time_s", "(b)")):
        show(
            capsys,
            f"Figure 11{panel} {metric}",
            "dataset",
            datasets,
            {m: [result["datasets"][d][m][metric] for d in datasets] for m in methods},
        )
    assert result["datasets"]


def test_kamel_training_dwarfs_trimpute(fig11):
    for timing in fig11["datasets"].values():
        assert timing["KAMEL"]["train_time_s"] > 5 * timing["TrImpute"]["train_time_s"]


def test_kamel_imputation_slower_than_trimpute(fig11):
    for timing in fig11["datasets"].values():
        assert timing["KAMEL"]["impute_time_s"] > timing["TrImpute"]["impute_time_s"]


def test_map_matching_needs_no_training(fig11):
    for timing in fig11["datasets"].values():
        assert timing["MapMatch"]["train_time_s"] < 0.01


def test_timings_come_from_the_metrics_registry(fig11):
    """The figure's numbers are registry measurements, not ad-hoc timers:
    every reported time is bounded by the registry's per-phase extrema."""
    registry = get_registry()
    for phase, metric in (
        ("train_time_s", "repro.eval.train_seconds"),
        ("impute_time_s", "repro.eval.impute_seconds"),
    ):
        histogram = registry.get(metric)
        assert histogram is not None, f"{metric} missing from the registry"
        assert histogram.count >= 2 * len(fig11["datasets"])
        for timing in fig11["datasets"].values():
            for method in timing.values():
                assert histogram.min <= method[phase] <= histogram.max
