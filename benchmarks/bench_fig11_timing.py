"""Figure 11: training and imputation time.

Regenerates both bars for both datasets. Shape claims (paper 8.3): KAMEL
"inherits the complex training model from BERT" and trains orders of
magnitude slower than TrImpute (whose training "computes a simple set of
stats and lookup indices"), and KAMEL's imputation is the slowest because
multipoint imputation trades time for accuracy.
"""

import pytest

from repro.eval.figures import Scale, fig11_timing

from conftest import run_once, show


@pytest.fixture(scope="module")
def fig11(bench_scale: Scale):
    return fig11_timing(bench_scale)


def test_fig11_regenerate(benchmark, capsys, bench_scale):
    result = run_once(benchmark, fig11_timing, bench_scale)
    datasets = list(result["datasets"])
    methods = list(result["datasets"][datasets[0]])
    for metric, panel in (("train_time_s", "(a)"), ("impute_time_s", "(b)")):
        show(
            capsys,
            f"Figure 11{panel} {metric}",
            "dataset",
            datasets,
            {m: [result["datasets"][d][m][metric] for d in datasets] for m in methods},
        )
    assert result["datasets"]


def test_kamel_training_dwarfs_trimpute(fig11):
    for timing in fig11["datasets"].values():
        assert timing["KAMEL"]["train_time_s"] > 5 * timing["TrImpute"]["train_time_s"]


def test_kamel_imputation_slower_than_trimpute(fig11):
    for timing in fig11["datasets"].values():
        assert timing["KAMEL"]["impute_time_s"] > timing["TrImpute"]["impute_time_s"]


def test_map_matching_needs_no_training(fig11):
    for timing in fig11["datasets"].values():
        assert timing["MapMatch"]["train_time_s"] < 0.01
