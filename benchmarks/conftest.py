"""Shared helpers for the figure-regeneration benchmark suite.

Every benchmark regenerates one table/figure of the paper's evaluation
(Section 8) at ``Scale.small()`` sizing, prints the series in a
paper-figure layout, and asserts the paper's qualitative *shape* claims
(who wins, what degrades, where curves sit) rather than absolute numbers —
the substrate here is a synthetic city, not the authors' testbed.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pathlib

import pytest

from repro.eval.report import render_series
from repro.obs import get_registry


REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

MERGED_SNAPSHOT_NAME = "BENCH_observability.json"
"""The merged snapshot: one schema-v2 document holding every bench
module's metrics from a ``--metrics-out`` run. It is written *into* the
``--metrics-out`` directory (never the repo root — ``kamel bench``
subprocesses must not clobber the committed baseline); promote it with
``kamel bench --update-baseline``."""


def pytest_addoption(parser):
    parser.addoption(
        "--metrics-out",
        default=None,
        metavar="DIR",
        help="dump a BENCH_<module>.json metrics snapshot per benchmark module "
        "plus the merged schema-v2 BENCH_observability.json into DIR",
    )


@pytest.fixture(scope="module", autouse=True)
def bench_metrics_snapshot(request):
    """Write each module's metrics (BENCH_<module>.json) when requested.

    The registry is reset before every benchmark module either way, so a
    snapshot holds exactly what that module's figures recorded. Snapshots
    also accumulate on the session for the merged repo-root document.
    """
    get_registry().reset()
    yield
    out_dir = request.config.getoption("--metrics-out")
    if not out_dir:
        return
    directory = pathlib.Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    name = request.module.__name__.removeprefix("bench_")
    get_registry().write_json(directory / f"BENCH_{name}.json")
    snapshots = getattr(request.config, "_bench_obs_snapshots", None)
    if snapshots is None:
        snapshots = request.config._bench_obs_snapshots = {}
    snapshots[name] = get_registry().snapshot()


def pytest_sessionfinish(session, exitstatus):
    """Merge the per-module snapshots into a schema-v2 document.

    A single pytest session is one repeat, so every stdev is 0.0; the
    environment fingerprint (python/platform/numpy/commit/seed) still
    makes the document comparable across machines. ``kamel bench``
    aggregates several of these runs into a multi-repeat snapshot.
    """
    from repro.bench.snapshot import (
        flatten_summary,
        make_snapshot,
        scalar_summary,
        write_snapshot,
    )

    snapshots = getattr(session.config, "_bench_obs_snapshots", None)
    if not snapshots:
        return
    out_dir = pathlib.Path(session.config.getoption("--metrics-out"))
    module_runs = {
        name: [flatten_summary(scalar_summary(snapshot))]
        for name, snapshot in sorted(snapshots.items())
    }
    doc = make_snapshot(module_runs, seed=0, repo_root=REPO_ROOT)
    write_snapshot(out_dir / MERGED_SNAPSHOT_NAME, doc)


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a single timed round (figures are minutes-long
    at full scale; one round keeps the suite tractable)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def show(capsys, title: str, x_label: str, xs, series) -> None:
    """Print a figure table past pytest's capture."""
    with capsys.disabled():
        print()
        print(render_series(title, x_label, xs, series))


@pytest.fixture(scope="session")
def bench_scale():
    from repro.eval.figures import Scale

    return Scale.small()
