"""E10: the transformer (BERT) backend vs the counting backend.

The paper's model is a BERT masked LM; this repo's figure sweeps use the
fast counting backend (see DESIGN.md substitution table). This benchmark
trains the actual numpy transformer on a small city and verifies it is a
functioning drop-in: same system path, usable accuracy, paper-shaped cost
(Figure 11's "KAMEL inherits the complex training model from BERT").
"""

import time

import pytest

from repro import Kamel, KamelConfig
from repro.eval import evaluate_imputation
from repro.roadnet import make_porto_like

from conftest import run_once, show

MAXGAP = 100.0
DELTA = 50.0
SPARSENESS = 600.0


@pytest.fixture(scope="module")
def workload():
    dataset = make_porto_like(n_trajectories=200, scale=0.6)
    train, test = dataset.split()
    test = test[:5]
    sparse = [t.sparsify(SPARSENESS) for t in test]
    return train, test, sparse


def _run(backend: str, train, test, sparse):
    config = KamelConfig(
        model_backend=backend,
        bert_epochs=50,
        use_partitioning=False,
        max_model_calls=500,
    )
    t0 = time.perf_counter()
    system = Kamel(config).fit(list(train))
    train_s = time.perf_counter() - t0
    results = system.impute_batch(sparse)
    scores = evaluate_imputation(list(test), results, MAXGAP, DELTA)
    return scores, train_s


@pytest.fixture(scope="module")
def comparison(workload):
    train, test, sparse = workload
    return {backend: _run(backend, train, test, sparse) for backend in ("counting", "bert")}


def test_bert_backend_regenerate(benchmark, capsys, workload):
    train, test, sparse = workload
    scores, train_s = run_once(benchmark, _run, "bert", train, test, sparse)
    show(
        capsys,
        "E10 transformer backend",
        "metric",
        ["recall", "precision", "failure", "train_s"],
        {"bert": [scores.recall, scores.precision, scores.failure_rate, train_s]},
    )
    assert scores.recall > 0.3


def test_bert_is_usable(comparison):
    scores, _ = comparison["bert"]
    assert scores.recall > 0.4
    assert scores.precision > 0.4


def test_bert_training_cost_dominates(comparison):
    """Figure 11's shape: transformer training dwarfs the counting fit."""
    _, bert_train = comparison["bert"]
    _, counting_train = comparison["counting"]
    assert bert_train > 3 * counting_train


def test_counting_backend_not_worse(comparison):
    bert_scores, _ = comparison["bert"]
    counting_scores, _ = comparison["counting"]
    assert counting_scores.recall >= bert_scores.recall - 0.15
