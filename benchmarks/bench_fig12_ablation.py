"""Figure 12-VI: ablation analysis of KAMEL's modules.

Four system variants (paper 8.7): full KAMEL, "No Part." (one global
model), "No Const." (accept every model prediction), and "No Multi."
(a single model call per gap).

Shape claims from the paper:
* removing multipoint imputation hurts *recall* the most (only one point
  per gap is predicted, the rest of the gap stays empty);
* removing the spatial constraints hurts *precision* the most (noisy
  predictions get through) while hurting recall the least;
* removing any module leaves the full system on top overall.
"""

import pytest

from repro.eval.figures import Scale, fig12_ablation

from conftest import run_once, show


@pytest.fixture(scope="module")
def fig12(bench_scale: Scale):
    return fig12_ablation(bench_scale)


def _mean(values):
    return sum(values) / len(values)


def test_fig12_ablation_regenerate(benchmark, capsys, bench_scale):
    result = run_once(benchmark, fig12_ablation, bench_scale)
    xs = result["sparseness_m"]
    for metric in ("recall", "precision", "failure_rate"):
        show(
            capsys,
            f"Figure 12-VI ablation - {metric}",
            "sparse_m",
            xs,
            {v: result["variants"][v][metric] for v in result["variants"]},
        )
    assert len(result["variants"]) == 4


def test_no_multipoint_hurts_recall_most(fig12):
    variants = fig12["variants"]
    full = _mean(variants["KAMEL"]["recall"])
    no_multi = _mean(variants["No Multi."]["recall"])
    assert no_multi < full
    # "affects the performance the most": worse than the other ablations.
    assert no_multi <= _mean(variants["No Const."]["recall"]) + 0.05
    assert no_multi <= _mean(variants["No Part."]["recall"]) + 0.05


def test_no_constraints_hurts_precision_most(fig12):
    variants = fig12["variants"]
    assert _mean(variants["No Const."]["precision"]) <= _mean(
        variants["KAMEL"]["precision"]
    )


def test_no_constraints_hurts_recall_least(fig12):
    """Removing constraints still lets accurate predictions through."""
    variants = fig12["variants"]
    drop_const = _mean(variants["KAMEL"]["recall"]) - _mean(
        variants["No Const."]["recall"]
    )
    drop_multi = _mean(variants["KAMEL"]["recall"]) - _mean(
        variants["No Multi."]["recall"]
    )
    assert drop_const <= drop_multi + 0.05


def test_full_system_wins_overall(fig12):
    variants = fig12["variants"]
    full_score = _mean(variants["KAMEL"]["recall"]) + _mean(
        variants["KAMEL"]["precision"]
    )
    for name, series in variants.items():
        if name == "KAMEL":
            continue
        assert full_score >= _mean(series["recall"]) + _mean(series["precision"]) - 0.05
