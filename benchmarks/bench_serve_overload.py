"""Overload-protection overhead: the pool-side bookkeeping per request.

Admission control and brownout run inline on the pool's submit/result
path, so their cost is paid by *every* request — overloaded or not. This
module prices the three pieces: one brownout evaluation (the controller
ticks on every submit, dequeue, and result), the admission bookkeeping a
single submit adds (depth check, buffer append, prefetch feed, gauge
update simulated at dict/deque scale), and synthesizing one shed result
message. All must stay microseconds against multi-millisecond
imputations; the assertions hold them to that order.
"""

import time
from collections import deque

import pytest

from repro.resilience.ladder import DegradationLadder, RUNG_COUNTING, RUNG_FULL
from repro.serve.overload import (
    BrownoutConfig,
    BrownoutController,
    rung_cap_for,
)

from conftest import run_once, show

TICKS = 20000
SUBMITS = 20000
SHEDS = 5000


class _SteppingClock:
    """Advances past the rate-limit window on every read, so each
    evaluate() takes the full (worst-case) decision path."""

    def __init__(self, step):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


def _shed_message(traj_id, shard, policy):
    """The pool's synthesized OverloadError result, field for field."""
    why = "shard queue full"
    return {
        "kind": "result",
        "worker_id": shard,
        "shard": shard,
        "traj_id": traj_id,
        "shed": True,
        "policy": policy,
        "trips": [],
        "segments": 0,
        "failed": 0,
        "degraded": 0,
        "model_calls": 0,
        "rungs": {},
        "error": f"OverloadError: {why} (shard {shard}, policy {policy})",
        "error_type": "OverloadError",
    }


def _run():
    # Brownout: one full evaluation per tick, alternating pressure so
    # both branches (over/under) and the occasional _step() are paid.
    config = BrownoutConfig(
        high_depth=8, low_depth=1, step_down_after=2, step_up_after=2,
        interval_s=0.01,
    )
    controller = BrownoutController(config, clock=_SteppingClock(0.02))
    start = time.perf_counter()
    for i in range(TICKS):
        controller.evaluate(12 if (i // 64) % 2 == 0 else 0, 0.05)
    evaluate_us = (time.perf_counter() - start) / TICKS * 1e6
    steps = len(controller.transitions)

    # Rate-limited path: the common case — evaluate() called inside the
    # window returns immediately.
    controller2 = BrownoutController(config)  # real monotonic clock
    controller2.evaluate(0)
    start = time.perf_counter()
    for _ in range(TICKS):
        controller2.evaluate(12, 0.05)
    limited_ns = (time.perf_counter() - start) / TICKS * 1e9

    # Admission bookkeeping at submit: the per-request data-structure
    # work (depth check over buffer+queue counts, append, prefetch
    # move, id-set upkeep) without the multiprocessing transport.
    buffers = {0: deque(), 1: deque()}
    in_queue = {0: 0, 1: 0}
    in_queue_ids = set()
    max_depth, prefetch = 8, 2
    start = time.perf_counter()
    for i in range(SUBMITS):
        shard = i & 1
        if len(buffers[shard]) + in_queue[shard] >= max_depth:
            victim = buffers[shard].popleft()
            in_queue_ids.discard(victim)
        buffers[shard].append(f"traj-{i}")
        while buffers[shard] and in_queue[shard] < prefetch:
            moved = buffers[shard].popleft()
            in_queue[shard] += 1
            in_queue_ids.add(moved)
    submit_us = (time.perf_counter() - start) / SUBMITS * 1e6

    # Shed-result synthesis: the message the caller gets instead of
    # silence.
    start = time.perf_counter()
    messages = [_shed_message(f"traj-{i}", i & 1, "shed") for i in range(SHEDS)]
    shed_us = (time.perf_counter() - start) / SHEDS * 1e6

    # The worker-side cap decision (per task): level -> rung cap -> one
    # ladder comparison.
    start = time.perf_counter()
    for i in range(TICKS):
        cap = rung_cap_for(i % 3)
        DegradationLadder.allows(RUNG_FULL, cap)
        DegradationLadder.tighter_cap(cap, RUNG_COUNTING)
    cap_ns = (time.perf_counter() - start) / TICKS * 1e9

    return {
        "evaluate_us": evaluate_us,
        "evaluate_limited_ns": limited_ns,
        "submit_bookkeeping_us": submit_us,
        "shed_synthesis_us": shed_us,
        "rung_cap_ns": cap_ns,
        "brownout_steps": steps,
        "shed_messages": len(messages),
    }


@pytest.fixture(scope="module")
def overload_run():
    return _run()


def test_overload_overhead_regenerate(benchmark, capsys):
    result = run_once(benchmark, _run)
    metrics = [
        "evaluate_us",
        "evaluate_limited_ns",
        "submit_bookkeeping_us",
        "shed_synthesis_us",
        "rung_cap_ns",
    ]
    show(
        capsys,
        "Overload protection: per-request admission + brownout cost",
        "metric",
        metrics,
        {"serve_overload": [result[m] for m in metrics]},
    )
    assert result["brownout_steps"] > 0
    assert result["shed_messages"] == SHEDS


def test_brownout_evaluation_is_microseconds(overload_run):
    # The full decision path runs on every submit/dequeue/result; it
    # must be invisible next to a multi-millisecond imputation.
    assert overload_run["evaluate_us"] < 100


def test_rate_limited_tick_is_nanoseconds(overload_run):
    # The common case (inside the interval window) is one clock read
    # and a comparison.
    assert overload_run["evaluate_limited_ns"] < 20_000


def test_admission_bookkeeping_is_microseconds(overload_run):
    assert overload_run["submit_bookkeeping_us"] < 100


def test_shed_synthesis_is_microseconds(overload_run):
    assert overload_run["shed_synthesis_us"] < 200


def test_rung_cap_decision_is_nanoseconds(overload_run):
    assert overload_run["rung_cap_ns"] < 50_000
