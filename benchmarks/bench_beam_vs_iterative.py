"""Design ablation: bidirectional beam search vs iterative calling.

The paper presents both multipoint strategies (Section 6) and argues the
beam search finds more probable sequences than the greedy iterative
calling (the Figure 6 vs Figure 7 worked example). This benchmark runs
the full system with each strategy on the same workload.

Expected shape: beam search matches or beats iterative calling on recall
and failure rate; iterative calling issues fewer model calls per segment.
"""

import dataclasses

import pytest

from repro.core.config import KamelConfig
from repro.eval.figures import Scale, jakarta_workload
from repro.eval.harness import ExperimentRunner, kamel_builder

from conftest import run_once, show


def _compare(bench_scale):
    workload = jakarta_workload(bench_scale).with_sparseness(1000.0)
    out = {}
    for strategy in ("beam", "iterative"):
        config = KamelConfig(maxgap_m=workload.maxgap_m, imputer=strategy)
        runner = ExperimentRunner(workload)
        scores = runner.run(strategy, kamel_builder(config))
        calls = sum(r.total_model_calls for r in scores.results)
        segments = sum(r.num_segments for r in scores.results)
        out[strategy] = {
            "recall": scores.scores.recall,
            "precision": scores.scores.precision,
            "failure_rate": scores.scores.failure_rate,
            "calls_per_segment": calls / max(1, segments),
        }
    return out


@pytest.fixture(scope="module")
def comparison(bench_scale: Scale):
    return _compare(bench_scale)


def test_beam_vs_iterative_regenerate(benchmark, capsys, bench_scale):
    result = run_once(benchmark, _compare, bench_scale)
    show(
        capsys,
        "Design ablation: multipoint strategy (Section 6)",
        "metric",
        ["recall", "precision", "failure_rate", "calls_per_segment"],
        {
            name: [series[m] for m in ("recall", "precision", "failure_rate", "calls_per_segment")]
            for name, series in result.items()
        },
    )
    assert set(result) == {"beam", "iterative"}


def test_beam_not_worse_than_iterative(comparison):
    assert comparison["beam"]["recall"] >= comparison["iterative"]["recall"] - 0.05
    assert (
        comparison["beam"]["failure_rate"]
        <= comparison["iterative"]["failure_rate"] + 0.05
    )


def test_iterative_is_cheaper(comparison):
    assert (
        comparison["iterative"]["calls_per_segment"]
        < comparison["beam"]["calls_per_segment"]
    )


def test_both_strategies_functional(comparison):
    for series in comparison.values():
        assert series["recall"] > 0.4
        assert series["failure_rate"] < 0.6
