"""Distributed-tracing overhead: the disabled hot path and the per-request
attribution cost.

The serving tier's tracing must be free when off and cheap when on. Off
is the default and rides the perf gate indirectly (the no-op ``span``
singleton adds one branch to every instrumented call — the counting
suite's exact counters would catch anything heavier). This module puts
numbers on the *enabled* machinery the pool pays per completed request:
serializing a worker span tree for the result queue, rebuilding and
clock-shifting it pool-side, the five-stage breakdown, and the flight
recorder's bounded bookkeeping. All are microseconds against a
multi-millisecond imputation — the assertions hold them to that order.
"""

import time

import pytest

from repro.obs.flight import FlightRecord, FlightRecorder, stage_breakdown
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import (
    Span,
    clear_spans,
    disable_tracing,
    enable_tracing,
    finished_spans,
    span,
    trace_scope,
)

from conftest import run_once, show

REQUESTS = 2000
SEGMENTS_PER_REQUEST = 8


def _request_tree(index: int) -> Span:
    """A span tree shaped like one imputed trajectory's."""
    with trace_scope(f"{index:016x}"):
        with span("streaming.process") as root:
            with span("serve.model_load"):
                pass
            for _ in range(SEGMENTS_PER_REQUEST):
                with span("impute.segment"):
                    with span("model.predict"):
                        pass
            with span("detokenize"):
                pass
    return root


def _run():
    # Disabled path: the shared no-op span on a hot loop.
    disable_tracing()
    clear_spans()
    start = time.perf_counter()
    for _ in range(REQUESTS * SEGMENTS_PER_REQUEST):
        with span("impute.segment"):
            pass
    noop_span_ns = (time.perf_counter() - start) / (
        REQUESTS * SEGMENTS_PER_REQUEST
    ) * 1e9

    # Enabled path, measured per stage of the pool's pipeline.
    enable_tracing()
    clear_spans()
    trees = [_request_tree(i) for i in range(REQUESTS)]
    clear_spans()

    start = time.perf_counter()
    wire = [tree.to_dict() for tree in trees]
    serialize_us = (time.perf_counter() - start) / REQUESTS * 1e6

    start = time.perf_counter()
    rebuilt = [Span.from_dict(payload).shift(0.5) for payload in wire]
    rebuild_us = (time.perf_counter() - start) / REQUESTS * 1e6

    start = time.perf_counter()
    breakdowns = [
        stage_breakdown(0.01, 0.001, 0.0005, roots=[tree]) for tree in rebuilt
    ]
    breakdown_us = (time.perf_counter() - start) / REQUESTS * 1e6

    registry = MetricsRegistry()
    recorder = FlightRecorder(capacity=32, registry=registry)
    start = time.perf_counter()
    for index, stages in enumerate(breakdowns):
        recorder.record(
            FlightRecord(
                trace_id=f"{index:016x}",
                traj_id=f"traj-{index}",
                latency_s=sum(stages.values()),
                stages=stages,
                shard=index % 4,
                roots=[rebuilt[index]],
            )
        )
    record_us = (time.perf_counter() - start) / REQUESTS * 1e6
    disable_tracing()
    clear_spans()

    return {
        "noop_span_ns": noop_span_ns,
        "serialize_us": serialize_us,
        "rebuild_shift_us": rebuild_us,
        "stage_breakdown_us": breakdown_us,
        "flight_record_us": record_us,
        "retained": len(recorder),
    }


@pytest.fixture(scope="module")
def tracing_run():
    return _run()


def test_tracing_overhead_regenerate(benchmark, capsys):
    result = run_once(benchmark, _run)
    metrics = [
        "noop_span_ns",
        "serialize_us",
        "rebuild_shift_us",
        "stage_breakdown_us",
        "flight_record_us",
    ]
    show(
        capsys,
        "Serving-tier tracing: disabled-path and per-request attribution cost",
        "metric",
        metrics,
        {"serve_tracing": [result[m] for m in metrics]},
    )
    assert result["retained"] == 32


def test_disabled_span_stays_sub_microsecond(tracing_run):
    # The no-op singleton must stay far below one imputed segment's cost;
    # 5µs is generous even for a loaded CI runner.
    assert tracing_run["noop_span_ns"] < 5_000


def test_attribution_is_microseconds_per_request(tracing_run):
    # Serialize + rebuild + breakdown + record, per request, must stay
    # orders of magnitude under a multi-millisecond imputation.
    total_us = (
        tracing_run["serialize_us"]
        + tracing_run["rebuild_shift_us"]
        + tracing_run["stage_breakdown_us"]
        + tracing_run["flight_record_us"]
    )
    assert total_us < 2_000


def test_tracer_state_restored():
    from repro.obs.tracing import tracing_enabled

    assert not tracing_enabled()
