"""Figure 12-III: impact of grid type (H3-style hexagons vs S2-style squares).

KAMEL is run twice on the same workload, once tokenizing with 75 m
hexagons and once with area-matched 120 m squares. Shape claim (paper
8.5): hexagons win on every metric because all six neighbours of a
hexagonal cell have identical adjacency properties, making transition
patterns easier to learn.
"""

import pytest

from repro.eval.figures import Scale, fig12_grid_type

from conftest import run_once, show


@pytest.fixture(scope="module")
def fig12(bench_scale: Scale):
    return fig12_grid_type(bench_scale)


def test_fig12_grid_type_regenerate(benchmark, capsys, bench_scale):
    result = run_once(benchmark, fig12_grid_type, bench_scale)
    xs = result["sparseness_m"]
    for metric in ("recall", "precision", "failure_rate"):
        show(
            capsys,
            f"Figure 12-III grid type - {metric}",
            "sparse_m",
            xs,
            {v: result["variants"][v][metric] for v in result["variants"]},
        )
    assert result["variants"]


def test_hexagons_at_least_match_squares_on_recall(fig12):
    hexagons = fig12["variants"]["Hexagons"]["recall"]
    squares = fig12["variants"]["Squares"]["recall"]
    assert sum(hexagons) / len(hexagons) >= sum(squares) / len(squares) - 0.05


def test_hexagons_at_least_match_squares_on_precision(fig12):
    """The paper's hexagon advantage comes from BERT learning cleaner
    transition patterns; with the counting backend the two grids end up
    comparable, so the assertion is a comparability band, not dominance
    (the divergence is recorded in EXPERIMENTS.md)."""
    hexagons = fig12["variants"]["Hexagons"]["precision"]
    squares = fig12["variants"]["Squares"]["precision"]
    assert sum(hexagons) / len(hexagons) >= sum(squares) / len(squares) - 0.1


def test_both_grids_functional(fig12):
    for variant in fig12["variants"].values():
        assert all(f < 1.0 for f in variant["failure_rate"])
        assert all(r > 0.2 for r in variant["recall"])
