"""Scalability: imputation cost must not grow with the training corpus.

Paper Section 4.1: "Calling the model does not scan or read any
trajectory data after it has been trained offline, which makes KAMEL
highly scalable." This benchmark trains on increasing corpus sizes and
measures (a) per-trajectory imputation latency — which must stay flat —
and (b) training time — which may grow.
"""

import time

import pytest

from repro.core.config import KamelConfig
from repro.core.kamel import Kamel
from repro.roadnet.datasets import make_porto_like

from conftest import run_once, show

CORPUS_SIZES = (200, 400, 800)
N_QUERIES = 6
SPARSENESS = 800.0


def _measure():
    out = {"corpus": [], "train_s": [], "impute_ms_per_traj": [], "failure": []}
    # One shared city; one held-out query set reused at every size so the
    # imputation work is identical across rows.
    full = make_porto_like(n_trajectories=max(CORPUS_SIZES) + 50)
    queries = [t.sparsify(SPARSENESS) for t in full.trajectories[-N_QUERIES:]]
    pool = full.trajectories[: max(CORPUS_SIZES)]
    for size in CORPUS_SIZES:
        system = Kamel(KamelConfig())
        t0 = time.perf_counter()
        system.fit(list(pool[:size]))
        train_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        results = system.impute_batch(queries)
        impute_s = time.perf_counter() - t0
        out["corpus"].append(size)
        out["train_s"].append(train_s)
        out["impute_ms_per_traj"].append(impute_s / len(queries) * 1000.0)
        out["failure"].append(
            sum(r.num_failed for r in results) / max(1, sum(r.num_segments for r in results))
        )
    return out


@pytest.fixture(scope="module")
def scalability():
    return _measure()


def test_scalability_regenerate(benchmark, capsys):
    result = run_once(benchmark, _measure)
    show(
        capsys,
        "Scalability: imputation latency vs training corpus size (4.1)",
        "corpus",
        result["corpus"],
        {
            "train_s": result["train_s"],
            "impute_ms/traj": result["impute_ms_per_traj"],
            "failure": result["failure"],
        },
    )
    assert len(result["corpus"]) == len(CORPUS_SIZES)


def test_imputation_latency_flat(scalability):
    """4x more training data must not mean 4x slower imputation.

    Latency may wiggle (more models, denser candidate sets); the claim is
    the absence of linear growth."""
    latencies = scalability["impute_ms_per_traj"]
    assert max(latencies) <= 3.0 * min(latencies)


def test_training_time_grows_with_corpus(scalability):
    assert scalability["train_s"][-1] > scalability["train_s"][0]


def test_more_data_never_raises_failure_much(scalability):
    failures = scalability["failure"]
    assert failures[-1] <= failures[0] + 0.1
