"""Tests for the numpy BERT masked LM."""

import numpy as np
import pytest

from repro.errors import ConfigError, NotFittedError
from repro.mlm import BertConfig, BertMaskedLM, BertModel, TrainingConfig
from repro.mlm.bert import _mask_batch


def tiny_config(**overrides) -> BertConfig:
    defaults = dict(vocab_size=24, hidden_size=16, num_layers=1, num_heads=2, max_seq_len=12)
    defaults.update(overrides)
    return BertConfig(**defaults)


def corridor_corpus(n=100, seed=0):
    """Sequences walking a token corridor 3..22 (forward and backward)."""
    rng = np.random.default_rng(seed)
    seqs = []
    for _ in range(n):
        start = int(rng.integers(3, 17))
        run = list(range(start, min(start + 6, 23)))
        seqs.append(run if rng.random() < 0.5 else run[::-1])
    return seqs


class TestConfig:
    def test_vocab_too_small(self):
        with pytest.raises(ConfigError):
            BertConfig(vocab_size=3)

    def test_heads_must_divide_hidden(self):
        with pytest.raises(ConfigError):
            BertConfig(vocab_size=10, hidden_size=10, num_heads=3)

    def test_ffn_defaults_to_4x(self):
        assert tiny_config().ffn_size == 64

    def test_layer_count_validation(self):
        with pytest.raises(ConfigError):
            BertConfig(vocab_size=10, num_layers=0)


class TestModelForward:
    def test_logit_shapes(self):
        model = BertModel(tiny_config())
        logits = model(np.array([[3, 4, 5], [6, 7, 0]]))
        assert logits.shape == (2, 3, 24)

    def test_rejects_overlong_sequence(self):
        model = BertModel(tiny_config(max_seq_len=4))
        with pytest.raises(ConfigError):
            model(np.zeros((1, 5), dtype=int))

    def test_padding_does_not_change_other_positions(self):
        model = BertModel(tiny_config())
        model.eval()
        short = model(np.array([[3, 4, 5]])).data
        padded = model(np.array([[3, 4, 5, 0, 0]])).data
        np.testing.assert_allclose(short[0, :3], padded[0, :3], atol=1e-8)

    def test_deterministic_in_eval_mode(self):
        model = BertModel(tiny_config())
        model.eval()
        ids = np.array([[3, 4, 5, 6]])
        np.testing.assert_allclose(model(ids).data, model(ids).data)

    def test_parameter_count_positive(self):
        assert BertModel(tiny_config()).num_parameters() > 1000


class TestMasking:
    def test_mask_batch_targets(self):
        rng = np.random.default_rng(0)
        batch = np.tile(np.arange(3, 11), (8, 1))
        inputs, targets = _mask_batch(batch, 0.15, 24, rng)
        chosen = targets != -100
        assert chosen.any()
        # Targets carry original tokens at the chosen positions.
        np.testing.assert_array_equal(targets[chosen], batch[chosen])
        # Unchosen positions are untouched in the input.
        np.testing.assert_array_equal(inputs[~chosen], batch[~chosen])

    def test_specials_never_masked(self):
        rng = np.random.default_rng(0)
        batch = np.zeros((4, 6), dtype=np.int64)  # all PAD
        batch[:, 0] = 5
        inputs, targets = _mask_batch(batch, 0.9, 24, rng)
        assert (targets[:, 1:] == -100).all()

    def test_every_row_gets_a_mask(self):
        rng = np.random.default_rng(0)
        batch = np.tile(np.arange(3, 9), (16, 1))
        _, targets = _mask_batch(batch, 0.01, 24, rng)  # tiny prob
        assert ((targets != -100).sum(axis=1) >= 1).all()

    def test_mask_ratio_roughly_respected(self):
        rng = np.random.default_rng(0)
        batch = np.tile(np.arange(3, 23), (200, 1))
        _, targets = _mask_batch(batch, 0.15, 24, rng)
        ratio = (targets != -100).mean()
        assert 0.10 < ratio < 0.20


class TestTraining:
    @pytest.fixture(scope="class")
    def trained(self):
        model = BertMaskedLM(
            tiny_config(hidden_size=32, num_layers=2),
            TrainingConfig(epochs=40, batch_size=16, lr=3e-3, seed=1),
        )
        model.fit(corridor_corpus(), vocab_size=24)
        return model

    def test_loss_decreases(self, trained):
        history = trained.loss_history
        assert history[-1] < history[0] * 0.6

    def test_is_fitted(self, trained):
        assert trained.is_fitted
        assert trained.num_training_tokens > 0

    def test_predict_before_fit_raises(self):
        model = BertMaskedLM(tiny_config())
        with pytest.raises(NotFittedError):
            model.predict_masked([3, 4, 5], 1)

    def test_prediction_learns_corridor(self, trained):
        """Between 7 and 9 the only token ever observed is 8."""
        predictions = trained.predict_masked([6, 7, 0, 9, 10], 2, top_k=3)
        assert predictions[0][0] == 8

    def test_probabilities_valid(self, trained):
        predictions = trained.predict_masked([7, 0, 9], 1, top_k=10)
        probs = [p for _, p in predictions]
        assert probs == sorted(probs, reverse=True)
        assert all(0 < p <= 1 for p in probs)
        assert sum(p for _, p in predictions) <= 1.0 + 1e-9

    def test_no_special_tokens_proposed(self, trained):
        predictions = trained.predict_masked([7, 0, 9], 1, top_k=24)
        assert all(token >= 3 for token, _ in predictions)

    def test_long_sequence_window_clipped(self, trained):
        tokens = list(range(3, 23)) * 2  # longer than max_seq_len
        predictions = trained.predict_masked(tokens, 20, top_k=3)
        assert predictions

    def test_max_steps_stops_early(self):
        model = BertMaskedLM(
            tiny_config(), TrainingConfig(epochs=100, max_steps=3, seed=0)
        )
        model.fit(corridor_corpus(20), vocab_size=24)
        assert len(model.loss_history) == 3

    def test_deferred_config_built_at_fit(self):
        model = BertMaskedLM(training=TrainingConfig(epochs=1, max_steps=2))
        model.fit(corridor_corpus(10), vocab_size=24)
        assert model.model is not None
        assert model.model.config.vocab_size == 24

    def test_vocab_overflow_rejected(self):
        model = BertMaskedLM(tiny_config(vocab_size=10))
        with pytest.raises(ConfigError):
            model.fit(corridor_corpus(5), vocab_size=50)

    def test_empty_training_data(self):
        model = BertMaskedLM(tiny_config(), TrainingConfig(epochs=1))
        model.fit([], vocab_size=24)
        assert not model.is_fitted
