"""Tests for the online imputation service."""

import io
import json
import logging
import urllib.request

import pytest

from repro import Kamel
from repro.core.streaming import StreamingConfig, StreamingImputationService
from repro.errors import NotFittedError
from repro.geo import Point, Trajectory
from repro.obs.logging import ROOT_LOGGER_NAME, configure_logging
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.tracing import clear_spans, disable_tracing, enable_tracing, finished_spans


@pytest.fixture()
def service(trained_kamel):
    return StreamingImputationService(trained_kamel, StreamingConfig())


class TestConstruction:
    def test_requires_fitted_system(self):
        with pytest.raises(NotFittedError):
            StreamingImputationService(Kamel())


class TestHotPath:
    def test_process_counts(self, service, small_split):
        _, test = small_split
        sparse = test[0].sparsify(500.0)
        results = service.process(sparse)
        assert len(results) >= 1
        assert service.stats.trajectories_in == 1
        assert service.stats.trips_out == len(results)
        assert service.stats.points_in == len(sparse)
        assert service.stats.points_out >= len(sparse)
        assert service.stats.processing_seconds > 0.0

    def test_outlier_removed_before_imputation(self, service, small_split):
        _, test = small_split
        base = test[1].sparsify(500.0)
        corrupted = base.with_points(
            list(base.points[:1])
            + [Point(99_999.0, 99_999.0, t=base.points[0].t + 0.1)]
            + list(base.points[1:])
        )
        results = service.process(corrupted)
        for r in results:
            assert all(p.x < 50_000 for p in r.trajectory.points)

    def test_time_gap_splits_into_trips(self, service, small_split):
        _, test = small_split
        a = test[2].sparsify(500.0)
        shifted = [p.with_time(p.t + 10_000.0) for p in test[3].sparsify(500.0).points]
        glued = Trajectory("glued", list(a.points) + shifted)
        results = service.process(glued)
        assert len(results) == 2

    def test_process_stream_lazy(self, service, small_split):
        _, test = small_split
        feed = (t.sparsify(500.0) for t in test[:3])
        stream = service.process_stream(feed)
        first = next(stream)
        assert first is not None
        assert service.stats.trajectories_in == 1

    def test_stats_properties(self, service, small_split):
        _, test = small_split
        for t in test[:3]:
            service.process(t.sparsify(500.0))
        stats = service.stats
        assert 0.0 <= stats.failure_rate <= 1.0
        assert stats.densification_ratio >= 1.0
        assert stats.mean_latency_ms > 0.0

    def test_empty_stats(self, trained_kamel):
        fresh = StreamingImputationService(trained_kamel)
        assert fresh.stats.failure_rate == 0.0
        assert fresh.stats.densification_ratio == 0.0
        assert fresh.stats.mean_latency_ms == 0.0

    def test_smoothing_mode(self, trained_kamel, small_split):
        _, test = small_split
        service = StreamingImputationService(
            trained_kamel, StreamingConfig(smooth=True)
        )
        results = service.process(test[0].sparsify(500.0))
        assert results


class TestTelemetry:
    @pytest.fixture()
    def fresh_registry(self):
        """Isolate monitors/metrics: alerts wire onto the registry current
        at service construction, so each test gets its own."""
        previous = set_registry(MetricsRegistry())
        yield
        set_registry(previous)

    def test_metrics_endpoint_via_config(self, trained_kamel, small_split, fresh_registry):
        _, test = small_split
        with StreamingImputationService(
            trained_kamel, StreamingConfig(metrics_port=0)
        ) as service:
            assert service.metrics_url is not None
            service.process(test[0].sparsify(500.0))
            with urllib.request.urlopen(service.metrics_url + "/metrics", timeout=5) as r:
                body = r.read().decode()
        assert "repro_kamel_failure_rate" in body
        assert "repro_streaming_trajectories_in_total 1" in body
        assert "repro_streaming_process_seconds_count 1" in body

    def test_no_endpoint_by_default(self, trained_kamel):
        service = StreamingImputationService(trained_kamel)
        assert service.metrics_server is None
        assert service.metrics_url is None
        service.close()  # idempotent no-op

    def test_close_stops_the_endpoint(self, trained_kamel, fresh_registry):
        service = StreamingImputationService(
            trained_kamel, StreamingConfig(metrics_port=0)
        )
        url = service.metrics_url
        service.close()
        assert service.metrics_url is None
        with pytest.raises(OSError):
            urllib.request.urlopen(url + "/healthz", timeout=1)

    def test_one_trace_id_spans_the_whole_request(
        self, trained_kamel, small_split, fresh_registry
    ):
        _, test = small_split
        service = StreamingImputationService(trained_kamel)
        enable_tracing()
        clear_spans()
        try:
            service.process(test[0].sparsify(500.0))
        finally:
            roots = finished_spans()
            disable_tracing()
            clear_spans()
        (root,) = roots
        assert root.name == "streaming.process"
        ids = {s.trace_id for s in root.walk()}
        assert len(ids) == 1 and None not in ids, (
            "every span of one process() call must share one trace id"
        )

    def test_warning_logs_carry_the_request_trace_id(
        self, trained_kamel, small_split, fresh_registry
    ):
        """A fallback WARNING emitted deep inside imputation is stamped
        with the same trace id the request's spans carry."""
        _, test = small_split
        stream = io.StringIO()
        configure_logging(level="WARNING", fmt="json", stream=stream, force=True)
        service = StreamingImputationService(trained_kamel)
        enable_tracing()
        clear_spans()
        try:
            # Very sparse input: some segments will exhaust the model
            # budget and log fallback warnings.
            for t in test[:6]:
                service.process(t.sparsify(1200.0))
            roots = finished_spans()
        finally:
            disable_tracing()
            clear_spans()
            root_logger = logging.getLogger(ROOT_LOGGER_NAME)
            for handler in list(root_logger.handlers):
                if getattr(handler, "_repro_structured", False):
                    root_logger.removeHandler(handler)
            root_logger.propagate = True
            root_logger.setLevel(logging.NOTSET)
        span_ids = {root.trace_id for root in roots}
        logged = [json.loads(line) for line in stream.getvalue().splitlines()]
        warnings = [o for o in logged if o["level"] == "WARNING"]
        if not warnings:
            pytest.skip("no fallback warnings fired on this seed")
        for obj in warnings:
            assert obj["trace_id"] in span_ids

    def test_failure_alert_fires_and_marks_degraded(
        self, trained_kamel, small_split, fresh_registry
    ):
        _, test = small_split
        service = StreamingImputationService(
            trained_kamel,
            StreamingConfig(alert_failure_rate=0.0, alert_min_observations=1),
        )
        assert not service.degraded
        # Any failed segment pushes the windowed rate above 0.0. Extremely
        # sparse trips guarantee at least one fallback eventually.
        for t in test[:8]:
            service.process(t.sparsify(1500.0))
            if service.degraded:
                break
        assert service.degraded
        assert "kamel.failure_rate" in service.active_alerts
        from repro.obs.instrument import get_registry

        assert get_registry().get("repro.streaming.alerts_total").value >= 1

    def test_latency_alert_recovers(self, trained_kamel, small_split, fresh_registry):
        from repro.obs import instrument as obs

        service = StreamingImputationService(
            trained_kamel,
            StreamingConfig(alert_latency_s=0.5, alert_min_observations=2),
        )
        latency = obs.monitors().latency
        latency.observe(10.0)
        latency.observe(10.0)
        assert service.degraded
        assert "streaming.process_seconds" in service.active_alerts
        for _ in range(40):
            latency.observe(0.001)
        assert not service.degraded


class TestOfflineEnrichment:
    @pytest.fixture()
    def local_service(self, small_split):
        # A private system: flush_training mutates it, and the session-wide
        # trained_kamel fixture must stay untouched.
        train, _ = small_split
        system = Kamel().fit(train[:15])
        return system, train

    def test_enqueue_flushes_at_batch_size(self, local_service):
        system, train = local_service
        service = StreamingImputationService(
            system, StreamingConfig(training_batch_size=3)
        )
        assert not service.enqueue_for_training(train[20])
        assert not service.enqueue_for_training(train[21])
        assert service.pending_training == 2
        flushed = service.enqueue_for_training(train[22])
        assert flushed
        assert service.pending_training == 0

    def test_manual_flush(self, local_service):
        system, train = local_service
        service = StreamingImputationService(
            system, StreamingConfig(training_batch_size=100)
        )
        service.enqueue_for_training(train[20])
        assert service.flush_training() == 1
        assert service.flush_training() == 0

    def test_flush_grows_training_corpus(self, local_service):
        system, train = local_service
        before = len(system.store)
        service = StreamingImputationService(
            system, StreamingConfig(training_batch_size=100)
        )
        for t in train[20:25]:
            service.enqueue_for_training(t)
        service.flush_training()
        assert len(system.store) == before + 5
