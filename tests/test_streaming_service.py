"""Tests for the online imputation service."""

import pytest

from repro import Kamel
from repro.core.streaming import StreamingConfig, StreamingImputationService
from repro.errors import NotFittedError
from repro.geo import Point, Trajectory


@pytest.fixture()
def service(trained_kamel):
    return StreamingImputationService(trained_kamel, StreamingConfig())


class TestConstruction:
    def test_requires_fitted_system(self):
        with pytest.raises(NotFittedError):
            StreamingImputationService(Kamel())


class TestHotPath:
    def test_process_counts(self, service, small_split):
        _, test = small_split
        sparse = test[0].sparsify(500.0)
        results = service.process(sparse)
        assert len(results) >= 1
        assert service.stats.trajectories_in == 1
        assert service.stats.trips_out == len(results)
        assert service.stats.points_in == len(sparse)
        assert service.stats.points_out >= len(sparse)
        assert service.stats.processing_seconds > 0.0

    def test_outlier_removed_before_imputation(self, service, small_split):
        _, test = small_split
        base = test[1].sparsify(500.0)
        corrupted = base.with_points(
            list(base.points[:1])
            + [Point(99_999.0, 99_999.0, t=base.points[0].t + 0.1)]
            + list(base.points[1:])
        )
        results = service.process(corrupted)
        for r in results:
            assert all(p.x < 50_000 for p in r.trajectory.points)

    def test_time_gap_splits_into_trips(self, service, small_split):
        _, test = small_split
        a = test[2].sparsify(500.0)
        shifted = [p.with_time(p.t + 10_000.0) for p in test[3].sparsify(500.0).points]
        glued = Trajectory("glued", list(a.points) + shifted)
        results = service.process(glued)
        assert len(results) == 2

    def test_process_stream_lazy(self, service, small_split):
        _, test = small_split
        feed = (t.sparsify(500.0) for t in test[:3])
        stream = service.process_stream(feed)
        first = next(stream)
        assert first is not None
        assert service.stats.trajectories_in == 1

    def test_stats_properties(self, service, small_split):
        _, test = small_split
        for t in test[:3]:
            service.process(t.sparsify(500.0))
        stats = service.stats
        assert 0.0 <= stats.failure_rate <= 1.0
        assert stats.densification_ratio >= 1.0
        assert stats.mean_latency_ms > 0.0

    def test_empty_stats(self, trained_kamel):
        fresh = StreamingImputationService(trained_kamel)
        assert fresh.stats.failure_rate == 0.0
        assert fresh.stats.densification_ratio == 0.0
        assert fresh.stats.mean_latency_ms == 0.0

    def test_smoothing_mode(self, trained_kamel, small_split):
        _, test = small_split
        service = StreamingImputationService(
            trained_kamel, StreamingConfig(smooth=True)
        )
        results = service.process(test[0].sparsify(500.0))
        assert results


class TestOfflineEnrichment:
    @pytest.fixture()
    def local_service(self, small_split):
        # A private system: flush_training mutates it, and the session-wide
        # trained_kamel fixture must stay untouched.
        train, _ = small_split
        system = Kamel().fit(train[:15])
        return system, train

    def test_enqueue_flushes_at_batch_size(self, local_service):
        system, train = local_service
        service = StreamingImputationService(
            system, StreamingConfig(training_batch_size=3)
        )
        assert not service.enqueue_for_training(train[20])
        assert not service.enqueue_for_training(train[21])
        assert service.pending_training == 2
        flushed = service.enqueue_for_training(train[22])
        assert flushed
        assert service.pending_training == 0

    def test_manual_flush(self, local_service):
        system, train = local_service
        service = StreamingImputationService(
            system, StreamingConfig(training_batch_size=100)
        )
        service.enqueue_for_training(train[20])
        assert service.flush_training() == 1
        assert service.flush_training() == 0

    def test_flush_grows_training_corpus(self, local_service):
        system, train = local_service
        before = len(system.store)
        service = StreamingImputationService(
            system, StreamingConfig(training_batch_size=100)
        )
        for t in train[20:25]:
            service.enqueue_for_training(t)
        service.flush_training()
        assert len(system.store) == before + 5
