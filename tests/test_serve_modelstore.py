"""ModelStore, the per-worker model LRU, and lazy system restoration.

The serving tier's memory contract is under test: a restored worker
holds O(LRU capacity) parsed models, not the whole pyramid, and lazy
loading changes *when* models are parsed but never *what* the system
imputes — lazy and eager restorations must agree bit-for-bit.

The two-process test is the regression guard for satellite concurrency:
``ModelStore.load`` opens a fresh handle per call, so multiple worker
processes materializing the same models simultaneously must both succeed
and agree with the parent.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.errors import KamelError
from repro.io.serialize import ModelStore, load_kamel, save_kamel
from repro.resilience.journal import trajectory_to_payload
from repro.serve.modelstore import LazyModel, ModelLRU, load_kamel_lazy


@pytest.fixture(scope="module")
def saved_dir(trained_kamel, tmp_path_factory):
    directory = tmp_path_factory.mktemp("serve_model")
    save_kamel(trained_kamel, directory)
    return directory


@pytest.fixture(scope="module")
def sparse_feed(small_split):
    _, test = small_split
    return [t.sparsify(800.0) for t in test[:6]]


class TestModelStore:
    def test_manifest_view(self, saved_dir):
        store = ModelStore(saved_dir)
        assert len(store) > 0
        names = store.file_names()
        assert names == sorted(names)
        for name in names:
            assert name in store
            entry = store.entry(name)
            assert entry["group"] in ("single", "neighbor", "global")
            assert entry["file"] == name

    def test_unknown_file_rejected(self, saved_dir):
        store = ModelStore(saved_dir)
        with pytest.raises(KamelError, match="not in manifest"):
            store.entry("nope.json")
        with pytest.raises(KamelError, match="not in manifest"):
            store.load("nope.json")

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(KamelError, match="manifest"):
            ModelStore(tmp_path)

    def test_load_returns_fresh_fitted_models(self, saved_dir):
        store = ModelStore(saved_dir)
        name = store.file_names()[0]
        first = store.load(name)
        second = store.load(name)
        assert first is not second  # fresh handle and object per call
        assert first.is_fitted

    def test_two_processes_load_concurrently(self, saved_dir, sparse_feed):
        # Two subprocesses restore the same directory at the same time
        # and impute the same feed; both must agree with this process
        # exactly. Regression guard for shared-handle corruption.
        script = (
            "import json, sys\n"
            "from repro.io.serialize import load_kamel\n"
            "from repro.resilience.journal import (\n"
            "    trajectory_from_payload, trajectory_to_payload)\n"
            "system = load_kamel(sys.argv[1])\n"
            "feed = [trajectory_from_payload(p) for p in json.load(open(sys.argv[2]))]\n"
            "out = [trajectory_to_payload(system.impute(t).trajectory) for t in feed]\n"
            "print(json.dumps(out))\n"
        )
        feed_file = saved_dir / "feed.json"
        feed_file.write_text(
            json.dumps([trajectory_to_payload(t) for t in sparse_feed])
        )
        import repro

        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [src_dir, env.get("PYTHONPATH", "")])
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(saved_dir), str(feed_file)],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for _ in range(2)
        ]
        outputs = []
        for proc in procs:
            stdout, stderr = proc.communicate(timeout=300)
            assert proc.returncode == 0, stderr
            outputs.append(json.loads(stdout))
        local_system = load_kamel(saved_dir)
        expected = [
            trajectory_to_payload(local_system.impute(t).trajectory)
            for t in sparse_feed
        ]
        assert outputs[0] == expected
        assert outputs[1] == expected


class TestModelLRU:
    def test_bounded_with_eviction_accounting(self, saved_dir):
        store = ModelStore(saved_dir)
        names = store.file_names()
        assert len(names) >= 3, "fixture system too small to exercise the LRU"
        lru = ModelLRU(store, capacity=2)
        for name in names[:3]:
            lru.get(name)
        assert len(lru) == 2
        assert lru.misses == 3
        assert lru.evictions == 1
        assert lru.resident() == [names[1], names[2]]

    def test_hit_refreshes_recency(self, saved_dir):
        store = ModelStore(saved_dir)
        names = store.file_names()
        lru = ModelLRU(store, capacity=2)
        lru.get(names[0])
        lru.get(names[1])
        lru.get(names[0])  # refresh: names[1] is now the eviction victim
        assert lru.hits == 1
        lru.get(names[2])
        assert names[0] in lru.resident()
        assert names[1] not in lru.resident()

    def test_same_object_on_hit(self, saved_dir):
        lru = ModelLRU(ModelStore(saved_dir), capacity=2)
        name = lru.store.file_names()[0]
        assert lru.get(name) is lru.get(name)

    def test_capacity_validated(self, saved_dir):
        with pytest.raises(ValueError, match="capacity"):
            ModelLRU(ModelStore(saved_dir), capacity=0)


class TestLazyRestore:
    def test_repository_holds_proxies(self, saved_dir):
        system, cache = load_kamel_lazy(saved_dir, lru_capacity=4)
        assert len(cache) == 0  # nothing parsed until first predict
        stored = next(iter(system.repository._single.values()))
        assert isinstance(stored.model, LazyModel)
        assert stored.model.is_fitted

    def test_lazy_fit_is_refused(self, saved_dir):
        system, _ = load_kamel_lazy(saved_dir, lru_capacity=4)
        stored = next(iter(system.repository._single.values()))
        with pytest.raises(NotImplementedError):
            stored.model.fit([], 0)

    def test_lazy_matches_eager_bit_for_bit(self, saved_dir, sparse_feed):
        eager = load_kamel(saved_dir)
        lazy, cache = load_kamel_lazy(saved_dir, lru_capacity=4)
        for trajectory in sparse_feed:
            expected = trajectory_to_payload(eager.impute(trajectory).trajectory)
            actual = trajectory_to_payload(lazy.impute(trajectory).trajectory)
            assert actual == expected
        # The bound held while the models actually used were cached.
        assert len(cache) <= 4
        assert cache.misses >= 1
