"""Tests for the experiment harness, workloads, and segment analysis."""

import pytest

from repro.baselines import LinearImputer
from repro.eval.harness import (
    ExperimentRunner,
    Workload,
    build_workload,
    classify_segments,
    kamel_builder,
    linear_builder,
    score_segments,
    sparsify_indices,
    trimpute_builder,
    _split_by_anchor_points,
)
from repro.geo import Point, Trajectory


def line(tid="t", n=30, spacing=50.0):
    return Trajectory(tid, [Point(i * spacing, 0.0, t=float(i * 5)) for i in range(n)])


class TestSparsifyIndices:
    def test_matches_trajectory_sparsify(self):
        traj = line(n=40)
        kept = sparsify_indices(traj, 500.0)
        via_indices = [traj.points[i] for i in kept]
        assert tuple(via_indices) == traj.sparsify(500.0).points

    def test_endpoints_always_kept(self):
        traj = line(n=40)
        kept = sparsify_indices(traj, 10_000.0)
        assert kept[0] == 0 and kept[-1] == len(traj) - 1

    def test_short_trajectory(self):
        traj = line(n=2)
        assert sparsify_indices(traj, 500.0) == [0, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            sparsify_indices(line(), 0.0)


class TestWorkload:
    def test_build_splits_and_sparsifies(self, small_dataset):
        workload = build_workload(small_dataset, sparse_distance_m=400.0, max_test=4)
        assert len(workload.test_truth) == 4
        assert len(workload.test_sparse) == 4
        for truth, sparse in zip(workload.test_truth, workload.test_sparse):
            assert len(sparse) <= len(truth)

    def test_with_sparseness_changes_only_sparse(self, small_dataset):
        base = build_workload(small_dataset, sparse_distance_m=400.0, max_test=4)
        wider = base.with_sparseness(800.0)
        assert wider.test_truth == base.test_truth
        assert wider.sparse_distance_m == 800.0
        assert sum(len(t) for t in wider.test_sparse) <= sum(
            len(t) for t in base.test_sparse
        )

    def test_with_delta(self, small_dataset):
        base = build_workload(small_dataset, max_test=2)
        assert base.with_delta(25.0).delta_m == 25.0

    def test_with_train(self, small_dataset):
        base = build_workload(small_dataset, max_test=2)
        reduced = base.with_train(base.train[:5])
        assert len(reduced.train) == 5


class TestRunner:
    def test_run_linear(self, small_dataset):
        workload = build_workload(small_dataset, sparse_distance_m=400.0, max_test=3)
        runner = ExperimentRunner(workload)
        scores = runner.run("Linear", linear_builder())
        assert scores.method == "Linear"
        assert scores.scores.failure_rate == 1.0
        assert 0.0 <= scores.scores.recall <= 1.0

    def test_training_cached(self, small_dataset):
        workload = build_workload(small_dataset, sparse_distance_m=400.0, max_test=2)
        runner = ExperimentRunner(workload)
        imputer1, _ = runner.train("TrImpute", trimpute_builder())
        imputer2, _ = runner.train("TrImpute", trimpute_builder())
        assert imputer1 is imputer2

    def test_shared_trained_across_runners(self, small_dataset):
        workload = build_workload(small_dataset, sparse_distance_m=400.0, max_test=2)
        shared: dict = {}
        r1 = ExperimentRunner(workload, trained=shared)
        r1.train("Linear", linear_builder())
        r2 = ExperimentRunner(workload.with_sparseness(600.0), trained=shared)
        imputer, _ = r2.train("Linear", linear_builder())
        assert imputer is shared["Linear"][0]

    def test_kamel_builder_respects_workload_maxgap(self, small_dataset):
        workload = build_workload(
            small_dataset, sparse_distance_m=400.0, maxgap_m=80.0, max_test=1
        )
        system = kamel_builder()(workload)
        assert system.config.maxgap_m == 80.0


class TestSegmentAnalysis:
    def test_split_by_anchor_points(self):
        sparse = Trajectory("s", [Point(0, 0), Point(100, 0), Point(200, 0)])
        imputed = Trajectory(
            "s",
            [
                Point(0, 0),
                Point(50, 0),
                Point(100, 0),
                Point(150, 0),
                Point(200, 0),
            ],
        )
        pieces = _split_by_anchor_points(imputed, sparse)
        assert len(pieces) == 2
        assert [p.x for p in pieces[0]] == [0, 50, 100]
        assert [p.x for p in pieces[1]] == [100, 150, 200]

    def test_classify_straight_vs_curved(self, small_dataset):
        workload = build_workload(small_dataset, sparse_distance_m=400.0, max_test=4)
        imputer = LinearImputer(workload.maxgap_m)
        results = [imputer.impute(t) for t in workload.test_sparse]
        records = classify_segments(workload, results)
        assert records
        assert any(r.straight for r in records) or any(not r.straight for r in records)
        # Record counts match segment counts.
        expected = sum(len(k) - 1 for k in workload.test_kept_indices)
        assert len(records) == expected

    def test_linear_scores_better_on_straight_segments(self, small_dataset):
        """Sanity: straight-line imputation must look better on straight
        segments than on curved ones (the paper's Fig. 12-I/II premise)."""
        workload = build_workload(small_dataset, sparse_distance_m=500.0, max_test=10)
        imputer = LinearImputer(workload.maxgap_m)
        results = [imputer.impute(t) for t in workload.test_sparse]
        records = classify_segments(workload, results)
        straight = score_segments(
            [r for r in records if r.straight], workload.maxgap_m, 25.0
        )
        curved = score_segments(
            [r for r in records if not r.straight], workload.maxgap_m, 25.0
        )
        if straight.num_segments and curved.num_segments:
            assert straight.recall >= curved.recall

    def test_score_segments_empty(self):
        scores = score_segments([], 100.0, 50.0)
        assert scores.recall == 0.0
        assert scores.failure_rate == 0.0
