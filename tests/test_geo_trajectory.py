"""Unit and property tests for repro.geo.trajectory."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import EmptyInputError
from repro.geo import Point, Trajectory


def straight_line(n: int, spacing: float = 100.0, dt: float = 10.0) -> Trajectory:
    return Trajectory(
        "line", [Point(i * spacing, 0.0, t=i * dt) for i in range(n)]
    )


class TestBasics:
    def test_len_iter_getitem(self):
        t = straight_line(5)
        assert len(t) == 5
        assert list(t)[2] == t[2]

    def test_points_coerced_to_tuple(self):
        t = Trajectory("x", [Point(0, 0), Point(1, 1)])
        assert isinstance(t.points, tuple)

    def test_is_empty(self):
        assert Trajectory("e").is_empty
        assert not straight_line(2).is_empty

    def test_length(self):
        assert straight_line(5, spacing=100.0).length == pytest.approx(400.0)

    def test_duration(self):
        assert straight_line(5, dt=10.0).duration == pytest.approx(40.0)

    def test_duration_untimed_is_zero(self):
        t = Trajectory("x", [Point(0, 0), Point(1, 1)])
        assert t.duration == 0.0

    def test_is_time_ordered(self):
        assert straight_line(4).is_time_ordered()
        bad = Trajectory("x", [Point(0, 0, t=1.0), Point(1, 1, t=0.0)])
        assert not bad.is_time_ordered()
        untimed = Trajectory("x", [Point(0, 0), Point(1, 1)])
        assert not untimed.is_time_ordered()

    def test_bbox(self):
        b = straight_line(3, spacing=50.0).bbox()
        assert (b.min_x, b.max_x) == (0.0, 100.0)

    def test_bbox_empty_raises(self):
        with pytest.raises(EmptyInputError):
            Trajectory("e").bbox()

    def test_max_gap(self):
        t = Trajectory("x", [Point(0, 0), Point(50, 0), Point(250, 0)])
        assert t.max_gap() == pytest.approx(200.0)
        assert Trajectory("x", [Point(0, 0)]).max_gap() == 0.0

    def test_segments_count(self):
        assert len(list(straight_line(5).segments())) == 4


class TestSparsify:
    def test_keeps_endpoints(self):
        t = straight_line(20)
        sp = t.sparsify(500.0)
        assert sp.points[0] == t.points[0]
        assert sp.points[-1] == t.points[-1]

    def test_spacing_respected(self):
        sp = straight_line(50, spacing=100.0).sparsify(500.0)
        gaps = [a.distance_to(b) for a, b in sp.segments()]
        assert all(g >= 500.0 for g in gaps[:-1])

    def test_short_trajectory_unchanged(self):
        t = straight_line(2)
        assert t.sparsify(1000.0) is t

    def test_invalid_distance(self):
        with pytest.raises(ValueError):
            straight_line(5).sparsify(0.0)

    @given(st.integers(min_value=3, max_value=60), st.floats(min_value=50, max_value=2000))
    def test_sparsified_is_subsequence(self, n, dist):
        t = straight_line(n)
        sp = t.sparsify(dist)
        it = iter(t.points)
        assert all(p in it for p in sp.points)  # order-preserving subsequence


class TestDiscretize:
    def test_spacing(self):
        pts = straight_line(11, spacing=100.0).discretize(100.0)
        xs = [p.x for p in pts]
        assert xs == pytest.approx(list(range(0, 1001, 100)))

    def test_includes_final_point(self):
        pts = straight_line(3, spacing=100.0).discretize(70.0)
        assert pts[-1].x == pytest.approx(200.0)

    def test_single_point(self):
        pts = Trajectory("x", [Point(5, 5)]).discretize(10.0)
        assert len(pts) == 1

    def test_interpolates_timestamps(self):
        pts = straight_line(2, spacing=100.0, dt=10.0).discretize(50.0)
        assert [p.t for p in pts] == pytest.approx([0.0, 5.0, 10.0])

    def test_invalid_spacing(self):
        with pytest.raises(ValueError):
            straight_line(3).discretize(-1.0)

    @given(st.floats(min_value=10.0, max_value=500.0))
    def test_consecutive_spacing_bounded(self, spacing):
        pts = straight_line(10, spacing=100.0).discretize(spacing)
        for a, b in zip(pts, pts[1:]):
            assert a.distance_to(b) <= spacing + 1e-9

    def test_zero_length_segments_skipped(self):
        t = Trajectory("x", [Point(0, 0), Point(0, 0), Point(100, 0)])
        pts = t.discretize(50.0)
        assert [p.x for p in pts] == pytest.approx([0.0, 50.0, 100.0])


class TestResampleTime:
    def test_downsamples(self):
        t = straight_line(21, dt=1.0)
        r = t.resample_time(5.0)
        assert len(r) < len(t)
        deltas = [b.t - a.t for a, b in r.segments()]
        assert all(d >= 5.0 for d in deltas[:-1])

    def test_keeps_endpoints(self):
        t = straight_line(21, dt=1.0)
        r = t.resample_time(7.0)
        assert r.points[0] == t.points[0] and r.points[-1] == t.points[-1]

    def test_untimed_passthrough(self):
        t = Trajectory("x", [Point(0, 0), Point(1, 1), Point(2, 2)])
        assert t.resample_time(5.0) is t

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            straight_line(5).resample_time(0.0)


class TestSplit:
    def test_no_split_needed(self):
        t = straight_line(5)
        assert t.split(10) == [t]

    def test_chunks_share_boundary(self):
        t = straight_line(10)
        chunks = t.split(4)
        for a, b in zip(chunks, chunks[1:]):
            assert a.points[-1] == b.points[0]

    def test_all_points_covered(self):
        t = straight_line(11)
        chunks = t.split(3)
        total = sum(len(c) for c in chunks) - (len(chunks) - 1)  # dedupe joints
        assert total == len(t)

    def test_invalid_max_points(self):
        with pytest.raises(ValueError):
            straight_line(5).split(1)

    def test_with_points(self):
        t = straight_line(3)
        replaced = t.with_points([Point(9, 9)])
        assert len(replaced) == 1 and replaced.traj_id == t.traj_id
