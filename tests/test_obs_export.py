"""Unit tests for repro.obs.export: Prometheus exposition and trace files.

The Prometheus checks pin down the exposition-format contract (name
mangling, HELP escaping, cumulative ``le`` buckets); the Chrome-trace
checks validate the structural properties Perfetto needs (complete
events with ``ph``/``ts``/``dur``, children nested inside parents on the
same lane).
"""

import json
import math

import pytest

from repro.obs.export import (
    CONTENT_TYPE_PROMETHEUS,
    chrome_trace_json,
    prometheus_name,
    render_prometheus,
    spans_to_chrome_trace,
    spans_to_jsonl,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import (
    clear_spans,
    disable_tracing,
    enable_tracing,
    finished_spans,
    span,
    trace_scope,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


@pytest.fixture()
def traced():
    enable_tracing()
    clear_spans()
    yield
    disable_tracing()
    clear_spans()


class TestPrometheusNames:
    def test_dots_become_underscores(self):
        assert prometheus_name("repro.kamel.failure_rate") == "repro_kamel_failure_rate"

    def test_invalid_chars_and_leading_digit(self):
        assert prometheus_name("a-b c/d") == "a_b_c_d"
        assert prometheus_name("2fast") == "_2fast"

    def test_colons_survive(self):
        assert prometheus_name("job:rate") == "job:rate"


class TestRenderPrometheus:
    def test_empty_registry_renders_empty(self, registry):
        assert render_prometheus(registry) == ""

    def test_counter_and_gauge_families(self, registry):
        registry.counter("repro.kamel.trajectories_total", "Trajectories imputed.").inc(7)
        registry.gauge("repro.kamel.failure_rate", "Windowed rate.").set(0.25)
        text = render_prometheus(registry)
        assert "# HELP repro_kamel_trajectories_total Trajectories imputed." in text
        assert "# TYPE repro_kamel_trajectories_total counter" in text
        assert "repro_kamel_trajectories_total 7" in text
        assert "# TYPE repro_kamel_failure_rate gauge" in text
        assert "repro_kamel_failure_rate 0.25" in text
        assert text.endswith("\n")

    def test_help_escaping(self, registry):
        registry.counter("repro.x_total", "line one\nback\\slash").inc()
        text = render_prometheus(registry)
        assert "# HELP repro_x_total line one\\nback\\\\slash" in text

    def test_histogram_buckets_are_cumulative_and_monotone(self, registry):
        histogram = registry.histogram(
            "repro.kamel.impute_seconds", "Wall time.", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        text = render_prometheus(registry)
        counts = []
        for line in text.splitlines():
            if line.startswith("repro_kamel_impute_seconds_bucket"):
                counts.append(int(line.rsplit(" ", 1)[1]))
        assert counts == sorted(counts), "le buckets must be cumulative"
        assert counts[-1] == 5, "+Inf bucket must equal the observation count"
        assert 'le="+Inf"' in text
        assert "repro_kamel_impute_seconds_count 5" in text
        assert "repro_kamel_impute_seconds_sum" in text

    def test_histogram_quantiles_render_as_separate_gauge_family(self, registry):
        histogram = registry.histogram("repro.y_seconds", "y")
        for value in range(1, 101):
            histogram.observe(value / 100.0)
        text = render_prometheus(registry)
        assert "# TYPE repro_y_seconds_quantile gauge" in text
        assert 'repro_y_seconds_quantile{quantile="0.5"}' in text
        assert 'repro_y_seconds_quantile{quantile="0.99"}' in text

    def test_empty_histogram_has_no_quantile_lines(self, registry):
        registry.histogram("repro.z_seconds", "z")
        text = render_prometheus(registry)
        assert "_quantile" not in text
        assert "repro_z_seconds_count 0" in text

    def test_every_line_is_valid_exposition(self, registry):
        """Each non-comment line: <name>[{labels}] <float>."""
        registry.counter("repro.a_total", "a").inc(2)
        registry.histogram("repro.b_seconds", "b").observe(0.5)
        registry.gauge("repro.c", "c").set(-1.5)
        for line in render_prometheus(registry).splitlines():
            if not line or line.startswith("#"):
                continue
            name_part, value_part = line.rsplit(" ", 1)
            float(value_part.replace("+Inf", "inf"))  # parses as a number
            bare = name_part.split("{", 1)[0]
            assert prometheus_name(bare) == bare

    def test_content_type_constant(self):
        assert CONTENT_TYPE_PROMETHEUS.startswith("text/plain; version=0.0.4")


def _nested_run():
    with span("streaming.process", points=9):
        with span("impute.trajectory"):
            with span("impute.segment", strategy="beam"):
                pass
        with span("impute.trajectory"):
            pass


class TestChromeTrace:
    def test_document_shape(self, traced):
        with trace_scope("feedbeefcafe0123"):
            _nested_run()
        doc = spans_to_chrome_trace(finished_spans())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        events = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert len(events) == 4
        for event in events:
            assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(event)
            assert event["ts"] >= 0
            assert event["dur"] >= 0

    def test_children_nest_inside_parents(self, traced):
        _nested_run()
        events = [
            e for e in spans_to_chrome_trace(finished_spans())["traceEvents"]
            if e.get("ph") == "X"
        ]
        by_name = {e["name"]: e for e in events}
        root = by_name["streaming.process"]
        for event in events:
            if event is root:
                continue
            assert event["tid"] == root["tid"]
            assert event["ts"] >= root["ts"]
            assert event["ts"] + event["dur"] <= root["ts"] + root["dur"] + 1e-6

    def test_trace_id_and_attributes_in_args(self, traced):
        with trace_scope("0123456789abcdef"):
            _nested_run()
        events = [
            e for e in spans_to_chrome_trace(finished_spans())["traceEvents"]
            if e.get("ph") == "X"
        ]
        assert all(e["args"]["trace_id"] == "0123456789abcdef" for e in events)
        beam = [e for e in events if e["name"] == "impute.segment"]
        assert beam[0]["args"]["strategy"] == "beam"

    def test_json_round_trip_and_file(self, traced, tmp_path):
        _nested_run()
        parsed = json.loads(chrome_trace_json(finished_spans()))
        assert isinstance(parsed["traceEvents"], list)
        path = tmp_path / "trace.json"
        write_chrome_trace(path, finished_spans())
        assert json.loads(path.read_text())["displayTimeUnit"] == "ms"

    def test_empty_input(self):
        doc = spans_to_chrome_trace([])
        assert [e["ph"] for e in doc["traceEvents"]] == ["M"]

    def test_error_spans_carry_the_exception_type(self, traced):
        with pytest.raises(ValueError):
            with span("boom"):
                raise ValueError("x")
        events = spans_to_chrome_trace(finished_spans())["traceEvents"]
        assert events[-1]["args"]["error"] == "ValueError"


class TestJsonl:
    def test_one_tree_per_line(self, traced, tmp_path):
        with trace_scope("aaaabbbbccccdddd"):
            _nested_run()
            _nested_run()
        text = spans_to_jsonl(finished_spans())
        lines = text.strip().splitlines()
        assert len(lines) == 2
        for line in lines:
            tree = json.loads(line)
            assert tree["name"] == "streaming.process"
            assert tree["trace_id"] == "aaaabbbbccccdddd"
            assert len(tree["children"]) == 2
        path = tmp_path / "spans.jsonl"
        write_spans_jsonl(path, finished_spans())
        assert path.read_text() == text

    def test_empty(self):
        assert spans_to_jsonl([]) == ""
