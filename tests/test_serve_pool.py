"""The sharded serving pool and its fleet-wide telemetry.

End-to-end property: a 2-worker pool over a saved system produces
byte-identical outputs to the single-process streaming service on the
same feed — sharding is a deployment choice, not a semantic one. The
telemetry half (snapshot merging, Prometheus rendering, the aggregated
/metrics + /healthz endpoint) is tested at unit scale where possible so
the expensive multiprocess test runs once.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.core.streaming import StreamingConfig, StreamingImputationService
from repro.errors import ConfigError
from repro.io.serialize import load_kamel, save_kamel
from repro.obs.metrics import MetricsRegistry, get_registry, merge_snapshots
from repro.obs.export import render_prometheus_snapshot
from repro.resilience.journal import trajectory_to_payload
from repro.serve import ServeConfig, ServingPool
from repro.serve.aggregate import PoolMetricsServer, render_pool_metrics


@pytest.fixture(scope="module")
def saved_dir(trained_kamel, tmp_path_factory):
    directory = tmp_path_factory.mktemp("pool_model")
    save_kamel(trained_kamel, directory)
    return directory


@pytest.fixture(scope="module")
def sparse_feed(small_split):
    _, test = small_split
    return [t.sparsify(800.0) for t in test[:10]]


@pytest.fixture(scope="module")
def baseline(saved_dir, sparse_feed):
    system = load_kamel(saved_dir)
    service = StreamingImputationService(system, StreamingConfig())
    return {
        t.traj_id: [trajectory_to_payload(r.trajectory) for r in service.process(t)]
        for t in sparse_feed
    }


class TestMergeSnapshots:
    def _registry(self, counter, gauge, observations):
        registry = MetricsRegistry()
        registry.counter("repro.test.ops_total", "x").inc(counter)
        registry.gauge("repro.test.depth", "x").set(gauge)
        histogram = registry.histogram("repro.test.seconds", "x")
        for value in observations:
            histogram.observe(value)
        return registry.snapshot()

    def test_counters_and_gauges_sum(self):
        merged = merge_snapshots(
            [self._registry(2, 1.0, [0.1]), self._registry(3, 4.0, [0.2])]
        )
        assert merged["repro.test.ops_total"]["value"] == 5.0
        assert merged["repro.test.depth"]["value"] == 5.0

    def test_rate_gauges_average(self):
        a = MetricsRegistry()
        a.gauge("repro.test.failure_rate", "x").set(0.2)
        b = MetricsRegistry()
        b.gauge("repro.test.failure_rate", "x").set(0.4)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["repro.test.failure_rate"]["value"] == pytest.approx(0.3)

    def test_histograms_accumulate(self):
        merged = merge_snapshots(
            [
                self._registry(0, 0, [0.1, 0.2]),
                self._registry(0, 0, [0.9, 1.8]),
            ]
        )
        data = merged["repro.test.seconds"]
        assert data["count"] == 4
        assert data["sum"] == pytest.approx(3.0)
        assert data["min"] == pytest.approx(0.1)
        assert data["max"] == pytest.approx(1.8)
        assert data["buckets"]["+Inf"] == 4
        assert data["buckets"]["0.25"] == 2
        # Quantiles are re-derived from merged buckets: the median must
        # land between the two clusters, not inside either input's.
        assert 0.2 <= data["quantiles"]["p50"] <= 1.0

    def test_disjoint_names_union(self):
        a = MetricsRegistry()
        a.counter("repro.test.only_a_total", "x").inc(1)
        b = MetricsRegistry()
        b.counter("repro.test.only_b_total", "x").inc(2)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["repro.test.only_a_total"]["value"] == 1.0
        assert merged["repro.test.only_b_total"]["value"] == 2.0

    def test_type_conflict_rejected(self):
        a = MetricsRegistry()
        a.counter("repro.test.thing", "x").inc(1)
        b = MetricsRegistry()
        b.gauge("repro.test.thing", "x").set(1.0)
        with pytest.raises(ValueError, match="in one snapshot"):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_empty_input(self):
        assert merge_snapshots([]) == {}

    def test_empty_worker_snapshot_is_identity(self):
        # A worker that died before measuring anything ships {} — merging
        # it must not perturb the others' values.
        alone = merge_snapshots([self._registry(2, 1.0, [0.1])])
        with_empty = merge_snapshots([{}, self._registry(2, 1.0, [0.1]), {}])
        assert with_empty == alone

    def test_disjoint_histogram_buckets_union(self):
        # Two workers built the same histogram with different bucket
        # edges (a config skew mid-rollout): the merge must keep the
        # union of edges with each side's counts on its own edges.
        a = MetricsRegistry()
        a.histogram("repro.test.skewed_seconds", "x", buckets=(0.1, 1.0)).observe(0.05)
        b = MetricsRegistry()
        b.histogram("repro.test.skewed_seconds", "x", buckets=(0.5, 2.0)).observe(1.5)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        data = merged["repro.test.skewed_seconds"]
        assert data["count"] == 2
        assert data["sum"] == pytest.approx(1.55)
        buckets = data["buckets"]
        assert {"0.1", "0.5", "1.0", "2.0", "+Inf"} <= set(buckets)
        assert buckets["+Inf"] == 2
        assert buckets["0.1"] == 1  # only a's observation is under 0.1

    def test_counter_missing_from_one_worker(self):
        # A counter only some workers ever incremented still sums over
        # the workers that have it.
        a = MetricsRegistry()
        a.counter("repro.test.rare_total", "x").inc(3)
        b = MetricsRegistry()
        b.counter("repro.test.other_total", "x").inc(1)
        c = MetricsRegistry()
        c.counter("repro.test.rare_total", "x").inc(4)
        merged = merge_snapshots([a.snapshot(), b.snapshot(), c.snapshot()])
        assert merged["repro.test.rare_total"]["value"] == 7.0
        assert merged["repro.test.other_total"]["value"] == 1.0


class TestRenderPrometheusSnapshot:
    def _snapshot(self):
        registry = MetricsRegistry()
        registry.counter("repro.test.ops_total", "x").inc(7)
        registry.histogram("repro.test.seconds", "x").observe(0.05)
        return registry.snapshot()

    def test_renders_families(self):
        body = render_prometheus_snapshot(self._snapshot())
        assert "repro_test_ops_total 7" in body
        assert "# TYPE repro_test_ops_total counter" in body
        assert 'repro_test_seconds_bucket{le="+Inf"} 1' in body
        assert "repro_test_seconds_count 1" in body
        assert body.endswith("\n")

    def test_labels_applied_to_every_sample(self):
        body = render_prometheus_snapshot(self._snapshot(), labels={"worker": "3"})
        assert 'repro_test_ops_total{worker="3"} 7' in body
        assert 'le="+Inf",worker="3"' in body or 'worker="3",le="+Inf"' in body

    def test_exclude(self):
        body = render_prometheus_snapshot(
            self._snapshot(), exclude=("repro.test.ops_total",)
        )
        assert "ops_total" not in body
        assert "repro_test_seconds_count" in body


class TestServingPool:
    @pytest.fixture(scope="class")
    def pooled(self, saved_dir, sparse_feed, tmp_path_factory):
        """One 2-worker run shared by every assertion in this class."""
        get_registry().reset(prefix="repro.serve")
        journal_dir = tmp_path_factory.mktemp("pool_journal")
        config = ServeConfig(
            workers=2,
            journal_dir=str(journal_dir),
            metrics_port=0,
            metrics_every=3,
        )
        pool = ServingPool(str(saved_dir), config)
        with pool:
            url = pool.metrics_server.url
            healthz_live = json.loads(
                urllib.request.urlopen(url + "/healthz", timeout=5).read()
            )
            results = pool.process_all(sparse_feed, timeout=120)
            metrics_live = (
                urllib.request.urlopen(url + "/metrics", timeout=5).read().decode()
            )
        return pool, results, healthz_live, metrics_live

    def test_matches_single_process_bit_for_bit(self, pooled, baseline):
        _, results, _, _ = pooled
        assert set(results) == set(baseline)
        for traj_id, expected in baseline.items():
            assert results[traj_id]["trips"] == expected

    def test_accounting(self, pooled, sparse_feed):
        pool, results, _, _ = pooled
        assert pool.stats.submitted == len(sparse_feed)
        assert pool.stats.completed == len(sparse_feed)
        assert pool.stats.lost == 0
        assert pool.stats.duplicates == 0
        assert pool.stats.worker_deaths == 0
        assert sum(pool.worker_processed.values()) == len(sparse_feed)
        assert pool.stats.segments == sum(r["segments"] for r in results.values())

    def test_healthz_document(self, pooled):
        _, _, healthz, _ = pooled
        assert healthz["status"] == "ok"
        assert healthz["strategy"] == "hash"
        assert len(healthz["workers"]) == 2
        assert all(w["alive"] for w in healthz["workers"])

    def test_live_metrics_exposition(self, pooled):
        _, _, _, metrics = pooled
        assert "repro_serve_submitted_total" in metrics

    def test_merged_snapshot_includes_worker_registries(self, pooled, sparse_feed):
        pool, _, _, _ = pooled
        merged = pool.merged_snapshot()
        # The parent counted submissions; the workers counted processing.
        assert merged["repro.serve.submitted_total"]["value"] == len(sparse_feed)
        assert merged["repro.serve.worker.trajectories_total"]["value"] == len(
            sparse_feed
        )
        assert merged["repro.serve.model_lru.misses_total"]["value"] >= 1

    def test_rendered_pool_metrics_have_per_worker_labels(self, pooled):
        pool, _, _, _ = pooled
        body = render_pool_metrics(pool)
        # The per-worker counter appears only in labeled form.
        assert 'repro_serve_worker_trajectories_total{worker="0"}' in body
        assert 'repro_serve_worker_trajectories_total{worker="1"}' in body
        assert "\nrepro_serve_worker_trajectories_total " not in body

    def test_lru_stats_collected_at_shutdown(self, pooled):
        pool, _, _, _ = pooled
        assert set(pool.worker_lru) == {0, 1}
        for stats in pool.worker_lru.values():
            assert stats["misses"] >= 1
            assert stats["resident"] <= stats["capacity"]

    def test_submit_before_start_rejected(self, saved_dir, sparse_feed):
        pool = ServingPool(str(saved_dir), ServeConfig(workers=1))
        with pytest.raises(ConfigError, match="not started"):
            pool.submit(sparse_feed[0])

    def test_worker_count_validated(self):
        with pytest.raises(ConfigError, match="workers"):
            ServeConfig(workers=0)


class TestPoolMetricsServerStub:
    class _StubPool:
        def __init__(self):
            registry = MetricsRegistry()
            registry.counter("repro.serve.results_total", "x").inc(4)
            self._snapshot = registry.snapshot()
            self.worker_processed = {0: 3, 1: 1}

        def merged_snapshot(self):
            return self._snapshot

        def healthz(self):
            return {"status": "ok", "workers": []}

    def test_routes(self):
        with PoolMetricsServer(self._StubPool(), port=0) as server:
            body = (
                urllib.request.urlopen(server.url + "/metrics", timeout=5)
                .read()
                .decode()
            )
            assert "repro_serve_results_total 4" in body
            assert 'repro_serve_worker_trajectories_total{worker="0"} 3' in body
            health = json.loads(
                urllib.request.urlopen(server.url + "/healthz", timeout=5).read()
            )
            assert health["status"] == "ok"
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(server.url + "/nope", timeout=5)

    def test_lifecycle(self):
        server = PoolMetricsServer(self._StubPool(), port=0)
        assert not server.running
        server.start()
        assert server.running and server.port > 0
        server.stop()
        assert not server.running
