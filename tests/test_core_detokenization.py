"""Tests for the detokenization module (paper Section 7)."""

import math

import pytest

from repro.core.config import KamelConfig
from repro.core.detokenization import Detokenizer, _circular_mean, _point_directions
from repro.core.tokenization import Tokenizer
from repro.geo import Point, Trajectory
from repro.grid import HexGrid

import numpy as np


@pytest.fixture()
def tokenizer():
    return Tokenizer(HexGrid(75.0))


def horizontal_traj(tid, y, n=40, step=10.0, reverse=False):
    pts = [Point(i * step, y, t=float(i)) for i in range(n)]
    if reverse:
        pts = [Point(p.x, p.y, t=float(i)) for i, p in enumerate(reversed(pts))]
    return Trajectory(tid, pts)


def vertical_traj(tid, x, n=40, step=10.0):
    return Trajectory(tid, [Point(x, i * step, t=float(i)) for i in range(n)])


class TestHelpers:
    def test_point_directions_east(self):
        dirs = _point_directions(horizontal_traj("t", 0.0, n=5))
        assert all(abs(d) < 1e-9 for _, d in dirs)

    def test_point_directions_too_short(self):
        assert _point_directions(Trajectory("t", [Point(0, 0)])) == []

    def test_circular_mean_wraps(self):
        angles = np.array([math.pi - 0.1, -math.pi + 0.1])
        mean = _circular_mean(angles)
        assert abs(abs(mean) - math.pi) < 0.2


class TestFit:
    def test_cells_populated(self, tokenizer):
        detok = Detokenizer(tokenizer, KamelConfig()).fit([horizontal_traj("a", 0.0)])
        assert detok.num_cells > 0

    def test_crossing_roads_make_two_clusters(self, tokenizer):
        """A cell where a horizontal and a vertical road cross must get
        (at least) two directional clusters (Figure 8a)."""
        config = KamelConfig()
        trajs = [horizontal_traj(f"h{i}", 0.0 + i) for i in range(3)] + [
            vertical_traj(f"v{i}", 0.0 + i) for i in range(3)
        ]
        detok = Detokenizer(tokenizer, config).fit(trajs)
        crossing_cell = tokenizer.grid.cell_of(Point(0.0, 0.0))
        info = detok.cell_info(crossing_cell)
        assert len(info.clusters) >= 2
        directions = sorted(abs(c.direction) for c in info.clusters)
        # One cluster ~eastward (0), one ~northward (pi/2).
        assert directions[0] < 0.5
        assert any(abs(d - math.pi / 2) < 0.5 for d in directions)

    def test_sparse_cell_no_clusters(self, tokenizer):
        config = KamelConfig(dbscan_min_samples=10)
        traj = Trajectory("tiny", [Point(0, 0, t=0.0), Point(30, 0, t=3.0)])
        detok = Detokenizer(tokenizer, config).fit([traj])
        info = detok.cell_info(tokenizer.grid.cell_of(Point(0, 0)))
        assert info.clusters == ()
        assert info.data_centroid is not None


class TestOnline:
    def test_unknown_cell_falls_back_to_hexagon_centroid(self, tokenizer):
        detok = Detokenizer(tokenizer, KamelConfig())
        cell = tokenizer.grid.cell_of(Point(5000, 5000))
        token = tokenizer.vocabulary.add(cell)
        point = detok.point_for_token(token, None, None)
        assert point == tokenizer.grid.centroid(cell)

    def test_single_cluster_uses_its_centroid(self, tokenizer):
        detok = Detokenizer(tokenizer, KamelConfig()).fit([horizontal_traj("a", 20.0)])
        cell = tokenizer.grid.cell_of(Point(0, 20.0))
        token = tokenizer.vocabulary.add(cell)
        point = detok.point_for_token(token, None, None)
        assert abs(point.y - 20.0) < 10.0  # near the road, not the cell centroid

    def test_direction_picks_matching_cluster(self, tokenizer):
        trajs = [horizontal_traj(f"h{i}", 0.0 + i) for i in range(3)] + [
            vertical_traj(f"v{i}", 0.0 + i) for i in range(3)
        ]
        detok = Detokenizer(tokenizer, KamelConfig()).fit(trajs)
        cell = tokenizer.grid.cell_of(Point(0, 0))
        token = tokenizer.vocabulary.add(cell)
        centroid = tokenizer.grid.centroid(cell)
        # Travelling east: incoming from the west, heading further east.
        east_point = detok.point_for_token(
            token, centroid.offset(-200, 0), centroid.offset(200, 0)
        )
        # Travelling north.
        north_point = detok.point_for_token(
            token, centroid.offset(0, -200), centroid.offset(0, 200)
        )
        # The eastbound pick lies on the horizontal road (y ~ 0-3), the
        # northbound pick on the vertical road (x ~ 0-3).
        assert abs(east_point.y) < 15.0
        assert abs(north_point.x) < 15.0

    def test_no_direction_context_uses_biggest_cluster(self, tokenizer):
        trajs = [horizontal_traj(f"h{i}", 0.0 + i) for i in range(4)] + [
            vertical_traj("v0", 0.0)
        ]
        detok = Detokenizer(tokenizer, KamelConfig()).fit(trajs)
        cell = tokenizer.grid.cell_of(Point(0, 0))
        token = tokenizer.vocabulary.add(cell)
        point = detok.point_for_token(token, None, None)
        info = detok.cell_info(cell)
        if len(info.clusters) >= 2:
            biggest = max(info.clusters, key=lambda c: c.size)
            assert point == biggest.centroid

    def test_detokenize_interior_order_and_length(self, tokenizer):
        detok = Detokenizer(tokenizer, KamelConfig()).fit(
            [horizontal_traj("a", 0.0, n=100, step=10.0)]
        )
        cells = [tokenizer.grid.cell_of(Point(x, 0.0)) for x in (130.0, 260.0, 390.0)]
        tokens = [tokenizer.vocabulary.add(c) for c in cells]
        pts = detok.detokenize_interior(tokens, Point(0, 0), Point(520, 0))
        assert len(pts) == 3
        xs = [p.x for p in pts]
        assert xs == sorted(xs)  # walking east

    def test_detokenize_empty(self, tokenizer):
        detok = Detokenizer(tokenizer, KamelConfig())
        assert detok.detokenize_interior([], Point(0, 0), Point(1, 1)) == []
