"""Tests for the map-inference substrate and its evaluation."""

import pytest

from repro.errors import ConfigError, EmptyInputError
from repro.geo import Point, Trajectory
from repro.mapinference import (
    InferredMap,
    MapInferenceConfig,
    TrajectoryMapInference,
    evaluate_inferred_map,
)
from repro.roadnet.network import RoadNetwork


def road_trajectories(n=5, y_jitter=3.0):
    """n trips along the horizontal road y=0, x in [0, 1000]."""
    return [
        Trajectory(
            f"t{k}",
            [Point(x, (k % 3 - 1) * y_jitter, t=float(x)) for x in range(0, 1001, 20)],
        )
        for k in range(n)
    ]


@pytest.fixture()
def straight_network():
    net = RoadNetwork()
    net.add_node("a", Point(0, 0))
    net.add_node("b", Point(1000, 0))
    net.add_edge("a", "b")
    return net


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            MapInferenceConfig(cell_m=0.0)
        with pytest.raises(ConfigError):
            MapInferenceConfig(min_visits=0)
        with pytest.raises(ConfigError):
            MapInferenceConfig(rasterize_step_m=-1.0)


class TestInference:
    def test_empty_input_rejected(self):
        with pytest.raises(EmptyInputError):
            TrajectoryMapInference().infer([])

    def test_cells_along_road(self):
        inferred = TrajectoryMapInference().infer(road_trajectories())
        assert inferred.num_cells >= 40  # 1000 m / 25 m cells
        for cell in inferred.occupied_cells(2):
            center = inferred.cell_center(cell)
            assert abs(center.y) < 40.0  # all cells hug the road

    def test_each_trajectory_votes_once_per_cell(self):
        # One trajectory crossing a cell many times still counts once.
        zigzag = Trajectory(
            "zig",
            [Point(5.0 + (i % 2), 5.0 + (i % 2), t=float(i)) for i in range(10)],
        )
        inferred = TrajectoryMapInference().infer([zigzag])
        assert max(
            inferred.visit_count(c) for c in inferred.occupied_cells(1)
        ) == 1

    def test_min_visits_threshold_filters_noise(self):
        trips = road_trajectories(4)
        outlier = Trajectory("o", [Point(500, 500, t=0.0), Point(520, 500, t=2.0)])
        inferred = TrajectoryMapInference().infer(trips + [outlier])
        all_cells = inferred.occupied_cells(1)
        supported = inferred.occupied_cells(2)
        assert supported < all_cells  # the outlier's cells drop out

    def test_rasterization_connects_sparse_points(self):
        """The chord between far-apart points is rasterized — the failure
        mode that motivates imputation."""
        sparse = Trajectory("s", [Point(0, 0, t=0.0), Point(1000, 1000, t=100.0)])
        inferred = TrajectoryMapInference().infer([sparse])
        diagonal_cell = inferred.cell_center(min(inferred.occupied_cells(1)))
        assert inferred.num_cells > 30  # the whole diagonal chord
        del diagonal_cell

    def test_to_graph_connected_along_road(self):
        inferred = TrajectoryMapInference().infer(road_trajectories())
        graph = inferred.to_graph(min_visits=2)
        import networkx as nx

        assert graph.number_of_nodes() > 0
        assert nx.number_connected_components(graph) <= 2

    def test_total_road_length(self):
        inferred = TrajectoryMapInference().infer(road_trajectories())
        length = inferred.total_road_length_m(min_visits=2)
        assert 700.0 <= length <= 2500.0  # jittered trips occupy ~2 cell rows


class TestEvaluation:
    def test_perfect_inference_scores_high(self, straight_network):
        inferred = TrajectoryMapInference().infer(road_trajectories())
        scores = evaluate_inferred_map(inferred, straight_network)
        assert scores.recall > 0.9
        assert scores.precision > 0.9
        assert scores.f1 > 0.9

    def test_hallucinated_roads_hurt_precision(self, straight_network):
        trips = road_trajectories(3)
        ghosts = [
            Trajectory(
                f"g{k}", [Point(x, 500.0, t=float(x)) for x in range(0, 1001, 20)]
            )
            for k in range(3)
        ]
        inferred = TrajectoryMapInference().infer(trips + ghosts)
        scores = evaluate_inferred_map(inferred, straight_network)
        assert scores.precision < 0.7
        assert scores.recall > 0.9

    def test_missing_roads_hurt_recall(self, straight_network):
        half = [
            Trajectory(
                f"h{k}", [Point(x, 0.0, t=float(x)) for x in range(0, 501, 20)]
            )
            for k in range(3)
        ]
        inferred = TrajectoryMapInference().infer(half)
        scores = evaluate_inferred_map(inferred, straight_network)
        assert scores.recall < 0.7
        assert scores.precision > 0.9

    def test_empty_map_scores_zero(self, straight_network):
        inferred = InferredMap(25.0, {})
        scores = evaluate_inferred_map(inferred, straight_network)
        assert scores.precision == 0.0
        assert scores.recall == 0.0
        assert scores.f1 == 0.0

    def test_validation(self, straight_network):
        inferred = InferredMap(25.0, {(0, 0): 5})
        with pytest.raises(ValueError):
            evaluate_inferred_map(inferred, straight_network, tolerance_m=0.0)

    def test_empty_network_rejected(self):
        inferred = InferredMap(25.0, {(0, 0): 5})
        with pytest.raises(EmptyInputError):
            evaluate_inferred_map(inferred, RoadNetwork())


class TestEndToEndMotivation:
    def test_imputation_improves_inferred_map(self, small_dataset, small_split, trained_kamel):
        """The paper's central motivation, quantified: map inference from
        KAMEL-imputed trajectories beats map inference from sparse ones."""
        _, test = small_split
        test = test[:10]
        sparse = [t.sparsify(500.0) for t in test]
        imputed = [r.trajectory for r in trained_kamel.impute_batch(sparse)]

        engine = TrajectoryMapInference()
        sparse_scores = evaluate_inferred_map(
            engine.infer(sparse), small_dataset.network, min_visits=1
        )
        imputed_scores = evaluate_inferred_map(
            engine.infer(imputed), small_dataset.network, min_visits=1
        )
        assert imputed_scores.precision > sparse_scores.precision
        assert imputed_scores.f1 > sparse_scores.f1
