"""Tests for Hausdorff / Fréchet / mean-deviation similarity measures."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EmptyInputError
from repro.eval.similarity import (
    directed_hausdorff,
    discrete_frechet_distance,
    hausdorff_distance,
    mean_deviation,
)
from repro.geo import Point, Trajectory

coords = st.floats(min_value=-1000, max_value=1000, allow_nan=False)
point_lists = st.lists(st.tuples(coords, coords), min_size=1, max_size=12)


def line(tid="t", y=0.0, n=11, spacing=100.0):
    return Trajectory(tid, [Point(i * spacing, y) for i in range(n)])


class TestHausdorff:
    def test_identical_is_zero(self):
        assert hausdorff_distance(line(), line()) == 0.0

    def test_parallel_offset(self):
        assert hausdorff_distance(line(y=0.0), line(y=40.0)) == pytest.approx(40.0)

    def test_asymmetric_directed(self):
        short = [Point(0, 0), Point(100, 0)]
        long_line = [Point(0, 0), Point(1000, 0)]
        assert directed_hausdorff(short, long_line) == 0.0
        assert directed_hausdorff(long_line, short) == pytest.approx(900.0)

    def test_symmetric(self):
        a, b = line(y=0.0, n=5), line(y=70.0, n=9)
        assert hausdorff_distance(a, b) == pytest.approx(hausdorff_distance(b, a))

    def test_empty_rejected(self):
        with pytest.raises(EmptyInputError):
            directed_hausdorff([], [Point(0, 0)])

    @settings(max_examples=25, deadline=None)
    @given(point_lists, point_lists)
    def test_non_negative_and_symmetric(self, pa, pb):
        a = Trajectory("a", [Point(x, y) for x, y in pa])
        b = Trajectory("b", [Point(x, y) for x, y in pb])
        d = hausdorff_distance(a, b)
        assert d >= 0.0
        assert d == pytest.approx(hausdorff_distance(b, a))


class TestFrechet:
    def test_identical_is_zero(self):
        assert discrete_frechet_distance(line(), line()) == 0.0

    def test_parallel_offset(self):
        assert discrete_frechet_distance(line(y=0.0), line(y=40.0)) == pytest.approx(40.0)

    def test_order_sensitivity(self):
        """Fréchet punishes reversed traversal; Hausdorff cannot."""
        forward = line(n=11)
        backward = Trajectory("b", list(reversed(forward.points)))
        assert hausdorff_distance(forward, backward) == 0.0
        assert discrete_frechet_distance(forward, backward) >= 500.0

    def test_upper_bounds_hausdorff_pointwise(self):
        """Discrete Fréchet >= point-set Hausdorff on the same sequences."""
        a = Trajectory("a", [Point(0, 0), Point(100, 50), Point(200, 0)])
        b = Trajectory("b", [Point(0, 10), Point(100, 0), Point(210, 10)])
        frechet = discrete_frechet_distance(a, b)
        # Point-to-point Hausdorff (not polyline) is a lower bound.
        point_hausdorff = max(
            min(p.distance_to(q) for q in b.points) for p in a.points
        )
        assert frechet >= point_hausdorff - 1e-9

    def test_empty_rejected(self):
        with pytest.raises(EmptyInputError):
            discrete_frechet_distance(Trajectory("e"), line())

    def test_single_points(self):
        a = Trajectory("a", [Point(0, 0)])
        b = Trajectory("b", [Point(3, 4)])
        assert discrete_frechet_distance(a, b) == pytest.approx(5.0)

    @settings(max_examples=25, deadline=None)
    @given(point_lists, point_lists)
    def test_symmetric(self, pa, pb):
        a = Trajectory("a", [Point(x, y) for x, y in pa])
        b = Trajectory("b", [Point(x, y) for x, y in pb])
        assert discrete_frechet_distance(a, b) == pytest.approx(
            discrete_frechet_distance(b, a)
        )

    def test_long_trajectories_no_recursion_issue(self):
        a = line(n=600, spacing=10.0)
        b = line(n=600, spacing=10.0, y=5.0)
        assert discrete_frechet_distance(a, b) == pytest.approx(5.0)


class TestMeanDeviation:
    def test_zero_on_identical(self):
        assert mean_deviation(line(), line()) == 0.0

    def test_offset(self):
        assert mean_deviation(line(y=0.0), line(y=30.0)) == pytest.approx(30.0)

    def test_empty_truth_rejected(self):
        with pytest.raises(EmptyInputError):
            mean_deviation(Trajectory("e"), line())

    def test_better_imputation_has_lower_deviation(self):
        truth = line()
        good = line(y=10.0)
        bad = line(y=80.0)
        assert mean_deviation(truth, good) < mean_deviation(truth, bad)
