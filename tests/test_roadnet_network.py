"""Tests for the road-network graph and its spatial queries."""

import math

import pytest

from repro.errors import EmptyInputError
from repro.geo import Point
from repro.roadnet.network import EdgeRef, RoadNetwork, _point_along, _project_to_segment


@pytest.fixture()
def square_net() -> RoadNetwork:
    r"""A 2x2 grid of 100 m blocks::

        6 -- 7 -- 8
        |    |    |
        3 -- 4 -- 5
        |    |    |
        0 -- 1 -- 2
    """
    net = RoadNetwork()
    for j in range(3):
        for i in range(3):
            net.add_node(3 * j + i, Point(i * 100.0, j * 100.0))
    for j in range(3):
        for i in range(3):
            n = 3 * j + i
            if i < 2:
                net.add_edge(n, n + 1)
            if j < 2:
                net.add_edge(n, n + 3)
    return net


class TestConstruction:
    def test_counts(self, square_net):
        assert square_net.num_nodes == 9
        assert square_net.num_edges == 12

    def test_default_geometry_is_straight(self, square_net):
        geom = square_net.edge_geometry(0, 1)
        assert len(geom) == 2
        assert geom[0] == Point(0, 0) and geom[-1] == Point(100, 0)

    def test_geometry_oriented_by_endpoint(self, square_net):
        forward = square_net.edge_geometry(0, 1)
        backward = square_net.edge_geometry(1, 0)
        assert forward == tuple(reversed(backward))

    def test_custom_geometry_must_connect(self, square_net):
        with pytest.raises(ValueError):
            net = RoadNetwork()
            net.add_node("a", Point(0, 0))
            net.add_node("b", Point(100, 0))
            net.add_edge("a", "b", [Point(5, 5), Point(100, 0)])

    def test_edge_length_of_polyline(self):
        net = RoadNetwork()
        net.add_node("a", Point(0, 0))
        net.add_node("b", Point(100, 0))
        net.add_edge("a", "b", [Point(0, 0), Point(50, 50), Point(100, 0)])
        assert net.edge_length("a", "b") == pytest.approx(2 * math.hypot(50, 50))

    def test_unknown_node_raises(self, square_net):
        with pytest.raises(KeyError):
            square_net.node_point(99)

    def test_total_length(self, square_net):
        assert square_net.total_length() == pytest.approx(12 * 100.0)

    def test_bbox(self, square_net):
        b = square_net.bbox()
        assert (b.width, b.height) == (200.0, 200.0)

    def test_bbox_empty(self):
        with pytest.raises(EmptyInputError):
            RoadNetwork().bbox()


class TestRouting:
    def test_shortest_path_straight(self, square_net):
        assert square_net.shortest_path(0, 2) == [0, 1, 2]

    def test_shortest_path_length(self, square_net):
        assert square_net.shortest_path_length(0, 8) == pytest.approx(400.0)

    def test_path_geometry_dedupes_joints(self, square_net):
        geom = square_net.path_geometry([0, 1, 2])
        assert [(p.x, p.y) for p in geom] == [(0, 0), (100, 0), (200, 0)]

    def test_path_geometry_single_node(self, square_net):
        assert len(square_net.path_geometry([4])) == 1

    def test_single_source_lengths(self, square_net):
        lengths = square_net.single_source_lengths(0, cutoff=150.0)
        assert set(lengths) == {0, 1, 3}

    def test_largest_component(self):
        net = RoadNetwork()
        for n, p in [("a", Point(0, 0)), ("b", Point(100, 0)), ("z", Point(999, 999))]:
            net.add_node(n, p)
        net.add_edge("a", "b")
        main = net.largest_component()
        assert main.num_nodes == 2
        assert main.num_edges == 1


class TestSpatialQueries:
    def test_project_onto_edge(self, square_net):
        pos = square_net.project(Point(50.0, 10.0))
        assert pos is not None
        assert pos.distance_m == pytest.approx(10.0)
        assert pos.point.y == pytest.approx(0.0)
        assert pos.offset_m == pytest.approx(50.0)

    def test_project_out_of_radius(self, square_net):
        assert square_net.project(Point(5000.0, 5000.0), radius=100.0) is None

    def test_nearest_edges_sorted_and_unique(self, square_net):
        candidates = square_net.nearest_edges(Point(100.0, 50.0), radius=120.0)
        distances = [c.distance_m for c in candidates]
        assert distances == sorted(distances)
        keys = [c.edge.key() for c in candidates]
        assert len(keys) == len(set(keys))

    def test_nearest_edges_limit(self, square_net):
        assert len(square_net.nearest_edges(Point(100, 100), radius=300.0, limit=3)) == 3

    def test_nearest_node(self, square_net):
        assert square_net.nearest_node(Point(95.0, 110.0)) == 4

    def test_point_along_edge(self, square_net):
        p = square_net.point_along_edge(EdgeRef(0, 1), 25.0)
        assert (p.x, p.y) == (25.0, 0.0)

    def test_point_along_edge_reversed(self, square_net):
        p = square_net.point_along_edge(EdgeRef(1, 0), 25.0)
        assert (p.x, p.y) == (75.0, 0.0)


class TestHelpers:
    def test_point_along_clamps(self):
        line = [Point(0, 0), Point(10, 0)]
        assert _point_along(line, -5.0) == line[0]
        assert _point_along(line, 50.0) == line[-1]

    def test_project_to_segment_interior(self):
        foot, along, dist = _project_to_segment(Point(5, 3), Point(0, 0), Point(10, 0))
        assert (foot.x, foot.y) == (5.0, 0.0)
        assert along == pytest.approx(5.0)
        assert dist == pytest.approx(3.0)

    def test_project_to_segment_clamps_to_endpoint(self):
        foot, along, dist = _project_to_segment(Point(-4, 3), Point(0, 0), Point(10, 0))
        assert (foot.x, foot.y) == (0.0, 0.0)
        assert along == 0.0
        assert dist == pytest.approx(5.0)

    def test_project_to_degenerate_segment(self):
        foot, along, dist = _project_to_segment(Point(1, 1), Point(0, 0), Point(0, 0))
        assert (foot.x, foot.y) == (0.0, 0.0)

    def test_edge_ref_key_canonical(self):
        assert EdgeRef("b", "a").key() == EdgeRef("a", "b").key()
        assert EdgeRef("a", "b").reversed() == EdgeRef("b", "a")
