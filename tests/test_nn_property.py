"""Property-based gradient checks: random composite expressions.

The per-op checks in test_nn_autograd.py pin each operator; these build
random compositions (the kind of graphs the transformer actually creates)
and verify the end-to-end gradient against central differences.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import Tensor
from repro.nn.functional import log_softmax


def numeric_grad(fn, x, eps=1e-6):
    grad = np.zeros_like(x)
    flat, gflat = x.reshape(-1), grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn(x)
        flat[i] = orig - eps
        down = fn(x)
        flat[i] = orig
        gflat[i] = (up - down) / (2 * eps)
    return grad


# Each op: (autograd form, numpy form); all keep values in a safe range.
UNARY_OPS = {
    "tanh": (lambda t: t.tanh(), np.tanh),
    "gelu": (
        lambda t: t.gelu(),
        lambda x: 0.5 * x * (1 + np.tanh(np.sqrt(2 / np.pi) * (x + 0.044715 * x**3))),
    ),
    "relu": (lambda t: t.relu(), lambda x: np.maximum(x, 0.0)),
    "exp_scaled": (lambda t: (t * 0.3).exp(), lambda x: np.exp(0.3 * x)),
    "softmax": (
        lambda t: t.softmax(),
        lambda x: np.exp(x - x.max(-1, keepdims=True))
        / np.exp(x - x.max(-1, keepdims=True)).sum(-1, keepdims=True),
    ),
    "log_softmax": (
        lambda t: log_softmax(t),
        lambda x: (x - x.max(-1, keepdims=True))
        - np.log(np.exp(x - x.max(-1, keepdims=True)).sum(-1, keepdims=True)),
    ),
}


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    chain=st.lists(st.sampled_from(sorted(UNARY_OPS)), min_size=1, max_size=4),
)
def test_random_unary_chains(seed, chain):
    rng = np.random.default_rng(seed)
    data = rng.uniform(-2.0, 2.0, size=(2, 3))
    weights = rng.normal(size=(2, 3))

    t = Tensor(data.copy(), requires_grad=True)
    out = t
    for name in chain:
        out = UNARY_OPS[name][0](out)
    (out * Tensor(weights)).sum().backward()

    def np_forward(x):
        y = x
        for name in chain:
            y = UNARY_OPS[name][1](y)
        return float((y * weights).sum())

    expected = numeric_grad(np_forward, data.copy())
    np.testing.assert_allclose(t.grad, expected, atol=2e-5)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_random_mlp_block(seed):
    """A 2-layer MLP with residual + layernorm: the transformer's FFN."""
    rng = np.random.default_rng(seed)
    x_data = rng.normal(size=(2, 4))
    w1 = rng.normal(size=(4, 6)) * 0.5
    w2 = rng.normal(size=(6, 4)) * 0.5
    gamma = rng.uniform(0.5, 1.5, size=4)
    beta = rng.normal(size=4) * 0.1
    coeff = rng.normal(size=(2, 4))

    x = Tensor(x_data.copy(), requires_grad=True)
    hidden = (x @ Tensor(w1)).gelu() @ Tensor(w2)
    out = (x + hidden).layernorm(Tensor(gamma), Tensor(beta))
    (out * Tensor(coeff)).sum().backward()

    def np_forward(xv):
        g = 0.5 * (xv @ w1) * (
            1 + np.tanh(np.sqrt(2 / np.pi) * ((xv @ w1) + 0.044715 * (xv @ w1) ** 3))
        )
        resid = xv + g @ w2
        mu = resid.mean(-1, keepdims=True)
        var = resid.var(-1, keepdims=True)
        xhat = (resid - mu) / np.sqrt(var + 1e-5)
        return float(((xhat * gamma + beta) * coeff).sum())

    expected = numeric_grad(np_forward, x_data.copy())
    np.testing.assert_allclose(x.grad, expected, atol=3e-5)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_attention_shaped_graph(seed):
    """softmax(QK^T)V with shared input — the self-attention core."""
    rng = np.random.default_rng(seed)
    x_data = rng.normal(size=(3, 4)) * 0.5
    wq = rng.normal(size=(4, 4)) * 0.4
    wk = rng.normal(size=(4, 4)) * 0.4
    wv = rng.normal(size=(4, 4)) * 0.4
    coeff = rng.normal(size=(3, 4))

    x = Tensor(x_data.copy(), requires_grad=True)
    q, k, v = x @ Tensor(wq), x @ Tensor(wk), x @ Tensor(wv)
    attn = (q @ k.transpose(0, 1)).softmax()
    (attn @ v * Tensor(coeff)).sum().backward()

    def np_forward(xv):
        q_, k_, v_ = xv @ wq, xv @ wk, xv @ wv
        scores = q_ @ k_.T
        e = np.exp(scores - scores.max(-1, keepdims=True))
        a = e / e.sum(-1, keepdims=True)
        return float(((a @ v_) * coeff).sum())

    expected = numeric_grad(np_forward, x_data.copy())
    np.testing.assert_allclose(x.grad, expected, atol=3e-5)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    rows=st.integers(min_value=1, max_value=4),
    cols=st.integers(min_value=1, max_value=4),
)
def test_broadcast_add_any_shape(seed, rows, cols):
    rng = np.random.default_rng(seed)
    a_data = rng.normal(size=(rows, cols))
    b_data = rng.normal(size=(cols,))
    a = Tensor(a_data.copy(), requires_grad=True)
    b = Tensor(b_data.copy(), requires_grad=True)
    ((a + b) * (a + b)).sum().backward()
    np.testing.assert_allclose(a.grad, 2 * (a_data + b_data), atol=1e-9)
    np.testing.assert_allclose(b.grad, (2 * (a_data + b_data)).sum(axis=0), atol=1e-9)
