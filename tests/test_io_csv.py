"""Tests for CSV I/O and the `kamel impute` CLI command."""

import csv

import pytest

from repro.cli import main
from repro.errors import EmptyInputError, KamelError
from repro.geo import LocalProjection, Point, Trajectory
from repro.io import imputed_point_flags, read_latlon_csv, write_latlon_csv

REF = LocalProjection(41.15, -8.61)


def write_fixture_csv(path, rows, header=("traj_id", "lat", "lon", "t")):
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


class TestReadCsv:
    def test_groups_and_sorts(self, tmp_path):
        path = tmp_path / "fixes.csv"
        write_fixture_csv(
            path,
            [
                ("a", 41.150, -8.610, 10.0),
                ("b", 41.160, -8.620, 0.0),
                ("a", 41.151, -8.611, 0.0),  # out of order on purpose
            ],
        )
        logs = read_latlon_csv(path)
        assert [tid for tid, _ in logs] == ["a", "b"]
        a_records = dict(logs)["a"]
        assert [r[2] for r in a_records] == [0.0, 10.0]

    def test_missing_time_column_ok(self, tmp_path):
        path = tmp_path / "fixes.csv"
        write_fixture_csv(path, [("a", 41.15, -8.61)], header=("traj_id", "lat", "lon"))
        logs = read_latlon_csv(path)
        assert logs[0][1][0][2] is None

    def test_empty_time_value(self, tmp_path):
        path = tmp_path / "fixes.csv"
        write_fixture_csv(path, [("a", 41.15, -8.61, "")])
        assert read_latlon_csv(path)[0][1][0][2] is None

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        write_fixture_csv(path, [("a", 41.15)], header=("traj_id", "lat"))
        with pytest.raises(KamelError):
            read_latlon_csv(path)

    def test_bad_coordinate_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        write_fixture_csv(path, [("a", "not-a-number", -8.61, 0.0)])
        with pytest.raises(KamelError):
            read_latlon_csv(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        write_fixture_csv(path, [])
        with pytest.raises(EmptyInputError):
            read_latlon_csv(path)

    def test_custom_column_names(self, tmp_path):
        path = tmp_path / "fixes.csv"
        write_fixture_csv(
            path, [("x", 41.15, -8.61, 5.0)], header=("id", "latitude", "longitude", "ts")
        )
        logs = read_latlon_csv(
            path, id_column="id", lat_column="latitude", lon_column="longitude", time_column="ts"
        )
        assert logs[0][0] == "x"


class TestWriteCsv:
    def test_round_trip(self, tmp_path):
        traj = Trajectory("rt", [Point(0, 0, t=0.0), Point(100, 50, t=10.0)])
        path = tmp_path / "out.csv"
        write_latlon_csv(path, [traj], REF, [[False, True]])
        logs = read_latlon_csv(path)
        assert logs[0][0] == "rt"
        records = logs[0][1]
        back = [REF.to_local(lat, lon, t) for lat, lon, t in records]
        assert back[1].distance_to(traj.points[1]) < 0.5
        # The imputed flag column is written.
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert [r["imputed"] for r in rows] == ["0", "1"]

    def test_flags_default_to_zero(self, tmp_path):
        traj = Trajectory("t", [Point(0, 0, t=0.0)])
        path = tmp_path / "out.csv"
        write_latlon_csv(path, [traj], REF)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["imputed"] == "0"


class TestImputedFlags:
    def test_flags_inserted_points(self):
        sparse = Trajectory("s", [Point(0, 0), Point(100, 0)])
        dense = Trajectory("s", [Point(0, 0), Point(50, 0), Point(100, 0)])
        assert imputed_point_flags(sparse, dense) == [False, True, False]

    def test_all_original(self):
        sparse = Trajectory("s", [Point(0, 0), Point(100, 0)])
        assert imputed_point_flags(sparse, sparse) == [False, False]


class TestImputeCommand:
    def test_end_to_end(self, tmp_path, small_split, capsys):
        train, test = small_split
        projection = LocalProjection(41.15, -8.61)

        def dump(path, trajectories):
            rows = []
            for traj in trajectories:
                for p in traj.points:
                    lat, lon = projection.to_latlon(p)
                    rows.append((traj.traj_id, f"{lat:.7f}", f"{lon:.7f}", p.t))
            write_fixture_csv(path, rows)

        train_csv = tmp_path / "train.csv"
        sparse_csv = tmp_path / "sparse.csv"
        out_csv = tmp_path / "dense.csv"
        dump(train_csv, train[:40])
        dump(sparse_csv, [t.sparsify(500.0) for t in test[:2]])

        code = main(
            [
                "impute",
                "--train", str(train_csv),
                "--input", str(sparse_csv),
                "--output", str(out_csv),
            ]
        )
        assert code == 0
        assert "imputed 2 trajectories" in capsys.readouterr().out

        dense_logs = read_latlon_csv(out_csv)
        sparse_logs = read_latlon_csv(sparse_csv)
        assert len(dense_logs) == 2
        for (tid, dense_records), (_, sparse_records) in zip(dense_logs, sparse_logs):
            assert len(dense_records) >= len(sparse_records)
        with open(out_csv) as handle:
            rows = list(csv.DictReader(handle))
        assert any(r["imputed"] == "1" for r in rows)


class TestInspectCommand:
    def test_inspect_saved_model(self, tmp_path, trained_kamel, capsys):
        trained_kamel.save(tmp_path / "model")
        assert main(["inspect", str(tmp_path / "model")]) == 0
        out = capsys.readouterr().out
        assert "vocabulary" in out
        assert "single-cell models" in out
        assert "stored trajectories" in out
