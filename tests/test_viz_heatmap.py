"""Tests for repro.viz.heatmap: the deterministic quality choropleth."""

import pytest

from repro.grid import HexGrid, SquareGrid
from repro.viz import render_heatmap_svg, write_heatmap_svg
from repro.viz.heatmap import _ramp_color


SCORES = {(0, 0): 0.2, (1, 0): 0.9, (0, 1): 0.5, (-1, 2): 1.0}


class TestColorRamp:
    def test_endpoints_and_midpoint_hit_the_fixed_stops(self):
        assert _ramp_color(0.0) == "#e6694a"
        assert _ramp_color(0.5) == "#edaa3c"
        assert _ramp_color(1.0) == "#58b07e"

    def test_out_of_range_values_clamp(self):
        assert _ramp_color(-3.0) == _ramp_color(0.0)
        assert _ramp_color(7.0) == _ramp_color(1.0)

    def test_interpolation_is_monotone_in_green(self):
        greens = [int(_ramp_color(v / 10.0)[3:5], 16) for v in range(6)]
        assert greens == sorted(greens)


class TestRenderHeatmapSvg:
    def test_output_is_byte_stable(self):
        grid = HexGrid(75.0)
        # Same mapping, adversarial insertion order: identical bytes out.
        reordered = dict(sorted(SCORES.items(), reverse=True))
        assert render_heatmap_svg(SCORES, grid) == render_heatmap_svg(reordered, grid)

    def test_hex_cells_draw_hexagons(self):
        svg = render_heatmap_svg(SCORES, HexGrid(75.0))
        polygons = [line for line in svg.splitlines() if "<polygon" in line]
        assert len(polygons) == len(SCORES)
        first_points = polygons[0].split('points="')[1].split('"')[0]
        assert len(first_points.split()) == 6

    def test_square_cells_draw_squares(self):
        svg = render_heatmap_svg(SCORES, SquareGrid(75.0))
        polygons = [line for line in svg.splitlines() if "<polygon" in line]
        assert len(polygons) == len(SCORES)
        first_points = polygons[0].split('points="')[1].split('"')[0]
        assert len(first_points.split()) == 4

    def test_tooltips_carry_scores_and_counts(self):
        svg = render_heatmap_svg(
            SCORES, HexGrid(75.0), counts={(0, 0): 12, (1, 0): 3}
        )
        assert "cell (0, 0): quality 0.200 (12 points)" in svg
        assert "cell (0, 1): quality 0.500" in svg  # no count recorded

    def test_title_is_escaped(self):
        svg = render_heatmap_svg(SCORES, HexGrid(75.0), title="a <b> & c")
        assert "a &lt;b&gt; &amp; c" in svg
        assert "<b>" not in svg

    def test_empty_scores_render_a_placeholder(self):
        svg = render_heatmap_svg({}, HexGrid(75.0))
        assert "no cells" in svg
        assert "<polygon" not in svg

    def test_width_must_be_positive(self):
        with pytest.raises(ValueError, match="width_px"):
            render_heatmap_svg(SCORES, HexGrid(75.0), width_px=0)

    def test_legend_spans_the_ramp(self):
        svg = render_heatmap_svg(SCORES, HexGrid(75.0))
        assert "0 poor" in svg and "1 good" in svg
        assert svg.count("<rect") >= 11  # background plus ten swatches


class TestWriteHeatmapSvg:
    def test_writes_identical_bytes_across_runs(self, tmp_path):
        grid = HexGrid(75.0)
        first = write_heatmap_svg(tmp_path / "a.svg", SCORES, grid)
        second = write_heatmap_svg(tmp_path / "b.svg", SCORES, grid)
        assert first.read_bytes() == second.read_bytes()
        assert first.read_text().startswith("<svg")
        assert first.read_text().endswith("</svg>\n")

    def test_custom_title_reaches_the_file(self, tmp_path):
        path = write_heatmap_svg(
            tmp_path / "t.svg", SCORES, HexGrid(75.0), title="porto quality"
        )
        assert "porto quality" in path.read_text()
