"""Tests for trajectory preprocessing: Kalman smoothing and cleaning."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.geo import Point, Trajectory
from repro.preprocess import (
    KalmanConfig,
    KalmanSmoother,
    detect_stay_points,
    remove_outliers,
    remove_stay_points,
    split_by_time_gap,
)


def noisy_line(n=60, speed=10.0, dt=1.0, noise=6.0, seed=0):
    rng = np.random.default_rng(seed)
    pts = [
        Point(
            i * speed * dt + rng.normal(0, noise),
            rng.normal(0, noise),
            t=i * dt,
        )
        for i in range(n)
    ]
    return Trajectory("noisy", pts)


class TestKalman:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            KalmanConfig(measurement_noise_m=0.0)
        with pytest.raises(ConfigError):
            KalmanConfig(process_noise_mps2=-1.0)

    def test_reduces_noise_on_straight_line(self):
        traj = noisy_line(noise=6.0)
        smoothed = KalmanSmoother().smooth(traj)
        raw_error = np.mean([abs(p.y) for p in traj.points])
        smooth_error = np.mean([abs(p.y) for p in smoothed.points])
        assert smooth_error < raw_error * 0.6

    def test_preserves_timestamps_and_length(self):
        traj = noisy_line()
        smoothed = KalmanSmoother().smooth(traj)
        assert len(smoothed) == len(traj)
        assert [p.t for p in smoothed.points] == [p.t for p in traj.points]

    def test_follows_turns(self):
        """The smoother must track a 90-degree turn, not cut the corner
        to oblivion (bounded lag, not a straight-line fit)."""
        rng = np.random.default_rng(1)
        pts = []
        for i in range(40):
            pts.append(Point(i * 10.0 + rng.normal(0, 3), rng.normal(0, 3), t=float(i)))
        for i in range(40):
            pts.append(
                Point(400.0 + rng.normal(0, 3), (i + 1) * 10.0 + rng.normal(0, 3), t=40.0 + i)
            )
        traj = Trajectory("turn", pts)
        smoothed = KalmanSmoother().smooth(traj)
        corner = Point(400.0, 0.0)
        nearest = min(p.distance_to(corner) for p in smoothed.points)
        assert nearest < 25.0

    def test_short_trajectory_passthrough(self):
        traj = Trajectory("short", [Point(0, 0, t=0.0), Point(10, 0, t=1.0)])
        assert KalmanSmoother().smooth(traj) is traj

    def test_untimed_passthrough(self):
        traj = Trajectory("untimed", [Point(0, 0), Point(10, 0), Point(20, 0)])
        assert KalmanSmoother().smooth(traj) is traj

    def test_smooth_many(self):
        trajs = [noisy_line(seed=k) for k in range(3)]
        assert len(KalmanSmoother().smooth_many(trajs)) == 3

    def test_smoothing_improves_downstream_tokenization(self):
        """Reduced noise means fewer cell flip-flops at tokenization."""
        from repro.core.tokenization import Tokenizer
        from repro.grid import HexGrid

        traj = noisy_line(n=200, noise=20.0, speed=3.0)
        smoothed = KalmanSmoother().smooth(traj)
        tok = Tokenizer(HexGrid(50.0))
        raw_tokens = tok.tokenize(traj, grow=True)
        smooth_tokens = tok.tokenize(smoothed, grow=True)
        assert len(smooth_tokens) <= len(raw_tokens)


class TestOutlierRemoval:
    def test_removes_teleport(self):
        pts = [Point(i * 10.0, 0.0, t=float(i)) for i in range(10)]
        pts[5] = Point(50.0, 5000.0, t=5.0)  # corrupted fix
        cleaned = remove_outliers(Trajectory("t", pts), max_speed_mps=50.0)
        assert len(cleaned) == 9
        assert all(abs(p.y) < 100 for p in cleaned.points)

    def test_keeps_valid_points(self):
        traj = Trajectory("t", [Point(i * 10.0, 0.0, t=float(i)) for i in range(10)])
        assert len(remove_outliers(traj)) == 10

    def test_untimed_points_kept(self):
        traj = Trajectory("t", [Point(0, 0), Point(1e6, 1e6)])
        assert len(remove_outliers(traj)) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            remove_outliers(Trajectory("t"), max_speed_mps=0.0)


class TestStayPoints:
    def make_trip_with_stop(self):
        pts = [Point(i * 20.0, 0.0, t=float(i * 2)) for i in range(20)]  # moving
        stop_t0 = pts[-1].t
        rng = np.random.default_rng(0)
        for k in range(100):  # parked ~200 s within a few meters
            pts.append(
                Point(400.0 + rng.normal(0, 3), rng.normal(0, 3), t=stop_t0 + 2 + k * 2)
            )
        resume_t = pts[-1].t
        for i in range(20):
            pts.append(Point(400.0 + (i + 1) * 20.0, 0.0, t=resume_t + 2 + i * 2))
        return Trajectory("trip", pts)

    def test_detects_the_stop(self):
        stays = detect_stay_points(self.make_trip_with_stop())
        assert len(stays) == 1
        stay = stays[0]
        assert stay.duration_s >= 120.0
        assert stay.centroid.distance_to(Point(400.0, 0.0)) < 20.0

    def test_moving_trip_has_no_stays(self):
        traj = Trajectory("m", [Point(i * 30.0, 0.0, t=float(i * 2)) for i in range(50)])
        assert detect_stay_points(traj) == []

    def test_remove_stay_points_collapses_window(self):
        traj = self.make_trip_with_stop()
        cleaned = remove_stay_points(traj)
        assert len(cleaned) < len(traj) - 90
        # The centroid survives in place of the window.
        assert any(p.distance_to(Point(400, 0)) < 20 for p in cleaned.points)

    def test_no_stays_returns_same_object(self):
        traj = Trajectory("m", [Point(i * 30.0, 0.0, t=float(i * 2)) for i in range(10)])
        assert remove_stay_points(traj) is traj

    def test_validation(self):
        with pytest.raises(ValueError):
            detect_stay_points(Trajectory("t"), radius_m=0.0)


class TestSplitByTimeGap:
    def test_no_gap_single_trip(self):
        traj = Trajectory("t", [Point(i * 10.0, 0, t=float(i)) for i in range(10)])
        pieces = split_by_time_gap(traj)
        assert len(pieces) == 1
        assert pieces[0].traj_id == "t"

    def test_splits_on_gap(self):
        pts = [Point(i * 10.0, 0, t=float(i)) for i in range(5)]
        pts += [Point(1000 + i * 10.0, 0, t=1000.0 + i) for i in range(5)]
        pieces = split_by_time_gap(Trajectory("t", pts), max_gap_s=300.0)
        assert len(pieces) == 2
        assert pieces[0].traj_id == "t/0"
        assert pieces[1].traj_id == "t/1"
        assert len(pieces[0]) == 5 and len(pieces[1]) == 5

    def test_min_points_filters_fragments(self):
        pts = [Point(0, 0, t=0.0)]
        pts += [Point(1000 + i * 10.0, 0, t=1000.0 + i) for i in range(5)]
        pieces = split_by_time_gap(Trajectory("t", pts), min_points=3)
        assert len(pieces) == 1
        assert len(pieces[0]) == 5

    def test_empty_trajectory(self):
        assert split_by_time_gap(Trajectory("e"), min_points=1) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            split_by_time_gap(Trajectory("t"), max_gap_s=0.0)
        with pytest.raises(ValueError):
            split_by_time_gap(Trajectory("t"), min_points=0)
