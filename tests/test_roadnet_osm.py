"""Tests for the OSM XML importer."""

import pytest

from repro.errors import EmptyInputError, KamelError
from repro.geo import LocalProjection
from repro.roadnet.osm import DEFAULT_HIGHWAY_TYPES, load_osm_xml

# A tiny hand-written extract: a T-junction of two residential streets,
# a footpath (filtered out), and a disconnected service stub.
OSM_FIXTURE = """<?xml version="1.0" encoding="UTF-8"?>
<osm version="0.6">
  <node id="1" lat="41.1500" lon="-8.6100"/>
  <node id="2" lat="41.1510" lon="-8.6100"/>
  <node id="3" lat="41.1520" lon="-8.6100"/>
  <node id="4" lat="41.1510" lon="-8.6110"/>
  <node id="5" lat="41.1600" lon="-8.6200"/>
  <node id="6" lat="41.1601" lon="-8.6201"/>
  <node id="7" lat="41.1505" lon="-8.6105"/>
  <way id="100">
    <nd ref="1"/><nd ref="2"/><nd ref="3"/>
    <tag k="highway" v="residential"/>
    <tag k="name" v="Rua Principal"/>
  </way>
  <way id="101">
    <nd ref="2"/><nd ref="4"/>
    <tag k="highway" v="residential"/>
  </way>
  <way id="102">
    <nd ref="1"/><nd ref="7"/>
    <tag k="highway" v="footway"/>
  </way>
  <way id="103">
    <nd ref="5"/><nd ref="6"/>
    <tag k="highway" v="service"/>
  </way>
</osm>
"""


class TestLoadOsm:
    def test_from_string(self):
        result = load_osm_xml(OSM_FIXTURE)
        # Largest component: the T-junction (nodes 1-4); the disconnected
        # service stub (5-6) is dropped, the footway filtered out.
        assert result.network.num_nodes == 4
        assert result.network.num_edges == 3

    def test_from_file(self, tmp_path):
        path = tmp_path / "extract.osm"
        path.write_text(OSM_FIXTURE)
        result = load_osm_xml(path)
        assert result.network.num_edges == 3

    def test_way_statistics(self):
        result = load_osm_xml(OSM_FIXTURE)
        assert result.num_ways == 3  # residential x2 + service
        assert result.num_skipped_ways == 1  # the footway
        assert result.highway_counts["residential"] == 2

    def test_highway_filter_customizable(self):
        result = load_osm_xml(OSM_FIXTURE, highway_types=frozenset({"footway"}))
        assert result.network.num_edges == 1

    def test_projection_centered_on_data(self):
        result = load_osm_xml(OSM_FIXTURE)
        box = result.network.bbox()
        # The network sits near the projection origin (mean coordinate).
        assert abs(box.center.x) < 2000 and abs(box.center.y) < 2000

    def test_explicit_projection_respected(self):
        projection = LocalProjection(41.0, -8.6)
        result = load_osm_xml(OSM_FIXTURE, projection=projection)
        assert result.projection is projection
        # 0.15 degrees of latitude north of the reference ~ 16.7 km.
        assert result.network.bbox().min_y > 10_000

    def test_edge_lengths_plausible(self):
        result = load_osm_xml(OSM_FIXTURE)
        # Node 1 -> 2 spans 0.001 degrees latitude ~ 111 m.
        length = result.network.edge_length("1", "2")
        assert length == pytest.approx(111.0, rel=0.05)

    def test_invalid_xml_rejected(self):
        with pytest.raises(KamelError):
            load_osm_xml("<osm><node id=")

    def test_no_nodes_rejected(self):
        with pytest.raises(EmptyInputError):
            load_osm_xml("<osm/>")

    def test_no_usable_ways_rejected(self):
        xml = OSM_FIXTURE.replace("highway", "waterway")
        with pytest.raises(EmptyInputError):
            load_osm_xml(xml)

    def test_missing_node_refs_skipped(self):
        xml = OSM_FIXTURE.replace('<nd ref="4"/>', '<nd ref="999"/>')
        result = load_osm_xml(xml)
        # Way 101 degenerates to one valid ref and is skipped.
        assert result.network.num_edges == 2

    def test_default_types_are_car_roads(self):
        assert "residential" in DEFAULT_HIGHWAY_TYPES
        assert "footway" not in DEFAULT_HIGHWAY_TYPES

    def test_loaded_network_supports_routing(self):
        result = load_osm_xml(OSM_FIXTURE)
        path = result.network.shortest_path("1", "4")
        assert path == ["1", "2", "4"]

    def test_simulation_over_imported_network(self):
        """An imported network slots straight into the simulator."""
        from repro.roadnet import SimulatorConfig, TrajectorySimulator

        result = load_osm_xml(OSM_FIXTURE)
        sim = TrajectorySimulator(
            result.network,
            SimulatorConfig(min_trip_length_m=100.0, seed=0),
        )
        traj = sim.simulate_one("osm-trip")
        assert len(traj) >= 2
