"""Unit tests for repro.obs.monitor: rolling windows, thresholds, the hub."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.monitor import (
    LevelWindow,
    MonitorHub,
    RollingMonitor,
    RollingWindow,
    Threshold,
)


class TestRollingWindow:
    def test_mean_and_sum(self):
        window = RollingWindow(capacity=4)
        for value in (1.0, 2.0, 3.0):
            window.push(value)
        assert window.sum == 6.0
        assert window.mean == 2.0
        assert len(window) == 3

    def test_eviction_keeps_only_recent(self):
        window = RollingWindow(capacity=3)
        for value in (10.0, 1.0, 2.0, 3.0):
            window.push(value)
        assert len(window) == 3
        assert window.sum == pytest.approx(6.0)
        assert window.max == 3.0

    def test_long_run_sum_stays_consistent(self):
        window = RollingWindow(capacity=16)
        for i in range(1000):
            window.push(float(i % 7))
        assert window.sum == pytest.approx(sum([float(i % 7) for i in range(984, 1000)]))

    def test_quantile_interpolates(self):
        window = RollingWindow(capacity=100)
        for value in range(1, 101):
            window.push(float(value))
        assert window.quantile(0.0) == 1.0
        assert window.quantile(1.0) == 100.0
        assert window.quantile(0.5) == pytest.approx(50.5)

    def test_empty_window(self):
        window = RollingWindow()
        assert window.mean == 0.0
        assert window.min is None
        assert window.quantile(0.5) is None

    def test_extend_bits(self):
        window = RollingWindow(capacity=10)
        window.extend_bits(2, 5)
        assert len(window) == 5
        assert window.mean == pytest.approx(0.4)
        with pytest.raises(ValueError):
            window.extend_bits(3, 2)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            RollingWindow(capacity=0)


class TestRollingMonitor:
    def test_windowed_rate_tracks_recent_not_lifetime(self):
        monitor = RollingMonitor("failure", capacity=10)
        monitor.extend(10, 10)   # terrible past ...
        monitor.extend(0, 10)    # ... fully evicted by a clean present
        assert monitor.value == 0.0

    def test_threshold_fires_once_and_rearms(self):
        fired, cleared = [], []
        monitor = RollingMonitor("failure", capacity=10)
        monitor.add_threshold(
            0.5,
            lambda m, v: fired.append(v),
            min_count=4,
            on_clear=lambda m, v: cleared.append(v),
        )
        monitor.extend(4, 4)          # 100% bad, above limit
        monitor.extend(0, 1)          # still above: no second alert
        assert len(fired) == 1 and monitor.breached
        monitor.extend(0, 5)          # window mean 0.4 < 0.5: recovers
        assert len(cleared) == 1 and not monitor.breached
        monitor.extend(10, 10)        # breaches again after re-arming
        assert len(fired) == 2

    def test_threshold_needs_min_count(self):
        fired = []
        monitor = RollingMonitor("failure", capacity=10)
        monitor.add_threshold(0.5, lambda m, v: fired.append(v), min_count=5)
        monitor.extend(3, 3)
        assert not fired, "window below min_count must stay silent"
        monitor.extend(2, 2)
        assert len(fired) == 1

    def test_below_direction(self):
        fired = []
        monitor = RollingMonitor("hit_rate", capacity=10)
        monitor.add_threshold(
            0.5, lambda m, v: fired.append(v), direction="below", min_count=2
        )
        monitor.observe(1.0)
        monitor.observe(0.0)
        assert not fired            # 0.5 is not below 0.5
        monitor.observe(0.0)
        assert len(fired) == 1

    def test_reset_empties_window_and_rearms(self):
        monitor = RollingMonitor("x", capacity=4)
        monitor.add_threshold(0.5, lambda m, v: None, min_count=1)
        monitor.extend(4, 4)
        assert monitor.breached
        monitor.reset()
        assert monitor.count == 0 and not monitor.breached

    def test_extend_ignores_empty_batches(self):
        monitor = RollingMonitor("x")
        assert monitor.extend(0, 0) == 0.0
        assert monitor.count == 0

    def test_invalid_threshold_direction(self):
        with pytest.raises(ValueError):
            Threshold(0.5, lambda m, v: None, direction="sideways")


class TestLevelWindow:
    def test_rates_by_level_with_misses(self):
        window = LevelWindow("hit_level", capacity=10)
        for level in (2, 2, 1, None):
            window.observe(level)
        assert window.rates() == {"L1": 0.25, "L2": 0.5, "miss": 0.25}

    def test_rolls_over(self):
        window = LevelWindow("hit_level", capacity=2)
        for level in (0, 1, 2):
            window.observe(level)
        assert window.rates() == {"L1": 0.5, "L2": 0.5}

    def test_empty(self):
        assert LevelWindow("x").rates() == {}


class TestMonitorHub:
    def test_standard_monitors_exist(self):
        hub = MonitorHub()
        assert set(hub.all()) == {
            "failure", "degraded", "latency", "rejection", "hit_rate", "hit_level",
            "drift", "calibration",
        }

    def test_reset_clears_every_window(self):
        hub = MonitorHub()
        hub.failure.extend(1, 2)
        hub.hit_level.observe(3)
        hub.reset()
        assert hub.failure.count == 0
        assert len(hub.hit_level) == 0

    def test_to_dict_is_json_shaped(self):
        hub = MonitorHub()
        hub.latency.observe(0.25)
        snapshot = hub.to_dict()
        assert snapshot["latency"]["value"] == 0.25
        assert snapshot["hit_level"] == {"count": 0, "rates": {}}


class TestRegistryIntegration:
    def test_each_registry_owns_a_hub(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.monitors.failure.extend(1, 1)
        assert b.monitors.failure.count == 0

    def test_full_registry_reset_resets_monitors(self):
        registry = MetricsRegistry()
        registry.monitors.failure.extend(1, 1)
        registry.reset()
        assert registry.monitors.failure.count == 0

    def test_prefixed_reset_leaves_monitors_alone(self):
        registry = MetricsRegistry()
        registry.monitors.failure.extend(1, 1)
        registry.reset(prefix="repro.kamel")
        assert registry.monitors.failure.count == 1

    def test_empty_registry_is_not_mistaken_for_the_default(self):
        """An empty registry is falsy (len 0); accessors must still honor
        it instead of falling back to the global registry."""
        from repro.obs.instrument import monitors

        empty = MetricsRegistry()
        assert len(empty) == 0 and not empty
        assert monitors(empty) is empty.monitors
