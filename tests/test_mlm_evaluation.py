"""Tests for the masked-model evaluation utilities."""

import pytest

from repro.errors import EmptyInputError
from repro.mlm import CountingMaskedLM, evaluate_masked_model

CORRIDOR = [[3, 4, 5, 6, 7, 8]] * 20
VOCAB = 16


@pytest.fixture(scope="module")
def model():
    return CountingMaskedLM().fit(CORRIDOR, VOCAB)


class TestEvaluateMaskedModel:
    def test_perfect_on_training_pattern(self, model):
        result = evaluate_masked_model(model, CORRIDOR[:3], top_k=5)
        assert result.top1_accuracy == 1.0
        assert result.topk_accuracy == 1.0
        assert result.num_predictions == 12  # 3 sequences x 4 interior slots

    def test_random_sequences_score_poorly(self, model):
        garbage = [[8, 3, 6, 4, 7, 5]] * 3
        result = evaluate_masked_model(model, garbage, top_k=3)
        assert result.top1_accuracy < 0.5

    def test_perplexity_ordering(self, model):
        good = evaluate_masked_model(model, CORRIDOR[:3], top_k=10)
        bad = evaluate_masked_model(model, [[8, 3, 6, 4, 7, 5]] * 3, top_k=10)
        assert good.pseudo_perplexity < bad.pseudo_perplexity

    def test_subsampling_caps_work(self, model):
        result = evaluate_masked_model(
            model, CORRIDOR, top_k=3, max_predictions=10, seed=1
        )
        assert result.num_predictions == 10

    def test_subsampling_deterministic(self, model):
        a = evaluate_masked_model(model, CORRIDOR, max_predictions=10, seed=2)
        b = evaluate_masked_model(model, CORRIDOR, max_predictions=10, seed=2)
        assert a == b

    def test_no_maskable_positions(self, model):
        with pytest.raises(EmptyInputError):
            evaluate_masked_model(model, [[3, 4]])

    def test_validation(self, model):
        with pytest.raises(ValueError):
            evaluate_masked_model(model, CORRIDOR, top_k=0)
        with pytest.raises(ValueError):
            evaluate_masked_model(model, CORRIDOR, floor_probability=2.0)

    def test_bert_backend_compatible(self):
        from repro.mlm import BertConfig, BertMaskedLM, TrainingConfig

        bert = BertMaskedLM(
            BertConfig(vocab_size=VOCAB, hidden_size=16, num_layers=1, num_heads=2, max_seq_len=8),
            TrainingConfig(epochs=5, seed=0),
        ).fit(CORRIDOR, VOCAB)
        result = evaluate_masked_model(bert, CORRIDOR[:2], top_k=5)
        assert 0.0 <= result.top1_accuracy <= 1.0
        assert result.pseudo_perplexity > 0.0
