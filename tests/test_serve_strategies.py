"""Partition routing: determinism, geometry, and the strategy factory.

The hard requirement under test here is that routing is a pure function
of explicit cell bytes — the same trajectory must land on the same shard
in the parent router, in a respawned worker replaying its journal, and
in a fresh interpreter with a different ``PYTHONHASHSEED``.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.core.tokenization import make_grid
from repro.errors import ConfigError
from repro.geo import BoundingBox, Point, Trajectory
from repro.serve.strategies import (
    STRATEGIES,
    HashCellStrategy,
    RoundRobinStrategy,
    SpatialRangeStrategy,
    make_strategy,
    stable_shard,
)


def _traj(traj_id: str, x: float, y: float) -> Trajectory:
    return Trajectory(traj_id, (Point(x, y, 0.0), Point(x + 50.0, y, 30.0)))


class TestStableShard:
    def test_golden_values(self):
        # Pinned outputs: any change here silently reshuffles every
        # journal and worker assignment in deployed pools.
        cells = [(0, 0), (1, -2), (-3, 7), (12, 5)]
        assert [stable_shard(c, 4) for c in cells] == [0, 3, 2, 3]

    def test_seed_changes_assignment(self):
        assert [stable_shard((0, 0), 4, seed=s) for s in range(4)] == [0, 2, 2, 0]

    def test_in_range_and_stable(self):
        for cell in [(-5, -5), (0, 0), (100, 3), (7, -13)]:
            for n in (1, 2, 3, 7):
                shard = stable_shard(cell, n)
                assert 0 <= shard < n
                assert shard == stable_shard(cell, n)

    def test_independent_of_pythonhashseed(self):
        # A fresh interpreter with a different hash salt must agree with
        # this process on every assignment — the property builtin hash()
        # would break.
        cells = [(0, 0), (3, -4), (-17, 9), (256, 1024)]
        local = [stable_shard(c, 8, seed=5) for c in cells]
        script = (
            "import json, sys\n"
            "from repro.serve.strategies import stable_shard\n"
            "cells = json.loads(sys.argv[1])\n"
            "print(json.dumps([stable_shard(tuple(c), 8, seed=5) for c in cells]))\n"
        )
        import repro

        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        for hashseed in ("0", "1", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env["PYTHONPATH"] = os.pathsep.join(
                filter(None, [src_dir, env.get("PYTHONPATH", "")])
            )
            out = subprocess.run(
                [sys.executable, "-c", script, json.dumps(cells)],
                env=env,
                capture_output=True,
                text=True,
                timeout=60,
            )
            assert out.returncode == 0, out.stderr
            assert json.loads(out.stdout) == local


class TestHashCellStrategy:
    def test_same_start_cell_same_shard(self):
        grid = make_grid("square", 100.0)
        strategy = HashCellStrategy(4, grid)
        a = strategy.shard_for(_traj("a", 10.0, 10.0))
        b = strategy.shard_for(_traj("b", 40.0, 60.0))  # same 100 m cell
        assert a == b
        assert 0 <= a < 4

    def test_empty_trajectory_routes_to_zero(self):
        strategy = HashCellStrategy(4, make_grid("square", 100.0))
        assert strategy.shard_for(Trajectory("empty", ())) == 0

    def test_spreads_across_shards(self):
        grid = make_grid("square", 50.0)
        strategy = HashCellStrategy(4, grid)
        shards = {
            strategy.shard_for(_traj(f"t{i}", i * 137.0, i * 59.0))
            for i in range(40)
        }
        assert len(shards) >= 3


class TestSpatialRangeStrategy:
    def test_stripes_partition_the_region(self):
        region = BoundingBox(0.0, 0.0, 400.0, 400.0)
        strategy = SpatialRangeStrategy(4, region)
        assert strategy.shard_for(_traj("left", 10.0, 200.0)) == 0
        assert strategy.shard_for(_traj("mid", 150.0, 200.0)) == 1
        assert strategy.shard_for(_traj("right", 390.0, 200.0)) == 3

    def test_clamps_outside_region(self):
        region = BoundingBox(0.0, 0.0, 400.0, 400.0)
        strategy = SpatialRangeStrategy(4, region)
        assert strategy.shard_for(_traj("west", -500.0, 0.0)) == 0
        assert strategy.shard_for(_traj("east", 5000.0, 0.0)) == 3

    def test_degenerate_region(self):
        region = BoundingBox(100.0, 0.0, 100.0, 400.0)  # zero width
        strategy = SpatialRangeStrategy(3, region)
        assert strategy.shard_for(_traj("t", 100.0, 10.0)) == 0


class TestRoundRobinStrategy:
    def test_cycles(self):
        strategy = RoundRobinStrategy(3)
        trajectory = _traj("t", 0.0, 0.0)
        assert [strategy.shard_for(trajectory) for _ in range(7)] == [
            0, 1, 2, 0, 1, 2, 0,
        ]


class TestFactory:
    def test_registry_names(self):
        assert set(STRATEGIES) == {"hash", "range", "round_robin"}

    def test_builds_each_kind(self):
        grid = make_grid("square", 100.0)
        region = BoundingBox(0.0, 0.0, 100.0, 100.0)
        assert isinstance(
            make_strategy("hash", 2, grid=grid), HashCellStrategy
        )
        assert isinstance(
            make_strategy("range", 2, region=region), SpatialRangeStrategy
        )
        assert isinstance(make_strategy("round_robin", 2), RoundRobinStrategy)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError, match="unknown partition strategy"):
            make_strategy("modulo", 2)

    def test_missing_context_rejected(self):
        with pytest.raises(ConfigError, match="grid"):
            make_strategy("hash", 2)
        with pytest.raises(ConfigError, match="region"):
            make_strategy("range", 2)

    def test_bad_partition_count_rejected(self):
        with pytest.raises(ConfigError, match="num_partitions"):
            make_strategy("round_robin", 0)
