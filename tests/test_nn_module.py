"""Tests for the Module/Parameter system and the Adam optimizer."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    Parameter,
    Sequential,
    Tensor,
    clip_grad_norm,
)
from repro.nn.functional import mse

RNG = np.random.default_rng(0)


class TinyNet(Module):
    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(1)
        self.layers = [Linear(4, 8, rng), Linear(8, 2, rng)]
        self.norm = LayerNorm(2)

    def forward(self, x):
        return self.norm(self.layers[1](self.layers[0](x).tanh()))


class TestModule:
    def test_parameters_discovered_recursively(self):
        net = TinyNet()
        params = list(net.parameters())
        # 2 Linears (weight+bias) + LayerNorm (weight+bias) = 6 tensors.
        assert len(params) == 6
        assert all(isinstance(p, Parameter) for p in params)

    def test_named_parameters_paths(self):
        names = {name for name, _ in TinyNet().named_parameters()}
        assert "layers.0.weight" in names
        assert "norm.bias" in names

    def test_num_parameters(self):
        net = TinyNet()
        assert net.num_parameters() == (4 * 8 + 8) + (8 * 2 + 2) + (2 + 2)

    def test_shared_parameter_counted_once(self):
        class Shared(Module):
            def __init__(self):
                super().__init__()
                self.a = Parameter(np.zeros(3))
                self.b = self.a

        assert len(list(Shared().parameters())) == 1

    def test_train_eval_propagates(self):
        net = Sequential(Dropout(0.5), Dropout(0.2))
        net.eval()
        assert all(not m.training for m in net.modules)
        net.train()
        assert all(m.training for m in net.modules)

    def test_state_dict_round_trip(self):
        net1, net2 = TinyNet(), TinyNet()
        net2.layers[0].weight.data += 1.0
        net2.load_state_dict(net1.state_dict())
        x = RNG.normal(size=(3, 4))
        np.testing.assert_allclose(net1(Tensor(x)).data, net2(Tensor(x)).data)

    def test_state_dict_mismatch_raises(self):
        net = TinyNet()
        state = net.state_dict()
        del state["norm.bias"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_state_dict_shape_mismatch_raises(self):
        net = TinyNet()
        state = net.state_dict()
        state["norm.bias"] = np.zeros(5)
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_zero_grad(self):
        net = TinyNet()
        net(Tensor(RNG.normal(size=(2, 4)))).sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestLayers:
    def test_linear_shapes(self):
        layer = Linear(5, 3, RNG)
        out = layer(Tensor(RNG.normal(size=(7, 5))))
        assert out.shape == (7, 3)

    def test_linear_batched_input(self):
        layer = Linear(5, 3, RNG)
        out = layer(Tensor(RNG.normal(size=(2, 7, 5))))
        assert out.shape == (2, 7, 3)

    def test_embedding_shapes(self):
        emb = Embedding(10, 6, RNG)
        out = emb(np.array([[1, 2, 3]]))
        assert out.shape == (1, 3, 6)

    def test_layernorm_affine(self):
        norm = LayerNorm(4)
        norm.weight.data[:] = 2.0
        norm.bias.data[:] = 1.0
        out = norm(Tensor(RNG.normal(size=(5, 4))))
        assert out.data.mean(axis=-1) == pytest.approx(np.ones(5), abs=1e-9)

    def test_dropout_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_sequential(self):
        rng = np.random.default_rng(2)
        net = Sequential(Linear(3, 5, rng), Linear(5, 2, rng))
        assert net(Tensor(RNG.normal(size=(4, 3)))).shape == (4, 2)


class TestOptim:
    def test_adam_reduces_loss_on_regression(self):
        rng = np.random.default_rng(3)
        true_w = rng.normal(size=(4, 1))
        x = rng.normal(size=(64, 4))
        y = x @ true_w
        layer = Linear(4, 1, rng)
        optimizer = Adam(list(layer.parameters()), lr=0.05)
        first = None
        for _ in range(150):
            loss = mse(layer(Tensor(x)), y)
            if first is None:
                first = loss.item()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert loss.item() < first * 0.01
        np.testing.assert_allclose(layer.weight.data, true_w, atol=0.05)

    def test_adam_validation(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.0)

    def test_warmup_schedule(self):
        p = Parameter(np.zeros(1))
        opt = Adam([p], lr=1.0, warmup_steps=10)
        assert opt.current_lr() == pytest.approx(0.1)
        for _ in range(10):
            p.grad = np.ones(1)
            opt.step()
        assert opt.current_lr() == pytest.approx(1.0)

    def test_step_skips_gradless_params(self):
        p = Parameter(np.ones(2))
        opt = Adam([p], lr=0.1)
        opt.step()  # no grad: must not move or crash
        np.testing.assert_allclose(p.data, np.ones(2))

    def test_weight_decay_shrinks(self):
        p = Parameter(np.full(2, 10.0))
        opt = Adam([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros(2)
        opt.step()
        assert (p.data < 10.0).all()

    def test_clip_grad_norm(self):
        p1 = Parameter(np.zeros(2))
        p2 = Parameter(np.zeros(2))
        p1.grad = np.array([3.0, 0.0])
        p2.grad = np.array([0.0, 4.0])
        pre = clip_grad_norm([p1, p2], max_norm=1.0)
        assert pre == pytest.approx(5.0)
        total = np.sqrt((p1.grad**2).sum() + (p2.grad**2).sum())
        assert total == pytest.approx(1.0)

    def test_clip_noop_under_limit(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([0.3, 0.4])
        clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(p.grad, [0.3, 0.4])
