"""Gradient checks for the numpy autograd engine.

Every operator's analytic gradient is compared against central finite
differences; the tolerances are tight because everything runs in float64.
"""

import numpy as np
import pytest

from repro.nn import Tensor, no_grad
from repro.nn.functional import cross_entropy, log_softmax, mse

RNG = np.random.default_rng(42)


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``fn`` at ``x``."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up = fn(x)
        flat[i] = original - eps
        down = fn(x)
        flat[i] = original
        gflat[i] = (up - down) / (2 * eps)
    return grad


def check_unary(op, shape=(3, 4), positive=False, atol=1e-6):
    data = RNG.uniform(0.5 if positive else -2.0, 2.0, size=shape)
    t = Tensor(data.copy(), requires_grad=True)
    out = op(t)
    out.sum().backward() if out.data.size > 1 else out.backward()
    expected = numeric_grad(lambda x: float(op(Tensor(x)).data.sum()), data.copy())
    np.testing.assert_allclose(t.grad, expected, atol=atol)


class TestElementwise:
    def test_add_broadcast(self):
        a = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(RNG.normal(size=(4,)), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 4)))
        np.testing.assert_allclose(b.grad, np.full(4, 3.0))

    def test_mul_grad(self):
        a_data = RNG.normal(size=(2, 3))
        b_data = RNG.normal(size=(2, 3))
        a = Tensor(a_data.copy(), requires_grad=True)
        b = Tensor(b_data.copy(), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, b_data)
        np.testing.assert_allclose(b.grad, a_data)

    def test_div_grad(self):
        a_data = RNG.normal(size=(5,))
        b_data = RNG.uniform(0.5, 2.0, size=(5,))
        a = Tensor(a_data.copy(), requires_grad=True)
        b = Tensor(b_data.copy(), requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, 1.0 / b_data)
        np.testing.assert_allclose(b.grad, -a_data / b_data**2)

    def test_sub_and_neg(self):
        a = Tensor([3.0], requires_grad=True)
        (1.0 - a).backward()
        np.testing.assert_allclose(a.grad, [-1.0])

    def test_pow(self):
        check_unary(lambda t: t.pow(3.0))

    def test_exp(self):
        check_unary(lambda t: t.exp())

    def test_log(self):
        check_unary(lambda t: t.log(), positive=True)

    def test_tanh(self):
        check_unary(lambda t: t.tanh())

    def test_gelu(self):
        check_unary(lambda t: t.gelu(), atol=1e-5)

    def test_relu(self):
        data = np.array([-1.0, 2.0, -0.5, 3.0])
        t = Tensor(data, requires_grad=True)
        t.relu().sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0, 1.0])


class TestShapeOps:
    def test_reshape(self):
        t = Tensor(RNG.normal(size=(2, 6)), requires_grad=True)
        t.reshape(3, 4).sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((2, 6)))

    def test_transpose(self):
        data = RNG.normal(size=(2, 3))
        t = Tensor(data.copy(), requires_grad=True)
        out = t.transpose(0, 1)
        assert out.shape == (3, 2)
        (out * Tensor(np.arange(6.0).reshape(3, 2))).sum().backward()
        np.testing.assert_allclose(t.grad, np.arange(6.0).reshape(3, 2).T)

    def test_sum_axis(self):
        t = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        t.sum(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((2, 3)))

    def test_mean(self):
        t = Tensor(RNG.normal(size=(4,)), requires_grad=True)
        t.mean().backward()
        np.testing.assert_allclose(t.grad, np.full(4, 0.25))


class TestMatmul:
    def test_2d(self):
        a_data = RNG.normal(size=(3, 4))
        b_data = RNG.normal(size=(4, 2))
        a = Tensor(a_data.copy(), requires_grad=True)
        b = Tensor(b_data.copy(), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 2)) @ b_data.T)
        np.testing.assert_allclose(b.grad, a_data.T @ np.ones((3, 2)))

    def test_batched(self):
        a_data = RNG.normal(size=(2, 3, 4))
        b_data = RNG.normal(size=(2, 4, 5))
        a = Tensor(a_data.copy(), requires_grad=True)
        b = Tensor(b_data.copy(), requires_grad=True)
        (a @ b).sum().backward()
        expected_a = numeric_grad(
            lambda x: float((x @ b_data).sum()), a_data.copy()
        )
        np.testing.assert_allclose(a.grad, expected_a, atol=1e-5)

    def test_broadcast_weight(self):
        """(B, T, D) @ (D, K): the shared weight accumulates over batch."""
        a_data = RNG.normal(size=(2, 3, 4))
        w_data = RNG.normal(size=(4, 5))
        w = Tensor(w_data.copy(), requires_grad=True)
        (Tensor(a_data) @ w).sum().backward()
        expected = numeric_grad(lambda x: float((a_data @ x).sum()), w_data.copy())
        np.testing.assert_allclose(w.grad, expected, atol=1e-5)


class TestSoftmaxFamily:
    def test_softmax_rows_sum_to_one(self):
        out = Tensor(RNG.normal(size=(4, 7))).softmax()
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4))

    def test_softmax_grad(self):
        data = RNG.normal(size=(2, 5))
        weights = RNG.normal(size=(2, 5))
        t = Tensor(data.copy(), requires_grad=True)
        (t.softmax() * Tensor(weights)).sum().backward()
        expected = numeric_grad(
            lambda x: float((_softmax_np(x) * weights).sum()), data.copy()
        )
        np.testing.assert_allclose(t.grad, expected, atol=1e-6)

    def test_log_softmax_grad(self):
        data = RNG.normal(size=(3, 4))
        weights = RNG.normal(size=(3, 4))
        t = Tensor(data.copy(), requires_grad=True)
        (log_softmax(t) * Tensor(weights)).sum().backward()
        expected = numeric_grad(
            lambda x: float((np.log(_softmax_np(x)) * weights).sum()), data.copy()
        )
        np.testing.assert_allclose(t.grad, expected, atol=1e-6)

    def test_softmax_numerically_stable(self):
        out = Tensor(np.array([[1000.0, 1000.0]])).softmax()
        np.testing.assert_allclose(out.data, [[0.5, 0.5]])


class TestLayerNorm:
    def test_output_normalized(self):
        x = Tensor(RNG.normal(2.0, 3.0, size=(4, 8)))
        out = x.layernorm(Tensor(np.ones(8)), Tensor(np.zeros(8)))
        np.testing.assert_allclose(out.data.mean(axis=-1), np.zeros(4), atol=1e-9)
        np.testing.assert_allclose(out.data.std(axis=-1), np.ones(4), atol=1e-3)

    def test_grads_vs_numeric(self):
        x_data = RNG.normal(size=(3, 6))
        w_data = RNG.uniform(0.5, 1.5, size=6)
        b_data = RNG.normal(size=6)
        coeff = RNG.normal(size=(3, 6))

        def forward(xv, wv, bv):
            mu = xv.mean(axis=-1, keepdims=True)
            var = xv.var(axis=-1, keepdims=True)
            xhat = (xv - mu) / np.sqrt(var + 1e-5)
            return float(((xhat * wv + bv) * coeff).sum())

        x = Tensor(x_data.copy(), requires_grad=True)
        w = Tensor(w_data.copy(), requires_grad=True)
        b = Tensor(b_data.copy(), requires_grad=True)
        (x.layernorm(w, b) * Tensor(coeff)).sum().backward()

        np.testing.assert_allclose(
            x.grad, numeric_grad(lambda v: forward(v, w_data, b_data), x_data.copy()), atol=1e-5
        )
        np.testing.assert_allclose(
            w.grad, numeric_grad(lambda v: forward(x_data, v, b_data), w_data.copy()), atol=1e-5
        )
        np.testing.assert_allclose(
            b.grad, numeric_grad(lambda v: forward(x_data, w_data, v), b_data.copy()), atol=1e-5
        )


class TestEmbedding:
    def test_lookup(self):
        table = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
        out = table.embedding(np.array([[0, 2], [3, 2]]))
        assert out.shape == (2, 2, 3)
        np.testing.assert_allclose(out.data[0, 1], [6.0, 7.0, 8.0])

    def test_scatter_add_gradient(self):
        table = Tensor(np.zeros((4, 2)), requires_grad=True)
        ids = np.array([[1, 1, 3]])
        table.embedding(ids).sum().backward()
        expected = np.array([[0, 0], [2, 2], [0, 0], [1, 1]], dtype=float)
        np.testing.assert_allclose(table.grad, expected)


class TestDropout:
    def test_eval_mode_identity(self):
        t = Tensor(RNG.normal(size=(5, 5)))
        out = t.dropout(0.5, np.random.default_rng(0), training=False)
        assert out is t

    def test_inverted_scaling_preserves_mean(self):
        data = np.ones((200, 200))
        out = Tensor(data).dropout(0.3, np.random.default_rng(0), training=True)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_grad_masked_like_forward(self):
        t = Tensor(np.ones((10, 10)), requires_grad=True)
        out = t.dropout(0.5, np.random.default_rng(7), training=True)
        out.sum().backward()
        # Gradient is zero exactly where the activation was dropped.
        np.testing.assert_allclose((out.data == 0), (t.grad == 0))


class TestCrossEntropy:
    def test_matches_manual(self):
        logits = Tensor(np.array([[2.0, 0.0, -1.0]]), requires_grad=True)
        loss = cross_entropy(logits, np.array([0]))
        manual = -np.log(_softmax_np(logits.data))[0, 0]
        assert loss.item() == pytest.approx(manual)

    def test_ignore_index(self):
        logits = Tensor(RNG.normal(size=(4, 5)), requires_grad=True)
        targets = np.array([1, -100, 2, -100])
        loss = cross_entropy(logits, targets)
        loss.backward()
        # Ignored rows receive no gradient.
        np.testing.assert_allclose(logits.grad[1], np.zeros(5))
        np.testing.assert_allclose(logits.grad[3], np.zeros(5))
        assert np.abs(logits.grad[0]).sum() > 0

    def test_all_ignored_raises(self):
        logits = Tensor(RNG.normal(size=(2, 3)))
        with pytest.raises(ValueError):
            cross_entropy(logits, np.array([-100, -100]))

    def test_gradient_vs_numeric(self):
        data = RNG.normal(size=(3, 4))
        targets = np.array([0, 3, 2])
        t = Tensor(data.copy(), requires_grad=True)
        cross_entropy(t, targets).backward()

        def loss_np(x):
            p = _softmax_np(x)
            return float(-np.log(p[np.arange(3), targets]).mean())

        np.testing.assert_allclose(t.grad, numeric_grad(loss_np, data.copy()), atol=1e-6)

    def test_3d_logits(self):
        logits = Tensor(RNG.normal(size=(2, 3, 5)), requires_grad=True)
        targets = np.array([[0, -100, 2], [-100, 4, 1]])
        loss = cross_entropy(logits, targets)
        loss.backward()
        assert logits.grad.shape == (2, 3, 5)

    def test_mse(self):
        pred = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        loss = mse(pred, np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)
        loss.backward()
        np.testing.assert_allclose(pred.grad, [1.0, 2.0])


class TestEngineSemantics:
    def test_diamond_graph_accumulates(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0
        z = y + y  # y used twice
        z.backward()
        np.testing.assert_allclose(x.grad, [6.0])

    def test_reused_leaf_accumulates(self):
        x = Tensor(np.array([4.0]), requires_grad=True)
        (x * x).backward()
        np.testing.assert_allclose(x.grad, [8.0])

    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = x * 2.0
        assert not out.requires_grad

    def test_backward_non_scalar_requires_grad_arg(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()

    def test_backward_on_non_grad_tensor(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(2)).backward()

    def test_zero_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        (x * 2.0).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        out = x
        for _ in range(3000):
            out = out * 1.0001
        out.backward()
        assert x.grad is not None


def _softmax_np(x: np.ndarray) -> np.ndarray:
    shifted = x - x.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=-1, keepdims=True)
