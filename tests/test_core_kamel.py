"""System-level tests for the Kamel facade."""

import dataclasses

import pytest

from repro import Kamel, KamelConfig
from repro.core.kamel import _assign_times, _linear_interior, infer_max_speed
from repro.errors import ConfigError, EmptyInputError, NotFittedError
from repro.geo import Point, Trajectory


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(grid_type="octagon"),
            dict(model_backend="gpt"),
            dict(imputer="dfs"),
            dict(cell_edge_m=0.0),
            dict(maxgap_m=-1.0),
            dict(beam_size=0),
            dict(length_norm_alpha=2.0),
            dict(cycle_window=0),
            dict(cone_half_angle_deg=95.0),
            dict(pyramid_levels=0),
            dict(pyramid_levels=9, pyramid_height=5),
            dict(model_threshold_k=0),
            dict(max_model_calls=0),
            dict(top_k_candidates=0),
            dict(pyramid_root_extent_m=0.0),
        ],
    )
    def test_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            KamelConfig(**kwargs)

    def test_defaults_are_paper_defaults(self):
        cfg = KamelConfig()
        assert cfg.cell_edge_m == 75.0
        assert cfg.maxgap_m == 100.0
        assert cfg.beam_size == 10
        assert cfg.cycle_window == 6
        assert cfg.cone_half_angle_deg == 45.0
        assert cfg.length_norm_alpha == 1.0
        assert cfg.grid_type == "hex"


class TestLifecycle:
    def test_unfitted_errors(self):
        system = Kamel()
        with pytest.raises(NotFittedError):
            system.impute(Trajectory("x", [Point(0, 0), Point(1, 1)]))
        with pytest.raises(NotFittedError):
            system.add_training([])

    def test_fit_empty_raises(self):
        with pytest.raises(EmptyInputError):
            Kamel().fit([])

    def test_fit_returns_self(self, small_split):
        train, _ = small_split
        system = Kamel(KamelConfig())
        assert system.fit(train[:20]) is system
        assert system.is_fitted
        assert system.name == "KAMEL"

    def test_repr(self, trained_kamel):
        assert "fitted" in repr(trained_kamel)


class TestImputation:
    def test_impute_preserves_anchor_points(self, trained_kamel, small_split):
        _, test = small_split
        sparse = test[0].sparsify(500.0)
        result = trained_kamel.impute(sparse)
        out = result.trajectory.points
        anchor_iter = iter(out)
        assert all(p in anchor_iter for p in sparse.points)

    def test_impute_fills_every_gap(self, trained_kamel, small_split):
        _, test = small_split
        sparse = test[1].sparsify(500.0)
        result = trained_kamel.impute(sparse)
        assert result.trajectory.max_gap() <= 300.0  # bounded by gap threshold

    def test_short_trajectory_passthrough(self, trained_kamel):
        single = Trajectory("single", [Point(0, 0, t=0.0)])
        result = trained_kamel.impute(single)
        assert result.trajectory == single
        assert result.num_segments == 0

    def test_dense_trajectory_untouched(self, trained_kamel, small_split):
        _, test = small_split
        dense = test[0]
        result = trained_kamel.impute(dense)
        assert result.num_segments <= 1  # virtually no gaps to fill

    def test_unknown_area_falls_back_to_linear(self, trained_kamel):
        far = Trajectory(
            "far",
            [Point(50_000.0, 50_000.0, t=0.0), Point(51_000.0, 50_000.0, t=100.0)],
        )
        result = trained_kamel.impute(far)
        assert result.num_segments == 1
        assert result.num_failed == 1
        # Linear fallback still fills the gap densely.
        assert result.trajectory.max_gap() <= trained_kamel.config.maxgap_m + 1e-6

    def test_imputed_points_time_ordered(self, trained_kamel, small_split):
        _, test = small_split
        sparse = test[2].sparsify(500.0)
        result = trained_kamel.impute(sparse)
        assert result.trajectory.is_time_ordered()

    def test_impute_batch(self, trained_kamel, small_split):
        _, test = small_split
        sparse = [t.sparsify(500.0) for t in test[:3]]
        results = trained_kamel.impute_batch(sparse)
        assert len(results) == 3

    def test_impute_stream_lazy(self, trained_kamel, small_split):
        _, test = small_split
        stream = trained_kamel.impute_stream(t.sparsify(500.0) for t in test[:2])
        first = next(stream)
        assert first.trajectory.traj_id == test[0].traj_id


class TestIncrementalTraining:
    def test_add_training_grows_vocabulary(self, small_split):
        train, _ = small_split
        system = Kamel(KamelConfig()).fit(train[:10])
        before = len(system.tokenizer.vocabulary)
        system.add_training(train[10:30])
        assert len(system.tokenizer.vocabulary) >= before

    def test_add_training_improves_or_keeps_models(self, small_split):
        train, _ = small_split
        system = Kamel(KamelConfig(model_threshold_k=50)).fit(train[:10])
        first = system.repository.num_models
        system.add_training(train[10:40])
        assert system.repository.num_models >= first


class TestAblationSwitches:
    def test_no_partitioning_uses_global_model(self, small_split):
        train, test = small_split
        system = Kamel(KamelConfig(use_partitioning=False)).fit(train[:30])
        assert system._global_model is not None
        assert system.repository.num_models == 0
        result = system.impute(test[0].sparsify(500.0))
        assert result.num_segments >= 0  # runs end to end

    def test_no_multipoint_leaves_gaps(self, small_split):
        train, test = small_split
        system = Kamel(KamelConfig(use_multipoint=False)).fit(train[:30])
        sparse = test[0].sparsify(600.0)
        result = system.impute(sparse)
        successful = [s for s in result.segments if not s.failed]
        for outcome in successful:
            assert outcome.imputed_points <= 1

    def test_no_constraints_still_runs(self, small_split):
        train, test = small_split
        system = Kamel(KamelConfig(use_constraints=False, max_model_calls=200)).fit(
            train[:30]
        )
        result = system.impute(test[0].sparsify(500.0))
        assert result.trajectory.max_gap() < 10_000.0


class TestHelpers:
    def test_infer_max_speed_percentile(self):
        traj = Trajectory(
            "t", [Point(i * 10.0, 0, t=float(i)) for i in range(50)]
        )  # constant 10 m/s
        assert infer_max_speed([traj]) == pytest.approx(10.0)

    def test_infer_max_speed_empty_fallback(self):
        assert infer_max_speed([]) == pytest.approx(14.0)

    def test_infer_max_speed_ignores_zero_dt(self):
        traj = Trajectory("t", [Point(0, 0, t=0.0), Point(100, 0, t=0.0)])
        assert infer_max_speed([traj]) == pytest.approx(14.0)

    def test_linear_interior_spacing(self):
        pts = _linear_interior(Point(0, 0), Point(450, 0), 100.0)
        assert len(pts) == 4
        assert pts[0].x == pytest.approx(90.0)

    def test_linear_interior_short_gap(self):
        assert _linear_interior(Point(0, 0), Point(50, 0), 100.0) == []

    def test_assign_times_by_arc_length(self):
        interior = [Point(100, 0), Point(200, 0)]
        timed = _assign_times(Point(0, 0, t=0.0), Point(300, 0, t=30.0), interior)
        assert [p.t for p in timed] == pytest.approx([10.0, 20.0])

    def test_assign_times_missing_endpoint_time(self):
        interior = [Point(100, 0)]
        assert _assign_times(Point(0, 0), Point(300, 0, t=30.0), interior) == interior
