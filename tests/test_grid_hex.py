"""Unit and property tests for the hexagonal grid (H3 substitute)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geo import BoundingBox, Point
from repro.grid import HexGrid

coords = st.floats(min_value=-5e4, max_value=5e4, allow_nan=False)
cells = st.tuples(st.integers(-300, 300), st.integers(-300, 300))


@pytest.fixture(scope="module")
def grid() -> HexGrid:
    return HexGrid(75.0)


class TestGeometry:
    def test_rejects_nonpositive_edge(self):
        with pytest.raises(ValueError):
            HexGrid(0.0)

    def test_cell_area(self, grid):
        assert grid.cell_area_m2 == pytest.approx(1.5 * math.sqrt(3) * 75.0**2)

    def test_centroid_spacing(self, grid):
        assert grid.centroid_spacing_m == pytest.approx(math.sqrt(3) * 75.0)

    def test_origin_cell(self, grid):
        assert grid.cell_of(Point(0, 0)) == (0, 0)
        c = grid.centroid((0, 0))
        assert (c.x, c.y) == (0.0, 0.0)

    @given(coords, coords)
    def test_round_trip_point_within_cell(self, grid, x, y):
        """A point's cell centroid is never further than the circumradius."""
        cell = grid.cell_of(Point(x, y))
        assert grid.centroid(cell).distance_to(Point(x, y)) <= 75.0 + 1e-6

    @given(cells)
    def test_centroid_maps_back_to_cell(self, grid, cell):
        assert grid.cell_of(grid.centroid(cell)) == cell

    def test_vertices_are_on_circumcircle(self, grid):
        c = grid.centroid((3, -2))
        for v in grid.vertices((3, -2)):
            assert c.distance_to(v) == pytest.approx(75.0)


class TestNeighbors:
    def test_six_neighbors(self, grid):
        assert len(grid.neighbors((0, 0))) == 6

    @given(cells)
    def test_neighbors_equidistant(self, grid, cell):
        """The paper's argument for hexagons: all 6 neighbours identical."""
        c = grid.centroid(cell)
        distances = [c.distance_to(grid.centroid(n)) for n in grid.neighbors(cell)]
        for d in distances:
            assert d == pytest.approx(grid.centroid_spacing_m)

    @given(cells)
    def test_neighbor_symmetry(self, grid, cell):
        for n in grid.neighbors(cell):
            assert cell in grid.neighbors(n)

    @given(cells)
    def test_neighbors_are_one_step(self, grid, cell):
        for n in grid.neighbors(cell):
            assert grid.cell_steps(cell, n) == 1


class TestCellSteps:
    def test_identity(self, grid):
        assert grid.cell_steps((5, -3), (5, -3)) == 0

    @given(cells, cells)
    def test_symmetric(self, grid, a, b):
        assert grid.cell_steps(a, b) == grid.cell_steps(b, a)

    @given(cells, cells, cells)
    def test_triangle_inequality(self, grid, a, b, c):
        assert grid.cell_steps(a, c) <= grid.cell_steps(a, b) + grid.cell_steps(b, c)

    @given(cells, cells)
    def test_steps_lower_bounds_metric_distance(self, grid, a, b):
        """k steps cannot cover more than k * centroid spacing."""
        metric = grid.cell_distance_m(a, b)
        steps = grid.cell_steps(a, b)
        assert metric <= steps * grid.centroid_spacing_m + 1e-6


class TestRegionQueries:
    def test_ring_zero(self, grid):
        assert grid.ring((2, 2), 0) == {(2, 2)}

    def test_ring_one(self, grid):
        ring = grid.ring((0, 0), 1)
        assert len(ring) == 7  # center + 6 neighbours

    def test_ring_two_size(self, grid):
        # 1 + 6 + 12 cells within two steps of a hexagon.
        assert len(grid.ring((0, 0), 2)) == 19

    def test_ring_negative_raises(self, grid):
        with pytest.raises(ValueError):
            grid.ring((0, 0), -1)

    def test_cells_in_bbox_complete(self, grid):
        """Brute-force cross-check of the bbox enumeration."""
        box = BoundingBox(-300, -300, 300, 300)
        enumerated = set(grid.cells_in_bbox(box))
        brute = set()
        for q in range(-10, 11):
            for r in range(-10, 11):
                if box.contains_point(grid.centroid((q, r))):
                    brute.add((q, r))
        assert enumerated == brute

    def test_cells_in_ellipse_degenerate(self, grid):
        assert grid.cells_in_ellipse(Point(0, 0), Point(1000, 0), 500.0) == set()

    def test_cells_in_ellipse_members(self, grid):
        f1, f2 = Point(0, 0), Point(500, 0)
        cells_found = grid.cells_in_ellipse(f1, f2, 700.0)
        assert cells_found
        for cell in cells_found:
            c = grid.centroid(cell)
            assert c.distance_to(f1) + c.distance_to(f2) <= 700.0 + 1e-9
        # The midpoint cell must be inside.
        assert grid.cell_of(Point(250, 0)) in cells_found

    def test_cells_in_cone_direction(self, grid):
        cone = grid.cells_in_cone(Point(0, 0), 0.0, math.pi / 4, 500.0)
        assert cone
        for cell in cone:
            c = grid.centroid(cell)
            assert c.x > 0  # everything east-ish
        # A cell straight north must not be in an eastward 45-degree cone.
        north = grid.cell_of(Point(0, 400))
        assert north not in cone

    def test_cells_in_cone_respects_range(self, grid):
        cone = grid.cells_in_cone(Point(0, 0), 0.0, math.pi / 4, 300.0)
        for cell in cone:
            assert grid.centroid(cell).distance_to(Point(0, 0)) <= 300.0


class TestEllipseCompleteness:
    @given(
        st.floats(min_value=-500, max_value=500),
        st.floats(min_value=-500, max_value=500),
        st.floats(min_value=100, max_value=800),
    )
    def test_no_qualifying_cell_missed(self, grid, fx, fy, extra):
        """cells_in_ellipse must find EVERY cell whose centroid qualifies."""
        from repro.geo import BoundingBox

        f1 = Point(fx, fy)
        f2 = Point(fx + 400.0, fy)
        max_sum = f1.distance_to(f2) + extra
        found = grid.cells_in_ellipse(f1, f2, max_sum)
        # Brute force over a generous bounding window.
        half = max_sum
        cx, cy = (f1.x + f2.x) / 2, (f1.y + f2.y) / 2
        window = BoundingBox(cx - half, cy - half, cx + half, cy + half)
        for cell in grid.cells_in_bbox(window):
            c = grid.centroid(cell)
            if c.distance_to(f1) + c.distance_to(f2) <= max_sum:
                assert cell in found
