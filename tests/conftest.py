"""Shared fixtures: small synthetic workloads, trained systems.

Everything expensive is session-scoped so the suite stays fast; tests must
not mutate fixture objects (the library's public objects are immutable
dataclasses wherever practical, which keeps this safe).
"""

from __future__ import annotations

import pytest

from repro import Kamel, KamelConfig
from repro.roadnet import CityConfig, SimulatorConfig, TrajectorySimulator, generate_city
from repro.roadnet.datasets import Dataset, make_jakarta_like, make_porto_like


@pytest.fixture(scope="session")
def small_city():
    """A small deterministic road network (~1.5 km, fast to route on)."""
    return generate_city(
        CityConfig(width_m=1500.0, height_m=1500.0, block_m=250.0, n_roundabouts=1, seed=3)
    )


@pytest.fixture(scope="session")
def small_dataset(small_city) -> Dataset:
    """~80 dense trips over the small city."""
    sim = TrajectorySimulator(
        small_city,
        SimulatorConfig(sample_interval_s=2.0, min_trip_length_m=600.0, seed=5),
    )
    return Dataset("small", small_city, tuple(sim.simulate(80, id_prefix="small")))


@pytest.fixture(scope="session")
def porto_small() -> Dataset:
    """A scaled-down Porto-like workload."""
    return make_porto_like(n_trajectories=250, scale=0.8, seed=21)


@pytest.fixture(scope="session")
def jakarta_small() -> Dataset:
    """A scaled-down Jakarta-like workload."""
    return make_jakarta_like(n_trajectories=60, scale=0.7, seed=23)


@pytest.fixture(scope="session")
def trained_kamel(small_dataset) -> Kamel:
    """A KAMEL system trained on the small dataset (counting backend)."""
    train, _ = small_dataset.split(seed=1)
    return Kamel(KamelConfig(max_model_calls=600)).fit(train)


@pytest.fixture(scope="session")
def small_split(small_dataset):
    """The (train, test) split matching :func:`trained_kamel`."""
    return small_dataset.split(seed=1)
