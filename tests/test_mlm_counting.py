"""Tests for the counting masked LM backend."""

import pytest

from repro.errors import NotFittedError
from repro.mlm import CountingMaskedLM

# A tiny "road": trips run 3 -> 4 -> 5 -> 6 -> 7 -> 8 forward and back.
FORWARD = [[3, 4, 5, 6, 7, 8]] * 10
BACKWARD = [[8, 7, 6, 5, 4, 3]] * 10
# A branch: from 5 trips either continue to 6.. or turn off to 20, 21.
BRANCHING = [[3, 4, 5, 6, 7, 8]] * 6 + [[3, 4, 5, 20, 21, 22]] * 6
VOCAB = 32


def fitted(sequences=FORWARD) -> CountingMaskedLM:
    return CountingMaskedLM().fit(sequences, VOCAB)


class TestFit:
    def test_is_fitted(self):
        model = CountingMaskedLM()
        assert not model.is_fitted
        model.fit(FORWARD, VOCAB)
        assert model.is_fitted

    def test_num_training_tokens(self):
        assert fitted().num_training_tokens == 60

    def test_incremental_fit_accumulates(self):
        model = CountingMaskedLM()
        model.fit(FORWARD[:5], VOCAB)
        model.fit(FORWARD[5:], VOCAB)
        assert model.num_training_tokens == 60

    def test_validation(self):
        with pytest.raises(ValueError):
            CountingMaskedLM(smoothing=0.0)
        with pytest.raises(ValueError):
            CountingMaskedLM(horizon=1)
        with pytest.raises(ValueError):
            CountingMaskedLM().fit(FORWARD, 0)


class TestPredict:
    def test_requires_fit(self):
        with pytest.raises(NotFittedError):
            CountingMaskedLM().predict_masked([3, 0, 5], 1)

    def test_validates_arguments(self):
        model = fitted()
        with pytest.raises(ValueError):
            model.predict_masked([], 0)
        with pytest.raises(ValueError):
            model.predict_masked([3, 4], 5)

    def test_middle_token(self):
        model = fitted()
        predictions = model.predict_masked([4, 0, 6], 1, top_k=3)
        assert predictions[0][0] == 5

    def test_probabilities_sorted_and_normalized(self):
        model = fitted(BRANCHING)
        predictions = model.predict_masked([4, 0, 6], 1, top_k=10)
        probs = [p for _, p in predictions]
        assert probs == sorted(probs, reverse=True)
        assert sum(probs) <= 1.0 + 1e-9
        assert all(p > 0 for p in probs)

    def test_top_k_limits(self):
        model = fitted(BRANCHING)
        assert len(model.predict_masked([4, 0, 6], 1, top_k=1)) == 1

    def test_left_edge_prediction(self):
        model = fitted()
        predictions = model.predict_masked([0, 4, 5], 0, top_k=3)
        assert predictions[0][0] == 3

    def test_route_table_bridges_distant_pair(self):
        """Destination pull: between 4 and a *far* destination 8 the model
        must prefer 5 (the on-route successor) even though (4, 8) were
        never adjacent in training."""
        model = fitted()
        predictions = model.predict_masked([4, 0, 8], 1, top_k=3)
        assert predictions[0][0] == 5

    def test_route_disambiguates_branch(self):
        """From 5, trips continue to 6 or turn to 20; the far destination
        determines which successor the model must choose."""
        model = fitted(BRANCHING)
        toward_8 = model.predict_masked([5, 0, 8], 1, top_k=1)[0][0]
        toward_22 = model.predict_masked([5, 0, 22], 1, top_k=1)[0][0]
        assert toward_8 == 6
        assert toward_22 == 20

    def test_unseen_context_backs_off_to_unigram(self):
        model = fitted()
        predictions = model.predict_masked([30, 0, 31], 1, top_k=5)
        assert predictions  # unigram fallback still proposes known tokens
        assert all(3 <= token <= 8 for token, _ in predictions)

    def test_bidirectional_training_data(self):
        model = fitted(FORWARD + BACKWARD)
        predictions = model.predict_masked([7, 0, 5], 1, top_k=2)
        assert predictions[0][0] == 6


class TestPersistence:
    def test_round_trip(self):
        model = fitted(BRANCHING)
        restored = CountingMaskedLM.from_dict(model.to_dict())
        assert restored.num_training_tokens == model.num_training_tokens
        assert restored.horizon == model.horizon
        original = model.predict_masked([5, 0, 8], 1, top_k=5)
        recovered = restored.predict_masked([5, 0, 8], 1, top_k=5)
        assert [t for t, _ in original] == [t for t, _ in recovered]
        for (_, p1), (_, p2) in zip(original, recovered):
            assert p1 == pytest.approx(p2)

    def test_dict_is_json_serializable(self):
        import json

        payload = json.dumps(fitted().to_dict())
        restored = CountingMaskedLM.from_dict(json.loads(payload))
        assert restored.is_fitted


class TestPredictionProperties:
    """Hypothesis-driven invariants of predict_masked."""

    from hypothesis import given, settings, strategies as st

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=9999),
        position=st.integers(min_value=0, max_value=5),
        top_k=st.integers(min_value=1, max_value=12),
    )
    def test_output_well_formed(self, seed, position, top_k):
        import numpy as np

        rng = np.random.default_rng(seed)
        seqs = [
            [int(t) for t in rng.integers(3, 12, size=rng.integers(3, 8))]
            for _ in range(10)
        ]
        model = CountingMaskedLM().fit(seqs, 16)
        query = [int(t) for t in rng.integers(3, 12, size=6)]
        predictions = model.predict_masked(query, position, top_k=top_k)
        assert len(predictions) <= top_k
        probs = [p for _, p in predictions]
        assert probs == sorted(probs, reverse=True)
        assert sum(probs) <= 1.0 + 1e-9
        assert all(p > 0 for p in probs)
        assert all(t >= 3 for t, _ in predictions)  # never specials

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=9999))
    def test_deterministic(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        seqs = [
            [int(t) for t in rng.integers(3, 12, size=6)] for _ in range(8)
        ]
        a = CountingMaskedLM().fit(seqs, 16)
        b = CountingMaskedLM().fit(seqs, 16)
        query = [int(t) for t in rng.integers(3, 12, size=5)]
        assert a.predict_masked(query, 2) == b.predict_masked(query, 2)

    def test_interpolation_scoring_also_well_formed(self):
        model = CountingMaskedLM(scoring="interpolation").fit(BRANCHING, VOCAB)
        predictions = model.predict_masked([4, 0, 6], 1, top_k=5)
        probs = [p for _, p in predictions]
        assert probs == sorted(probs, reverse=True)
        assert sum(probs) <= 1.0 + 1e-9

    def test_scoring_validation(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            CountingMaskedLM(scoring="magic")
