"""Tests for saving/loading a trained KAMEL system."""

import json

import pytest

from repro import Kamel, KamelConfig
from repro.errors import KamelError, NotFittedError
from repro.io import load_kamel, save_kamel


class TestRoundTrip:
    @pytest.fixture(scope="class")
    def saved(self, trained_kamel, tmp_path_factory):
        directory = tmp_path_factory.mktemp("kamel_model")
        save_kamel(trained_kamel, directory)
        return directory

    def test_layout(self, saved):
        for name in ("config.json", "system.json", "store.json", "detokenizer.json", "manifest.json"):
            assert (saved / name).exists(), name
        assert any((saved / "models").iterdir())

    def test_config_restored(self, saved, trained_kamel):
        restored = load_kamel(saved)
        assert restored.config == trained_kamel.config
        assert restored.is_fitted

    def test_vocabulary_restored(self, saved, trained_kamel):
        restored = load_kamel(saved)
        assert len(restored.tokenizer.vocabulary) == len(trained_kamel.tokenizer.vocabulary)

    def test_repository_restored(self, saved, trained_kamel):
        restored = load_kamel(saved)
        assert restored.repository.num_models == trained_kamel.repository.num_models
        assert restored.repository.maintained_levels == trained_kamel.repository.maintained_levels

    def test_store_restored(self, saved, trained_kamel):
        restored = load_kamel(saved)
        assert len(restored.store) == len(trained_kamel.store)
        assert restored.store.total_tokens == trained_kamel.store.total_tokens

    def test_imputation_identical_after_round_trip(self, saved, trained_kamel, small_split):
        _, test = small_split
        sparse = test[0].sparsify(500.0)
        restored = load_kamel(saved)
        original = trained_kamel.impute(sparse)
        recovered = restored.impute(sparse)
        assert len(original.trajectory) == len(recovered.trajectory)
        for a, b in zip(original.trajectory.points, recovered.trajectory.points):
            assert a.x == pytest.approx(b.x)
            assert a.y == pytest.approx(b.y)
        assert original.num_failed == recovered.num_failed

    def test_save_via_method(self, trained_kamel, tmp_path):
        trained_kamel.save(tmp_path / "via_method")
        restored = Kamel.load(tmp_path / "via_method")
        assert restored.is_fitted


class TestErrors:
    def test_save_unfitted_rejected(self, tmp_path):
        with pytest.raises(NotFittedError):
            save_kamel(Kamel(), tmp_path)

    def test_version_mismatch_rejected(self, trained_kamel, tmp_path):
        save_kamel(trained_kamel, tmp_path)
        payload = json.loads((tmp_path / "config.json").read_text())
        payload["version"] = 999
        (tmp_path / "config.json").write_text(json.dumps(payload))
        with pytest.raises(KamelError):
            load_kamel(tmp_path)


class TestBertPersistence:
    def test_bert_backend_round_trip(self, small_split, tmp_path):
        train, test = small_split
        config = KamelConfig(
            model_backend="bert",
            bert_epochs=8,
            use_partitioning=False,
            max_model_calls=200,
        )
        system = Kamel(config).fit(train[:20])
        save_kamel(system, tmp_path)
        restored = load_kamel(tmp_path)
        assert restored._global_model is not None
        sparse = test[0].sparsify(500.0)
        original = system.impute(sparse)
        recovered = restored.impute(sparse)
        assert len(original.trajectory) == len(recovered.trajectory)
