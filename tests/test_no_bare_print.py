"""Library code must log through ``repro.obs.logging``, not ``print``.

``print`` is fine in the CLI (it *is* the user interface) and in the viz
helpers (which narrate figure generation), but everywhere else in
``src/repro/`` output must go through the structured ``repro`` logger so
it can be filtered, formatted, and captured. This test walks the ASTs so
a ``print(`` inside a docstring or comment is not a false positive.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

# print() is the intended output channel in these places.
ALLOWED = ("cli.py", "viz/")


def _is_allowed(path: Path) -> bool:
    rel = path.relative_to(SRC).as_posix()
    return any(rel == a or rel.startswith(a) for a in ALLOWED)


def _print_calls(path: Path):
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            yield node.lineno


def test_no_bare_print_outside_cli_and_viz():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if _is_allowed(path):
            continue
        offenders.extend(
            f"{path.relative_to(SRC)}:{line}" for line in _print_calls(path)
        )
    assert not offenders, (
        "bare print() in library code (use repro.obs.logging): "
        + ", ".join(offenders)
    )


def test_the_scan_actually_sees_source_files():
    """Guard against the lint silently passing on an empty glob."""
    scanned = [p for p in SRC.rglob("*.py") if not _is_allowed(p)]
    assert len(scanned) > 10
