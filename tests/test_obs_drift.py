"""Tests for repro.obs.drift: sketches, divergences, and the drift demo.

The demo at the bottom is the acceptance scenario for quality
observability: fit on city A, serve density-shifted traffic, and watch
the drift gauge cross its threshold and breach ``/healthz`` — while a
same-city control run stays green.
"""

import json
import math
import urllib.request

import pytest

from repro import HexGrid, Kamel, KamelConfig
from repro.geo import Point, Trajectory
from repro.obs.drift import (
    DEFAULT_DRIFT_LIMIT,
    DistributionSketch,
    DriftDetector,
    population_stability_index,
    smoothed_js_divergence,
)
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.server import ObservabilityServer
from repro.roadnet import (
    CityConfig,
    SimulatorConfig,
    TrajectorySimulator,
    generate_city,
)


@pytest.fixture()
def fresh_registry():
    """A private registry (own monitors, own quality state) per test."""
    registry = MetricsRegistry()
    previous = set_registry(registry)
    yield registry
    set_registry(previous)


def _traj(coords, traj_id="t", dt=10.0):
    points = [Point(x, y, k * dt) for k, (x, y) in enumerate(coords)]
    return Trajectory(traj_id, points)


class TestDivergences:
    def test_identical_distributions_score_near_zero(self):
        counts = [10.0, 20.0, 5.0, 0.0]
        assert population_stability_index(counts, counts) == pytest.approx(0.0, abs=1e-9)
        assert smoothed_js_divergence(counts, counts) == pytest.approx(0.0, abs=1e-9)

    def test_disjoint_supports_score_large_but_finite(self):
        a = [100.0, 0.0, 0.0, 0.0]
        b = [0.0, 0.0, 0.0, 100.0]
        psi = population_stability_index(a, b)
        js = smoothed_js_divergence(a, b)
        assert math.isfinite(psi) and psi > 1.0
        # JS is bounded by ln 2, and disjoint supports approach the bound.
        assert 0.5 < js <= math.log(2.0) + 1e-9

    def test_psi_reads_moderate_shift_between_stable_and_disjoint(self):
        stable = population_stability_index([50, 30, 20], [49, 31, 20])
        shifted = population_stability_index([50, 30, 20], [20, 30, 50])
        assert stable < 0.1 < shifted

    def test_misaligned_vectors_raise(self):
        with pytest.raises(ValueError, match="aligned"):
            population_stability_index([1.0, 2.0], [1.0])
        with pytest.raises(ValueError, match="aligned"):
            smoothed_js_divergence([1.0], [1.0, 2.0])


class TestDistributionSketch:
    def test_accumulates_cells_and_features(self):
        grid = HexGrid(50.0)
        sketch = DistributionSketch()
        sketch.observe_trajectory(_traj([(0.0, 0.0), (120.0, 0.0), (240.0, 0.0)]), grid)
        assert sketch.trajectories == 1
        assert sketch.total_points == 3
        assert sketch.num_cells >= 2  # 120 m apart at 50 m edges: distinct cells
        # Two 120 m / 10 s segments: length, duration, and speed all land.
        assert sum(sketch.feature_counts["segment_length_m"]) == 2
        assert sum(sketch.feature_counts["gap_duration_s"]) == 2
        assert sum(sketch.feature_counts["speed_mps"]) == 2

    def test_roundtrips_through_json(self):
        grid = HexGrid(50.0)
        sketch = DistributionSketch.from_trajectories(
            [_traj([(0.0, 0.0), (130.0, 40.0)]), _traj([(-200.0, 90.0), (-60.0, 90.0)])],
            grid,
        )
        payload = json.loads(json.dumps(sketch.to_dict()))
        restored = DistributionSketch.from_dict(payload)
        assert restored.cell_counts == sketch.cell_counts
        assert restored.feature_counts == sketch.feature_counts
        assert restored.trajectories == sketch.trajectories

    def test_from_token_store_matches_trained_cells(self, trained_kamel):
        rebuilt = DistributionSketch.from_token_store(
            trained_kamel.store, trained_kamel.tokenizer
        )
        reference = trained_kamel.reference_sketch
        assert reference is not None
        # The token store quantizes features but keeps cells exact, so the
        # rebuilt support must match the training sketch's support.
        assert set(rebuilt.cell_counts) == set(reference.cell_counts)
        assert rebuilt.trajectories == reference.trajectories


class TestDriftDetector:
    def _reference(self, grid):
        return DistributionSketch.from_trajectories(
            [_traj([(0.0, 0.0), (80.0, 0.0), (160.0, 0.0), (240.0, 0.0)])], grid
        )

    def test_empty_reference_is_rejected(self):
        with pytest.raises(ValueError, match="reference sketch is empty"):
            DriftDetector(DistributionSketch(), HexGrid(50.0))

    def test_window_must_hold_something(self):
        grid = HexGrid(50.0)
        with pytest.raises(ValueError, match="window"):
            DriftDetector(self._reference(grid), grid, window=0)

    def test_window_evicts_oldest(self, fresh_registry):
        grid = HexGrid(50.0)
        detector = DriftDetector(self._reference(grid), grid, window=2, min_observations=1)
        for k in range(4):
            detector.observe(_traj([(k * 10.0, 0.0), (k * 10.0 + 60.0, 0.0)]))
        assert detector.window_trajectories == 2
        assert fresh_registry.get("repro.drift.observations_total").value == 4

    def test_unseen_cell_mass_separates_in_from_out_of_support(self, fresh_registry):
        grid = HexGrid(50.0)
        inside = DriftDetector(self._reference(grid), grid, min_observations=1)
        scores = inside.observe(_traj([(0.0, 0.0), (80.0, 0.0)]))
        assert scores["unseen_cell_mass"] == pytest.approx(0.0)

        outside = DriftDetector(self._reference(grid), grid, min_observations=1)
        scores = outside.observe(_traj([(5000.0, 5000.0), (5080.0, 5000.0)]))
        assert scores["unseen_cell_mass"] == pytest.approx(1.0)
        assert scores["cell_psi"] > 1.0

    def test_headline_feed_waits_for_min_observations(self, fresh_registry):
        grid = HexGrid(50.0)
        detector = DriftDetector(self._reference(grid), grid, min_observations=3)
        detector.observe(_traj([(5000.0, 5000.0), (5080.0, 5000.0)]))
        assert not detector.ready
        # The score itself reads 1.0 but the monitor is fed 0.0 until the
        # window holds enough traffic to mean anything.
        assert detector.scores["unseen_cell_mass"] == pytest.approx(1.0)
        assert fresh_registry.monitors.drift.value == pytest.approx(0.0)
        detector.observe(_traj([(5000.0, 5100.0), (5080.0, 5100.0)]))
        detector.observe(_traj([(5000.0, 5200.0), (5080.0, 5200.0)]))
        assert detector.ready
        assert fresh_registry.monitors.drift.window.max == pytest.approx(1.0)

    def test_to_dict_is_json_ready(self, fresh_registry):
        grid = HexGrid(50.0)
        detector = DriftDetector(self._reference(grid), grid, min_observations=1)
        detector.observe(_traj([(0.0, 0.0), (90.0, 10.0)]))
        doc = json.loads(json.dumps(detector.to_dict()))
        assert doc["window_trajectories"] == 1
        assert doc["reference"]["points"] == 4
        assert "unseen_cell_mass" in doc["scores"]


class TestPersistence:
    def test_reference_sketch_travels_with_the_model_store(self, trained_kamel, tmp_path):
        target = tmp_path / "model"
        trained_kamel.save(target)
        assert (target / "drift.json").exists()
        loaded = Kamel.load(target)
        assert loaded.reference_sketch is not None
        assert loaded.reference_sketch.to_dict() == trained_kamel.reference_sketch.to_dict()

    def test_loaded_system_can_enable_quality_observability(
        self, trained_kamel, tmp_path, fresh_registry
    ):
        target = tmp_path / "model"
        trained_kamel.save(target)
        loaded = Kamel.load(target)
        loaded.enable_quality_observability(min_observations=1)
        assert loaded.drift_detector is not None
        assert loaded.drift_detector.reference.total_points > 0


# -- the acceptance demo ----------------------------------------------------
#
# 25 m cells make the two 1.5 km synthetic cities spatially distinct (the
# default 75 m hexagons are coarse enough that both road layouts land on
# largely the same cells); 200 model calls keep the fit fast.


@pytest.fixture(scope="module")
def drift_system(small_city):
    train = TrajectorySimulator(
        small_city, SimulatorConfig(sample_interval_s=2.0, seed=5)
    ).simulate(60)
    return Kamel(KamelConfig(cell_edge_m=25.0, max_model_calls=200)).fit(train)


def _healthz(registry):
    with ObservabilityServer(port=0, registry=registry) as server:
        with urllib.request.urlopen(server.url + "/healthz", timeout=5) as response:
            return json.loads(response.read().decode())


class TestDriftDemo:
    def test_density_shifted_traffic_breaches_health(self, drift_system, fresh_registry):
        drift_system.enable_quality_observability(min_observations=8)
        shifted_city = generate_city(
            CityConfig(
                width_m=1500.0, height_m=1500.0, block_m=180.0, n_roundabouts=2, seed=11
            )
        )
        feed = TrajectorySimulator(
            shifted_city, SimulatorConfig(sample_interval_s=2.0, seed=99)
        ).simulate(16)
        for trajectory in feed:
            drift_system.impute(trajectory.sparsify(800.0))

        detector = drift_system.drift_detector
        assert detector.ready
        assert detector.scores["unseen_cell_mass"] > DEFAULT_DRIFT_LIMIT
        assert fresh_registry.monitors.drift.breached

        doc = _healthz(fresh_registry)
        assert doc["status"] == "degraded"
        assert "drift" in doc["breached_monitors"]

    def test_same_city_control_stays_green(self, drift_system, small_city, fresh_registry):
        drift_system.enable_quality_observability(min_observations=8)
        feed = TrajectorySimulator(
            small_city, SimulatorConfig(sample_interval_s=2.0, seed=99)
        ).simulate(12)
        for trajectory in feed:
            drift_system.impute(trajectory.sparsify(800.0))

        detector = drift_system.drift_detector
        assert detector.ready
        # Only GPS noise pushes control points off the trained cells.
        assert detector.scores["unseen_cell_mass"] < 0.05
        assert not fresh_registry.monitors.drift.breached

        doc = _healthz(fresh_registry)
        assert doc["status"] == "ok"
        assert "drift" not in doc["breached_monitors"]
