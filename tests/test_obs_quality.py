"""Tests for repro.obs.quality: ledgers, spatial attribution, /quality."""

import json
import urllib.request

import pytest

from repro.core.result import SegmentOutcome
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.quality import (
    PROXY_RUNG_ACCURACY,
    QualityTracker,
    ReliabilityLedger,
    SpatialQualityMap,
    quality_report,
    quality_state,
)
from repro.obs.server import ObservabilityServer


@pytest.fixture()
def fresh_registry():
    registry = MetricsRegistry()
    previous = set_registry(registry)
    yield registry
    set_registry(previous)


class TestReliabilityLedger:
    def test_needs_at_least_one_bin(self):
        with pytest.raises(ValueError, match="bin"):
            ReliabilityLedger(bins=0)

    def test_empty_ledger_has_zero_ece(self):
        ledger = ReliabilityLedger()
        assert ledger.total == 0
        assert ledger.ece() == 0.0
        assert all(row.count == 0 and row.gap == 0.0 for row in ledger.rows())

    def test_ece_matches_hand_computation(self):
        ledger = ReliabilityLedger(bins=10)
        ledger.record(0.85, 1.0)  # bin 8: gap 0.15
        ledger.record(0.95, 0.0)  # bin 9: gap 0.95
        assert ledger.total == 2
        assert ledger.ece() == pytest.approx(0.5 * 0.15 + 0.5 * 0.95)
        rows = ledger.rows()
        assert len(rows) == 10
        assert rows[8].count == 1 and rows[8].mean_confidence == pytest.approx(0.85)
        assert rows[9].mean_accuracy == pytest.approx(0.0)
        assert rows[9].gap == pytest.approx(0.95)

    def test_inputs_are_clamped_to_unit_interval(self):
        ledger = ReliabilityLedger(bins=10)
        ledger.record(1.5, -0.2)
        row = ledger.rows()[-1]  # confidence clamps to 1.0: the top bin
        assert row.count == 1
        assert row.mean_confidence == pytest.approx(1.0)
        assert row.mean_accuracy == pytest.approx(0.0)

    def test_perfectly_calibrated_scores_near_zero(self):
        ledger = ReliabilityLedger(bins=10)
        for conf in (0.15, 0.45, 0.75, 0.95):
            for accuracy in (1.0,) * round(conf * 20) + (0.0,) * (20 - round(conf * 20)):
                ledger.record(conf, accuracy)
        assert ledger.ece() < 0.01

    def test_reset_empties_every_bin(self):
        ledger = ReliabilityLedger(bins=4)
        ledger.record(0.5, 1.0)
        ledger.reset()
        assert ledger.total == 0
        assert ledger.ece() == 0.0

    def test_to_dict_is_json_ready(self):
        ledger = ReliabilityLedger(bins=4)
        ledger.record(0.6, 0.7)
        doc = json.loads(json.dumps(ledger.to_dict()))
        assert doc["total"] == 1
        assert len(doc["bins"]) == 4


class TestSpatialQualityMap:
    def test_quality_falls_back_to_failure_share(self):
        spatial = SpatialQualityMap()
        for failed in (False, False, True, False):
            spatial.record_point((0, 0), failed, failed, None, None)
        assert spatial.quality_scores()[(0, 0)] == pytest.approx(0.75)
        assert spatial.point_counts()[(0, 0)] == 4

    def test_recorded_accuracy_wins_over_failure_share(self):
        spatial = SpatialQualityMap()
        spatial.record_point((0, 0), True, True, 0.9, 0.5)
        # Mean accuracy (0.5) takes precedence over 1 − failed/points (0.0).
        assert spatial.quality_scores()[(0, 0)] == pytest.approx(0.5)

    def test_worst_ranks_deterministically(self):
        spatial = SpatialQualityMap()
        spatial.record_point((2, 0), False, False, None, 0.9)
        spatial.record_point((1, 0), False, False, None, 0.1)
        spatial.record_point((0, 1), False, False, None, 0.1)
        worst = spatial.worst(2)
        assert [entry["cell"] for entry in worst] == [[0, 1], [1, 0]]
        assert worst[0]["quality"] == pytest.approx(0.1)


class TestQualityTracker:
    def _outcome(self, **overrides):
        fields = dict(
            start_index=1,
            failed=False,
            model_calls=3,
            imputed_points=2,
            confidence=0.8,
            rung="full",
            point_confidences=(0.9, 0.7),
        )
        fields.update(overrides)
        return SegmentOutcome(**fields)

    def test_observe_segment_uses_per_point_confidences(self, fresh_registry):
        tracker = QualityTracker()
        tracker.observe_segment(self._outcome(), [(0, 0), (1, 0)], snap_distance_m=4.0)
        assert len(tracker.spatial) == 2
        assert tracker.spatial.cells[(0, 0)].conf_sum == pytest.approx(0.9)
        assert tracker.spatial.cells[(1, 0)].conf_sum == pytest.approx(0.7)
        assert tracker.online.total == 1
        assert fresh_registry.get("repro.quality.records_total").value == 1
        assert fresh_registry.get("repro.quality.cells_tracked").value == 2
        assert fresh_registry.get("repro.quality.snap_distance_m").count == 1

    def test_segment_confidence_broadcasts_when_unscored_per_point(self, fresh_registry):
        tracker = QualityTracker()
        outcome = self._outcome(point_confidences=(), confidence=0.5, imputed_points=3)
        tracker.observe_segment(outcome, [(0, 0), (1, 0), (2, 0)])
        for cell in ((0, 0), (1, 0), (2, 0)):
            assert tracker.spatial.cells[cell].conf_sum == pytest.approx(0.5)

    def test_rung_proxy_feeds_the_online_ledger(self, fresh_registry):
        tracker = QualityTracker()
        outcome = self._outcome(rung="counting", confidence=0.9)
        tracker.observe_segment(outcome, [(0, 0)])
        row = next(r for r in tracker.online.rows() if r.count)
        assert row.mean_accuracy == pytest.approx(PROXY_RUNG_ACCURACY["counting"])
        # |0.9 − 0.4| lands on the calibration monitor and the ECE gauge.
        assert fresh_registry.monitors.calibration.value == pytest.approx(0.5)
        assert fresh_registry.get("repro.quality.ece").value == pytest.approx(0.5)

    def test_ground_truth_ledger_takes_over_the_ece_gauge(self, fresh_registry):
        tracker = QualityTracker()
        tracker.observe_segment(self._outcome(confidence=0.9, rung="linear"), [(0, 0)])
        tracker.record_ground_truth(0.8, 0.8, cells=[(0, 0)])
        assert tracker.ground_truth.total == 1
        assert fresh_registry.get("repro.quality.ece").value == pytest.approx(0.0)
        # Ground-truth accuracy overrides the proxy in the spatial map too.
        assert tracker.spatial.cells[(0, 0)].acc_n == 2

    def test_report_carries_both_ledgers(self, fresh_registry):
        tracker = QualityTracker()
        tracker.observe_segment(self._outcome(), [(0, 0), (1, 0)])
        doc = json.loads(json.dumps(tracker.report(fresh_registry), default=float))
        assert doc["calibration"]["online"]["total"] == 1
        assert doc["spatial"]["cells"] == 2
        assert "calibration_gap_windowed" in doc["proxies"]


class TestQualityState:
    def test_state_is_isolated_per_registry(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        state_a, state_b = quality_state(a), quality_state(b)
        assert state_a is not state_b
        assert quality_state(a) is state_a  # stable across lookups

    def test_report_reads_disabled_until_state_attaches(self):
        registry = MetricsRegistry()
        doc = quality_report(registry)
        assert doc["enabled"] is False
        assert doc["calibration"] is None and doc["spatial"] is None
        quality_state(registry).tracker = QualityTracker()
        assert quality_report(registry)["enabled"] is True


class TestQualityEndpoint:
    def _get_json(self, url):
        with urllib.request.urlopen(url, timeout=5) as response:
            return json.loads(response.read().decode())

    def test_quality_route_serves_the_full_report(self, fresh_registry):
        tracker = QualityTracker()
        quality_state(fresh_registry).tracker = tracker
        tracker.observe_segment(
            SegmentOutcome(start_index=0, failed=False, imputed_points=1, confidence=0.7),
            [(0, 0)],
        )
        with ObservabilityServer(port=0, registry=fresh_registry) as server:
            doc = self._get_json(server.url + "/quality")
        assert doc["enabled"] is True
        assert doc["calibration"]["online"]["total"] == 1
        assert doc["monitors"]["calibration"]["count"] == 1

    def test_calibration_breach_reaches_healthz(self, trained_kamel, fresh_registry):
        """Satellite: a drifting confidence score flips /healthz."""
        trained_kamel.enable_quality_observability(
            drift_limit=None, calibration_limit=0.3
        )
        try:
            tracker = trained_kamel.quality_tracker
            # Confidently wrong, sustained past the threshold's min_count.
            for _ in range(25):
                tracker.record_ground_truth(0.95, 0.0)
            assert fresh_registry.monitors.calibration.breached
            with ObservabilityServer(port=0, registry=fresh_registry) as server:
                doc = self._get_json(server.url + "/healthz")
            assert doc["status"] == "degraded"
            assert "calibration" in doc["breached_monitors"]
        finally:
            # The session fixture must leave with its hooks back on the
            # one-branch disabled path (the threshold dies with the
            # test's registry, but these fields are on the system).
            trained_kamel._drift = None
            trained_kamel._quality = None
