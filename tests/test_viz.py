"""Tests for the SVG rendering utilities."""

import xml.etree.ElementTree as ET

import pytest

from repro.errors import EmptyInputError
from repro.geo import BoundingBox, Point, Trajectory
from repro.roadnet.network import RoadNetwork
from repro.viz import SvgCanvas, render_imputation, render_network

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestCanvas:
    def world(self):
        return BoundingBox(0, 0, 1000, 500)

    def test_valid_xml(self):
        canvas = SvgCanvas(self.world())
        canvas.polyline([Point(0, 0), Point(100, 100)])
        canvas.circle(Point(50, 50))
        canvas.text(Point(10, 10), "hello <&>")
        root = parse(canvas.to_string())
        assert root.tag == f"{SVG_NS}svg"

    def test_aspect_ratio_preserved(self):
        canvas = SvgCanvas(self.world(), width_px=800, margin_m=0.0)
        assert canvas.height_px == 400  # 1000x500 world -> 800x400 pixels

    def test_y_axis_flipped(self):
        canvas = SvgCanvas(self.world(), margin_m=0.0)
        canvas.circle(Point(0, 500))  # world top-left
        root = parse(canvas.to_string())
        circle = root.find(f"{SVG_NS}circle")
        assert float(circle.get("cy")) == pytest.approx(0.0)

    def test_short_polyline_ignored(self):
        canvas = SvgCanvas(self.world())
        canvas.polyline([Point(0, 0)])
        assert parse(canvas.to_string()).find(f"{SVG_NS}polyline") is None

    def test_dashed_attribute(self):
        canvas = SvgCanvas(self.world())
        canvas.polyline([Point(0, 0), Point(10, 10)], dashed=True)
        line = parse(canvas.to_string()).find(f"{SVG_NS}polyline")
        assert line.get("stroke-dasharray") == "6,4"

    def test_text_escaped(self):
        canvas = SvgCanvas(self.world())
        canvas.text(Point(0, 0), "<script>")
        assert "<script>" not in canvas.to_string().split("text")[1]

    def test_save(self, tmp_path):
        canvas = SvgCanvas(self.world())
        path = canvas.save(tmp_path / "out.svg")
        assert path.exists()
        parse(path.read_text())

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            SvgCanvas(self.world(), width_px=0)


class TestRenderers:
    def test_render_network(self, small_city):
        canvas = render_network(small_city)
        root = parse(canvas.to_string())
        polylines = root.findall(f"{SVG_NS}polyline")
        assert len(polylines) == small_city.num_edges

    def test_render_empty_network_rejected(self):
        with pytest.raises(EmptyInputError):
            render_network(RoadNetwork())

    def test_render_imputation_layers(self, trained_kamel, small_split, small_city):
        _, test = small_split
        truth = test[0]
        sparse = truth.sparsify(500.0)
        result = trained_kamel.impute(sparse)
        canvas = render_imputation(truth, sparse, result, network=small_city)
        root = parse(canvas.to_string())
        polylines = root.findall(f"{SVG_NS}polyline")
        circles = root.findall(f"{SVG_NS}circle")
        # network edges + truth + imputed (+ failures) layers present
        assert len(polylines) >= small_city.num_edges + 2
        # one dot per sparse point plus legend markers
        assert len(circles) >= len(sparse)

    def test_render_imputation_without_network(self, trained_kamel, small_split):
        _, test = small_split
        truth = test[1]
        sparse = truth.sparsify(500.0)
        result = trained_kamel.impute(sparse)
        canvas = render_imputation(truth, sparse, result)
        parse(canvas.to_string())


class TestFlame:
    COLLAPSED = (
        "eval.impute;impute.segment 400000\n"
        "eval.impute;impute.segment;constraints.filter 100000\n"
        "eval.impute;impute.segment;model.predict 300000\n"
    )

    def test_parse_collapsed_builds_a_merged_tree(self):
        from repro.viz import parse_collapsed

        root = parse_collapsed(self.COLLAPSED)
        assert root.value == 800000
        impute = root.children["eval.impute"].children["impute.segment"]
        assert impute.value == 800000
        assert impute.self_value == 400000
        assert set(impute.children) == {"constraints.filter", "model.predict"}

    def test_parse_collapsed_rejects_bad_lines(self):
        from repro.viz import parse_collapsed

        with pytest.raises(ValueError):
            parse_collapsed("no-count-here\n")

    def test_flame_svg_is_valid_xml(self):
        from repro.viz import render_flame_svg

        root = parse(render_flame_svg(self.COLLAPSED))
        assert root.tag == f"{SVG_NS}svg"
        rects = root.findall(f".//{SVG_NS}rect")
        assert len(rects) >= 4  # root + 3 frames

    def test_flame_svg_is_deterministic(self):
        # Byte-identical across renders: stable colors (no hash()
        # randomization), sorted children, no timestamps.
        from repro.viz import render_flame_svg

        a = render_flame_svg(self.COLLAPSED)
        b = render_flame_svg(self.COLLAPSED)
        assert a == b
        shuffled = "".join(reversed(self.COLLAPSED.splitlines(keepends=True)))
        assert render_flame_svg(shuffled) == a

    def test_flame_svg_handles_empty_profile(self):
        from repro.viz import render_flame_svg

        root = parse(render_flame_svg(""))
        assert root.tag == f"{SVG_NS}svg"

    def test_flame_roundtrip_from_profiler(self):
        from repro.obs import Profiler
        from repro.viz import render_flame_svg

        with Profiler(capture_memory=False):
            pass
        # An empty window still renders (root frame only).
        assert "<svg" in render_flame_svg("")
