"""Tests for the adaptive speed-constraint variant (paper Section 5.1)."""

import pytest

from repro import Kamel, KamelConfig
from repro.core.constraints import GapContext, SpatialConstraints
from repro.core.kamel import _segment_speed
from repro.core.tokenization import Tokenizer
from repro.errors import ConfigError
from repro.geo import Point
from repro.grid import HexGrid


@pytest.fixture()
def setup():
    tokenizer = Tokenizer(HexGrid(75.0))
    s = tokenizer.vocabulary.add(tokenizer.grid.cell_of(Point(0, 0)))
    d = tokenizer.vocabulary.add(tokenizer.grid.cell_of(Point(600, 0)))
    return tokenizer, s, d


def make_constraints(tokenizer, mode="adaptive", factor=1.5):
    config = KamelConfig(speed_mode=mode, adaptive_speed_factor=factor, max_speed_mps=20.0)
    return SpatialConstraints(tokenizer, config, max_speed_mps=20.0)


class TestConfig:
    def test_mode_validated(self):
        with pytest.raises(ConfigError):
            KamelConfig(speed_mode="psychic")

    def test_factor_validated(self):
        with pytest.raises(ConfigError):
            KamelConfig(adaptive_speed_factor=0.0)


class TestAdaptiveEllipse:
    def test_slow_reference_tightens_ellipse(self, setup):
        tokenizer, s, d = setup
        constraints = make_constraints(tokenizer)
        slow = GapContext(s, d, 0.0, 100.0, reference_speed_mps=5.0)
        fast = GapContext(s, d, 0.0, 100.0, reference_speed_mps=18.0)
        assert constraints.ellipse_distance_sum(slow) < constraints.ellipse_distance_sum(fast)

    def test_reference_capped_by_fleet_maximum(self, setup):
        tokenizer, s, d = setup
        constraints = make_constraints(tokenizer)
        absurd = GapContext(s, d, 0.0, 100.0, reference_speed_mps=500.0)
        fixed = GapContext(s, d, 0.0, 100.0)
        assert constraints.ellipse_distance_sum(absurd) == pytest.approx(
            constraints.ellipse_distance_sum(fixed)
        )

    def test_no_reference_falls_back_to_fixed(self, setup):
        tokenizer, s, d = setup
        constraints = make_constraints(tokenizer)
        ctx = GapContext(s, d, 0.0, 100.0)
        fixed_constraints = make_constraints(tokenizer, mode="fixed")
        assert constraints.ellipse_distance_sum(ctx) == pytest.approx(
            fixed_constraints.ellipse_distance_sum(ctx)
        )

    def test_fixed_mode_ignores_reference(self, setup):
        tokenizer, s, d = setup
        constraints = make_constraints(tokenizer, mode="fixed")
        slow = GapContext(s, d, 0.0, 100.0, reference_speed_mps=3.0)
        plain = GapContext(s, d, 0.0, 100.0)
        assert constraints.ellipse_distance_sum(slow) == pytest.approx(
            constraints.ellipse_distance_sum(plain)
        )

    def test_floor_still_guarantees_straight_path(self, setup):
        tokenizer, s, d = setup
        constraints = make_constraints(tokenizer)
        crawling = GapContext(s, d, 0.0, 10.0, reference_speed_mps=0.5)
        straight = tokenizer.token_distance_m(s, d)
        assert constraints.ellipse_distance_sum(crawling) >= straight


class TestSegmentSpeedHelper:
    def test_speed_over_chain(self):
        pts = [Point(0, 0, t=0.0), Point(100, 0, t=10.0), Point(200, 0, t=20.0)]
        assert _segment_speed(pts) == pytest.approx(10.0)

    def test_untimed_none(self):
        assert _segment_speed([Point(0, 0), Point(10, 0)]) is None

    def test_zero_duration_none(self):
        assert _segment_speed([Point(0, 0, t=5.0), Point(10, 0, t=5.0)]) is None

    def test_single_point_none(self):
        assert _segment_speed([Point(0, 0, t=0.0)]) is None


class TestSystemIntegration:
    def test_adaptive_system_imputes(self, small_split):
        train, test = small_split
        system = Kamel(
            KamelConfig(speed_mode="adaptive", max_model_calls=600)
        ).fit(train)
        result = system.impute(test[0].sparsify(500.0))
        assert result.num_segments >= 1
        assert result.trajectory.max_gap() < 1000.0

    def test_adaptive_quality_comparable_to_fixed(self, small_split):
        from repro.eval import evaluate_imputation

        train, test = small_split
        test = test[:5]
        sparse = [t.sparsify(500.0) for t in test]
        fixed = Kamel(KamelConfig(max_model_calls=600)).fit(train)
        adaptive = Kamel(
            KamelConfig(speed_mode="adaptive", max_model_calls=600)
        ).fit(train)
        fixed_scores = evaluate_imputation(test, fixed.impute_batch(sparse), 100.0, 40.0)
        adaptive_scores = evaluate_imputation(
            test, adaptive.impute_batch(sparse), 100.0, 40.0
        )
        assert adaptive_scores.recall >= fixed_scores.recall - 0.15
