"""Tests for the GPS trajectory simulator and dataset factories."""

import itertools

import numpy as np
import pytest

from repro.errors import ConfigError, EmptyInputError
from repro.roadnet import (
    SimulatorConfig,
    TrajectorySimulator,
    make_jakarta_like,
    make_porto_like,
)


@pytest.fixture(scope="module")
def simulator(small_city):
    return TrajectorySimulator(
        small_city,
        SimulatorConfig(sample_interval_s=2.0, min_trip_length_m=500.0, seed=5),
    )


class TestConfigValidation:
    def test_speed_positive(self):
        with pytest.raises(ConfigError):
            SimulatorConfig(speed_mean_mps=0.0)

    def test_interval_positive(self):
        with pytest.raises(ConfigError):
            SimulatorConfig(sample_interval_s=0.0)

    def test_noise_non_negative(self):
        with pytest.raises(ConfigError):
            SimulatorConfig(gps_noise_std_m=-1.0)

    def test_empty_network_rejected(self):
        from repro.roadnet.network import RoadNetwork

        with pytest.raises(EmptyInputError):
            TrajectorySimulator(RoadNetwork())


class TestSimulation:
    def test_trajectory_is_time_ordered(self, simulator):
        traj = simulator.simulate_one("t0")
        assert traj.is_time_ordered()

    def test_sampling_interval(self, simulator):
        traj = simulator.simulate_one("t1")
        deltas = {round(b.t - a.t, 6) for a, b in traj.segments()}
        assert deltas == {2.0}

    def test_trip_length_respects_minimum(self, simulator):
        for k in range(5):
            traj = simulator.simulate_one(f"len-{k}")
            # Polyline length may shrink slightly through noise, allow slack.
            assert traj.length >= 500.0 * 0.7

    def test_points_stay_near_network(self, simulator, small_city):
        """Samples deviate from the road only by GPS noise (5 m sigma)."""
        traj = simulator.simulate_one("t2")
        for p in traj.points[:: max(1, len(traj) // 10)]:
            projected = small_city.project(p, radius=100.0)
            assert projected is not None
            assert projected.distance_m <= 30.0  # 6 sigma

    def test_speeds_plausible(self, simulator):
        traj = simulator.simulate_one("t3")
        speeds = [
            a.distance_to(b) / (b.t - a.t) for a, b in traj.segments()
        ]
        assert 0.0 <= float(np.median(speeds)) <= 40.0

    def test_simulate_batch(self, simulator):
        trajs = simulator.simulate(5, id_prefix="batch")
        assert [t.traj_id for t in trajs] == [f"batch-{k}" for k in range(5)]

    def test_simulate_zero(self, simulator):
        assert simulator.simulate(0) == []

    def test_simulate_negative_raises(self, simulator):
        with pytest.raises(ValueError):
            simulator.simulate(-1)

    def test_stream_is_lazy_and_endless(self, simulator):
        first_three = list(itertools.islice(simulator.stream("s"), 3))
        assert len(first_three) == 3

    def test_unreachable_trip_bounds(self, small_city):
        sim = TrajectorySimulator(
            small_city,
            SimulatorConfig(min_trip_length_m=1e7, seed=1),
        )
        with pytest.raises(EmptyInputError):
            sim.simulate_one("impossible")

    def test_determinism(self, small_city):
        a = TrajectorySimulator(small_city, SimulatorConfig(seed=9, min_trip_length_m=500)).simulate(3)
        b = TrajectorySimulator(small_city, SimulatorConfig(seed=9, min_trip_length_m=500)).simulate(3)
        for ta, tb in zip(a, b):
            assert ta.points == tb.points


class TestDatasetFactories:
    def test_porto_vs_jakarta_contrast(self):
        """The property the paper's Fig. 9 discussion hinges on: Jakarta
        trajectories are far longer (in points) than Porto's."""
        porto = make_porto_like(n_trajectories=20)
        jakarta = make_jakarta_like(n_trajectories=5)
        assert jakarta.mean_points_per_trajectory > 5 * porto.mean_points_per_trajectory

    def test_split_fractions(self):
        ds = make_porto_like(n_trajectories=50)
        train, test = ds.split(0.8, seed=0)
        assert len(train) == 40 and len(test) == 10
        assert set(t.traj_id for t in train).isdisjoint(t.traj_id for t in test)

    def test_split_deterministic(self):
        ds = make_porto_like(n_trajectories=30)
        t1, _ = ds.split(seed=5)
        t2, _ = ds.split(seed=5)
        assert [t.traj_id for t in t1] == [t.traj_id for t in t2]

    def test_split_validation(self):
        ds = make_porto_like(n_trajectories=10)
        with pytest.raises(ConfigError):
            ds.split(1.5)

    def test_dataset_point_count(self):
        ds = make_porto_like(n_trajectories=10)
        assert ds.num_points == sum(len(t) for t in ds.trajectories)


class TestHotspots:
    def test_hotspot_fraction_validated(self):
        with pytest.raises(ConfigError):
            SimulatorConfig(hotspot_fraction=1.5)
        with pytest.raises(ConfigError):
            SimulatorConfig(n_hotspots=0)

    def test_hotspots_skew_endpoints(self, small_city):
        hubby = TrajectorySimulator(
            small_city,
            SimulatorConfig(
                hotspot_fraction=0.9, n_hotspots=2, min_trip_length_m=400.0, seed=4
            ),
        )
        hubs = {small_city.node_point(h) for h in hubby.hotspots}
        trips = hubby.simulate(20)
        near_hub = 0
        for t in trips:
            for endpoint in (t.points[0], t.points[-1]):
                if any(endpoint.distance_to(h) < 60.0 for h in hubs):
                    near_hub += 1
        # With 90 % hub probability, most endpoints should sit at a hub.
        assert near_hub >= 20

    def test_zero_fraction_is_uniform_default(self, small_city):
        sim = TrajectorySimulator(
            small_city, SimulatorConfig(min_trip_length_m=400.0, seed=5)
        )
        trips = sim.simulate(5)
        assert len(trips) == 5
