"""Unit and property tests for repro.geo.point."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geo import (
    LocalProjection,
    Point,
    angle_difference,
    bearing,
    haversine_m,
    interpolate,
    normalize_angle,
)

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
angles = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)


class TestPoint:
    def test_distance_to_pythagoras(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_is_symmetric(self):
        a, b = Point(1.5, -2.0), Point(-4.0, 7.25)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_distance_to_self_is_zero(self):
        p = Point(12.0, -8.0, t=3.0)
        assert p.distance_to(p) == 0.0

    def test_bearing_east(self):
        assert Point(0, 0).bearing_to(Point(10, 0)) == pytest.approx(0.0)

    def test_bearing_north(self):
        assert Point(0, 0).bearing_to(Point(0, 10)) == pytest.approx(math.pi / 2)

    def test_bearing_west(self):
        assert abs(Point(0, 0).bearing_to(Point(-10, 0))) == pytest.approx(math.pi)

    def test_offset(self):
        p = Point(1.0, 2.0, t=5.0).offset(3.0, -1.0)
        assert (p.x, p.y, p.t) == (4.0, 1.0, 5.0)

    def test_with_time(self):
        assert Point(1, 2, t=0.0).with_time(9.0).t == 9.0
        assert Point(1, 2, t=0.0).with_time(None).t is None

    def test_midpoint_averages_coordinates_and_time(self):
        m = Point(0, 0, t=0.0).midpoint(Point(10, 20, t=4.0))
        assert (m.x, m.y, m.t) == (5.0, 10.0, 2.0)

    def test_midpoint_without_times(self):
        assert Point(0, 0).midpoint(Point(2, 2, t=1.0)).t is None

    def test_points_are_hashable_and_frozen(self):
        p = Point(1, 2)
        assert hash(p) == hash(Point(1, 2))
        with pytest.raises(AttributeError):
            p.x = 5.0  # type: ignore[misc]

    @given(finite, finite, finite, finite)
    def test_triangle_inequality(self, x1, y1, x2, y2):
        a, b, origin = Point(x1, y1), Point(x2, y2), Point(0, 0)
        assert a.distance_to(b) <= a.distance_to(origin) + origin.distance_to(b) + 1e-6


class TestInterpolate:
    def test_endpoints(self):
        a, b = Point(0, 0, t=0.0), Point(10, 10, t=10.0)
        assert interpolate(a, b, 0.0) == a
        assert interpolate(a, b, 1.0) == b

    def test_midway(self):
        p = interpolate(Point(0, 0, t=0.0), Point(10, 0, t=4.0), 0.5)
        assert (p.x, p.y, p.t) == (5.0, 0.0, 2.0)

    def test_extrapolation(self):
        p = interpolate(Point(0, 0), Point(10, 0), 1.5)
        assert p.x == pytest.approx(15.0)

    def test_no_time_when_endpoint_missing(self):
        assert interpolate(Point(0, 0, t=0.0), Point(1, 1), 0.5).t is None

    @given(st.floats(min_value=0, max_value=1))
    def test_interpolated_point_on_segment(self, f):
        a, b = Point(0, 0), Point(6, 8)
        p = interpolate(a, b, f)
        assert a.distance_to(p) + p.distance_to(b) == pytest.approx(10.0, abs=1e-6)


class TestAngles:
    def test_normalize_zero(self):
        assert normalize_angle(0.0) == 0.0

    def test_normalize_wraps_positive(self):
        assert normalize_angle(2 * math.pi + 0.25) == pytest.approx(0.25)

    def test_normalize_wraps_negative(self):
        assert normalize_angle(-2 * math.pi - 0.25) == pytest.approx(-0.25)

    def test_normalize_pi_is_pi(self):
        assert normalize_angle(math.pi) == pytest.approx(math.pi)

    @given(angles)
    def test_normalize_range(self, a):
        out = normalize_angle(a)
        assert -math.pi < out <= math.pi + 1e-12

    @given(angles, angles)
    def test_angle_difference_bounds(self, a, b):
        d = angle_difference(a, b)
        assert 0.0 <= d <= math.pi + 1e-12

    @given(angles, angles)
    def test_angle_difference_symmetric(self, a, b):
        assert angle_difference(a, b) == pytest.approx(angle_difference(b, a), abs=1e-9)

    def test_angle_difference_opposite(self):
        assert angle_difference(0.0, math.pi) == pytest.approx(math.pi)

    def test_bearing_function_matches_method(self):
        a, b = Point(0, 0), Point(1, 1)
        assert bearing(a, b) == a.bearing_to(b)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_m(45.0, 7.0, 45.0, 7.0) == 0.0

    def test_one_degree_latitude(self):
        # One degree of latitude is ~111.2 km everywhere.
        assert haversine_m(0.0, 0.0, 1.0, 0.0) == pytest.approx(111_195, rel=0.01)

    def test_symmetry(self):
        d1 = haversine_m(41.15, -8.61, 41.20, -8.65)
        d2 = haversine_m(41.20, -8.65, 41.15, -8.61)
        assert d1 == pytest.approx(d2)


class TestLocalProjection:
    def test_reference_maps_to_origin(self):
        proj = LocalProjection(41.15, -8.61)
        p = proj.to_local(41.15, -8.61)
        assert (p.x, p.y) == (0.0, 0.0)

    def test_round_trip(self):
        proj = LocalProjection(41.15, -8.61)
        lat, lon = proj.to_latlon(proj.to_local(41.16, -8.62))
        assert lat == pytest.approx(41.16, abs=1e-9)
        assert lon == pytest.approx(-8.62, abs=1e-9)

    def test_local_distance_matches_haversine(self):
        proj = LocalProjection(41.15, -8.61)
        a = proj.to_local(41.15, -8.61)
        b = proj.to_local(41.16, -8.60)
        planar = a.distance_to(b)
        geodesic = haversine_m(41.15, -8.61, 41.16, -8.60)
        assert planar == pytest.approx(geodesic, rel=0.01)

    def test_preserves_timestamp(self):
        proj = LocalProjection(0.0, 0.0)
        assert proj.to_local(0.1, 0.1, t=42.0).t == 42.0

    @pytest.mark.parametrize("lat,lon", [(91.0, 0.0), (-91.0, 0.0), (0.0, 181.0), (0.0, -181.0)])
    def test_rejects_out_of_range_reference(self, lat, lon):
        with pytest.raises(ValueError):
            LocalProjection(lat, lon)
