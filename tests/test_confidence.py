"""Tests for per-segment imputation confidence scores."""

import pytest

from repro.baselines import LinearImputer
from repro.geo import Point, Trajectory


class TestConfidenceThroughSystem:
    @pytest.fixture(scope="class")
    def results(self, trained_kamel, small_split):
        _, test = small_split
        return [trained_kamel.impute(t.sparsify(500.0)) for t in test[:6]]

    def test_successful_segments_carry_confidence(self, results):
        scored = [
            s for r in results for s in r.segments if not s.failed
        ]
        assert scored, "expected at least one successful segment"
        for outcome in scored:
            assert outcome.confidence is not None
            assert 0.0 < outcome.confidence <= 1.0

    def test_failed_segments_have_no_confidence(self, results):
        for r in results:
            for outcome in r.segments:
                if outcome.failed:
                    assert outcome.confidence is None

    def test_confidence_varies_across_segments(self, results):
        values = {
            round(s.confidence, 6)
            for r in results
            for s in r.segments
            if s.confidence is not None
        }
        # Not a constant: the score reflects the actual search outcome.
        assert len(values) >= 2

    def test_baselines_unscored(self, small_split):
        _, test = small_split
        result = LinearImputer(100.0).impute(test[0].sparsify(500.0))
        for outcome in result.segments:
            assert outcome.confidence is None


class TestPerPointConfidence:
    @pytest.fixture(scope="class")
    def results(self, trained_kamel, small_split):
        _, test = small_split
        return [trained_kamel.impute(t.sparsify(500.0)) for t in test[:6]]

    def test_scored_segments_carry_one_confidence_per_imputed_point(self, results):
        scored = [
            s
            for r in results
            for s in r.segments
            if not s.failed and s.point_confidences
        ]
        assert scored, "expected at least one per-point-scored segment"
        for outcome in scored:
            assert len(outcome.point_confidences) == outcome.imputed_points
            for value in outcome.point_confidences:
                assert 0.0 < value <= 1.0

    def test_failed_segments_have_no_per_point_scores(self, results):
        for r in results:
            for outcome in r.segments:
                if outcome.failed:
                    assert outcome.point_confidences == ()

    def test_result_property_keys_by_start_index(self, results):
        for r in results:
            mapping = r.point_confidences
            by_index = {s.start_index: s for s in r.segments}
            for start_index, confidences in mapping.items():
                assert isinstance(confidences, tuple)
                assert confidences == by_index[start_index].point_confidences
            # Segments without per-point scores are omitted, not empty.
            assert all(confidences for confidences in mapping.values())

    def test_per_point_scores_imply_a_segment_score(self, results):
        """Per-point scores only exist where the search scored the segment,
        so they always arrive alongside a segment-level confidence."""
        for r in results:
            for outcome in r.segments:
                if outcome.point_confidences:
                    assert outcome.confidence is not None

    def test_baselines_carry_no_per_point_scores(self, small_split):
        _, test = small_split
        result = LinearImputer(100.0).impute(test[0].sparsify(500.0))
        assert result.point_confidences == {}


class TestConfidenceSemantics:
    def test_easy_gap_scores_higher_than_hard_gap(self, trained_kamel, small_split):
        """Aggregate sanity: short gaps (few insertions) should on average
        carry at least as much confidence as very long ones."""
        _, test = small_split
        short_scores = []
        long_scores = []
        for t in test[:8]:
            for sparseness, bucket in ((350.0, short_scores), (900.0, long_scores)):
                result = trained_kamel.impute(t.sparsify(sparseness))
                bucket.extend(
                    s.confidence for s in result.segments if s.confidence is not None
                )
        if short_scores and long_scores:
            mean_short = sum(short_scores) / len(short_scores)
            mean_long = sum(long_scores) / len(long_scores)
            assert mean_short >= mean_long - 0.1
