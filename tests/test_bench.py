"""Tests for repro.bench: snapshots, migration, comparator, runner.

The comparator is the perf gate's brain, so its edge cases get explicit
coverage: metrics missing on one side, zero-stdev counters, nested v1
histogram dicts, and the canonical injected-2x-slowdown scenario the
issue's acceptance criteria name.
"""

import json

import pytest

from repro.bench import (
    SCHEMA_V1,
    SCHEMA_V2,
    BenchRunner,
    CompareConfig,
    compare_snapshots,
    has_regressions,
    load_snapshot,
    make_snapshot,
    metric_direction,
    migrate,
    render_deltas,
    scalar_summary,
    stats_modules,
)
from repro.bench.snapshot import flatten_summary


def _v2(modules):
    return {
        "schema": SCHEMA_V2,
        "environment": {"python": "3.11"},
        "repeats": 2,
        "modules": modules,
    }


def _stat(mean, stdev=0.0):
    return {"mean": mean, "stdev": stdev}


class TestDirections:
    def test_lower_is_better(self):
        assert metric_direction("repro.kamel.impute_seconds.mean") == "lower"
        assert metric_direction("repro.imputation.model_calls_total") == "lower"
        assert metric_direction("repro.resilience.fallback.linear_total") == "lower"

    def test_higher_is_better(self):
        assert metric_direction("repro.eval.recall") == "higher"
        assert metric_direction("repro.partitioning.lookup_hit_total") == "higher"

    def test_counts_are_neutral(self):
        # .count leaves are event counts, not latencies: a different
        # number of observations must never fail the gate.
        assert metric_direction("repro.kamel.impute_seconds.count") == "neutral"
        assert metric_direction("repro.tokenization.segments_total") == "neutral"

    def test_quality_scores_are_lower_is_better(self):
        assert metric_direction("repro.drift.unseen_cell_mass") == "lower"
        assert metric_direction("repro.drift.cell_psi") == "lower"
        assert metric_direction("repro.quality.ece") == "lower"
        assert metric_direction("repro.quality.calibration_gap") == "lower"
        assert metric_direction("repro.quality.snap_distance_m.mean") == "lower"
        # Drift *traffic* counters are workload-sized, not quality scores.
        assert metric_direction("repro.drift.observations_total") == "neutral"


class TestComparatorEdgeCases:
    def test_metric_only_in_current_is_added(self):
        deltas = compare_snapshots(
            _v2({"m": {"repro.eval.recall": _stat(0.8)}}),
            _v2({"m": {"repro.eval.recall": _stat(0.8),
                       "repro.eval.precision": _stat(0.7)}}),
        )
        by_name = {d.metric: d for d in deltas}
        assert by_name["repro.eval.precision"].classification == "added"
        assert by_name["repro.eval.precision"].baseline is None
        assert by_name["repro.eval.recall"].classification == "unchanged"

    def test_metric_only_in_baseline_is_removed(self):
        deltas = compare_snapshots(
            _v2({"m": {"repro.eval.recall": _stat(0.8)}}),
            _v2({"m": {}}),
        )
        assert deltas[0].classification == "removed"
        # Added/removed never fail the gate on their own.
        assert not has_regressions(deltas)

    def test_zero_stdev_counter_drift_is_flagged(self):
        # One extra model call on a zero-stdev counter: above the 5%
        # count tolerance -> regressed; within it -> unchanged.
        deltas = compare_snapshots(
            _v2({"m": {"repro.imputation.model_calls_total": _stat(100.0)}}),
            _v2({"m": {"repro.imputation.model_calls_total": _stat(110.0)}}),
        )
        assert deltas[0].classification == "regressed"
        deltas = compare_snapshots(
            _v2({"m": {"repro.imputation.model_calls_total": _stat(100.0)}}),
            _v2({"m": {"repro.imputation.model_calls_total": _stat(104.0)}}),
        )
        assert deltas[0].classification == "unchanged"

    def test_noisy_timing_within_sigmas_is_unchanged(self):
        # 3.0 -> 3.9 s is +30%, but with stdev 0.4 the 3-sigma band
        # (1.2 s) covers it: noise, not regression.
        deltas = compare_snapshots(
            _v2({"m": {"repro.kamel.fit_seconds.mean": _stat(3.0, 0.4)}}),
            _v2({"m": {"repro.kamel.fit_seconds.mean": _stat(3.9, 0.1)}}),
        )
        assert deltas[0].classification == "unchanged"

    def test_injected_2x_slowdown_regresses_and_identity_passes(self):
        base = _v2({"m": {"repro.kamel.impute_seconds.mean": _stat(0.5, 0.01)}})
        doubled = _v2({"m": {"repro.kamel.impute_seconds.mean": _stat(1.0, 0.01)}})
        assert has_regressions(compare_snapshots(base, doubled))
        assert not has_regressions(compare_snapshots(base, base))

    def test_improvement_is_not_a_regression(self):
        deltas = compare_snapshots(
            _v2({"m": {"repro.kamel.impute_seconds.mean": _stat(1.0, 0.01)}}),
            _v2({"m": {"repro.kamel.impute_seconds.mean": _stat(0.4, 0.01)}}),
        )
        assert deltas[0].classification == "improved"
        assert not has_regressions(deltas)

    def test_neutral_metric_changes_but_never_regresses(self):
        deltas = compare_snapshots(
            _v2({"m": {"repro.tokenization.segments_total": _stat(40.0)}}),
            _v2({"m": {"repro.tokenization.segments_total": _stat(80.0)}}),
        )
        assert deltas[0].classification == "changed"
        assert not has_regressions(deltas)

    def test_custom_tolerances(self):
        cfg = CompareConfig(timing_rel_tol=2.0)
        deltas = compare_snapshots(
            _v2({"m": {"repro.kamel.impute_seconds.mean": _stat(0.5)}}),
            _v2({"m": {"repro.kamel.impute_seconds.mean": _stat(1.0)}}),
            config=cfg,
        )
        assert deltas[0].classification == "unchanged"


class TestV1Migration:
    V1 = {
        "schema": SCHEMA_V1,
        "modules": {
            "counting_scoring": {
                "repro.kamel.model_calls_total": 2258.0,
                # Nested histogram dict: the v1 layout.
                "repro.imputation.calls_per_segment": {
                    "count": 40, "mean": 56.45, "p50": 47.98, "p99": 142.01,
                },
            }
        },
    }

    def test_migrate_flattens_nested_histograms(self):
        doc = migrate(self.V1)
        assert doc["schema"] == SCHEMA_V2
        stats = doc["modules"]["counting_scoring"]
        assert stats["repro.imputation.calls_per_segment.mean"] == _stat(56.45)
        assert stats["repro.imputation.calls_per_segment.count"] == _stat(40.0)
        assert stats["repro.kamel.model_calls_total"] == _stat(2258.0)
        assert doc["environment"] == {"migrated_from": SCHEMA_V1}

    def test_migrate_rejects_unknown_schema(self):
        with pytest.raises(ValueError):
            migrate({"schema": "bench-observability/99"})

    def test_v1_compares_against_v2_via_stats_modules(self):
        v1_stats = stats_modules(self.V1)
        assert v1_stats["counting_scoring"][
            "repro.imputation.calls_per_segment.p99"
        ] == (142.01, 0.0)

    def test_load_snapshot_migrates_v1(self, tmp_path):
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(self.V1))
        assert load_snapshot(path)["schema"] == SCHEMA_V2

    def test_raw_registry_snapshot_normalizes(self):
        raw = {
            "repro.kamel.model_calls_total": {"type": "counter", "value": 9.0},
            "repro.kamel.impute_seconds": {
                "type": "histogram", "count": 3, "mean": 0.5, "sum": 1.5,
                "quantiles": {"p50": 0.4, "p99": 0.9},
            },
        }
        stats = stats_modules(raw)
        assert stats[""]["repro.kamel.model_calls_total"] == (9.0, 0.0)
        assert stats[""]["repro.kamel.impute_seconds.p50"] == (0.4, 0.0)


class TestSnapshotBuilding:
    def test_make_snapshot_mean_and_stdev(self):
        doc = make_snapshot(
            {"m": [{"a": 1.0, "b": 5.0}, {"a": 3.0, "b": 5.0}]}, seed=7
        )
        assert doc["schema"] == SCHEMA_V2
        assert doc["repeats"] == 2
        assert doc["environment"]["seed"] == 7
        assert doc["environment"]["python"]
        a = doc["modules"]["m"]["a"]
        assert a["mean"] == pytest.approx(2.0)
        assert a["stdev"] == pytest.approx(1.4142, abs=1e-3)
        assert doc["modules"]["m"]["b"]["stdev"] == 0.0

    def test_single_repeat_has_zero_stdev(self):
        doc = make_snapshot({"m": [{"a": 1.0}]})
        assert doc["modules"]["m"]["a"] == {"mean": 1.0, "stdev": 0.0}

    def test_flatten_drops_none_quantiles(self):
        flat = flatten_summary(
            {"h": {"count": 2, "mean": 1.0, "p50": None, "p99": None}, "c": 4.0}
        )
        assert flat == {"h.count": 2.0, "h.mean": 1.0, "c": 4.0}

    def test_scalar_summary_skips_empty_histograms(self):
        summary = scalar_summary(
            {"h": {"type": "histogram", "count": 0},
             "c": {"type": "counter", "value": 2.0}}
        )
        assert summary == {"c": 2.0}


class TestRunner:
    def test_injected_collect_aggregates_repeats(self):
        runs = iter([
            {"mod": {"repro.eval.recall": 0.8, "repro.kamel.fit_seconds":
                     {"count": 1, "mean": 2.0, "p50": 2.0, "p99": 2.0}}},
            {"mod": {"repro.eval.recall": 0.9, "repro.kamel.fit_seconds":
                     {"count": 1, "mean": 4.0, "p50": 4.0, "p99": 4.0}}},
        ])
        runner = BenchRunner(
            suite="counting", repeats=2, seed=5, collect=lambda i: next(runs)
        )
        doc = runner.run()
        stats = doc["modules"]["mod"]
        assert stats["repro.eval.recall"]["mean"] == pytest.approx(0.85)
        assert stats["repro.kamel.fit_seconds.mean"]["mean"] == pytest.approx(3.0)
        assert stats["repro.kamel.fit_seconds.mean"]["stdev"] > 0

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown suite"):
            BenchRunner(suite="nope")
        with pytest.raises(ValueError, match="repeats"):
            BenchRunner(repeats=0)


class TestRendering:
    def test_render_hides_unchanged_by_default(self):
        deltas = compare_snapshots(
            _v2({"m": {"repro.eval.recall": _stat(0.8),
                       "repro.kamel.impute_seconds.mean": _stat(1.0, 0.01)}}),
            _v2({"m": {"repro.eval.recall": _stat(0.8),
                       "repro.kamel.impute_seconds.mean": _stat(2.0, 0.01)}}),
        )
        text = render_deltas(deltas)
        assert "regressed" in text
        assert "recall" not in text
        assert "1 unchanged" in text
        verbose = render_deltas(deltas, include_unchanged=True)
        assert "recall" in verbose

    def test_render_orders_regressions_first(self):
        deltas = compare_snapshots(
            _v2({"m": {"repro.kamel.impute_seconds.mean": _stat(1.0, 0.01),
                       "repro.eval.recall": _stat(0.5, 0.001)}}),
            _v2({"m": {"repro.kamel.impute_seconds.mean": _stat(2.0, 0.01),
                       "repro.eval.recall": _stat(0.9, 0.001)}}),
        )
        text = render_deltas(deltas)
        assert text.find("regressed") < text.find("improved")
