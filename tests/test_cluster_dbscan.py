"""Unit and property tests for the from-scratch DBSCAN."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import DBSCAN, NOISE, dbscan_labels


def two_blobs(n=30, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal((0, 0), 0.3, size=(n, 2))
    b = rng.normal((10, 10), 0.3, size=(n, 2))
    return np.vstack([a, b])


class TestBasics:
    def test_two_well_separated_blobs(self):
        labels = dbscan_labels(two_blobs(), eps=1.5, min_samples=4)
        assert set(labels) == {0, 1}
        # Points of the same blob share a label.
        assert len(set(labels[:30])) == 1
        assert len(set(labels[30:])) == 1
        assert labels[0] != labels[30]

    def test_all_noise_when_sparse(self):
        data = [[0, 0], [100, 100], [200, 0], [0, 200]]
        labels = dbscan_labels(data, eps=1.0, min_samples=2)
        assert all(label == NOISE for label in labels)

    def test_single_cluster_line(self):
        data = [[i, 0] for i in range(20)]
        labels = dbscan_labels(data, eps=1.5, min_samples=3)
        assert set(labels) == {0}

    def test_empty_input(self):
        assert len(dbscan_labels(np.empty((0, 2)), eps=1.0, min_samples=2)) == 0

    def test_border_point_absorbed(self):
        # Dense core at x=0..4 plus one point just within eps of the edge.
        data = [[float(i), 0.0] for i in range(5)] + [[4.9, 0.0]]
        labels = dbscan_labels(data, eps=1.0, min_samples=3)
        assert labels[-1] == labels[0]

    def test_noise_outlier(self):
        data = [[float(i), 0.0] for i in range(5)] + [[50.0, 50.0]]
        labels = dbscan_labels(data, eps=1.0, min_samples=3)
        assert labels[-1] == NOISE

    def test_validation(self):
        with pytest.raises(ValueError):
            dbscan_labels([[0, 0]], eps=0.0, min_samples=2)
        with pytest.raises(ValueError):
            dbscan_labels([[0, 0]], eps=1.0, min_samples=0)

    def test_min_samples_one_everything_clustered(self):
        labels = dbscan_labels([[0, 0], [100, 100]], eps=1.0, min_samples=1)
        assert NOISE not in labels
        assert labels[0] != labels[1]

    def test_higher_dimensional_data(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0, 0.1, size=(20, 4))
        b = rng.normal(5, 0.1, size=(20, 4))
        labels = dbscan_labels(np.vstack([a, b]), eps=1.0, min_samples=4)
        assert set(labels) == {0, 1}


class TestCustomMetric:
    def test_custom_metric_equivalent_for_euclidean(self):
        data = two_blobs(15, seed=3)
        default = dbscan_labels(data, eps=1.5, min_samples=4)
        custom = dbscan_labels(
            data, eps=1.5, min_samples=4, metric=lambda a, b: float(np.linalg.norm(a - b))
        )
        assert (default == custom).all()

    def test_chebyshev_metric(self):
        data = [[0, 0], [0.9, 0.9], [1.8, 1.8], [50, 50]]
        labels = dbscan_labels(
            data, eps=1.0, min_samples=2, metric=lambda a, b: float(np.max(np.abs(a - b)))
        )
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == NOISE


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-50, max_value=50, allow_nan=False),
                st.floats(min_value=-50, max_value=50, allow_nan=False),
            ),
            min_size=1,
            max_size=40,
        ),
        st.floats(min_value=0.5, max_value=10.0),
        st.integers(min_value=1, max_value=5),
    )
    def test_labels_well_formed(self, pts, eps, min_samples):
        labels = dbscan_labels(pts, eps=eps, min_samples=min_samples)
        assert len(labels) == len(pts)
        clusters = set(labels) - {NOISE}
        if clusters:
            # Contiguous ids starting at 0.
            assert clusters == set(range(len(clusters)))

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-30, max_value=30, allow_nan=False),
                st.floats(min_value=-30, max_value=30, allow_nan=False),
            ),
            min_size=2,
            max_size=25,
        )
    )
    def test_bucket_index_matches_brute_force(self, pts):
        """The grid-bucket region query must equal a linear-scan metric."""
        eps, min_samples = 3.0, 2
        fast = dbscan_labels(pts, eps=eps, min_samples=min_samples)
        brute = dbscan_labels(
            pts,
            eps=eps,
            min_samples=min_samples,
            metric=lambda a, b: float(np.linalg.norm(a - b)),
        )
        assert (fast == brute).all()


class TestWrapper:
    def test_fit_predict(self):
        model = DBSCAN(eps=1.5, min_samples=4)
        labels = model.fit_predict(two_blobs())
        assert model.n_clusters_ == 2
        assert (labels == model.labels_).all()

    def test_n_clusters_before_fit(self):
        with pytest.raises(RuntimeError):
            DBSCAN(eps=1.0, min_samples=2).n_clusters_
