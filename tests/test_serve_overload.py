"""Overload protection: admission control, deadlines, brownout.

Unit scale: the brownout hysteresis state machine under a fake clock,
the level→ladder-cap mapping, rung capping inside ``Kamel.impute``, and
config validation. Multiprocess scale: a deliberately stalled worker
(deterministic chaos, ``stall_after``) backs the queue up so admission
policies, deadline expiry, and the brownout cycle can be observed on a
real pool — every scenario asserts the overload invariant: *submitted ==
completed + shed + expired*, refusals typed, nothing lost.
"""

import pytest

from repro.core.kamel import Kamel
from repro.errors import ConfigError, KamelError, OverloadError
from repro.io.serialize import save_kamel
from repro.obs import instrument as obs
from repro.obs.metrics import get_registry
from repro.resilience.chaos import ChaosConfig
from repro.resilience.ladder import (
    ALL_RUNGS,
    RUNG_COUNTING,
    RUNG_FULL,
    RUNG_LINEAR,
    RUNG_REDUCED_BEAM,
    DegradationLadder,
)
from repro.serve import ServeConfig, ServingPool
from repro.serve.loadtest import LoadtestConfig
from repro.serve.overload import (
    ADMISSION_POLICIES,
    LEVEL_RUNGS,
    BrownoutConfig,
    BrownoutController,
    rung_cap_for,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


# ---------------------------------------------------------------------------
# unit scale
# ---------------------------------------------------------------------------


class TestRungCapMapping:
    def test_level_zero_is_uncapped(self):
        assert rung_cap_for(0) is None
        assert rung_cap_for(-3) is None

    def test_levels_map_down_the_ladder(self):
        assert rung_cap_for(1) == RUNG_REDUCED_BEAM
        assert rung_cap_for(2) == RUNG_COUNTING

    def test_deep_levels_clamp_to_last_cap(self):
        assert rung_cap_for(99) == LEVEL_RUNGS[-1] == RUNG_COUNTING

    def test_allows_respects_cap_ordering(self):
        assert DegradationLadder.allows(RUNG_FULL, None)
        assert not DegradationLadder.allows(RUNG_FULL, RUNG_REDUCED_BEAM)
        assert DegradationLadder.allows(RUNG_COUNTING, RUNG_REDUCED_BEAM)
        # linear is the safety net; no cap may exclude it
        for cap in (None, *ALL_RUNGS):
            assert DegradationLadder.allows(RUNG_LINEAR, cap)

    def test_tighter_cap_picks_the_cheaper_rung(self):
        assert DegradationLadder.tighter_cap(None, RUNG_COUNTING) == RUNG_COUNTING
        assert DegradationLadder.tighter_cap(RUNG_COUNTING, None) == RUNG_COUNTING
        assert (
            DegradationLadder.tighter_cap(RUNG_REDUCED_BEAM, RUNG_COUNTING)
            == RUNG_COUNTING
        )
        assert DegradationLadder.tighter_cap(None, None) is None


class TestBrownoutConfigValidation:
    def test_defaults_valid(self):
        BrownoutConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"high_depth": 0},
            {"low_depth": 8, "high_depth": 8},
            {"low_depth": -1},
            {"step_down_after": 0},
            {"step_up_after": 0},
            {"max_level": 0},
            {"max_level": len(LEVEL_RUNGS)},
            {"interval_s": -0.1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            BrownoutConfig(**kwargs)


class TestBrownoutController:
    def controller(self, **kwargs):
        clock = FakeClock()
        defaults = dict(
            high_depth=4, low_depth=1, step_down_after=2, step_up_after=3,
            interval_s=0.25,
        )
        defaults.update(kwargs)
        return BrownoutController(BrownoutConfig(**defaults), clock=clock), clock

    def tick(self, ctl, clock, depth, p99=None):
        clock.advance(ctl.config.interval_s)
        return ctl.evaluate(depth, p99)

    def test_steps_down_only_after_sustained_pressure(self):
        ctl, clock = self.controller()
        assert self.tick(ctl, clock, depth=10) is None
        assert ctl.level == 0
        assert self.tick(ctl, clock, depth=10) == 1
        assert ctl.cap == RUNG_REDUCED_BEAM

    def test_rate_limited_by_interval(self):
        ctl, clock = self.controller(step_down_after=1)
        assert self.tick(ctl, clock, depth=10) == 1
        # same instant: ignored, no double step
        assert ctl.evaluate(10) is None
        assert ctl.level == 1

    def test_one_step_per_evaluation_until_max_level(self):
        ctl, clock = self.controller(step_down_after=1)
        assert self.tick(ctl, clock, depth=10) == 1
        assert self.tick(ctl, clock, depth=10) == 2
        # clamped at max_level
        assert self.tick(ctl, clock, depth=10) is None
        assert ctl.level == 2 == ctl.config.max_level

    def test_step_up_is_slower_than_step_down(self):
        ctl, clock = self.controller(step_down_after=1, step_up_after=3)
        self.tick(ctl, clock, depth=10)
        assert ctl.level == 1
        assert self.tick(ctl, clock, depth=0) is None
        assert self.tick(ctl, clock, depth=0) is None
        assert self.tick(ctl, clock, depth=0) == 0
        assert ctl.level == 0

    def test_dead_band_resets_both_streaks(self):
        ctl, clock = self.controller(step_down_after=2)
        self.tick(ctl, clock, depth=10)
        # between low and high: holds, and the over-streak starts over
        self.tick(ctl, clock, depth=2)
        self.tick(ctl, clock, depth=10)
        assert ctl.level == 0
        assert self.tick(ctl, clock, depth=10) == 1

    def test_queue_wait_p99_also_triggers(self):
        ctl, clock = self.controller(
            step_down_after=1, high_queue_wait_s=0.5
        )
        assert self.tick(ctl, clock, depth=0, p99=0.9) == 1

    def test_p99_ignored_when_latency_trigger_disabled(self):
        ctl, clock = self.controller(step_down_after=1, high_queue_wait_s=None)
        # depth 0 is under low_depth, so this is an under-pressure sample
        assert self.tick(ctl, clock, depth=0, p99=99.0) is None
        assert ctl.level == 0

    def test_full_cycle_recorded_and_reported(self):
        ctl, clock = self.controller(step_down_after=1, step_up_after=1)
        self.tick(ctl, clock, depth=10)
        self.tick(ctl, clock, depth=10)
        assert not ctl.completed_cycle()
        self.tick(ctl, clock, depth=0)
        self.tick(ctl, clock, depth=0)
        assert ctl.level == 0
        assert ctl.completed_cycle()
        doc = ctl.to_dict()
        assert doc["level"] == 0
        assert doc["cap"] is None
        assert doc["completed_cycle"] is True
        assert [(t["from"], t["to"]) for t in doc["transitions"]] == [
            (0, 1), (1, 2), (2, 1), (1, 0),
        ]
        assert {t["reason"] for t in doc["transitions"]} == {
            "pressure", "recovered",
        }


class TestImputeRungCap:
    """``max_rung`` caps the ladder inside the core imputer."""

    @pytest.fixture(scope="class")
    def sparse(self, small_split):
        _, test = small_split
        return test[0].sparsify(800.0)

    def test_uncapped_baseline_uses_the_ladder_top(self, trained_kamel, sparse):
        result = trained_kamel.impute(sparse)
        assert result.num_segments > 0

    def test_counting_cap_excludes_model_rungs(self, trained_kamel, sparse):
        result = trained_kamel.impute(sparse, max_rung=RUNG_COUNTING)
        rungs = {o.rung for o in result.segments}
        assert rungs <= {RUNG_COUNTING, RUNG_LINEAR}

    def test_linear_cap_degrades_everything(self, trained_kamel, sparse):
        result = trained_kamel.impute(sparse, max_rung=RUNG_LINEAR)
        assert {o.rung for o in result.segments} == {RUNG_LINEAR}
        assert all(o.failed for o in result.segments)

    def test_brownout_skips_are_counted(self, trained_kamel, sparse):
        before = obs.counter("repro.resilience.brownout_skips_total").value
        trained_kamel.impute(sparse, max_rung=RUNG_LINEAR)
        after = obs.counter("repro.resilience.brownout_skips_total").value
        assert after > before


class TestIpcChaos:
    """The new IPC fault sites, at unit scale (pool tests use them live)."""

    def test_stall_fires_exactly_once_at_the_counter(self):
        from repro.resilience.chaos import ChaosMonkey

        waits = []
        monkey = ChaosMonkey(
            ChaosConfig(seed=0, stall_after=2, stall_s=0.5),
            sleep=waits.append,
        )
        for _ in range(5):
            monkey.on_dequeue()
        assert waits == [0.5]
        assert monkey.report.stalls == 1

    def test_ipc_delay_respects_site_list(self):
        from repro.resilience.chaos import ChaosMonkey

        waits = []
        monkey = ChaosMonkey(
            ChaosConfig(
                seed=0, ipc_delay_rate=1.0, ipc_delay_s=0.01,
                ipc_sites=("ipc.result",),
            ),
            sleep=waits.append,
        )
        monkey.on_ipc("ipc.dequeue")
        assert waits == []
        monkey.on_ipc("ipc.result")
        assert waits == [0.01]

    def test_ipc_config_validated(self):
        with pytest.raises(ValueError):
            ChaosConfig(ipc_delay_rate=1.5)
        with pytest.raises(ValueError):
            ChaosConfig(stall_after=0)
        with pytest.raises(ValueError):
            ChaosConfig(stall_s=-1.0)


class TestOverloadError:
    def test_is_a_kamel_error_with_context(self):
        err = OverloadError("queue full", shard=3, policy="shed")
        assert isinstance(err, KamelError)
        assert err.shard == 3
        assert err.policy == "shed"


class TestConfigValidation:
    def test_serve_config_rejects_unknown_policy(self):
        with pytest.raises(ConfigError):
            ServeConfig(admission_policy="drop-everything")

    def test_serve_config_rejects_bad_bounds(self):
        with pytest.raises(ConfigError):
            ServeConfig(max_queue_depth=0)
        with pytest.raises(ConfigError):
            ServeConfig(queue_prefetch=0)
        with pytest.raises(ConfigError):
            ServeConfig(request_deadline_s=0.0)

    def test_loadtest_overload_flag(self):
        assert not LoadtestConfig().overload
        assert LoadtestConfig(offered_tps=5.0).overload
        assert LoadtestConfig(offered_multiplier=2.0).overload

    def test_loadtest_rejects_bad_overload_values(self):
        with pytest.raises(ConfigError):
            LoadtestConfig(offered_tps=-1.0)
        with pytest.raises(ConfigError):
            LoadtestConfig(offered_multiplier=0.0)
        with pytest.raises(ConfigError):
            LoadtestConfig(admission="nope")
        with pytest.raises(ConfigError):
            LoadtestConfig(request_deadline_s=0.0)

    def test_every_policy_accepted(self):
        for policy in ADMISSION_POLICIES:
            ServeConfig(max_queue_depth=4, admission_policy=policy)


# ---------------------------------------------------------------------------
# multiprocess scale: a stalled worker backs the queue up
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def saved_dir(trained_kamel, tmp_path_factory):
    directory = tmp_path_factory.mktemp("overload_model")
    save_kamel(trained_kamel, directory)
    return directory


@pytest.fixture(scope="module")
def sparse_feed(small_split):
    _, test = small_split
    return [t.sparsify(800.0) for t in test[:8]]


def _stall(seconds):
    """Deterministic chaos: the worker freezes on its first dequeue,
    guaranteeing the queue backs up while the feed is submitted."""
    return ChaosConfig(seed=0, stall_after=1, stall_s=seconds)


def _accounted(pool, feed, results):
    stats = pool.stats
    assert stats.lost == 0
    assert stats.completed + stats.shed + stats.expired == len(feed)
    assert set(results) == {t.traj_id for t in feed}


class TestShedAdmission:
    @pytest.fixture(scope="class")
    def run(self, saved_dir, sparse_feed):
        get_registry().reset(prefix="repro.serve")
        config = ServeConfig(
            workers=1,
            strategy="round_robin",
            max_queue_depth=2,
            admission_policy="shed",
            worker_chaos=_stall(1.5),
            drain_timeout_s=240.0,
        )
        pool = ServingPool(str(saved_dir), config)
        with pool:
            results = pool.process_all(sparse_feed, timeout=240)
        return pool, results

    def test_everything_accounted(self, run, sparse_feed):
        pool, results = run
        _accounted(pool, sparse_feed, results)

    def test_excess_was_shed_as_typed_overload_results(self, run):
        pool, results = run
        assert pool.stats.shed > 0
        shed = [m for m in results.values() if m.get("shed")]
        assert len(shed) == pool.stats.shed
        for message in shed:
            assert message["error_type"] == "OverloadError"
            assert message["policy"] == "shed"
            assert "OverloadError" in message["error"]

    def test_queue_depth_stayed_bounded(self, run):
        pool, _ = run
        assert 0 < pool.stats.peak_queue_depth <= 2

    def test_shed_total_counter_matches(self, run):
        pool, _ = run
        assert obs.counter("repro.serve.shed_total").value == pool.stats.shed

    def test_gauges_settle_to_zero_after_drain(self, run):
        assert obs.gauge("repro.serve.queue_depth").value == 0
        assert obs.gauge("repro.serve.inflight").value == 0

    def test_healthz_reports_admission_and_shed(self, run):
        pool, _ = run
        doc = pool.healthz()
        assert doc["shed"] == pool.stats.shed
        assert doc["admission"]["max_queue_depth"] == 2
        assert doc["admission"]["policy"] == "shed"


class TestShedOldestAdmission:
    def test_newest_request_wins(self, saved_dir, sparse_feed):
        get_registry().reset(prefix="repro.serve")
        config = ServeConfig(
            workers=1,
            strategy="round_robin",
            max_queue_depth=4,
            queue_prefetch=1,
            admission_policy="shed-oldest",
            worker_chaos=_stall(1.5),
            drain_timeout_s=240.0,
        )
        pool = ServingPool(str(saved_dir), config)
        with pool:
            results = pool.process_all(sparse_feed, timeout=240)
        _accounted(pool, sparse_feed, results)
        assert pool.stats.shed > 0
        # the newest submission survives: evictions hit the oldest
        # buffered entry, so the last trajectory must have completed
        last = results[sparse_feed[-1].traj_id]
        assert not last.get("shed")
        evicted = [
            m for m in results.values()
            if m.get("shed") and "evicted" in m["error"]
        ]
        assert evicted, "shed-oldest never evicted a buffered request"


class TestBlockAdmission:
    def test_backpressure_blocks_instead_of_shedding(
        self, saved_dir, sparse_feed
    ):
        get_registry().reset(prefix="repro.serve")
        config = ServeConfig(
            workers=1,
            strategy="round_robin",
            max_queue_depth=2,
            admission_policy="block",
            worker_chaos=_stall(0.8),
            drain_timeout_s=240.0,
        )
        pool = ServingPool(str(saved_dir), config)
        with pool:
            results = pool.process_all(sparse_feed, timeout=240)
        _accounted(pool, sparse_feed, results)
        assert pool.stats.shed == 0
        assert pool.stats.completed == len(sparse_feed)
        assert obs.counter("repro.serve.submit_blocked_total").value > 0


class TestDeadlineExpiry:
    @pytest.fixture(scope="class")
    def run(self, saved_dir, sparse_feed):
        get_registry().reset(prefix="repro.serve")
        config = ServeConfig(
            workers=1,
            strategy="round_robin",
            request_deadline_s=0.4,
            worker_chaos=_stall(1.2),
            drain_timeout_s=240.0,
        )
        pool = ServingPool(str(saved_dir), config)
        with pool:
            results = pool.process_all(sparse_feed, timeout=240)
        return pool, results

    def test_expired_in_queue_dropped_not_lost(self, run, sparse_feed):
        pool, results = run
        _accounted(pool, sparse_feed, results)
        assert pool.stats.expired > 0

    def test_expired_results_are_typed(self, run):
        pool, results = run
        expired = [m for m in results.values() if m.get("expired")]
        assert len(expired) == pool.stats.expired
        for message in expired:
            assert message["error_type"] == "DeadlineExceeded"
            assert message["trips"] == []

    def test_expired_excluded_from_latency_histogram(self, run):
        pool, _ = run
        histogram = obs.histogram("repro.serve.latency_seconds")
        assert histogram.count == pool.stats.completed


class TestBrownoutOnPool:
    @pytest.fixture(scope="class")
    def run(self, saved_dir, sparse_feed):
        get_registry().reset(prefix="repro.serve")
        config = ServeConfig(
            workers=1,
            strategy="round_robin",
            max_queue_depth=6,
            admission_policy="shed",
            worker_chaos=_stall(1.0),
            brownout=BrownoutConfig(
                high_depth=3, low_depth=1,
                step_down_after=1, step_up_after=1, interval_s=0.0,
            ),
            drain_timeout_s=240.0,
        )
        pool = ServingPool(str(saved_dir), config)
        with pool:
            results = pool.process_all(sparse_feed, timeout=240)
            level = pool.brownout_settle(timeout_s=10.0)
        return pool, results, level

    def test_stepped_down_under_pressure(self, run):
        pool, _, _ = run
        assert any(
            t.to_level > t.from_level for t in pool.brownout.transitions
        )

    def test_recovered_after_drain(self, run):
        pool, _, level = run
        assert level == 0
        assert pool.brownout.completed_cycle()

    def test_healthz_exposes_brownout_state(self, run):
        pool, _, _ = run
        doc = pool.healthz()
        assert doc["brownout"]["level"] == 0
        assert doc["brownout"]["completed_cycle"] is True

    def test_everything_still_accounted(self, run, sparse_feed):
        pool, results, _ = run
        _accounted(pool, sparse_feed, results)


@pytest.mark.chaos
class TestWorkerKillDuringOverload:
    """The composed failure: a bounded, stalled queue AND a worker crash.

    Exactly-once must survive the combination — the respawned shard
    replays its journal, dedupe suppresses any double delivery, and the
    overload accounting still sums to the number submitted.
    """

    @pytest.fixture(scope="class")
    def run(self, saved_dir, small_split, tmp_path_factory):
        _, test = small_split
        feed = [t.sparsify(800.0) for t in test[:12]]
        get_registry().reset(prefix="repro.serve")
        journal_dir = tmp_path_factory.mktemp("overload_journal")
        config = ServeConfig(
            workers=2,
            strategy="round_robin",
            journal_dir=str(journal_dir),
            crash_worker_after=2,
            max_queue_depth=3,
            admission_policy="shed",
            worker_chaos=_stall(0.8),
            drain_timeout_s=240.0,
        )
        pool = ServingPool(str(saved_dir), config)
        with pool:
            results = pool.process_all(feed, timeout=240)
        return pool, results, feed

    def test_worker_died_and_was_replaced(self, run):
        pool, _, _ = run
        assert pool.stats.worker_deaths >= 1

    def test_overload_really_happened(self, run):
        pool, _, _ = run
        assert pool.stats.shed > 0

    def test_exactly_once_accounting_preserved(self, run):
        pool, results, feed = run
        _accounted(pool, feed, results)
        # one result per trajectory, even where the journal was replayed
        assert len(results) == len(feed)

    def test_queue_bound_held_through_the_crash(self, run):
        pool, _, _ = run
        assert pool.stats.peak_queue_depth <= 3
