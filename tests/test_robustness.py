"""Robustness: malformed and degenerate inputs through the full system.

Contract (enforced by :mod:`repro.resilience.validate`): any input either
imputes, or raises a *typed* :class:`~repro.errors.KamelError` — most
specifically :class:`~repro.errors.QuarantinedInputError` for inputs no
degradation-ladder rung can process. Nothing malformed may escape as an
unhandled ``ValueError``/``FloatingPointError``/hang.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import KamelError, QuarantinedInputError
from repro.geo import Point, Trajectory

finite_coord = st.floats(
    min_value=-50_000.0, max_value=50_000.0, allow_nan=False, allow_infinity=False
)
any_float = st.floats(allow_nan=True, allow_infinity=True, width=64)


class TestDegenerateInputs:
    def test_duplicate_consecutive_points(self, trained_kamel):
        traj = Trajectory(
            "dup",
            [
                Point(100.0, 100.0, t=0.0),
                Point(100.0, 100.0, t=1.0),
                Point(700.0, 100.0, t=60.0),
            ],
        )
        result = trained_kamel.impute(traj)
        assert result.trajectory.points[0] == traj.points[0]
        assert result.trajectory.points[-1] == traj.points[-1]

    def test_untimed_points(self, trained_kamel):
        traj = Trajectory("untimed", [Point(100.0, 100.0), Point(800.0, 100.0)])
        result = trained_kamel.impute(traj)
        # Constraints fall back to the geometric floor; the system still
        # produces a dense output (possibly via linear fallback).
        assert len(result.trajectory) >= 2

    def test_reversed_timestamps(self, trained_kamel):
        traj = Trajectory(
            "reversed", [Point(100.0, 100.0, t=100.0), Point(800.0, 100.0, t=0.0)]
        )
        result = trained_kamel.impute(traj)
        assert result.num_segments == 1

    def test_zero_length_trajectory(self, trained_kamel):
        result = trained_kamel.impute(Trajectory("empty"))
        assert result.trajectory.is_empty
        assert result.num_segments == 0

    def test_stationary_trajectory(self, trained_kamel):
        traj = Trajectory(
            "parked", [Point(100.0, 100.0, t=float(i)) for i in range(5)]
        )
        result = trained_kamel.impute(traj)
        assert len(result.trajectory) == 5
        assert result.num_segments == 0

    def test_huge_gap_does_not_hang(self, trained_kamel):
        traj = Trajectory(
            "huge", [Point(0.0, 0.0, t=0.0), Point(20_000.0, 0.0, t=2000.0)]
        )
        result = trained_kamel.impute(traj)
        # Way outside any model: a dense linear fallback, flagged failed.
        assert result.num_failed == 1
        assert result.trajectory.max_gap() <= trained_kamel.config.maxgap_m + 1e-6

    def test_negative_coordinates(self, trained_kamel):
        traj = Trajectory(
            "negative", [Point(-500.0, -500.0, t=0.0), Point(-1200.0, -500.0, t=70.0)]
        )
        result = trained_kamel.impute(traj)
        assert result.num_segments == 1


class TestSystemProperties:
    """Hypothesis-driven invariants of the full impute() path."""

    @settings(max_examples=15, deadline=None)
    @given(
        index=st.integers(min_value=0, max_value=9),
        sparseness=st.floats(min_value=300.0, max_value=900.0),
    )
    def test_invariants_hold_for_any_test_trajectory(
        self, trained_kamel, small_split, index, sparseness
    ):
        _, test = small_split
        truth = test[index % len(test)]
        sparse = truth.sparsify(sparseness)
        result = trained_kamel.impute(sparse)

        out = result.trajectory.points
        # 1. Endpoints preserved.
        assert out[0] == sparse.points[0]
        assert out[-1] == sparse.points[-1]
        # 2. Every sparse anchor appears, in order.
        iterator = iter(out)
        assert all(p in iterator for p in sparse.points)
        # 3. No remaining gap beyond the effective threshold.
        threshold = max(
            trained_kamel.config.maxgap_m,
            (trained_kamel.gap_threshold_m or 0.0),
            trained_kamel.tokenizer.grid.centroid_spacing_m,
        )
        assert result.trajectory.max_gap() <= 2.2 * threshold
        # 4. Timestamps non-decreasing wherever present.
        times = [p.t for p in out if p.t is not None]
        assert all(a <= b + 1e-9 for a, b in zip(times, times[1:]))
        # 5. Bookkeeping consistent.
        assert 0 <= result.num_failed <= result.num_segments
        assert result.num_failed <= result.num_degraded <= result.num_segments


class TestMalformedInputs:
    """Hypothesis sweep: poisoned inputs get a typed error or quarantine,
    never an unhandled exception."""

    @settings(max_examples=30, deadline=None)
    @given(
        bad=st.sampled_from([float("nan"), float("inf"), float("-inf")]),
        slot=st.integers(min_value=0, max_value=2),
        x=finite_coord,
        y=finite_coord,
        t=st.floats(
            min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
        ),
    )
    def test_non_finite_values_raise_quarantine(self, trained_kamel, bad, slot, x, y, t):
        values = [x, y, t]
        values[slot] = bad
        x, y, t = values
        traj = Trajectory(
            "poisoned", [Point(x, y, t=t), Point(700.0, 100.0, t=60.0)]
        )
        with pytest.raises(QuarantinedInputError) as excinfo:
            trained_kamel.impute(traj)
        assert excinfo.value.reason in (
            "non_finite_coordinate",
            "non_finite_timestamp",
            "coordinate_out_of_range",
        )

    @settings(max_examples=25, deadline=None)
    @given(x=finite_coord, y=finite_coord)
    def test_out_of_grid_points_never_unhandled(self, trained_kamel, x, y):
        # Finite but arbitrarily far outside the trained grid: must produce
        # a dense result (linear fallback at worst), never crash.
        traj = Trajectory(
            "far", [Point(x, y, t=0.0), Point(x + 900.0, y, t=90.0)]
        )
        result = trained_kamel.impute(traj)
        assert result.num_segments == 1
        assert len(result.trajectory) >= 2

    @settings(max_examples=20, deadline=None)
    @given(
        times=st.lists(
            st.floats(
                min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
            ),
            min_size=3,
            max_size=6,
        )
    )
    def test_unordered_timestamps_stay_processable(self, trained_kamel, times):
        # Negative, duplicate, or reversed timestamps are degraded data,
        # not poison: the system imputes them (the constraints fall back
        # to geometry-only operation).
        points = [
            Point(100.0 + 300.0 * i, 100.0, t=t) for i, t in enumerate(times)
        ]
        result = trained_kamel.impute(Trajectory("shuffled-time", points))
        assert len(result.trajectory) >= len(points)

    @settings(max_examples=15, deadline=None)
    @given(
        x=any_float,
        y=any_float,
        magnitude=st.floats(min_value=1.1e7, max_value=1e300),
        sign=st.sampled_from([-1.0, 1.0]),
    )
    def test_anything_bad_is_a_kamel_error(self, trained_kamel, x, y, magnitude, sign):
        # The catch-one-base contract: whatever flavor of bad, a single
        # `except KamelError` is enough for callers.
        traj = Trajectory(
            "any-bad",
            [Point(x, y, t=0.0), Point(sign * magnitude, 0.0, t=10.0)],
        )
        try:
            result = trained_kamel.impute(traj)
        except KamelError:
            pass
        else:
            assert len(result.trajectory) >= 2

    def test_quarantined_input_is_dead_lettered_by_the_service(
        self, trained_kamel, tmp_path
    ):
        from repro.core.streaming import StreamingConfig, StreamingImputationService

        service = StreamingImputationService(
            trained_kamel,
            StreamingConfig(quarantine_path=str(tmp_path / "dead.jsonl")),
        )
        bad = Trajectory(
            "nan-coord",
            [Point(float("nan"), 0.0, t=0.0), Point(700.0, 100.0, t=60.0)],
        )
        results = service.process(bad)  # must not raise
        assert results == []
        assert service.stats.quarantined == 1
        entries = service.quarantine.entries()
        assert len(entries) == 1
        assert entries[0].traj_id == "nan-coord"
        assert entries[0].reason == "non_finite_coordinate"
