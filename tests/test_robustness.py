"""Robustness: malformed and degenerate inputs through the full system."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.geo import Point, Trajectory


class TestDegenerateInputs:
    def test_duplicate_consecutive_points(self, trained_kamel):
        traj = Trajectory(
            "dup",
            [
                Point(100.0, 100.0, t=0.0),
                Point(100.0, 100.0, t=1.0),
                Point(700.0, 100.0, t=60.0),
            ],
        )
        result = trained_kamel.impute(traj)
        assert result.trajectory.points[0] == traj.points[0]
        assert result.trajectory.points[-1] == traj.points[-1]

    def test_untimed_points(self, trained_kamel):
        traj = Trajectory("untimed", [Point(100.0, 100.0), Point(800.0, 100.0)])
        result = trained_kamel.impute(traj)
        # Constraints fall back to the geometric floor; the system still
        # produces a dense output (possibly via linear fallback).
        assert len(result.trajectory) >= 2

    def test_reversed_timestamps(self, trained_kamel):
        traj = Trajectory(
            "reversed", [Point(100.0, 100.0, t=100.0), Point(800.0, 100.0, t=0.0)]
        )
        result = trained_kamel.impute(traj)
        assert result.num_segments == 1

    def test_zero_length_trajectory(self, trained_kamel):
        result = trained_kamel.impute(Trajectory("empty"))
        assert result.trajectory.is_empty
        assert result.num_segments == 0

    def test_stationary_trajectory(self, trained_kamel):
        traj = Trajectory(
            "parked", [Point(100.0, 100.0, t=float(i)) for i in range(5)]
        )
        result = trained_kamel.impute(traj)
        assert len(result.trajectory) == 5
        assert result.num_segments == 0

    def test_huge_gap_does_not_hang(self, trained_kamel):
        traj = Trajectory(
            "huge", [Point(0.0, 0.0, t=0.0), Point(20_000.0, 0.0, t=2000.0)]
        )
        result = trained_kamel.impute(traj)
        # Way outside any model: a dense linear fallback, flagged failed.
        assert result.num_failed == 1
        assert result.trajectory.max_gap() <= trained_kamel.config.maxgap_m + 1e-6

    def test_negative_coordinates(self, trained_kamel):
        traj = Trajectory(
            "negative", [Point(-500.0, -500.0, t=0.0), Point(-1200.0, -500.0, t=70.0)]
        )
        result = trained_kamel.impute(traj)
        assert result.num_segments == 1


class TestSystemProperties:
    """Hypothesis-driven invariants of the full impute() path."""

    @settings(max_examples=15, deadline=None)
    @given(
        index=st.integers(min_value=0, max_value=9),
        sparseness=st.floats(min_value=300.0, max_value=900.0),
    )
    def test_invariants_hold_for_any_test_trajectory(
        self, trained_kamel, small_split, index, sparseness
    ):
        _, test = small_split
        truth = test[index % len(test)]
        sparse = truth.sparsify(sparseness)
        result = trained_kamel.impute(sparse)

        out = result.trajectory.points
        # 1. Endpoints preserved.
        assert out[0] == sparse.points[0]
        assert out[-1] == sparse.points[-1]
        # 2. Every sparse anchor appears, in order.
        iterator = iter(out)
        assert all(p in iterator for p in sparse.points)
        # 3. No remaining gap beyond the effective threshold.
        threshold = max(
            trained_kamel.config.maxgap_m,
            (trained_kamel.gap_threshold_m or 0.0),
            trained_kamel.tokenizer.grid.centroid_spacing_m,
        )
        assert result.trajectory.max_gap() <= 2.2 * threshold
        # 4. Timestamps non-decreasing wherever present.
        times = [p.t for p in out if p.t is not None]
        assert all(a <= b + 1e-9 for a, b in zip(times, times[1:]))
        # 5. Bookkeeping consistent.
        assert 0 <= result.num_failed <= result.num_segments
