"""Unit tests for repro.obs.metrics: counters, histograms, registry."""

import json
import math
import random

import pytest

from repro.obs.metrics import (
    COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    P2Quantile,
    get_registry,
    set_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("c")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_reset_zeroes_in_place(self):
        c = Counter("c")
        c.inc(3)
        c.reset()
        assert c.value == 0


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7


class TestHistogramBuckets:
    def test_bucket_edges_are_cumulative_upper_bounds(self):
        h = Histogram("h", buckets=(1.0, 5.0, 10.0))
        for v in (0.5, 1.0, 3.0, 7.0, 100.0):
            h.observe(v)
        counts = h.bucket_counts()
        # le semantics: a value equal to an edge lands in that bucket.
        assert counts[1.0] == 2
        assert counts[5.0] == 3
        assert counts[10.0] == 4
        assert counts[math.inf] == 5

    def test_infinity_bucket_is_appended_when_missing(self):
        h = Histogram("h", buckets=(1.0,))
        assert h.buckets[-1] == math.inf

    def test_count_sum_mean_min_max(self):
        h = Histogram("h", buckets=COUNT_BUCKETS)
        for v in (1, 2, 3):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 6
        assert h.mean == 2
        assert h.min == 1
        assert h.max == 3

    def test_empty_histogram_has_no_extrema(self):
        h = Histogram("h")
        assert h.min is None and h.max is None
        assert h.quantile(0.5) is None

    def test_default_latency_buckets_span_100us_to_60s(self):
        assert LATENCY_BUCKETS[0] == pytest.approx(0.0001)
        assert 60.0 in LATENCY_BUCKETS


class TestHistogramQuantiles:
    def test_streaming_quantiles_track_uniform_distribution(self):
        rng = random.Random(7)
        h = Histogram("h", buckets=(0.1, 1.0, 10.0))
        values = [rng.uniform(0.0, 10.0) for _ in range(5000)]
        for v in values:
            h.observe(v)
        values.sort()
        for p in (0.5, 0.9, 0.99):
            true = values[int(p * (len(values) - 1))]
            assert h.quantile(p) == pytest.approx(true, abs=0.25)

    def test_exact_for_fewer_than_five_observations(self):
        h = Histogram("h")
        h.observe(1.0)
        h.observe(3.0)
        assert h.quantile(0.5) == pytest.approx(2.0)

    def test_untracked_quantile_falls_back_to_bucket_interpolation(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 2.5, 3.5):
            h.observe(v)
        q75 = h.quantile(0.75)
        assert 2.0 <= q75 <= 4.0

    def test_p2_estimator_exact_median_of_five(self):
        q = P2Quantile(0.5)
        for v in (5.0, 1.0, 3.0, 2.0, 4.0):
            q.observe(v)
        assert q.value == 3.0

    def test_p2_rejects_degenerate_p(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)

    def test_reset_clears_distribution(self):
        h = Histogram("h")
        h.observe(1.0)
        h.reset()
        assert h.count == 0
        assert h.quantile(0.5) is None
        h.observe(2.0)
        assert h.count == 1


class TestRegistry:
    def test_same_name_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_snapshot_roundtrips_through_json(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = json.loads(reg.to_json())
        assert snap["c"] == {"type": "counter", "value": 2}
        assert snap["g"]["value"] == 1.5
        assert snap["h"]["count"] == 1
        assert snap["h"]["buckets"]["+Inf"] == 1

    def test_snapshot_prefix_filter(self):
        reg = MetricsRegistry()
        reg.counter("repro.kamel.x").inc()
        reg.counter("repro.bert.y").inc()
        assert list(reg.snapshot(prefix="repro.kamel.")) == ["repro.kamel.x"]

    def test_reset_keeps_handles_valid(self):
        reg = MetricsRegistry()
        handle = reg.counter("c")
        handle.inc(9)
        reg.reset()
        assert handle.value == 0
        handle.inc()
        assert reg.counter("c").value == 1

    def test_write_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        path = tmp_path / "metrics.json"
        reg.write_json(path)
        assert json.loads(path.read_text())["c"]["value"] == 1

    def test_default_registry_swap_and_restore(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)
        assert get_registry() is previous
