"""Unit tests for repro.obs.logging: formatters and configuration."""

import io
import json
import logging

import pytest

from repro.obs.logging import (
    JsonLinesFormatter,
    KeyValueFormatter,
    ROOT_LOGGER_NAME,
    TraceIdFilter,
    configure_logging,
    get_logger,
)
from repro.obs.tracing import trace_scope


@pytest.fixture()
def clean_root_logger():
    """Strip any structured handlers configure_logging attached."""
    yield
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_structured", False):
            root.removeHandler(handler)
    root.propagate = True
    root.setLevel(logging.NOTSET)


def _record(msg="hello world", data=None, level=logging.INFO):
    record = logging.LogRecord(
        "repro.test", level, __file__, 1, msg, args=(), exc_info=None
    )
    if data is not None:
        record.data = data
    return record


class TestGetLogger:
    def test_prefixes_into_the_repro_hierarchy(self):
        assert get_logger("core.kamel").name == "repro.core.kamel"

    def test_keeps_existing_prefix(self):
        assert get_logger("repro.mlm.bert").name == "repro.mlm.bert"

    def test_none_returns_root(self):
        assert get_logger().name == ROOT_LOGGER_NAME


class TestKeyValueFormatter:
    def test_renders_structured_fields(self):
        line = KeyValueFormatter().format(
            _record(data={"segment": 3, "reason": "no_model"})
        )
        assert 'msg="hello world"' in line
        assert "segment=3" in line
        assert "reason=no_model" in line
        assert "level=INFO" in line

    def test_quotes_values_with_spaces(self):
        line = KeyValueFormatter().format(_record(data={"k": "a b"}))
        assert 'k="a b"' in line


class TestJsonLinesFormatter:
    def test_each_record_is_one_json_object(self):
        line = JsonLinesFormatter().format(
            _record(data={"gap_m": 420.5}, level=logging.WARNING)
        )
        obj = json.loads(line)
        assert obj["msg"] == "hello world"
        assert obj["level"] == "WARNING"
        assert obj["data"] == {"gap_m": 420.5}


class TestTraceIdInjection:
    def test_kv_line_carries_the_active_trace_id(self):
        with trace_scope("feedface00000001"):
            line = KeyValueFormatter().format(_record(level=logging.WARNING))
        assert "trace_id=feedface00000001" in line

    def test_json_line_carries_the_active_trace_id(self):
        with trace_scope("feedface00000002"):
            obj = json.loads(JsonLinesFormatter().format(_record()))
        assert obj["trace_id"] == "feedface00000002"

    def test_no_scope_means_no_trace_id_field(self):
        kv_line = KeyValueFormatter().format(_record())
        assert "trace_id=" not in kv_line
        obj = json.loads(JsonLinesFormatter().format(_record()))
        assert "trace_id" not in obj

    def test_filter_stamps_at_emit_time(self):
        """The filter captures the id on the emitting thread, so a handler
        formatting later (or on another thread) still sees it."""
        record = _record()
        with trace_scope("feedface00000003"):
            assert TraceIdFilter().filter(record) is True
        # Scope has closed; the stamped value survives.
        assert record.trace_id == "feedface00000003"
        line = KeyValueFormatter().format(record)
        assert "trace_id=feedface00000003" in line

    def test_configured_handler_end_to_end(self, clean_root_logger):
        stream = io.StringIO()
        configure_logging(level="WARNING", stream=stream, force=True)
        with trace_scope("feedface00000004"):
            get_logger("core.imputation").warning("fallback")
        assert "trace_id=feedface00000004" in stream.getvalue()


class TestConfigureLogging:
    def test_attaches_one_structured_handler(self, clean_root_logger):
        stream = io.StringIO()
        root = configure_logging(level="INFO", stream=stream)
        get_logger("core.kamel").info("x")
        assert "logger=repro.core.kamel" in stream.getvalue()
        assert sum(
            1 for h in root.handlers if getattr(h, "_repro_structured", False)
        ) == 1

    def test_idempotent_reconfiguration(self, clean_root_logger):
        stream = io.StringIO()
        configure_logging(level="INFO", stream=stream)
        configure_logging(level="DEBUG", stream=stream)
        root = logging.getLogger(ROOT_LOGGER_NAME)
        structured = [
            h for h in root.handlers if getattr(h, "_repro_structured", False)
        ]
        assert len(structured) == 1
        assert structured[0].level == logging.DEBUG

    def test_rejects_unknown_level_and_format(self, clean_root_logger):
        with pytest.raises(ValueError):
            configure_logging(level="LOUD")
        with pytest.raises(ValueError):
            configure_logging(fmt="xml")

    def test_json_format(self, clean_root_logger):
        stream = io.StringIO()
        configure_logging(level="INFO", fmt="json", stream=stream, force=True)
        get_logger("eval").info("done", extra={"data": {"n": 2}})
        obj = json.loads(stream.getvalue())
        assert obj["data"] == {"n": 2}
