"""End-to-end observability: a fit + impute run emits the expected
counters, histograms, spans, and warning logs."""

import logging

import pytest

from repro import Kamel, KamelConfig
from repro.obs import (
    METRIC_CATALOG,
    MetricsRegistry,
    clear_spans,
    disable_tracing,
    enable_tracing,
    finished_spans,
    set_registry,
)


@pytest.fixture(scope="module")
def obs_run(small_dataset):
    """One fit + impute run with a fresh registry and tracing enabled."""
    registry = MetricsRegistry()
    previous = set_registry(registry)
    enable_tracing()
    clear_spans()
    try:
        train, test = small_dataset.split(seed=1)
        system = Kamel(KamelConfig(max_model_calls=600)).fit(train)
        results = system.impute_batch([t.sparsify(500.0) for t in test[:4]])
        spans = finished_spans()
    finally:
        disable_tracing()
        clear_spans()
        set_registry(previous)
    return registry, results, spans


@pytest.fixture(scope="module")
def run_registry(obs_run):
    registry, results, _ = obs_run
    return registry, results


EXPECTED_COUNTERS = (
    "repro.kamel.trajectories_total",
    "repro.kamel.segments_total",
    "repro.kamel.segments_imputed_total",
    "repro.kamel.training_trajectories_total",
    "repro.kamel.model_calls_total",
    "repro.imputation.segments_total",
    "repro.imputation.beam.segments_total",
    "repro.constraints.candidates_in_total",
    "repro.constraints.candidates_out_total",
    "repro.detokenization.tokens_total",
    "repro.partitioning.lookup_total",
    "repro.partitioning.model_builds_total",
)

EXPECTED_HISTOGRAMS = (
    "repro.kamel.fit_seconds",
    "repro.kamel.impute_seconds",
    "repro.imputation.calls_per_segment",
    "repro.partitioning.model_build_seconds",
)


class TestMetricsEmission:
    def test_expected_counters_present_and_positive(self, run_registry):
        registry, _ = run_registry
        for name in EXPECTED_COUNTERS:
            metric = registry.get(name)
            assert metric is not None, f"{name} never emitted"
            assert metric.value > 0, f"{name} emitted but zero"

    def test_expected_histograms_observed(self, run_registry):
        registry, _ = run_registry
        for name in EXPECTED_HISTOGRAMS:
            metric = registry.get(name)
            assert metric is not None, f"{name} never emitted"
            assert metric.count > 0

    def test_every_emitted_metric_is_in_the_catalog(self, run_registry):
        registry, _ = run_registry
        unknown = [n for n in registry.names() if n not in METRIC_CATALOG]
        assert not unknown, f"metrics missing from METRIC_CATALOG: {unknown}"

    def test_registry_agrees_with_results(self, run_registry):
        registry, results = run_registry
        assert registry.get("repro.kamel.trajectories_total").value == len(results)
        assert registry.get("repro.kamel.segments_imputed_total").value == sum(
            r.num_segments for r in results
        )
        assert registry.get("repro.kamel.model_calls_total").value == sum(
            r.total_model_calls for r in results
        )
        imputed = sum(r.num_segments for r in results)
        failed = sum(r.num_failed for r in results)
        rate = registry.get("repro.kamel.failure_rate")
        assert rate is not None
        assert rate.value == pytest.approx(failed / imputed if imputed else 0.0)

    def test_constraint_filter_balance(self, run_registry):
        """candidates_in == candidates_out + every rejection bucket."""
        registry, _ = run_registry
        total_in = registry.get("repro.constraints.candidates_in_total").value
        total_out = registry.get("repro.constraints.candidates_out_total").value
        rejected = sum(
            registry.get(name).value
            for name in registry.names()
            if name.startswith("repro.constraints.rejected.")
        )
        assert total_in == total_out + rejected

    def test_pipeline_metrics_cover_every_module(self, run_registry):
        registry, _ = run_registry
        prefixes = {name.split(".")[1] for name in registry.names()}
        assert {
            "kamel", "imputation", "partitioning", "constraints", "detokenization",
        } <= prefixes


class TestSpans:
    def test_impute_produces_the_span_hierarchy(self, obs_run):
        _, results, spans = obs_run
        roots = [s for s in spans if s.name == "impute.trajectory"]
        assert len(roots) == len(results)
        root = roots[0]
        segments = root.find("impute.segment")
        assert segments, "no impute.segment spans under the trajectory"
        assert root.attributes["segments"] == len(segments)
        for seg in segments:
            assert seg.attributes["strategy"] == "beam"
            assert "model_calls" in seg.attributes

    def test_fit_span_carries_sizing_attributes(self, obs_run, small_split):
        _, _, spans = obs_run
        train, _ = small_split
        fit_roots = [s for s in spans if s.name == "kamel.fit"]
        assert len(fit_roots) == 1
        assert fit_roots[0].attributes["trajectories"] == len(train)
        assert fit_roots[0].find("repository.build_model")


class TestFallbackWarning:
    def test_linear_fallback_logs_a_warning(self, trained_kamel, caplog):
        """A segment no model covers must warn once (the paper's failure)."""
        from repro.geo import Point, Trajectory

        # Far outside the trained city: every lookup misses.
        far = Trajectory(
            "offmap",
            [Point(90_000.0, 90_000.0, 0.0), Point(95_000.0, 95_000.0, 600.0)],
        )
        with caplog.at_level(logging.WARNING, logger="repro.core.kamel"):
            result = trained_kamel.impute(far)
        assert result.num_failed == 1
        fallback_records = [
            r for r in caplog.records if "fell back" in r.getMessage()
        ]
        assert len(fallback_records) == 1
        assert fallback_records[0].data["segment"] == 0
