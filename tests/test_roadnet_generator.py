"""Tests for the procedural city generator."""

import networkx as nx
import pytest

from repro.errors import ConfigError
from repro.roadnet import CityConfig, generate_city


@pytest.fixture(scope="module")
def city():
    return generate_city(CityConfig(seed=7))


class TestConfigValidation:
    def test_negative_extent(self):
        with pytest.raises(ConfigError):
            CityConfig(width_m=-1.0)

    def test_block_larger_than_city(self):
        with pytest.raises(ConfigError):
            CityConfig(width_m=100.0, height_m=100.0, block_m=500.0)

    def test_removal_fraction_range(self):
        with pytest.raises(ConfigError):
            CityConfig(removal_fraction=0.7)

    def test_curved_fraction_range(self):
        with pytest.raises(ConfigError):
            CityConfig(curved_fraction=1.5)

    def test_city_too_small_for_grid(self):
        with pytest.raises(ConfigError):
            generate_city(CityConfig(width_m=300.0, height_m=300.0, block_m=250.0))


class TestGeneratedCity:
    def test_determinism(self):
        a = generate_city(CityConfig(seed=42))
        b = generate_city(CityConfig(seed=42))
        assert sorted(map(repr, a.nodes())) == sorted(map(repr, b.nodes()))
        assert a.total_length() == pytest.approx(b.total_length())

    def test_different_seeds_differ(self):
        a = generate_city(CityConfig(seed=1))
        b = generate_city(CityConfig(seed=2))
        assert a.total_length() != pytest.approx(b.total_length())

    def test_connected(self, city):
        assert nx.is_connected(city.graph)

    def test_extent_roughly_matches_config(self, city):
        b = city.bbox()
        assert 2500.0 <= b.width <= 3500.0
        assert 2500.0 <= b.height <= 3500.0

    def test_contains_roundabout_nodes(self, city):
        ring_nodes = [n for n in city.nodes() if isinstance(n, tuple) and n[0] == "r"]
        assert ring_nodes  # at least one roundabout was materialized

    def test_contains_curved_edges(self, city):
        curved = 0
        for u, v, data in city.graph.edges(data=True):
            if len(data["geometry"]) > 2:
                curved += 1
        assert curved > 10

    def test_curved_edges_longer_than_straight_line(self, city):
        for u, v, data in city.graph.edges(data=True):
            geom = data["geometry"]
            chord = geom[0].distance_to(geom[-1])
            assert data["length"] >= chord - 1e-6

    def test_no_roundabouts_config(self):
        city = generate_city(CityConfig(n_roundabouts=0, seed=3))
        assert not [n for n in city.nodes() if isinstance(n, tuple) and n[0] == "r"]

    def test_no_curves_config(self):
        city = generate_city(
            CityConfig(curved_fraction=0.0, n_roundabouts=0, n_diagonals=0, seed=3)
        )
        assert all(
            len(d["geometry"]) == 2 for _, _, d in city.graph.edges(data=True)
        )

    def test_edge_removal_reduces_length(self):
        dense = generate_city(CityConfig(removal_fraction=0.0, seed=9))
        sparse = generate_city(CityConfig(removal_fraction=0.25, seed=9))
        assert sparse.num_edges < dense.num_edges
