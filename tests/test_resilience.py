"""Unit tests for the resilience layer: deadlines, breakers, ladder,
journal, quarantine, and input validation — all with injected clocks and
sleeps, so nothing here waits on real time."""

import math

import pytest

from repro.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    KamelError,
    QuarantinedInputError,
)
from repro.geo import Point, Trajectory
from repro.resilience import (
    ALL_RUNGS,
    CircuitBreaker,
    Deadline,
    DegradationLadder,
    GuardedModel,
    InjectedFault,
    MAX_COORDINATE_M,
    PipelineGuards,
    QuarantineStore,
    RetryPolicy,
    RUNG_COUNTING,
    RUNG_FULL,
    RUNG_LINEAR,
    RUNG_REDUCED_BEAM,
    StreamJournal,
    trajectory_from_payload,
    trajectory_to_payload,
    validate_trajectory,
)


class FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestDeadline:
    def test_after_counts_down(self):
        clock = FakeClock()
        deadline = Deadline.after(2.0, clock=clock)
        assert deadline.remaining() == pytest.approx(2.0)
        assert not deadline.expired
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        clock.advance(1.0)
        assert deadline.expired
        assert deadline.remaining() == pytest.approx(-0.5)

    def test_check_raises_typed_error_with_overrun(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock=clock)
        deadline.check("fine")  # inside budget: no-op
        clock.advance(1.25)
        with pytest.raises(DeadlineExceeded) as excinfo:
            deadline.check("segment imputation")
        assert excinfo.value.overrun_s == pytest.approx(0.25)
        assert isinstance(excinfo.value, KamelError)

    def test_unlimited_never_expires(self):
        deadline = Deadline.unlimited(clock=FakeClock())
        assert deadline.is_unlimited
        assert not deadline.expired
        assert deadline.remaining() == math.inf
        deadline.check()  # never raises

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline.after(0.0)

    def test_combine_picks_tightest(self):
        clock = FakeClock()
        loose = Deadline.after(10.0, clock=clock)
        tight = Deadline.after(1.0, clock=clock)
        combined = Deadline.combine(loose, None, tight)
        assert combined.expires_at == tight.expires_at
        assert Deadline.combine(None, None).is_unlimited

    def test_sub_budget(self):
        clock = FakeClock()
        parent = Deadline.after(10.0, clock=clock)
        assert parent.sub_budget(None) is parent
        child = parent.sub_budget(1.0)
        assert child.remaining() == pytest.approx(1.0)
        # A child can never outlive its parent.
        clock.advance(9.5)
        late_child = parent.sub_budget(5.0)
        assert late_child.remaining() == pytest.approx(0.5)


class TestCircuitBreaker:
    def make(self, clock, threshold=3, recovery=10.0):
        return CircuitBreaker(
            "test", failure_threshold=threshold, recovery_s=recovery, clock=clock
        )

    def test_opens_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = self.make(clock)
        boom = RuntimeError("boom")

        def fail():
            raise boom

        for _ in range(3):
            with pytest.raises(RuntimeError):
                breaker.call(fail)
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: "never runs")

    def test_success_resets_failure_count(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(2):
            with pytest.raises(RuntimeError):
                breaker.call(self._raise)
        assert breaker.call(lambda: "ok") == "ok"
        assert breaker.consecutive_failures == 0
        assert breaker.state == "closed"

    def test_half_open_probe_recovers(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            with pytest.raises(RuntimeError):
                breaker.call(self._raise)
        assert breaker.state == "open"
        clock.advance(10.0)
        # The first call after recovery_s is the half-open probe.
        assert breaker.call(lambda: "probe ok") == "probe ok"
        assert breaker.state == "closed"

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            with pytest.raises(RuntimeError):
                breaker.call(self._raise)
        clock.advance(10.0)
        with pytest.raises(RuntimeError):
            breaker.call(self._raise)
        assert breaker.state == "open"
        assert breaker.open_count == 2

    @staticmethod
    def _raise():
        raise RuntimeError("boom")


class TestRetryPolicy:
    def test_retries_then_succeeds(self):
        sleeps = []
        policy = RetryPolicy(attempts=2, base_delay_s=0.01, seed=0, sleep=sleeps.append)
        attempts = iter([InjectedFault("1"), InjectedFault("2"), "ok"])

        def flaky():
            outcome = next(attempts)
            if isinstance(outcome, Exception):
                raise outcome
            return outcome

        assert policy.call(flaky) == "ok"
        assert len(sleeps) == 2
        assert policy.total_retries == 2

    def test_reraises_after_exhausting_attempts(self):
        policy = RetryPolicy(attempts=1, base_delay_s=0.0, seed=0, sleep=lambda _: None)
        with pytest.raises(InjectedFault):
            policy.call(self._raise)

    def test_backoff_grows_and_jitter_is_seeded(self):
        a = RetryPolicy(attempts=5, base_delay_s=0.01, max_delay_s=1.0, seed=42)
        b = RetryPolicy(attempts=5, base_delay_s=0.01, max_delay_s=1.0, seed=42)
        delays_a = [a.delay_for(n) for n in range(1, 5)]
        delays_b = [b.delay_for(n) for n in range(1, 5)]
        assert delays_a == delays_b  # deterministic under a fixed seed
        for n, delay in enumerate(delays_a, start=1):
            raw = 0.01 * 2 ** (n - 1)
            assert 0.5 * raw <= delay < raw  # jitter in [0.5, 1.0)

    @staticmethod
    def _raise():
        raise InjectedFault("always")


class _FlakyModel:
    """A fake MaskedModel whose predict fails the first N calls."""

    def __init__(self, failures: int = 0) -> None:
        self.failures = failures
        self.calls = 0

    def predict_masked(self, tokens, position, top_k=10):
        self.calls += 1
        if self.calls <= self.failures:
            raise InjectedFault("flaky")
        return [(7, 1.0)]

    @property
    def is_fitted(self):
        return True

    @property
    def num_training_tokens(self):
        return 0


class TestGuardedModel:
    def make_guards(self, **kwargs):
        kwargs.setdefault("sleep", lambda _: None)
        return PipelineGuards(**kwargs)

    def test_transient_fault_absorbed_by_retry(self):
        guards = self.make_guards(retry_attempts=2)
        model = _FlakyModel(failures=2)
        guarded = guards.guard_model(model)
        assert guarded.predict_masked([1, 2], 1) == [(7, 1.0)]
        assert model.calls == 3
        assert guards.inference_breaker.state == "closed"

    def test_persistent_failure_opens_circuit(self):
        clock = FakeClock()
        guards = self.make_guards(
            failure_threshold=2, retry_attempts=0, clock=clock
        )
        model = _FlakyModel(failures=10 ** 6)
        guarded = guards.guard_model(model)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                guarded.predict_masked([1, 2], 1)
        calls_when_opened = model.calls
        with pytest.raises(CircuitOpenError):
            guarded.predict_masked([1, 2], 1)
        assert model.calls == calls_when_opened  # short-circuited, not called

    def test_guard_model_is_idempotent(self):
        guards = self.make_guards()
        model = _FlakyModel()
        guarded = guards.guard_model(model)
        assert guards.guard_model(guarded) is guarded


class TestDegradationLadder:
    def test_full_ladder_from_default_config(self):
        from repro.core.config import KamelConfig

        ladder = DegradationLadder.for_config(KamelConfig())
        assert ladder.rungs == ALL_RUNGS

    def test_iterative_config_skips_reduced_beam(self):
        from repro.core.config import KamelConfig

        ladder = DegradationLadder.for_config(KamelConfig(imputer="iterative"))
        assert RUNG_REDUCED_BEAM not in ladder.rungs
        assert ladder.rungs[-1] == RUNG_LINEAR

    def test_no_fallback_model_skips_counting(self):
        from repro.core.config import KamelConfig

        ladder = DegradationLadder.for_config(KamelConfig(enable_fallback_model=False))
        assert RUNG_COUNTING not in ladder.rungs

    def test_must_end_in_linear(self):
        with pytest.raises(ValueError):
            DegradationLadder((RUNG_FULL, RUNG_COUNTING))

    def test_rungs_must_be_ordered(self):
        with pytest.raises(ValueError):
            DegradationLadder((RUNG_COUNTING, RUNG_FULL, RUNG_LINEAR))

    def test_below(self):
        ladder = DegradationLadder(ALL_RUNGS)
        assert ladder.below(RUNG_FULL) == (RUNG_REDUCED_BEAM, RUNG_COUNTING, RUNG_LINEAR)
        assert ladder.below(RUNG_LINEAR) == ()

    def test_failure_and_degraded_split(self):
        assert DegradationLadder.is_failure(RUNG_LINEAR)
        assert not DegradationLadder.is_failure(RUNG_COUNTING)
        assert DegradationLadder.is_degraded(RUNG_COUNTING)
        assert not DegradationLadder.is_degraded(RUNG_FULL)


def _traj(traj_id="t1"):
    return Trajectory(
        traj_id, [Point(0.0, 0.0, t=0.0), Point(100.0, 50.0, t=30.0)]
    )


class TestJournal:
    def test_payload_round_trip(self):
        traj = _traj()
        assert trajectory_from_payload(trajectory_to_payload(traj)) == traj

    def test_pending_is_begun_minus_done(self, tmp_path):
        journal = StreamJournal(tmp_path / "wal.jsonl")
        a, b, c = _traj("a"), _traj("b"), _traj("c")
        for traj in (a, b, c):
            journal.begin(traj)
        journal.done("a")
        journal.done("c")
        journal.close()

        recovered = StreamJournal(tmp_path / "wal.jsonl")
        pending = recovered.pending()
        assert [t.traj_id for t in pending] == ["b"]
        assert pending[0] == b

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        journal = StreamJournal(path)
        journal.begin(_traj("whole"))
        journal.close()
        with open(path, "a") as handle:
            handle.write('{"event": "begin", "traj_id": "torn", "points": [[0')
        pending = StreamJournal(path).pending()
        assert [t.traj_id for t in pending] == ["whole"]

    def test_empty_or_missing_journal(self, tmp_path):
        assert StreamJournal(tmp_path / "never_written.jsonl").pending() == []


class TestQuarantine:
    def test_add_and_read_back(self, tmp_path):
        store = QuarantineStore(tmp_path / "dead.jsonl")
        store.add(_traj("bad"), reason="non_finite_coordinate")
        store.close()

        reread = QuarantineStore(tmp_path / "dead.jsonl")
        assert len(reread) == 1
        entry = reread.entries()[0]
        assert entry.traj_id == "bad"
        assert entry.reason == "non_finite_coordinate"
        assert entry.trajectory == _traj("bad")


class TestValidation:
    def test_clean_trajectory_passes(self):
        validate_trajectory(_traj())

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_coordinate_rejected(self, bad):
        traj = Trajectory("bad", [Point(bad, 0.0, t=0.0), Point(1.0, 1.0, t=1.0)])
        with pytest.raises(QuarantinedInputError) as excinfo:
            validate_trajectory(traj)
        assert excinfo.value.reason == "non_finite_coordinate"

    def test_non_finite_timestamp_rejected(self):
        traj = Trajectory(
            "bad", [Point(0.0, 0.0, t=float("nan")), Point(1.0, 1.0, t=1.0)]
        )
        with pytest.raises(QuarantinedInputError) as excinfo:
            validate_trajectory(traj)
        assert excinfo.value.reason == "non_finite_timestamp"

    def test_absurd_magnitude_rejected(self):
        traj = Trajectory(
            "far", [Point(MAX_COORDINATE_M * 2, 0.0, t=0.0), Point(1.0, 1.0, t=1.0)]
        )
        with pytest.raises(QuarantinedInputError) as excinfo:
            validate_trajectory(traj)
        assert excinfo.value.reason == "coordinate_out_of_range"

    def test_reversed_and_duplicate_timestamps_are_processable(self):
        # Deliberately NOT rejected: the pipeline handles these (see
        # tests/test_robustness.py), so quarantining them would lose data.
        validate_trajectory(
            Trajectory("rev", [Point(0.0, 0.0, t=100.0), Point(9.0, 9.0, t=0.0)])
        )
        validate_trajectory(
            Trajectory("dup", [Point(0.0, 0.0, t=5.0), Point(9.0, 9.0, t=5.0)])
        )


class TestErrorHierarchy:
    def test_resilience_errors_are_kamel_errors(self):
        for exc_type in (DeadlineExceeded, CircuitOpenError, QuarantinedInputError):
            assert issubclass(exc_type, KamelError)

    def test_injected_fault_is_not_a_kamel_error(self):
        # Chaos faults simulate *infrastructure* failures, which the
        # library must survive, not failures the library itself raises.
        assert not issubclass(InjectedFault, KamelError)


class TestKamelDeadlineIntegration:
    def test_expired_deadline_degrades_to_linear_not_hang(self, trained_kamel, small_split):
        _, test = small_split
        sparse = test[0].sparsify(600.0)
        clock = FakeClock()
        deadline = Deadline.after(0.5, clock=clock)
        clock.advance(1.0)  # already expired when impute starts
        result = trained_kamel.impute(sparse, deadline=deadline)
        assert len(result.trajectory) >= len(sparse)
        for segment in result.segments:
            assert segment.rung == RUNG_LINEAR
            assert segment.fallback_reason == "deadline"

    def test_generous_deadline_changes_nothing(self, trained_kamel, small_split):
        _, test = small_split
        sparse = test[1].sparsify(600.0)
        unlimited = trained_kamel.impute(sparse)
        with_budget = trained_kamel.impute(sparse, deadline=Deadline.after(60.0))
        assert unlimited.trajectory == with_budget.trajectory
        assert [s.rung for s in unlimited.segments] == [
            s.rung for s in with_budget.segments
        ]

    def test_segment_outcomes_always_carry_a_rung(self, trained_kamel, small_split):
        _, test = small_split
        result = trained_kamel.impute(test[2].sparsify(700.0))
        for segment in result.segments:
            assert segment.rung in ALL_RUNGS
            assert segment.failed == (segment.rung == RUNG_LINEAR)
        assert sum(result.rung_counts.values()) == result.num_segments
