"""Unit tests for repro.geo.bbox."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import EmptyInputError
from repro.geo import BoundingBox, Point

coords = st.floats(min_value=-1e5, max_value=1e5, allow_nan=False)


def box(x0=0.0, y0=0.0, x1=10.0, y1=10.0) -> BoundingBox:
    return BoundingBox(x0, y0, x1, y1)


class TestConstruction:
    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            BoundingBox(5, 0, 0, 10)

    def test_zero_extent_allowed(self):
        b = BoundingBox(1, 1, 1, 1)
        assert b.area == 0.0

    def test_from_points(self):
        b = BoundingBox.from_points([Point(1, 5), Point(-2, 3), Point(0, 9)])
        assert (b.min_x, b.min_y, b.max_x, b.max_y) == (-2, 3, 1, 9)

    def test_from_points_empty_raises(self):
        with pytest.raises(EmptyInputError):
            BoundingBox.from_points([])

    def test_union_all_empty_raises(self):
        with pytest.raises(EmptyInputError):
            BoundingBox.union_all([])


class TestProperties:
    def test_dimensions(self):
        b = box(0, 0, 4, 3)
        assert (b.width, b.height, b.area) == (4, 3, 12)

    def test_center(self):
        c = box(0, 0, 10, 20).center
        assert (c.x, c.y) == (5, 10)


class TestPredicates:
    def test_contains_point_interior(self):
        assert box().contains_point(Point(5, 5))

    def test_contains_point_boundary(self):
        assert box().contains_point(Point(0, 10))

    def test_contains_point_outside(self):
        assert not box().contains_point(Point(10.001, 5))

    def test_contains_box(self):
        assert box().contains_box(box(1, 1, 9, 9))
        assert box().contains_box(box())  # itself
        assert not box(1, 1, 9, 9).contains_box(box())

    def test_intersects_overlap(self):
        assert box().intersects(box(5, 5, 15, 15))

    def test_intersects_touching_edge(self):
        assert box().intersects(box(10, 0, 20, 10))

    def test_intersects_disjoint(self):
        assert not box().intersects(box(11, 11, 20, 20))

    def test_intersects_symmetric(self):
        a, b = box(), box(5, -5, 15, 5)
        assert a.intersects(b) == b.intersects(a)


class TestOperations:
    def test_expand(self):
        b = box().expand(2.0)
        assert (b.min_x, b.min_y, b.max_x, b.max_y) == (-2, -2, 12, 12)

    def test_union(self):
        u = box(0, 0, 1, 1).union(box(5, 5, 6, 7))
        assert (u.min_x, u.min_y, u.max_x, u.max_y) == (0, 0, 6, 7)

    @given(coords, coords, coords, coords)
    def test_union_contains_both(self, x0, y0, x1, y1):
        a = BoundingBox(min(x0, x1), min(y0, y1), max(x0, x1), max(y0, y1))
        b = box(-1, -1, 1, 1)
        u = a.union(b)
        assert u.contains_box(a) and u.contains_box(b)

    @given(st.lists(st.tuples(coords, coords), min_size=1, max_size=20))
    def test_from_points_contains_all(self, pts):
        points = [Point(x, y) for x, y in pts]
        b = BoundingBox.from_points(points)
        assert all(b.contains_point(p) for p in points)
