"""Unit tests for repro.obs.tracing: nesting, exceptions, no-op mode."""

import pytest

from repro.obs.tracing import (
    Tracer,
    clear_spans,
    disable_tracing,
    enable_tracing,
    finished_spans,
    get_tracer,
    span,
    tracing_enabled,
)


@pytest.fixture()
def traced():
    """Enable the global tracer for one test, restoring the default off."""
    enable_tracing()
    clear_spans()
    yield get_tracer()
    disable_tracing()
    clear_spans()


class TestSpanTree:
    def test_nesting_builds_a_tree(self, traced):
        with span("root") as root:
            with span("child.a"):
                with span("grandchild"):
                    pass
            with span("child.b"):
                pass
        assert [c.name for c in root.children] == ["child.a", "child.b"]
        assert root.children[0].children[0].name == "grandchild"
        assert [s.name for s in root.walk()] == [
            "root", "child.a", "grandchild", "child.b",
        ]

    def test_root_collected_when_finished(self, traced):
        with span("outer"):
            with span("inner"):
                pass
        roots = finished_spans()
        assert [r.name for r in roots] == ["outer"]
        assert roots[0].duration_s is not None
        assert roots[0].duration_s >= roots[0].children[0].duration_s

    def test_attributes_at_open_and_via_set(self, traced):
        with span("s", beam=10) as s:
            s.set(model_calls=3)
        assert s.attributes == {"beam": 10, "model_calls": 3}

    def test_find_descendants_by_name(self, traced):
        with span("root") as root:
            for _ in range(3):
                with span("leaf"):
                    pass
        assert len(root.find("leaf")) == 3

    def test_to_dict_and_render(self, traced):
        with span("root", k="v") as root:
            with span("child"):
                pass
        d = root.to_dict()
        assert d["name"] == "root"
        assert d["attributes"] == {"k": "v"}
        assert d["children"][0]["name"] == "child"
        text = root.render()
        assert "root" in text and "child" in text

    def test_max_roots_bounds_the_buffer(self):
        tracer = Tracer(max_roots=3)
        tracer.enabled = True
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [r.name for r in tracer.finished()] == ["s2", "s3", "s4"]


class TestExceptionSafety:
    def test_exception_closes_span_and_reraises(self, traced):
        with pytest.raises(ValueError):
            with span("root"):
                raise ValueError("boom")
        (root,) = finished_spans()
        assert root.error == "ValueError"
        assert root.end_s is not None

    def test_exception_unwinds_inner_spans(self, traced):
        with pytest.raises(RuntimeError):
            with span("outer"):
                with span("inner"):
                    raise RuntimeError("x")
        (root,) = finished_spans()
        inner = root.children[0]
        assert inner.error == "RuntimeError"
        assert inner.end_s is not None
        assert root.error == "RuntimeError"
        # The stack fully unwound: a new span starts a fresh root.
        with span("fresh"):
            pass
        assert [r.name for r in finished_spans()] == ["outer", "fresh"]


class TestNoopMode:
    def test_disabled_by_default(self):
        assert not tracing_enabled()

    def test_disabled_span_is_a_shared_noop(self):
        disable_tracing()
        a = span("x")
        b = span("y", attr=1)
        assert a is b, "no-op path must not allocate per call"
        with a as s:
            assert s.set(k=1) is s
        assert finished_spans() == []

    def test_disabled_span_records_nothing(self):
        disable_tracing()
        clear_spans()
        with span("invisible"):
            pass
        assert finished_spans() == []
        assert get_tracer().current() is None

    def test_noop_overhead_is_constant_allocation_free(self):
        """The disabled fast path must not build Span objects or touch
        thread-local stacks — only return the shared singleton."""
        disable_tracing()
        import tracemalloc

        tracemalloc.start()
        for _ in range(100):
            with span("hot"):
                pass
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # A real span run allocates Span + dict + list each; the no-op
        # loop should stay within interpreter noise.
        assert peak < 10_000
