"""Unit tests for repro.obs.tracing: nesting, exceptions, no-op mode,
and the cross-process wire format (to_dict/from_dict/shift)."""

import time

import pytest

from repro.obs.tracing import (
    Span,
    Tracer,
    clear_spans,
    clock_offset,
    current_trace_id,
    disable_tracing,
    enable_tracing,
    finished_spans,
    get_tracer,
    new_trace_id,
    span,
    trace_scope,
    tracing_enabled,
)


@pytest.fixture()
def traced():
    """Enable the global tracer for one test, restoring the default off."""
    enable_tracing()
    clear_spans()
    yield get_tracer()
    disable_tracing()
    clear_spans()


class TestSpanTree:
    def test_nesting_builds_a_tree(self, traced):
        with span("root") as root:
            with span("child.a"):
                with span("grandchild"):
                    pass
            with span("child.b"):
                pass
        assert [c.name for c in root.children] == ["child.a", "child.b"]
        assert root.children[0].children[0].name == "grandchild"
        assert [s.name for s in root.walk()] == [
            "root", "child.a", "grandchild", "child.b",
        ]

    def test_root_collected_when_finished(self, traced):
        with span("outer"):
            with span("inner"):
                pass
        roots = finished_spans()
        assert [r.name for r in roots] == ["outer"]
        assert roots[0].duration_s is not None
        assert roots[0].duration_s >= roots[0].children[0].duration_s

    def test_attributes_at_open_and_via_set(self, traced):
        with span("s", beam=10) as s:
            s.set(model_calls=3)
        assert s.attributes == {"beam": 10, "model_calls": 3}

    def test_find_descendants_by_name(self, traced):
        with span("root") as root:
            for _ in range(3):
                with span("leaf"):
                    pass
        assert len(root.find("leaf")) == 3

    def test_to_dict_and_render(self, traced):
        with span("root", k="v") as root:
            with span("child"):
                pass
        d = root.to_dict()
        assert d["name"] == "root"
        assert d["attributes"] == {"k": "v"}
        assert d["children"][0]["name"] == "child"
        text = root.render()
        assert "root" in text and "child" in text

    def test_max_roots_bounds_the_buffer(self):
        tracer = Tracer(max_roots=3)
        tracer.enabled = True
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [r.name for r in tracer.finished()] == ["s2", "s3", "s4"]


class TestExceptionSafety:
    def test_exception_closes_span_and_reraises(self, traced):
        with pytest.raises(ValueError):
            with span("root"):
                raise ValueError("boom")
        (root,) = finished_spans()
        assert root.error == "ValueError"
        assert root.end_s is not None

    def test_exception_unwinds_inner_spans(self, traced):
        with pytest.raises(RuntimeError):
            with span("outer"):
                with span("inner"):
                    raise RuntimeError("x")
        (root,) = finished_spans()
        inner = root.children[0]
        assert inner.error == "RuntimeError"
        assert inner.end_s is not None
        assert root.error == "RuntimeError"
        # The stack fully unwound: a new span starts a fresh root.
        with span("fresh"):
            pass
        assert [r.name for r in finished_spans()] == ["outer", "fresh"]


class TestTraceScope:
    def test_new_trace_id_is_short_hex(self):
        trace_id = new_trace_id()
        assert len(trace_id) == 16
        int(trace_id, 16)  # hex-parseable
        assert trace_id != new_trace_id()

    def test_no_scope_means_no_trace_id(self, traced):
        assert current_trace_id() is None
        with span("bare"):
            pass
        (root,) = finished_spans()
        assert root.trace_id is None

    def test_scope_stamps_every_span_in_the_request(self, traced):
        with trace_scope() as trace_id:
            assert current_trace_id() == trace_id
            with span("outer"):
                with span("inner"):
                    pass
        assert current_trace_id() is None
        (root,) = finished_spans()
        assert [s.trace_id for s in root.walk()] == [trace_id, trace_id]

    def test_explicit_id_wins(self, traced):
        with trace_scope("deadbeefdeadbeef"):
            with span("s"):
                pass
        (root,) = finished_spans()
        assert root.trace_id == "deadbeefdeadbeef"

    def test_nested_scope_inherits_by_default(self, traced):
        """streaming.process opens a scope; Kamel.impute joins it rather
        than minting a second id for the same request."""
        with trace_scope() as outer_id:
            with trace_scope() as inner_id:
                assert inner_id == outer_id
                with span("s"):
                    pass
        (root,) = finished_spans()
        assert root.trace_id == outer_id

    def test_inherit_false_forces_a_fresh_id(self, traced):
        with trace_scope() as outer_id:
            with trace_scope(inherit=False) as inner_id:
                assert inner_id != outer_id
            assert current_trace_id() == outer_id

    def test_scope_restores_on_exception(self, traced):
        with pytest.raises(ValueError):
            with trace_scope():
                raise ValueError("x")
        assert current_trace_id() is None

    def test_scope_works_without_span_collection(self):
        """Trace ids are independent of whether span collection is on:
        logs still get correlated even when tracing is disabled."""
        disable_tracing()
        with trace_scope() as trace_id:
            assert current_trace_id() == trace_id
        assert current_trace_id() is None

    def test_ids_are_thread_local(self, traced):
        import threading

        seen = {}

        def worker():
            seen["worker"] = current_trace_id()
            with trace_scope() as tid:
                seen["worker_scoped"] = tid

        with trace_scope() as main_id:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["worker"] is None, "scope must not leak across threads"
        assert seen["worker_scoped"] != main_id

    def test_to_dict_includes_trace_id(self, traced):
        with trace_scope("0011223344556677"):
            with span("s"):
                pass
        (root,) = finished_spans()
        assert root.to_dict()["trace_id"] == "0011223344556677"


class TestWireFormat:
    """Serialized span trees must survive a queue hop between processes."""

    def _tree(self, traced):
        with trace_scope("feedfacefeedface"):
            with span("root", shard=3) as root:
                with span("child") as child:
                    child.set(n=1)
        return root

    def test_round_trip_preserves_the_tree(self, traced):
        root = self._tree(traced)
        clone = Span.from_dict(root.to_dict())
        assert [s.name for s in clone.walk()] == [s.name for s in root.walk()]
        assert clone.attributes == {"shard": 3}
        assert clone.children[0].attributes == {"n": 1}
        assert clone.trace_id == "feedfacefeedface"
        assert clone.children[0].trace_id == "feedfacefeedface"
        assert clone.start_s == pytest.approx(root.start_s)
        assert clone.end_s == pytest.approx(root.end_s)
        assert clone.duration_s == pytest.approx(root.duration_s)

    def test_round_trip_preserves_error(self, traced):
        with pytest.raises(ValueError):
            with span("boom"):
                raise ValueError("x")
        (root,) = finished_spans()
        assert Span.from_dict(root.to_dict()).error == "ValueError"

    def test_from_dict_tolerates_minimal_payload(self):
        # Old exports carried only names: reconstruct as a finished
        # zero-length span at origin 0 rather than refusing to load.
        clone = Span.from_dict({"name": "bare"})
        assert clone.name == "bare"
        assert clone.children == []
        assert clone.trace_id is None
        assert clone.start_s == 0.0
        assert clone.duration_s == 0.0

    def test_shift_rebases_the_whole_tree(self, traced):
        root = self._tree(traced)
        child_start = root.children[0].start_s
        duration = root.duration_s
        assert root.shift(5.0) is root, "shift chains for rebuild pipelines"
        assert root.children[0].start_s == pytest.approx(child_start + 5.0)
        assert root.duration_s == pytest.approx(duration), (
            "rebasing a tree onto another clock must not change durations"
        )

    def test_clock_offset_maps_perf_counter_to_epoch(self):
        offset = clock_offset()
        assert abs((time.perf_counter() + offset) - time.time()) < 0.1
        # Stable within a process: two reads agree to well under a tick.
        assert clock_offset() == pytest.approx(offset, abs=0.01)


class TestNoopMode:
    def test_disabled_by_default(self):
        assert not tracing_enabled()

    def test_disabled_span_is_a_shared_noop(self):
        disable_tracing()
        a = span("x")
        b = span("y", attr=1)
        assert a is b, "no-op path must not allocate per call"
        with a as s:
            assert s.set(k=1) is s
        assert finished_spans() == []

    def test_disabled_span_records_nothing(self):
        disable_tracing()
        clear_spans()
        with span("invisible"):
            pass
        assert finished_spans() == []
        assert get_tracer().current() is None

    def test_noop_overhead_is_constant_allocation_free(self):
        """The disabled fast path must not build Span objects or touch
        thread-local stacks — only return the shared singleton."""
        disable_tracing()
        import tracemalloc

        tracemalloc.start()
        for _ in range(100):
            with span("hot"):
                pass
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # A real span run allocates Span + dict + list each; the no-op
        # loop should stay within interpreter noise.
        assert peak < 10_000
