"""The ``kamel serve`` and ``kamel loadtest`` commands.

The loadtest run here is deliberately tiny (small training set, few
trajectories) — it exercises the full path (train, save, pool, verify,
bench snapshot) without dominating the suite's wall time. The ``serve``
tests reuse the session-trained system so no extra training happens.
"""

import json
import re

import pytest

from repro.bench import SCHEMA_V2, load_snapshot
from repro.cli import build_parser, main
from repro.io.serialize import save_kamel
from repro.resilience.journal import trajectory_to_payload


@pytest.fixture(scope="module")
def saved_dir(trained_kamel, tmp_path_factory):
    directory = tmp_path_factory.mktemp("cli_model")
    save_kamel(trained_kamel, directory)
    return directory


@pytest.fixture(scope="module")
def input_jsonl(small_split, tmp_path_factory):
    _, test = small_split
    path = tmp_path_factory.mktemp("cli_feed") / "sparse.jsonl"
    with open(path, "w") as handle:
        for trajectory in test[:5]:
            payload = trajectory_to_payload(trajectory.sparsify(800.0))
            handle.write(json.dumps(payload) + "\n")
    return path


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve", "--demo"])
        assert args.workers == 2
        assert args.strategy == "hash"
        assert args.lru_capacity == 64

    def test_strategy_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--strategy", "modulo"])

    def test_needs_model_or_demo(self, capsys):
        assert main(["serve"]) == 2
        assert "--model-dir or --demo" in capsys.readouterr().err

    def test_needs_input_without_demo(self, capsys, saved_dir):
        assert main(["serve", "--model-dir", str(saved_dir)]) == 2
        assert "--input" in capsys.readouterr().err


class TestServeCommand:
    def test_jsonl_roundtrip(self, capsys, saved_dir, input_jsonl, tmp_path):
        out_path = tmp_path / "dense.jsonl"
        rc = main(
            [
                "serve",
                "--model-dir", str(saved_dir),
                "--input", str(input_jsonl),
                "--output", str(out_path),
                "--workers", "2",
                "--journal-dir", str(tmp_path / "journal"),
            ]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert re.search(r"trajectories completed\s+5\b", captured.out)
        assert re.search(r"trajectories lost\s+0\b", captured.out)
        lines = [
            json.loads(line) for line in out_path.read_text().splitlines() if line
        ]
        assert len(lines) == 5
        for record in lines:
            assert record["error"] is None
            assert 0 <= record["shard"] < 2
            for trip in record["trips"]:
                assert trip["points"]  # dense output, journal payload shape


class TestLoadtestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["loadtest"])
        assert args.workers == 4
        assert args.trajectories == 200
        assert args.rate == 0.0
        assert not args.no_verify

    def test_assertion_flags(self):
        args = build_parser().parse_args(
            ["loadtest", "--min-throughput", "1.5", "--max-p99-ms", "5000"]
        )
        assert args.min_throughput == 1.5
        assert args.max_p99_ms == 5000.0


class TestLoadtestCommand:
    @pytest.fixture(scope="class")
    def run(self, tmp_path_factory):
        """One tiny end-to-end loadtest shared by the assertions below."""
        out_dir = tmp_path_factory.mktemp("loadtest_out")
        bench_path = out_dir / "BENCH_serve.json"
        import io
        from contextlib import redirect_stdout

        stdout = io.StringIO()
        with redirect_stdout(stdout):
            rc = main(
                [
                    "loadtest",
                    "--workers", "2",
                    "--trajectories", "6",
                    "--train-trajectories", "40",
                    "--seed", "7",
                    "--json",
                    "-o", str(bench_path),
                ]
            )
        return rc, stdout.getvalue(), bench_path

    def test_passes_and_verifies(self, run):
        rc, stdout, _ = run
        assert rc == 0
        report = json.loads(stdout)
        assert report["ok"] is True
        assert report["completed"] == 6
        assert report["lost"] == 0
        assert report["verified"] is True
        assert report["mismatches"] == 0
        assert report["throughput_tps"] > 0

    def test_bench_snapshot_written(self, run):
        _, _, bench_path = run
        doc = load_snapshot(bench_path)
        assert doc["schema"] == SCHEMA_V2
        assert set(doc["modules"]) == {"serve"}
        metrics = doc["modules"]["serve"]
        assert metrics["repro.serve.mismatches"]["mean"] == 0.0
        assert metrics["repro.serve.throughput_tps"]["mean"] > 0
        assert doc["environment"]["seed"] == 7
