"""The ``kamel serve`` and ``kamel loadtest`` commands.

The loadtest run here is deliberately tiny (small training set, few
trajectories) — it exercises the full path (train, save, pool, verify,
bench snapshot) without dominating the suite's wall time. The ``serve``
tests reuse the session-trained system so no extra training happens.
"""

import json
import re

import pytest

from repro.bench import SCHEMA_V2, load_snapshot
from repro.cli import build_parser, main
from repro.io.serialize import save_kamel
from repro.resilience.journal import trajectory_to_payload


@pytest.fixture(scope="module")
def saved_dir(trained_kamel, tmp_path_factory):
    directory = tmp_path_factory.mktemp("cli_model")
    save_kamel(trained_kamel, directory)
    return directory


@pytest.fixture(scope="module")
def input_jsonl(small_split, tmp_path_factory):
    _, test = small_split
    path = tmp_path_factory.mktemp("cli_feed") / "sparse.jsonl"
    with open(path, "w") as handle:
        for trajectory in test[:5]:
            payload = trajectory_to_payload(trajectory.sparsify(800.0))
            handle.write(json.dumps(payload) + "\n")
    return path


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve", "--demo"])
        assert args.workers == 2
        assert args.strategy == "hash"
        assert args.lru_capacity == 64

    def test_strategy_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--strategy", "modulo"])

    def test_needs_model_or_demo(self, capsys):
        assert main(["serve"]) == 2
        assert "--model-dir or --demo" in capsys.readouterr().err

    def test_needs_input_without_demo(self, capsys, saved_dir):
        assert main(["serve", "--model-dir", str(saved_dir)]) == 2
        assert "--input" in capsys.readouterr().err


class TestServeCommand:
    def test_jsonl_roundtrip(self, capsys, saved_dir, input_jsonl, tmp_path):
        out_path = tmp_path / "dense.jsonl"
        rc = main(
            [
                "serve",
                "--model-dir", str(saved_dir),
                "--input", str(input_jsonl),
                "--output", str(out_path),
                "--workers", "2",
                "--journal-dir", str(tmp_path / "journal"),
            ]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert re.search(r"trajectories completed\s+5\b", captured.out)
        assert re.search(r"trajectories lost\s+0\b", captured.out)
        lines = [
            json.loads(line) for line in out_path.read_text().splitlines() if line
        ]
        assert len(lines) == 5
        for record in lines:
            assert record["error"] is None
            assert 0 <= record["shard"] < 2
            for trip in record["trips"]:
                assert trip["points"]  # dense output, journal payload shape


class TestLoadtestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["loadtest"])
        assert args.workers == 4
        assert args.trajectories == 200
        assert args.rate == 0.0
        assert not args.no_verify
        assert not args.trace
        assert args.trace_out is None
        assert args.flight_out is None
        assert args.flight_capacity == 64

    def test_assertion_flags(self):
        args = build_parser().parse_args(
            ["loadtest", "--min-throughput", "1.5", "--max-p99-ms", "5000"]
        )
        assert args.min_throughput == 1.5
        assert args.max_p99_ms == 5000.0

    def test_tracing_flags(self):
        args = build_parser().parse_args(
            ["loadtest", "--trace-out", "t.json", "--flight-out", "f.json"]
        )
        assert args.trace_out == "t.json"
        assert args.flight_out == "f.json"


class TestLoadtestCommand:
    @pytest.fixture(scope="class")
    def run(self, tmp_path_factory):
        """One tiny end-to-end loadtest shared by the assertions below."""
        out_dir = tmp_path_factory.mktemp("loadtest_out")
        bench_path = out_dir / "BENCH_serve.json"
        import io
        from contextlib import redirect_stdout

        stdout = io.StringIO()
        with redirect_stdout(stdout):
            rc = main(
                [
                    "loadtest",
                    "--workers", "2",
                    "--trajectories", "6",
                    "--train-trajectories", "40",
                    "--seed", "7",
                    "--json",
                    "-o", str(bench_path),
                ]
            )
        return rc, stdout.getvalue(), bench_path

    def test_passes_and_verifies(self, run):
        rc, stdout, _ = run
        assert rc == 0
        report = json.loads(stdout)
        assert report["ok"] is True
        assert report["completed"] == 6
        assert report["lost"] == 0
        assert report["verified"] is True
        assert report["mismatches"] == 0
        assert report["throughput_tps"] > 0

    def test_bench_snapshot_written(self, run):
        _, _, bench_path = run
        doc = load_snapshot(bench_path)
        assert doc["schema"] == SCHEMA_V2
        assert set(doc["modules"]) == {"serve"}
        metrics = doc["modules"]["serve"]
        assert metrics["repro.serve.mismatches"]["mean"] == 0.0
        assert metrics["repro.serve.throughput_tps"]["mean"] > 0
        assert doc["environment"]["seed"] == 7


@pytest.fixture()
def flight_file(tmp_path):
    """A small flight payload the way ``loadtest --flight-out`` writes it."""
    from repro.obs.flight import FlightRecord, FlightRecorder
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracing import Span

    recorder = FlightRecorder(capacity=4, registry=MetricsRegistry())
    for i in range(3):
        root = Span("serve.request", trace_id=f"{i:016x}")
        root.start_s = 0.0
        root.end_s = 0.01 * (i + 1)
        recorder.record(
            FlightRecord(
                trace_id=f"{i:016x}",
                traj_id=f"traj-{i}",
                latency_s=0.01 * (i + 1),
                stages={
                    "queue_wait": 0.001,
                    "model_load": 0.0,
                    "inference": 0.009 * (i + 1),
                    "detokenize": 0.0,
                    "result_transit": 0.0,
                },
                shard=i % 2,
                roots=[root],
            )
        )
    path = tmp_path / "flight.json"
    path.write_text(json.dumps(recorder.to_dict(), default=float))
    return path


class TestTailCommand:
    def test_prints_attribution_and_slowest_tables(self, capsys, flight_file):
        assert main(["tail", str(flight_file)]) == 0
        out = capsys.readouterr().out
        assert "flight recorder: 3 requests recorded, 3 retained" in out
        for column in ("stage", "p50 ms", "p99 ms", "worst trace"):
            assert column in out
        for stage in ("queue_wait", "inference", "result_transit"):
            assert stage in out
        # Slowest-first: record 2 (30ms) leads the slow-request table.
        assert f"{2:016x}" in out
        assert "traj-2" in out

    def test_slowest_limit(self, capsys, flight_file):
        assert main(["tail", str(flight_file), "--slowest", "1"]) == 0
        out = capsys.readouterr().out
        assert "traj-2" in out
        assert "traj-0" not in out

    def test_json_round_trips_the_payload(self, capsys, flight_file):
        assert main(["tail", str(flight_file), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == json.loads(flight_file.read_text())

    def test_missing_file_fails_cleanly(self, capsys, tmp_path):
        assert main(["tail", str(tmp_path / "nope.json")]) == 2
        assert "cannot read flight payload" in capsys.readouterr().err


class TestTraceFromFile:
    def test_loads_spans_from_flight_payload(self, capsys, flight_file):
        assert main(["trace", "--from", str(flight_file), "--export", "text"]) == 0
        out = capsys.readouterr().out
        assert out.count("serve.request") == 3

    def test_trace_id_filter_selects_one_tree(self, capsys, flight_file):
        rc = main(
            [
                "trace",
                "--from", str(flight_file),
                "--trace-id", f"{1:016x}",
                "--export", "jsonl",
            ]
        )
        assert rc == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]
        assert len(lines) == 1
        assert lines[0]["trace_id"] == f"{1:016x}"

    def test_unknown_trace_id_reports_and_fails(self, capsys, flight_file):
        rc = main(
            ["trace", "--from", str(flight_file), "--trace-id", "f" * 16]
        )
        assert rc == 1
        assert "no span trees carry trace id" in capsys.readouterr().err

    def test_unreadable_file_fails_cleanly(self, capsys, tmp_path):
        assert main(["trace", "--from", str(tmp_path / "nope.json")]) == 2
        assert "cannot load spans" in capsys.readouterr().err
