"""Property-based checks for the resilience primitives.

The example-based tests in test_resilience.py pin specific scenarios;
these verify the *invariants* under arbitrary inputs:

* :meth:`RetryPolicy.delay_for` always lands in the documented
  half-jitter envelope ``[raw/2, raw)`` where
  ``raw = min(max_delay, base * 2**(n-1))`` — no retry storm can wait
  longer than the cap, none collapses to a zero-delay hot loop.
* :class:`CircuitBreaker` walks only legal edges of its three-state
  machine (closed→open on threshold, open→half-open on clock,
  half-open→closed/open on probe outcome) for *any* interleaving of
  successes, failures, and clock advances.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    RetryPolicy,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestRetryJitterBounds:
    @given(
        attempt=st.integers(min_value=1, max_value=40),
        base=st.floats(min_value=1e-6, max_value=10.0),
        cap_factor=st.floats(min_value=1.0, max_value=1000.0),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=200, deadline=None)
    def test_delay_always_in_half_jitter_envelope(
        self, attempt, base, cap_factor, seed
    ):
        cap = base * cap_factor
        policy = RetryPolicy(base_delay_s=base, max_delay_s=cap, seed=seed)
        raw = min(cap, base * 2 ** (attempt - 1))
        delay = policy.delay_for(attempt)
        assert raw * 0.5 <= delay < raw

    @given(
        base=st.floats(min_value=1e-6, max_value=1.0),
        cap_factor=st.floats(min_value=1.0, max_value=64.0),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_delay_never_exceeds_cap(self, base, cap_factor, seed):
        cap = base * cap_factor
        policy = RetryPolicy(base_delay_s=base, max_delay_s=cap, seed=seed)
        for attempt in range(1, 60):
            assert policy.delay_for(attempt) < cap

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_expected_growth_until_cap(self, seed):
        """The *raw* (pre-jitter) schedule doubles then plateaus; the
        jittered delay can never cross the next raw step's ceiling."""
        base, cap = 0.01, 0.25
        policy = RetryPolicy(base_delay_s=base, max_delay_s=cap, seed=seed)
        raws = [min(cap, base * 2 ** (n - 1)) for n in range(1, 12)]
        for attempt, raw in enumerate(raws, start=1):
            assert policy.delay_for(attempt) < raw

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_deterministic_under_fixed_seed(self, seed):
        a = RetryPolicy(seed=seed)
        b = RetryPolicy(seed=seed)
        assert [a.delay_for(n) for n in range(1, 9)] == [
            b.delay_for(n) for n in range(1, 9)
        ]


# An arbitrary stimulus sequence for the breaker state machine.
EVENTS = st.lists(
    st.one_of(
        st.just("success"),
        st.just("failure"),
        st.floats(min_value=0.001, max_value=100.0),  # clock advance (s)
    ),
    min_size=1,
    max_size=60,
)


def drive(breaker, clock, event):
    """Apply one stimulus the way production code would: ``allow()``
    gates every record, exactly like :meth:`CircuitBreaker.call`."""
    if isinstance(event, float):
        clock.advance(event)
        return None
    allowed = breaker.allow()
    if allowed:
        if event == "success":
            breaker.record_success()
        else:
            breaker.record_failure()
    return allowed


class TestBreakerStateMachine:
    @given(
        events=EVENTS,
        threshold=st.integers(min_value=1, max_value=5),
        recovery=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_only_legal_transitions(self, events, threshold, recovery):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "prop", failure_threshold=threshold, recovery_s=recovery,
            clock=clock,
        )
        legal = {
            (CLOSED, OPEN),       # threshold consecutive failures
            (OPEN, HALF_OPEN),    # recovery window elapsed
            (HALF_OPEN, CLOSED),  # probe succeeded
            (HALF_OPEN, OPEN),    # probe failed
        }
        previous = breaker.state

        def check(stage):
            nonlocal previous
            current = breaker.state
            if current != previous:
                assert (previous, current) in legal, (
                    f"illegal transition {previous} -> {current} ({stage})"
                )
            previous = current

        # allow() and record_*() each take at most one edge, so observe
        # after every sub-step (a probe success is open -> half_open ->
        # closed within one call/record round, two separate edges).
        for event in events:
            if isinstance(event, float):
                clock.advance(event)
                continue
            allowed = breaker.allow()
            check("allow")
            if allowed:
                if event == "success":
                    breaker.record_success()
                else:
                    breaker.record_failure()
                check("record")

    @given(
        events=EVENTS,
        threshold=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=200, deadline=None)
    def test_open_blocks_until_recovery_window(self, events, threshold):
        """While open and inside the recovery window, allow() is always
        False; once the window has elapsed, the next allow() probes."""
        recovery = 5.0
        clock = FakeClock()
        breaker = CircuitBreaker(
            "prop", failure_threshold=threshold, recovery_s=recovery,
            clock=clock,
        )
        for event in events:
            was_open_since = (
                breaker.opened_at if breaker.state == OPEN else None
            )
            allowed = drive(breaker, clock, event)
            if was_open_since is not None and allowed is not None:
                elapsed = clock() - was_open_since
                if elapsed < recovery:
                    assert allowed is False
                    assert breaker.state == OPEN
                else:
                    assert allowed is True
                    assert breaker.state in (HALF_OPEN, CLOSED, OPEN)

    @given(
        events=EVENTS,
        threshold=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=200, deadline=None)
    def test_closed_invariants(self, events, threshold):
        """Closed implies fewer consecutive failures than the threshold,
        and any success resets the streak to zero."""
        clock = FakeClock()
        breaker = CircuitBreaker(
            "prop", failure_threshold=threshold, recovery_s=1.0, clock=clock,
        )
        for event in events:
            allowed = drive(breaker, clock, event)
            if breaker.state == CLOSED:
                assert breaker.consecutive_failures < threshold
            if event == "success" and allowed:
                assert breaker.consecutive_failures == 0
                assert breaker.state == CLOSED

    @given(events=EVENTS)
    @settings(max_examples=100, deadline=None)
    def test_half_open_probe_decides_immediately(self, events):
        """From half-open, one recorded outcome settles the state: a
        success closes the breaker, a failure re-opens it."""
        clock = FakeClock()
        breaker = CircuitBreaker(
            "prop", failure_threshold=2, recovery_s=1.0, clock=clock,
        )
        for event in events:
            in_half_open = breaker.state == HALF_OPEN
            allowed = drive(breaker, clock, event)
            if in_half_open and allowed:
                expected = CLOSED if event == "success" else OPEN
                assert breaker.state == expected

    def test_full_cycle_closed_open_half_open_closed(self):
        """The canonical happy path, pinned (no randomness)."""
        clock = FakeClock()
        breaker = CircuitBreaker(
            "cycle", failure_threshold=2, recovery_s=3.0, clock=clock,
        )
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.allow() is False
        clock.advance(3.0)
        assert breaker.allow() is True
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.open_count == 1
