"""The chaos suite: seeded fault injection against the full pipeline.

Every test here is deterministic — one ``random.Random(seed)`` drives all
injected faults, injected latency uses tiny sleeps, and breaker recovery
windows are chosen so no state transition depends on wall-clock racing.

Run with ``pytest -m chaos`` (the CI ``chaos`` job) or as part of the
normal suite.
"""

import math
import time

import pytest

from repro import Kamel, KamelConfig
from repro.geo import Point, Trajectory
from repro.core.streaming import StreamingConfig, StreamingImputationService
from repro.obs import MetricsRegistry, get_registry, set_registry
from repro.obs import instrument as obs
from repro.obs.export import render_prometheus
from repro.resilience import (
    ChaosConfig,
    ChaosMonkey,
    InjectedCrash,
    RUNG_FULL,
    chaos_scope,
    install_grid_chaos,
)

pytestmark = pytest.mark.chaos


@pytest.fixture()
def fresh_registry():
    """Isolate each chaos test's metrics (and rolling monitors)."""
    previous = set_registry(MetricsRegistry())
    yield get_registry()
    set_registry(previous)


@pytest.fixture(scope="module")
def chaos_system(small_dataset):
    """A dedicated trained system the chaos tests may stress freely.

    Module-scoped (training is the expensive part); each test resets the
    guards so breaker state never leaks between tests. Deliberately NOT
    the session-wide ``trained_kamel``, whose guards must stay pristine.
    """
    train, _ = small_dataset.split(seed=1)
    system = Kamel(
        KamelConfig(max_model_calls=600, breaker_recovery_s=30.0)
    ).fit(train)
    return system


@pytest.fixture()
def clean_guards(chaos_system):
    chaos_system.guards.reset()
    yield chaos_system.guards
    chaos_system.guards.reset()


def _feed(small_dataset, n=8, sparseness=600.0):
    _, test = small_dataset.split(seed=1)
    return [t.sparsify(sparseness) for t in test[:n]]


def _bad_trajectory(traj_id):
    return Trajectory(
        traj_id, [Point(float("nan"), 0.0, t=0.0), Point(700.0, 100.0, t=60.0)]
    )


class TestSeededScenario:
    """The ISSUE acceptance scenario: 30% injected model-lookup/inference
    failures plus 10% latency spikes, under a per-trajectory deadline."""

    DEADLINE_S = 0.25
    GRACE_S = 0.05

    def test_deadlines_hold_and_nothing_is_lost(
        self, chaos_system, clean_guards, small_dataset, tmp_path, fresh_registry
    ):
        feed = _feed(small_dataset, n=8)
        feed.insert(2, _bad_trajectory("bad-1"))
        feed.insert(5, _bad_trajectory("bad-2"))

        service = StreamingImputationService(
            chaos_system,
            StreamingConfig(
                journal_path=str(tmp_path / "wal.jsonl"),
                quarantine_path=str(tmp_path / "dead.jsonl"),
            ),
        )
        monkey = ChaosMonkey(
            ChaosConfig(
                seed=1234, failure_rate=0.3, latency_rate=0.1, latency_s=0.01
            )
        )
        results = []
        with chaos_scope(monkey, system=chaos_system, service=service):
            for trajectory in feed:
                results.append(service.process(trajectory))

        # The chaos actually happened.
        assert monkey.report.total_faults > 0
        assert monkey.report.total_delays > 0

        # Zero trajectories lost: everything submitted was processed (the
        # quarantined ones count — they are accounted for, not dropped).
        stats = service.stats
        assert stats.trajectories_in == len(feed)
        assert stats.quarantined == 2
        assert len(service.quarantine) == 2
        assert {e.traj_id for e in service.quarantine.entries()} == {"bad-1", "bad-2"}
        assert service.journal.pending() == []  # all begun work finished

        # Rungs are visible on every outcome ...
        segments = [s for batch in results for r in batch for s in r.segments]
        assert segments, "scenario produced no imputed segments"
        for segment in segments:
            assert segment.rung is not None
            if segment.rung != RUNG_FULL:
                assert segment.degraded
        # ... and in the Prometheus exposition.
        exposition = render_prometheus(fresh_registry)
        for rung in {s.rung for s in segments}:
            line = f"repro_kamel_rung_{rung}_total"
            assert line in exposition
        assert "repro_resilience_chaos_faults_total" in exposition

    def test_deadline_bounds_impute_time(
        self, chaos_system, clean_guards, small_dataset, fresh_registry
    ):
        from repro.resilience import Deadline

        feed = _feed(small_dataset, n=8)
        monkey = ChaosMonkey(
            ChaosConfig(
                seed=1234, failure_rate=0.3, latency_rate=0.1, latency_s=0.01
            )
        )
        with chaos_scope(monkey, system=chaos_system):
            for trajectory in feed:
                start = time.monotonic()
                result = chaos_system.impute(
                    trajectory, deadline=Deadline.after(self.DEADLINE_S)
                )
                elapsed = time.monotonic() - start
                # The acceptance bound: never past the deadline by >50 ms.
                assert elapsed <= self.DEADLINE_S + self.GRACE_S, (
                    f"impute took {elapsed:.3f}s against a "
                    f"{self.DEADLINE_S}s deadline"
                )
                assert len(result.trajectory) >= len(trajectory)


class TestDeterminism:
    def _run_once(self, system, feed):
        system.guards.reset()
        previous = set_registry(MetricsRegistry())
        try:
            monkey = ChaosMonkey(
                ChaosConfig(seed=77, failure_rate=0.3, latency_rate=0.0)
            )
            outputs = []
            with chaos_scope(monkey, system=system):
                for trajectory in feed:
                    # No deadline: behavior must depend only on the seeded
                    # fault sequence, never on wall-clock timing.
                    result = system.impute(trajectory)
                    outputs.append(result)
            return monkey.report.to_dict(), outputs
        finally:
            set_registry(previous)
            system.guards.reset()

    def test_same_seed_replays_exactly(self, chaos_system, small_dataset):
        feed = _feed(small_dataset, n=6)
        report_a, outputs_a = self._run_once(chaos_system, feed)
        report_b, outputs_b = self._run_once(chaos_system, feed)
        assert report_a == report_b
        assert [r.trajectory for r in outputs_a] == [r.trajectory for r in outputs_b]
        assert [
            [(s.rung, s.fallback_reason) for s in r.segments] for r in outputs_a
        ] == [[(s.rung, s.fallback_reason) for s in r.segments] for r in outputs_b]


class TestKillAndResume:
    def test_crash_resumes_without_loss_or_rework(
        self, chaos_system, clean_guards, small_dataset, tmp_path, fresh_registry
    ):
        feed = _feed(small_dataset, n=6)
        journal_path = str(tmp_path / "wal.jsonl")

        # Reference: the same inputs through an undisturbed service.
        reference = StreamingImputationService(chaos_system, StreamingConfig())
        expected = [reference.process(t) for t in feed]

        # First incarnation: dies on the 4th process call.
        chaos_system.guards.reset()
        first = StreamingImputationService(
            chaos_system, StreamingConfig(journal_path=journal_path)
        )
        monkey = ChaosMonkey(ChaosConfig(seed=0, crash_after=4))
        survived = []
        with chaos_scope(monkey, service=first):
            with pytest.raises(InjectedCrash):
                for trajectory in feed[:4]:
                    survived.append(first.process(trajectory))
        assert len(survived) == 3  # the 4th died mid-flight
        first.journal.close()

        # Second incarnation: same journal, fresh process.
        second = StreamingImputationService(
            chaos_system, StreamingConfig(journal_path=journal_path)
        )
        replayed = second.recover()
        # Only the unfinished trajectory is reprocessed ...
        assert second.stats.journal_replayed == 1
        assert [r.trajectory.traj_id for r in replayed] == [
            r.trajectory.traj_id for r in expected[3]
        ]
        # ... with output identical to the never-crashed run.
        assert [r.trajectory for r in replayed] == [
            r.trajectory for r in expected[3]
        ]
        # The rest of the feed flows normally afterwards.
        tail = [second.process(t) for t in feed[4:]]
        assert [
            [r.trajectory for r in batch] for batch in tail
        ] == [[r.trajectory for r in batch] for batch in expected[4:]]
        assert second.journal.pending() == []

        # End-to-end accounting: every submitted trajectory was processed
        # exactly once by *some* incarnation (3 + 1 replayed + 2 tail).
        assert first.stats.trajectories_in + second.stats.trajectories_in == len(feed)


class TestFailureRateParity:
    """StreamStats (cumulative) and the windowed gauge agree on what a
    failure is: segments served by the linear rung only."""

    def test_stats_and_gauge_agree(
        self, chaos_system, clean_guards, small_dataset, fresh_registry
    ):
        service = StreamingImputationService(chaos_system, StreamingConfig())
        for trajectory in _feed(small_dataset, n=6):
            service.process(trajectory)
        stats = service.stats
        assert stats.segments > 0
        hub = obs.monitors()
        # The window is larger than the segment count, so windowed == cumulative.
        assert stats.segments <= hub.failure.window.capacity
        assert hub.failure.value == pytest.approx(stats.failure_rate)
        assert obs.gauge("repro.kamel.failure_rate").value == pytest.approx(
            stats.failure_rate
        )
        assert hub.degraded.value == pytest.approx(stats.degraded_rate)
        assert obs.gauge("repro.kamel.degraded_rate").value == pytest.approx(
            stats.degraded_rate
        )
        # Failures are degraded by definition; never the other way around.
        assert stats.degraded_segments >= stats.failed_segments


class TestGridChaos:
    def test_corruption_swaps_cell_for_neighbor(self, chaos_system, fresh_registry):
        grid = chaos_system.tokenizer.grid
        point = Point(400.0, 400.0)
        true_cell = grid.cell_of(point)
        monkey = ChaosMonkey(ChaosConfig(seed=3, corruption_rate=1.0))
        uninstall = install_grid_chaos(grid, monkey)
        try:
            corrupted = grid.cell_of(point)
            assert corrupted in grid.neighbors(true_cell)
            assert monkey.report.corruptions == 1
        finally:
            uninstall()
        assert grid.cell_of(point) == true_cell

    def test_pipeline_survives_corrupted_lookups(
        self, chaos_system, clean_guards, small_dataset, fresh_registry
    ):
        feed = _feed(small_dataset, n=3)
        monkey = ChaosMonkey(ChaosConfig(seed=5, corruption_rate=0.2))
        with chaos_scope(
            monkey, system=chaos_system, grid=chaos_system.tokenizer.grid
        ):
            for trajectory in feed:
                result = chaos_system.impute(trajectory)
                # Corrupted cells may degrade accuracy, never crash, and
                # every point must still be finite.
                for p in result.trajectory.points:
                    assert math.isfinite(p.x) and math.isfinite(p.y)
