"""Tests for the trajectory store and the pyramid model repository."""

import pytest

from repro.core.config import KamelConfig
from repro.core.partitioning import ModelRepository, PyramidIndex, _pair_key
from repro.core.store import TrajectoryStore
from repro.core.tokenization import Tokenizer
from repro.errors import EmptyInputError, ModelRepositoryError
from repro.geo import BoundingBox, Point, Trajectory
from repro.grid import HexGrid
from repro.mlm import CountingMaskedLM


def line_trajectory(tid, x0, y, length=800.0, step=100.0):
    n = int(length / step) + 1
    return Trajectory(tid, [Point(x0 + i * step, y, t=float(i * 10)) for i in range(n)])


@pytest.fixture()
def tokenizer():
    return Tokenizer(HexGrid(75.0))


@pytest.fixture()
def store(tokenizer):
    return TrajectoryStore(tokenizer)


class TestStore:
    def test_empty(self, store):
        assert len(store) == 0
        assert store.total_tokens == 0
        with pytest.raises(EmptyInputError):
            store.bbox()

    def test_add_and_count(self, store, tokenizer):
        seq = tokenizer.tokenize(line_trajectory("a", 0, 0), grow=True)
        store.add(seq)
        assert len(store) == 1
        assert store.total_tokens == len(seq)

    def test_sequences_within(self, store, tokenizer):
        near = tokenizer.tokenize(line_trajectory("near", 0, 0), grow=True)
        far = tokenizer.tokenize(line_trajectory("far", 10_000, 10_000), grow=True)
        store.add_many([near, far])
        region = BoundingBox(-500, -500, 2000, 500)
        found = store.sequences_within(region)
        assert [s.traj_id for s in found] == ["near"]

    def test_tokens_within_counts_tokens_not_trajectories(self, store, tokenizer):
        seq = tokenizer.tokenize(line_trajectory("a", 0, 0), grow=True)
        store.add(seq)
        # Region covering roughly the first half of the line.
        half = store.tokens_within(BoundingBox(-100, -100, 400, 100))
        full = store.tokens_within(BoundingBox(-100, -100, 2000, 100))
        assert 0 < half < full == len(seq)

    def test_iteration(self, store, tokenizer):
        store.add(tokenizer.tokenize(line_trajectory("a", 0, 0), grow=True))
        assert [s.traj_id for s in store] == ["a"]


class TestPyramidIndex:
    def test_validation(self):
        with pytest.raises(ModelRepositoryError):
            PyramidIndex(BoundingBox(0, 0, 100, 100), height=0)
        with pytest.raises(ModelRepositoryError):
            PyramidIndex(BoundingBox(0, 0, 0, 100), height=2)

    def test_cell_bbox_tiles_the_root(self):
        pyramid = PyramidIndex(BoundingBox(0, 0, 400, 400), height=3)
        level2 = [pyramid.cell_bbox((2, i, j)) for i in range(4) for j in range(4)]
        assert sum(b.area for b in level2) == pytest.approx(400 * 400)

    def test_cell_containing_point(self):
        pyramid = PyramidIndex(BoundingBox(0, 0, 400, 400), height=3)
        assert pyramid.cell_containing_point(Point(50, 50), 2) == (2, 0, 0)
        assert pyramid.cell_containing_point(Point(350, 150), 2) == (2, 3, 1)
        assert pyramid.cell_containing_point(Point(999, 0), 2) is None

    def test_cell_containing_bbox(self):
        pyramid = PyramidIndex(BoundingBox(0, 0, 400, 400), height=3)
        inside = BoundingBox(10, 10, 90, 90)
        assert pyramid.cell_containing_bbox(inside, 2) == (2, 0, 0)
        straddling = BoundingBox(90, 10, 110, 90)
        assert pyramid.cell_containing_bbox(straddling, 2) is None
        assert pyramid.cell_containing_bbox(straddling, 1) == (1, 0, 0)

    def test_pair_containing_bbox(self):
        pyramid = PyramidIndex(BoundingBox(0, 0, 400, 400), height=3)
        straddling = BoundingBox(90, 10, 110, 90)
        pair = pyramid.pair_containing_bbox(straddling, 2)
        assert pair is not None
        assert set(pair) == {(2, 0, 0), (2, 1, 0)}
        # Diagonal spans are not neighbour pairs.
        diagonal = BoundingBox(90, 90, 110, 110)
        assert pyramid.pair_containing_bbox(diagonal, 2) is None

    def test_parent_children_round_trip(self):
        pyramid = PyramidIndex(BoundingBox(0, 0, 400, 400), height=3)
        cell = (1, 1, 0)
        for child in pyramid.children(cell):
            assert pyramid.parent(child) == cell
        assert pyramid.parent((0, 0, 0)) is None
        assert pyramid.children((2, 0, 0)) == []  # leaves

    def test_neighbors_stay_in_root(self):
        pyramid = PyramidIndex(BoundingBox(0, 0, 400, 400), height=3)
        corner = pyramid.neighbors((2, 0, 0))
        assert len(corner) == 2
        interior = pyramid.neighbors((2, 1, 1))
        assert len(interior) == 4

    def test_pair_key_north_west_storage(self):
        # West cell (smaller i) stores; north cell (larger j) stores.
        assert _pair_key((2, 0, 0), (2, 1, 0))[0] == (2, 0, 0)
        assert _pair_key((2, 1, 0), (2, 0, 0))[0] == (2, 0, 0)
        assert _pair_key((2, 0, 1), (2, 0, 0))[0] == (2, 0, 1)

    def test_rooted_at_centers_leaf_on_anchor(self):
        pyramid = PyramidIndex.rooted_at(Point(1000, 2000), 9600.0, height=5)
        leaf = pyramid.cell_containing_point(Point(1000, 2000), 4)
        center = pyramid.cell_bbox(leaf).center
        assert center.distance_to(Point(1000, 2000)) < 1.0

    def test_smallest_enclosing_prefers_deepest(self):
        pyramid = PyramidIndex(BoundingBox(0, 0, 400, 400), height=3)
        box = BoundingBox(10, 10, 60, 60)
        assert pyramid.smallest_enclosing(box, iter([0, 1, 2])) == (2, 0, 0)


class TestModelRepository:
    def make_repo(self, tokenizer, k=10, height=4, levels=3):
        config = KamelConfig(
            model_threshold_k=k,
            pyramid_height=height,
            pyramid_levels=levels,
            pyramid_root_extent_m=16_000.0,
        )
        store = TrajectoryStore(tokenizer)
        return ModelRepository(tokenizer, store, config, CountingMaskedLM)

    def test_maintained_levels(self, tokenizer):
        repo = self.make_repo(tokenizer, height=4, levels=3)
        assert repo.maintained_levels == [1, 2, 3]

    def test_add_training_builds_models(self, tokenizer):
        repo = self.make_repo(tokenizer, k=5)
        trajs = [line_trajectory(f"t{i}", 0, i * 50.0) for i in range(10)]
        repo.add_training([tokenizer.tokenize(t, grow=True) for t in trajs])
        assert repo.num_models >= 1
        stats = repo.stats()
        assert stats.single_models >= 1

    def test_retrieval_finds_model(self, tokenizer):
        repo = self.make_repo(tokenizer, k=5)
        trajs = [line_trajectory(f"t{i}", 0, i * 50.0) for i in range(10)]
        repo.add_training([tokenizer.tokenize(t, grow=True) for t in trajs])
        stored = repo.retrieve(BoundingBox(0, 0, 600, 300))
        assert stored is not None
        assert stored.model.is_fitted

    def test_retrieval_prefers_smallest_cell(self, tokenizer):
        repo = self.make_repo(tokenizer, k=2)
        trajs = [line_trajectory(f"t{i}", 0, i * 50.0) for i in range(10)]
        repo.add_training([tokenizer.tokenize(t, grow=True) for t in trajs])
        small = repo.retrieve(BoundingBox(0, 0, 200, 100))
        assert small is not None
        # The smallest enclosing model's region must be no larger than the
        # root: and if multiple levels have models, a deeper one is chosen.
        deepest_level = max(level for (level, _, _) in repo._single)
        assert small.region.area <= repo.pyramid.cell_bbox((deepest_level, 0, 0)).area * 4

    def test_retrieve_miss_far_away(self, tokenizer):
        repo = self.make_repo(tokenizer, k=5)
        trajs = [line_trajectory(f"t{i}", 0, i * 50.0) for i in range(6)]
        repo.add_training([tokenizer.tokenize(t, grow=True) for t in trajs])
        assert repo.retrieve(BoundingBox(6000, 6000, 6500, 6500)) is None

    def test_retrieve_before_training(self, tokenizer):
        repo = self.make_repo(tokenizer)
        assert repo.retrieve(BoundingBox(0, 0, 10, 10)) is None
        assert repo.any_model() is None

    def test_threshold_blocks_small_batches(self, tokenizer):
        repo = self.make_repo(tokenizer, k=10_000)
        trajs = [line_trajectory("t", 0, 0)]
        repo.add_training([tokenizer.tokenize(t, grow=True) for t in trajs])
        assert repo.num_models == 0

    def test_rebuild_counts(self, tokenizer):
        repo = self.make_repo(tokenizer, k=5)
        batch1 = [tokenizer.tokenize(line_trajectory(f"a{i}", 0, i * 50.0), grow=True) for i in range(8)]
        batch2 = [tokenizer.tokenize(line_trajectory(f"b{i}", 0, i * 50.0 + 25), grow=True) for i in range(8)]
        repo.add_training(batch1)
        first = repo.num_models
        repo.add_training(batch2)
        assert repo.stats().rebuilds >= 1
        assert repo.num_models >= first

    def test_empty_batch_ignored(self, tokenizer):
        repo = self.make_repo(tokenizer)
        repo.add_training([])
        assert repo.num_models == 0

    def test_model_threshold_formula(self):
        config = KamelConfig(model_threshold_k=100, pyramid_height=4, pyramid_levels=3)
        # Leaf level is 3: threshold k * 4^(leaf - level).
        assert config.model_threshold(3) == 100
        assert config.model_threshold(2) == 400
        assert config.model_threshold(1) == 1600


class TestNeighborModelRetrieval:
    def test_straddling_bbox_served_by_neighbor_model(self, tokenizer):
        """Section 4.1's boundary case: a trajectory crossing two adjacent
        leaf cells that do not share a parent model is served by the
        neighbor-cell model stored at the west/north cell."""
        config = KamelConfig(
            model_threshold_k=5,
            pyramid_height=3,
            pyramid_levels=2,
            pyramid_root_extent_m=8000.0,
        )
        store = TrajectoryStore(tokenizer)
        repo = ModelRepository(tokenizer, store, config, CountingMaskedLM)
        # Long east-west trajectories crossing the pyramid's middle.
        trajs = [
            line_trajectory(f"x{k}", -1500.0, k * 60.0, length=3000.0)
            for k in range(8)
        ]
        repo.add_training([tokenizer.tokenize(t, grow=True) for t in trajs])
        if not repo._neighbor:
            pytest.skip("threshold/layout did not produce a neighbor model here")
        pair = next(iter(repo._neighbor))
        region_a = repo.pyramid.cell_bbox(pair[0])
        region_b = repo.pyramid.cell_bbox(pair[1])
        # A query box straddling the shared border of the pair.
        union = region_a.union(region_b)
        c = union.center
        straddle = BoundingBox(c.x - 50, c.y - 50, c.x + 50, c.y + 50)
        stored = repo.retrieve(straddle)
        assert stored is not None

    def test_neighbor_model_requires_double_threshold(self, tokenizer):
        config = KamelConfig(
            model_threshold_k=10_000,
            pyramid_height=3,
            pyramid_levels=2,
            pyramid_root_extent_m=8000.0,
        )
        store = TrajectoryStore(tokenizer)
        repo = ModelRepository(tokenizer, store, config, CountingMaskedLM)
        trajs = [line_trajectory(f"x{k}", -900.0, k * 60.0, length=1800.0) for k in range(4)]
        repo.add_training([tokenizer.tokenize(t, grow=True) for t in trajs])
        assert not repo._neighbor
