"""Tests for the paper's evaluation metrics (Section 8)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.result import ImputationResult, SegmentOutcome
from repro.eval.metrics import (
    evaluate_imputation,
    failure_rate,
    point_to_polyline_distance,
    point_to_segment_distance,
    precision,
    recall,
)
from repro.geo import Point, Trajectory


def line(tid, y=0.0, n=11, spacing=100.0):
    return Trajectory(tid, [Point(i * spacing, y, t=float(i)) for i in range(n)])


class TestPointToPolyline:
    def test_on_the_line(self):
        assert point_to_polyline_distance(Point(50, 0), [Point(0, 0), Point(100, 0)]) == 0.0

    def test_perpendicular(self):
        assert point_to_polyline_distance(Point(50, 30), [Point(0, 0), Point(100, 0)]) == 30.0

    def test_beyond_endpoint_clamps(self):
        d = point_to_polyline_distance(Point(130, 40), [Point(0, 0), Point(100, 0)])
        assert d == pytest.approx(50.0)

    def test_multi_segment_takes_nearest(self):
        polyline = [Point(0, 0), Point(100, 0), Point(100, 100)]
        assert point_to_polyline_distance(Point(110, 90), polyline) == pytest.approx(10.0)

    def test_empty_polyline(self):
        assert point_to_polyline_distance(Point(0, 0), []) == float("inf")

    def test_single_point_polyline(self):
        assert point_to_polyline_distance(Point(3, 4), [Point(0, 0)]) == pytest.approx(5.0)

    def test_segment_degenerate(self):
        assert point_to_segment_distance(Point(3, 4), Point(0, 0), Point(0, 0)) == 5.0

    @given(
        st.floats(min_value=-100, max_value=200),
        st.floats(min_value=-100, max_value=100),
    )
    def test_distance_non_negative(self, x, y):
        assert point_to_polyline_distance(Point(x, y), [Point(0, 0), Point(100, 0)]) >= 0


class TestRecallPrecision:
    def test_identical_trajectories_perfect(self):
        truth = line("t")
        assert recall(truth, truth, 100.0, 10.0) == 1.0
        assert precision(truth, truth, 100.0, 10.0) == 1.0

    def test_parallel_offset_within_delta(self):
        truth = line("t", y=0.0)
        shifted = line("i", y=30.0)
        assert recall(truth, shifted, 100.0, 50.0) == 1.0
        assert recall(truth, shifted, 100.0, 20.0) == 0.0

    def test_partial_coverage_recall(self):
        truth = line("t", n=11)  # 0..1000 m
        half = Trajectory("i", [Point(x, 0.0) for x in (0.0, 250.0, 500.0)])
        r = recall(truth, half, 100.0, 10.0)
        assert 0.4 < r < 0.7

    def test_precision_penalizes_hallucination(self):
        truth = line("t", n=11)
        detour = Trajectory(
            "i",
            [Point(0, 0), Point(500, 900), Point(1000, 0)],  # wanders far north
        )
        assert precision(truth, detour, 100.0, 50.0) < 0.5

    def test_recall_insensitive_to_extra_imputed_points(self):
        """Recall only asks whether truth probes are covered."""
        truth = line("t")
        dense_plus_noise = Trajectory(
            "i", list(line("x").points) + [Point(500.0, 40.0)]
        )
        assert recall(truth, dense_plus_noise, 100.0, 50.0) == 1.0

    def test_threshold_monotonicity(self):
        truth = line("t")
        wobbly = Trajectory("i", [Point(i * 100.0, 25.0 * (-1) ** i) for i in range(11)])
        r_tight = recall(truth, wobbly, 100.0, 10.0)
        r_loose = recall(truth, wobbly, 100.0, 80.0)
        assert r_loose >= r_tight


class TestFailureRate:
    def make_result(self, flags):
        segments = tuple(
            SegmentOutcome(i, failed, 0, 0) for i, failed in enumerate(flags)
        )
        return ImputationResult(line("x"), segments)

    def test_mixed(self):
        results = [self.make_result([True, False]), self.make_result([False, False])]
        assert failure_rate(results) == pytest.approx(0.25)

    def test_no_segments(self):
        assert failure_rate([self.make_result([])]) == 0.0

    def test_result_properties(self):
        r = self.make_result([True, False, True])
        assert r.num_segments == 3
        assert r.num_failed == 2
        assert r.failure_rate == pytest.approx(2 / 3)


class TestEvaluateImputation:
    def test_aggregates_means(self):
        truth = [line("a"), line("b")]
        results = [
            ImputationResult(line("a"), (SegmentOutcome(0, False, 1, 1),)),
            ImputationResult(line("b", y=1000.0), (SegmentOutcome(0, True, 0, 1),)),
        ]
        scores = evaluate_imputation(truth, results, 100.0, 50.0)
        assert scores.recall == pytest.approx(0.5)
        assert scores.failure_rate == pytest.approx(0.5)
        assert scores.num_trajectories == 2
        assert scores.num_segments == 2
        assert set(scores.as_dict()) == {"recall", "precision", "failure_rate"}

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            evaluate_imputation([line("a")], [], 100.0, 50.0)

    def test_empty_inputs(self):
        scores = evaluate_imputation([], [], 100.0, 50.0)
        assert scores.num_trajectories == 0
