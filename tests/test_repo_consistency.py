"""Repository-level consistency: docs, benchmarks, and registry agree."""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestFigureRegistry:
    def test_every_registered_figure_has_a_benchmark(self):
        from repro.eval.figures import ALL_FIGURES

        bench_sources = "\n".join(
            p.read_text() for p in (ROOT / "benchmarks").glob("bench_*.py")
        )
        for name, fn in ALL_FIGURES.items():
            assert fn.__name__ in bench_sources, (
                f"figure {name} ({fn.__name__}) has no benchmark invoking it"
            )

    def test_registry_names_are_cli_safe(self):
        from repro.eval.figures import ALL_FIGURES

        for name in ALL_FIGURES:
            assert re.fullmatch(r"[a-z0-9-]+", name), name


class TestDocs:
    def test_readme_lists_every_benchmark(self):
        readme = (ROOT / "README.md").read_text()
        for bench in sorted((ROOT / "benchmarks").glob("bench_*.py")):
            assert bench.name in readme, f"{bench.name} missing from README"

    def test_readme_lists_every_example(self):
        readme = (ROOT / "README.md").read_text()
        for example in sorted((ROOT / "examples").glob("*.py")):
            assert example.name in readme, f"{example.name} missing from README"

    def test_design_md_mentions_every_subpackage(self):
        design = (ROOT / "DESIGN.md").read_text()
        src = ROOT / "src" / "repro"
        for package in sorted(p.name for p in src.iterdir() if p.is_dir()):
            if package.startswith("__"):
                continue
            assert f"repro.{package}" in design, (
                f"subpackage repro.{package} missing from DESIGN.md inventory"
            )

    def test_experiments_md_covers_every_paper_figure(self):
        experiments = (ROOT / "EXPERIMENTS.md").read_text()
        for heading in (
            "Figure 9",
            "Figure 10",
            "Figure 11",
            "Figure 12-I",
            "Figure 12-III",
            "Figure 12-IV",
            "Figure 12-V",
            "Figure 12-VI",
            "Figure 3(d)",
        ):
            assert heading in experiments, f"{heading} missing from EXPERIMENTS.md"


class TestPackageHygiene:
    def test_all_subpackages_importable(self):
        import importlib

        src = ROOT / "src" / "repro"
        for package in sorted(p.name for p in src.iterdir() if p.is_dir()):
            if package.startswith("__"):
                continue
            importlib.import_module(f"repro.{package}")

    def test_public_all_exports_resolve(self):
        import importlib

        for module_name in (
            "repro",
            "repro.geo",
            "repro.grid",
            "repro.mlm",
            "repro.nn",
            "repro.core",
            "repro.eval",
            "repro.baselines",
            "repro.roadnet",
            "repro.preprocess",
            "repro.mapinference",
            "repro.io",
            "repro.viz",
            "repro.cluster",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_examples_compile(self):
        import py_compile

        for example in sorted((ROOT / "examples").glob("*.py")):
            py_compile.compile(str(example), doraise=True)

    def test_version_consistent(self):
        import repro

        pyproject = (ROOT / "pyproject.toml").read_text()
        assert f'version = "{repro.__version__}"' in pyproject


class TestPaperMapping:
    def test_every_referenced_module_exists(self):
        import importlib

        mapping = (ROOT / "docs" / "paper_mapping.md").read_text()
        modules = set(re.findall(r"(repro(?:\.[A-Za-z_]+)+)", mapping))
        assert len(modules) >= 20
        for dotted in sorted(modules):
            # Resolve as module, or as attribute of the parent module.
            try:
                importlib.import_module(dotted)
                continue
            except ImportError:
                pass
            parent, _, attr = dotted.rpartition(".")
            module = importlib.import_module(parent)
            assert hasattr(module, attr), f"{dotted} referenced but missing"

    def test_every_referenced_bench_exists(self):
        mapping = (ROOT / "docs" / "paper_mapping.md").read_text()
        for bench in set(re.findall(r"benchmarks/(bench_[a-z0-9_]+\.py)", mapping)):
            assert (ROOT / "benchmarks" / bench).exists(), bench

    def test_every_referenced_example_exists(self):
        mapping = (ROOT / "docs" / "paper_mapping.md").read_text()
        for example in set(re.findall(r"examples/([a-z0-9_]+\.py)", mapping)):
            assert (ROOT / "examples" / example).exists(), example
