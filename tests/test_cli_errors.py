"""CLI error paths: bad input must exit non-zero with a clean message.

Every scenario here once produced (or could produce) a traceback; the
contract under test is a one-line ``error:`` diagnostic on stderr, a
non-zero exit code, and no stack trace leaking to the terminal.
"""

import json

import pytest

from repro.bench.snapshot import make_snapshot
from repro.cli import main


def _no_traceback(capsys):
    captured = capsys.readouterr()
    assert "Traceback" not in captured.out
    assert "Traceback" not in captured.err
    return captured


class TestUnknownSubcommand:
    def test_exits_with_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["frobnicate"])
        assert exc.value.code == 2
        captured = _no_traceback(capsys)
        assert "invalid choice" in captured.err


class TestMetricsOutErrors:
    def test_unwritable_snapshot_path_is_a_clean_failure(self, tmp_path, capsys):
        target = tmp_path / "no-such-dir" / "metrics.json"
        assert main(["--metrics-out", str(target), "list-figures"]) == 2
        captured = _no_traceback(capsys)
        assert "error: cannot write metrics snapshot" in captured.err

    def test_writable_snapshot_path_still_succeeds(self, tmp_path, capsys):
        target = tmp_path / "metrics.json"
        assert main(["--metrics-out", str(target), "list-figures"]) == 0
        assert json.loads(target.read_text())  # a real registry snapshot
        _no_traceback(capsys)


class TestStatsSnapshotErrors:
    def test_missing_file(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["stats", str(missing)]) == 2
        captured = _no_traceback(capsys)
        assert "error: cannot read snapshot" in captured.err

    def test_malformed_json(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["stats", str(bad)]) == 2
        captured = _no_traceback(capsys)
        assert "is not a valid snapshot" in captured.err

    def test_malformed_json_in_two_file_compare(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(make_snapshot({"mod": [{"m.a": 1.0}]})))
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2")
        assert main(["stats", str(good), str(bad)]) == 2
        captured = _no_traceback(capsys)
        assert "is not a valid snapshot" in captured.err

    def test_valid_json_but_not_a_snapshot(self, tmp_path, capsys):
        odd = tmp_path / "odd.json"
        odd.write_text(json.dumps({"hello": "world"}))
        assert main(["stats", str(odd), str(odd)]) == 2
        captured = _no_traceback(capsys)
        assert "unrecognized snapshot" in captured.err


class TestBenchCompareErrors:
    """The baseline is validated before the suite runs, so these are fast."""

    def test_malformed_baseline(self, tmp_path, capsys):
        bad = tmp_path / "baseline.json"
        bad.write_text("{{{{")
        assert main(["bench", "counting", "--repeats", "1", "--compare", str(bad)]) == 2
        captured = _no_traceback(capsys)
        assert "is not a valid snapshot" in captured.err

    def test_missing_baseline(self, tmp_path, capsys):
        assert (
            main(
                [
                    "bench",
                    "counting",
                    "--repeats",
                    "1",
                    "--compare",
                    str(tmp_path / "gone.json"),
                ]
            )
            == 2
        )
        captured = _no_traceback(capsys)
        assert "error: cannot read snapshot" in captured.err

    def test_unrecognized_baseline_document(self, tmp_path, capsys):
        odd = tmp_path / "odd.json"
        odd.write_text(json.dumps({"schema": "something/else"}))
        assert main(["bench", "counting", "--repeats", "1", "--compare", str(odd)]) == 2
        captured = _no_traceback(capsys)
        assert "unrecognized snapshot" in captured.err


class TestStatsOneSidedMetrics:
    def test_added_and_removed_metrics_are_labelled(self, tmp_path, capsys):
        """Satellite: metrics on one side only show up as added/removed."""
        baseline = tmp_path / "a.json"
        current = tmp_path / "b.json"
        baseline.write_text(
            json.dumps(make_snapshot({"mod": [{"kept": 1.0, "retired": 2.0}]}))
        )
        current.write_text(
            json.dumps(make_snapshot({"mod": [{"kept": 1.0, "fresh": 3.0}]}))
        )
        assert main(["stats", str(baseline), str(current)]) == 0
        captured = _no_traceback(capsys)
        lines = {
            line.split()[0].split(":", 1)[1]: line
            for line in captured.out.splitlines()
            if line.startswith("mod:")
        }
        assert "removed" in lines["retired"]
        assert "added" in lines["fresh"]
        # Removed (a vanished signal) sorts above added in severity.
        assert captured.out.index("retired") < captured.out.index("fresh")
