"""Tests for table rendering and the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.eval.report import render_series, render_table


class TestReport:
    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [[1, 2.5], ["xyz", 0.125]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "2.500" in lines[2]
        assert "0.125" in lines[3]

    def test_render_table_floats_formatted(self):
        out = render_table(["v"], [[0.123456]])
        assert "0.123" in out
        assert "0.1234" not in out

    def test_render_series(self):
        out = render_series(
            "Fig X", "sparseness", [100, 200], {"KAMEL": [0.9, 0.8], "Linear": [0.5, 0.4]}
        )
        assert out.startswith("Fig X")
        assert "KAMEL" in out and "Linear" in out
        assert "0.800" in out


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_figures(self, capsys):
        assert main(["list-figures"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out
        assert "fig12-ablation" in out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "fig99"]) == 2

    def test_compare_parser_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.dataset == "porto"
        assert args.sparseness == 800.0
        assert "KAMEL" in args.methods

    def test_compare_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--methods", "Oracle"])

    def test_figure_parser(self):
        args = build_parser().parse_args(["figure", "fig9", "--full"])
        assert args.name == "fig9" and args.full

    def test_serve_metrics_parser_defaults(self):
        args = build_parser().parse_args(["serve-metrics"])
        assert args.port == 9100
        assert args.host == "127.0.0.1"
        assert not args.demo

    def test_trace_parser_collects_remainder(self):
        args = build_parser().parse_args(
            ["trace", "--export", "jsonl", "--", "compare", "--dataset", "porto"]
        )
        assert args.export == "jsonl"
        assert args.rest == ["--", "compare", "--dataset", "porto"]

    def test_trace_requires_a_subcommand(self, capsys):
        assert main(["trace", "--export", "chrome"]) == 2

    def test_trace_exports_chrome_json(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", "--export", "chrome", "-o", str(out), "--", "stats"]) == 0
        doc = json.loads(out.read_text())
        assert "traceEvents" in doc
        assert doc["displayTimeUnit"] == "ms"


class TestMarkdownReport:
    def test_markdown_table(self):
        from repro.eval.report import render_markdown_table

        out = render_markdown_table(["a", "b"], [[1, 0.5]])
        lines = out.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert "0.500" in lines[2]

    def test_figure_to_markdown_series(self):
        from repro.eval.report import figure_to_markdown

        result = {
            "cell_sizes_m": [25.0, 75.0],
            "series": {"recall": [0.5, 0.8], "precision": [0.6, 0.7]},
        }
        md = figure_to_markdown("fig3-cell-size", result)
        assert "### fig3-cell-size" in md
        assert "| 75.000 | 0.800 | 0.700 |" in md

    def test_figure_to_markdown_variants(self):
        from repro.eval.report import figure_to_markdown

        result = {
            "sparseness_m": [400.0],
            "variants": {
                "KAMEL": {"recall": [0.9]},
                "No Multi.": {"recall": [0.5]},
            },
        }
        md = figure_to_markdown("fig12-ablation", result)
        assert "KAMEL" in md and "No Multi." in md
        assert "0.900" in md

    def test_figure_to_markdown_label_scores(self):
        from repro.eval.report import figure_to_markdown

        result = {"series": {"100%": {"recall": 0.8}, "25%": {"recall": 0.5}}}
        md = figure_to_markdown("fig12-training-size", result)
        assert "| 100% | 0.800 |" in md

    def test_report_parser(self):
        args = build_parser().parse_args(["report", "--figures", "fig9", "--output", "x.md"])
        assert args.figures == ["fig9"]
        assert args.output == "x.md"
