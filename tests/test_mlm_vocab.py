"""Tests for the token vocabulary."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import VocabularyError
from repro.mlm.vocab import (
    MASK_TOKEN,
    PAD_TOKEN,
    SPECIAL_TOKENS,
    UNK_TOKEN,
    Vocabulary,
    build_vocabulary,
)


class TestSpecials:
    def test_reserved_ids(self):
        v = Vocabulary()
        assert v.pad_id == 0
        assert v.mask_id == 1
        assert v.unk_id == 2
        assert v.num_special == 3
        assert len(v) == 3

    def test_decode_specials(self):
        v = Vocabulary()
        assert v.decode(0) == PAD_TOKEN
        assert v.decode(1) == MASK_TOKEN
        assert v.decode(2) == UNK_TOKEN

    def test_is_special(self):
        v = Vocabulary()
        v.add((0, 0))
        assert all(v.is_special(i) for i in range(3))
        assert not v.is_special(3)

    def test_cannot_add_reserved(self):
        v = Vocabulary()
        for token in SPECIAL_TOKENS:
            with pytest.raises(VocabularyError):
                v.add(token)


class TestEncodeDecode:
    def test_add_assigns_sequential_ids(self):
        v = Vocabulary()
        assert v.add((1, 2)) == 3
        assert v.add((3, 4)) == 4

    def test_add_is_idempotent(self):
        v = Vocabulary()
        assert v.add((1, 2)) == v.add((1, 2))
        assert len(v) == 4

    def test_encode_unknown_is_unk(self):
        v = Vocabulary()
        assert v.encode((9, 9)) == v.unk_id

    def test_encode_many_grow(self):
        v = Vocabulary()
        ids = v.encode_many([(0, 0), (1, 1), (0, 0)], grow=True)
        assert ids == [3, 4, 3]

    def test_encode_many_no_grow(self):
        v = Vocabulary()
        v.add((0, 0))
        ids = v.encode_many([(0, 0), (5, 5)])
        assert ids == [3, v.unk_id]

    def test_decode_round_trip(self):
        v = Vocabulary()
        token_id = v.add((7, -3))
        assert v.decode(token_id) == (7, -3)

    def test_decode_out_of_range(self):
        v = Vocabulary()
        with pytest.raises(VocabularyError):
            v.decode(99)
        with pytest.raises(VocabularyError):
            v.decode(-1)

    def test_contains(self):
        v = Vocabulary()
        v.add((1, 1))
        assert (1, 1) in v
        assert (2, 2) not in v

    def test_real_token_ids(self):
        v = Vocabulary()
        v.add((1, 1))
        v.add((2, 2))
        assert list(v.real_token_ids()) == [3, 4]

    @given(st.lists(st.tuples(st.integers(-50, 50), st.integers(-50, 50)), max_size=30))
    def test_round_trip_property(self, cells):
        v = Vocabulary()
        ids = v.encode_many(cells, grow=True)
        assert [v.decode(i) for i in ids] == cells


class TestPersistence:
    def test_to_from_list(self):
        v = Vocabulary()
        v.add((1, 2))
        v.add((-3, 4))
        restored = Vocabulary.from_list(v.to_list())
        assert len(restored) == len(v)
        assert restored.encode((1, 2)) == v.encode((1, 2))
        assert restored.encode((-3, 4)) == v.encode((-3, 4))

    def test_build_vocabulary(self):
        vocab, encoded = build_vocabulary([[(0, 0), (1, 1)], [(1, 1), (2, 2)]])
        assert len(vocab) == 6  # 3 specials + 3 cells
        assert encoded == [[3, 4], [4, 5]]
