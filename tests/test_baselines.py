"""Tests for the three baseline imputers."""

import math

import pytest

from repro.baselines import (
    HmmMapMatcher,
    LinearImputer,
    MapMatchConfig,
    TrImpute,
    TrImputeConfig,
)
from repro.baselines.mapmatch import _point_at, _subline
from repro.errors import NotFittedError
from repro.geo import Point, Trajectory


def sparse_line(tid="line", n=3, spacing=500.0):
    return Trajectory(tid, [Point(i * spacing, 0.0, t=i * 60.0) for i in range(n)])


class TestLinearImputer:
    def test_validation(self):
        with pytest.raises(ValueError):
            LinearImputer(0.0)

    def test_name(self):
        assert LinearImputer().name == "Linear"

    def test_fills_gaps_at_maxgap_spacing(self):
        result = LinearImputer(100.0).impute(sparse_line())
        assert result.trajectory.max_gap() <= 100.0 + 1e-9

    def test_every_segment_counts_as_failure(self):
        result = LinearImputer(100.0).impute(sparse_line())
        assert result.failure_rate == 1.0
        assert result.num_segments == 2

    def test_small_gaps_untouched(self):
        dense = Trajectory("d", [Point(0, 0), Point(50, 0), Point(100, 0)])
        result = LinearImputer(100.0).impute(dense)
        assert result.num_segments == 0
        assert result.trajectory.points == dense.points

    def test_short_trajectory(self):
        single = Trajectory("s", [Point(0, 0)])
        assert LinearImputer().impute(single).trajectory == single

    def test_interpolates_timestamps(self):
        result = LinearImputer(100.0).impute(sparse_line(n=2))
        times = [p.t for p in result.trajectory.points]
        assert times == sorted(times)
        assert all(t is not None for t in times)

    def test_points_on_the_line(self):
        result = LinearImputer(100.0).impute(sparse_line(n=2))
        assert all(p.y == 0.0 for p in result.trajectory.points)


class TestTrImpute:
    @pytest.fixture(scope="class")
    def corridor_history(self):
        """Dense historical traffic along a straight east-west road."""
        trajs = []
        for k in range(30):
            y = (k % 3) - 1.0
            trajs.append(
                Trajectory(
                    f"h{k}", [Point(i * 25.0, y, t=float(i)) for i in range(60)]
                )
            )
        return trajs

    def test_requires_fit(self):
        with pytest.raises(NotFittedError):
            TrImpute().impute(sparse_line())

    def test_validation(self):
        with pytest.raises(ValueError):
            TrImputeConfig(cell_m=0.0)
        with pytest.raises(ValueError):
            TrImputeConfig(max_steps=0)
        with pytest.raises(ValueError):
            TrImputeConfig(search_radius_cells=0)

    def test_name(self):
        assert TrImpute().name == "TrImpute"

    def test_fit_indexes_cells(self, corridor_history):
        model = TrImpute().fit(corridor_history)
        assert model.num_populated_cells > 10

    def test_walk_succeeds_with_dense_history(self, corridor_history):
        model = TrImpute(TrImputeConfig(maxgap_m=100.0)).fit(corridor_history)
        result = model.impute(sparse_line())
        assert result.failure_rate < 1.0
        # Imputed points hug the historical road (y ~ 0 +- 1).
        for p in result.trajectory.points:
            assert abs(p.y) < 30.0

    def test_fails_without_nearby_history(self, corridor_history):
        """The paper's criticism: no dense prior data -> failure."""
        model = TrImpute(TrImputeConfig(maxgap_m=100.0)).fit(corridor_history)
        elsewhere = Trajectory(
            "far", [Point(0, 9000.0, t=0.0), Point(1000.0, 9000.0, t=90.0)]
        )
        result = model.impute(elsewhere)
        assert result.failure_rate == 1.0

    def test_failed_segments_still_filled_linearly(self, corridor_history):
        model = TrImpute(TrImputeConfig(maxgap_m=100.0)).fit(corridor_history)
        elsewhere = Trajectory(
            "far", [Point(0, 9000.0, t=0.0), Point(1000.0, 9000.0, t=90.0)]
        )
        result = model.impute(elsewhere)
        assert result.trajectory.max_gap() <= 100.0 + 1e-9

    def test_short_trajectory(self, corridor_history):
        model = TrImpute().fit(corridor_history)
        single = Trajectory("s", [Point(0, 0)])
        assert model.impute(single).num_segments == 0


class TestSublineHelpers:
    GEOM = [Point(0, 0), Point(100, 0), Point(100, 100)]

    def test_point_at_interior(self):
        p = _point_at(self.GEOM, 150.0)
        assert (p.x, p.y) == (100.0, 50.0)

    def test_point_at_clamps(self):
        assert _point_at(self.GEOM, -1.0) == self.GEOM[0]
        assert _point_at(self.GEOM, 999.0) == self.GEOM[-1]

    def test_subline_includes_interior_vertices(self):
        sub = _subline(self.GEOM, 50.0, 150.0)
        assert [(p.x, p.y) for p in sub] == [(50, 0), (100, 0), (100, 50)]

    def test_subline_within_one_segment(self):
        sub = _subline(self.GEOM, 10.0, 20.0)
        assert [(p.x, p.y) for p in sub] == [(10, 0), (20, 0)]


class TestMapMatch:
    def test_validation(self):
        with pytest.raises(ValueError):
            MapMatchConfig(maxgap_m=0.0)
        with pytest.raises(ValueError):
            MapMatchConfig(max_candidates=0)
        with pytest.raises(ValueError):
            MapMatchConfig(emission_sigma_m=0.0)

    def test_name(self, small_city):
        assert HmmMapMatcher(small_city).name == "MapMatch"

    def test_match_snaps_to_network(self, small_city, small_dataset):
        matcher = HmmMapMatcher(small_city)
        traj = small_dataset.trajectories[0]
        matched = matcher.match(traj)
        hits = [m for m in matched if m is not None]
        assert len(hits) >= 0.9 * len(traj)
        for m in hits[:10]:
            assert m.distance_m <= 50.0

    def test_impute_follows_network(self, small_city, small_dataset):
        matcher = HmmMapMatcher(small_city)
        truth = small_dataset.trajectories[1]
        sparse = truth.sparsify(500.0)
        result = matcher.impute(sparse)
        # Route points are spaced <= maxgap; the jump from a noisy GPS
        # anchor onto the matched route adds up to the noise magnitude.
        assert result.trajectory.max_gap() <= 100.0 + 30.0
        # Imputed points lie on (or very near) the road network.
        for p in result.trajectory.points[:: max(1, len(result.trajectory) // 10)]:
            projected = small_city.project(p, radius=100.0)
            assert projected is not None
            assert projected.distance_m <= 40.0

    def test_near_perfect_accuracy(self, small_city, small_dataset):
        """Map matching knows the network: it is the paper's upper bound."""
        from repro.eval.metrics import recall

        matcher = HmmMapMatcher(small_city)
        truth = small_dataset.trajectories[2]
        sparse = truth.sparsify(500.0)
        result = matcher.impute(sparse)
        assert recall(truth, result.trajectory, 100.0, 50.0) > 0.9

    def test_unmatched_points_fall_back(self, small_city):
        matcher = HmmMapMatcher(small_city)
        off_map = Trajectory(
            "off", [Point(90_000.0, 0.0, t=0.0), Point(91_000.0, 0.0, t=90.0)]
        )
        result = matcher.impute(off_map)
        assert result.failure_rate == 1.0

    def test_short_trajectory(self, small_city):
        matcher = HmmMapMatcher(small_city)
        single = Trajectory("s", [Point(0, 0)])
        assert matcher.impute(single).num_segments == 0
