"""Tests for repro.obs.profile: stage attribution, cost ledger, stacks.

The profiler's promises are determinism (same spans -> same collapsed
stacks, byte for byte) and accounting (the cost ledger attributes the
model calls the metrics registry reports). Both are tested on hand-built
span trees and on a real miniature imputation run.
"""

import pytest

from repro.obs import (
    PIPELINE_STAGES,
    Profile,
    Profiler,
    collapsed_stacks,
    get_registry,
)
from repro.obs.profile import build_profile, stage_for_span
from repro.obs.tracing import Span, clear_spans, disable_tracing, get_tracer


def _span(name, start, end, children=(), attributes=None, cpu=None):
    s = Span(name, attributes=dict(attributes or {}))
    s.start_s = start
    s.end_s = end
    s.children = list(children)
    if cpu is not None:
        s.cpu_start_s, s.cpu_end_s = 0.0, cpu
    return s


@pytest.fixture()
def clean_tracer():
    tracer = get_tracer()
    saved = (tracer.enabled, tracer.capture_cpu, tracer.max_roots)
    clear_spans()
    yield tracer
    tracer.enabled, tracer.capture_cpu, tracer.max_roots = saved
    disable_tracing()
    clear_spans()


class TestCollapsedStacks:
    def test_merges_and_sorts_deterministically(self):
        # Two identical trees must merge; output must be sorted.
        tree = _span(
            "impute.segment", 0.0, 1.0,
            children=[_span("model.predict", 0.0, 0.4)],
        )
        tree2 = _span(
            "impute.segment", 2.0, 3.0,
            children=[_span("model.predict", 2.0, 2.4)],
        )
        text = collapsed_stacks([tree, tree2])
        assert text == collapsed_stacks([tree2, tree])
        lines = text.strip().splitlines()
        assert lines == sorted(lines)
        # Self-time of the parents: 2 x (1.0 - 0.4) s = 1_200_000 us.
        assert "impute.segment 1200000" in lines
        assert "impute.segment;model.predict 800000" in lines

    def test_calls_weighting(self):
        tree = _span(
            "impute.segment", 0.0, 1.0,
            children=[_span("model.predict", 0.0, 0.1),
                      _span("model.predict", 0.1, 0.2)],
        )
        text = collapsed_stacks([tree], value="calls")
        assert "impute.segment 1" in text
        assert "impute.segment;model.predict 2" in text

    def test_empty_input_and_bad_value(self):
        assert collapsed_stacks([]) == ""
        with pytest.raises(ValueError):
            collapsed_stacks([], value="bytes")


class TestStageAttribution:
    def test_self_time_lands_in_the_right_stage(self):
        root = _span(
            "impute.segment", 0.0, 1.0,
            attributes={"model_calls": 7},
            children=[
                _span("model.predict", 0.0, 0.3),
                _span("constraints.filter", 0.3, 0.5),
                _span("detokenize", 0.5, 0.6),
            ],
        )
        profile = build_profile([root], {}, wall_s=1.0, cpu_s=1.0)
        stages = {c.stage: c for c in profile.stages}
        assert set(stages) == set(PIPELINE_STAGES)
        # impute.segment self-time (0.4 s) plus model.predict (0.3 s)
        # are both beam-score work, counted once each via self-time.
        assert stages["beam-score"].wall_s == pytest.approx(0.7)
        assert stages["constraints"].wall_s == pytest.approx(0.2)
        assert stages["detokenize"].wall_s == pytest.approx(0.1)
        assert stages["beam-score"].model_calls == 7
        assert profile.attributed_model_calls == 7

    def test_unknown_spans_fall_into_other(self):
        assert stage_for_span("something.weird") == "other"
        root = _span("something.weird", 0.0, 2.0)
        profile = build_profile([root], {}, wall_s=2.0, cpu_s=2.0)
        stages = {c.stage: c for c in profile.stages}
        assert stages["other"].wall_s == pytest.approx(2.0)

    def test_cpu_time_aggregates_when_present(self):
        root = _span("model.predict", 0.0, 1.0, cpu=0.8)
        profile = build_profile([root], {}, wall_s=1.0, cpu_s=0.8)
        stages = {c.stage: c for c in profile.stages}
        assert stages["beam-score"].cpu_s == pytest.approx(0.8)

    def test_work_units_come_from_the_metrics_delta(self):
        delta = {
            "repro.imputation.model_calls_total": 42.0,
            "repro.constraints.candidates_in_total": 250.0,
        }
        profile = build_profile([], delta, wall_s=0.0, cpu_s=0.0)
        stages = {c.stage: c for c in profile.stages}
        assert stages["beam-score"].work == 42.0
        assert stages["beam-score"].work_unit == "model calls"
        assert stages["constraints"].work == 250.0


class TestLedgerCoverage:
    def test_coverage_against_reported_counter(self):
        root = _span(
            "impute.segment", 0.0, 1.0, attributes={"model_calls": 19}
        )
        delta = {"repro.imputation.model_calls_total": 20.0}
        profile = build_profile([root], delta, wall_s=1.0, cpu_s=1.0)
        assert profile.reported_model_calls == 20.0
        assert profile.attributed_model_calls == 19
        assert profile.model_call_coverage == pytest.approx(0.95)

    def test_full_coverage_when_nothing_ran(self):
        profile = build_profile([], {}, wall_s=0.0, cpu_s=0.0)
        assert profile.model_call_coverage == 1.0

    def test_render_table_mentions_the_ledger(self):
        root = _span("impute.segment", 0.0, 1.0, attributes={"model_calls": 3})
        profile = build_profile(
            [root], {"repro.imputation.model_calls_total": 3.0},
            wall_s=1.0, cpu_s=1.0,
        )
        text = profile.render_table()
        assert "cost ledger: 3/3 model calls attributed (100.0%)" in text
        assert "beam-score" in text


def _tiny_kamel_run():
    """Train + impute KAMEL on a miniature porto-like workload."""
    from repro.eval.harness import ExperimentRunner, build_workload, kamel_builder
    from repro.roadnet.datasets import make_porto_like

    workload = build_workload(
        make_porto_like(n_trajectories=24, seed=3), max_test=4
    )
    ExperimentRunner(workload).run("KAMEL", kamel_builder())


class TestProfilerEndToEnd:
    def test_real_run_attributes_95_percent(self, clean_tracer):
        # A miniature end-to-end imputation: the acceptance bar is that
        # the stage ledger accounts for >= 95% of the model calls the
        # repro.imputation metrics report.
        get_registry().reset()
        with Profiler(capture_memory=False) as session:
            _tiny_kamel_run()
        profile = session.profile
        assert isinstance(profile, Profile)
        assert profile.reported_model_calls > 0
        assert profile.model_call_coverage >= 0.95
        stages = {c.stage: c for c in profile.stages}
        assert stages["beam-score"].model_calls == profile.attributed_model_calls

    def test_collapsed_and_json_outputs(self, clean_tracer):
        get_registry().reset()
        with Profiler(capture_memory=False) as session:
            _tiny_kamel_run()
        profile = session.profile
        collapsed = profile.collapsed()
        assert "impute.segment" in collapsed
        doc = profile.to_dict()
        assert {s["stage"] for s in doc["stages"]} == set(PIPELINE_STAGES)
        assert doc["model_calls"]["coverage"] >= 0.95

    def test_profiler_restores_tracer_config(self, clean_tracer):
        tracer = clean_tracer
        tracer.enabled = False
        tracer.capture_cpu = False
        with Profiler(capture_memory=False):
            assert tracer.enabled is True
            assert tracer.capture_cpu is True
        assert tracer.enabled is False
        assert tracer.capture_cpu is False

    def test_peak_memory_captured_when_asked(self, clean_tracer):
        with Profiler(capture_memory=True) as session:
            _ = [0] * 50_000
        assert session.profile.peak_memory_bytes is not None
        assert session.profile.peak_memory_bytes > 0
