"""Integration tests for repro.obs.server: the /metrics endpoint family.

Each test binds an ephemeral localhost port (port=0) so the suite can
run in parallel without collisions.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.server import ObservabilityServer
from repro.obs.tracing import (
    clear_spans,
    disable_tracing,
    enable_tracing,
    span,
    trace_scope,
)


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers.get("Content-Type"), response.read().decode()


@pytest.fixture()
def registry():
    registry = MetricsRegistry()
    registry.counter("repro.kamel.trajectories_total", "Trajectories imputed.").inc(3)
    registry.gauge("repro.kamel.failure_rate", "Windowed rate.").set(0.125)
    registry.histogram("repro.kamel.impute_seconds", "Wall time.").observe(0.02)
    return registry


@pytest.fixture()
def server(registry):
    with ObservabilityServer(port=0, registry=registry) as server:
        yield server


class TestMetricsRoute:
    def test_serves_prometheus_exposition(self, server):
        status, content_type, body = _get(server.url + "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain; version=0.0.4")
        assert "repro_kamel_failure_rate 0.125" in body
        assert "repro_kamel_trajectories_total 3" in body
        assert 'repro_kamel_impute_seconds_bucket{le="+Inf"} 1' in body

    def test_scrapes_are_counted(self, server, registry):
        from repro.obs.metrics import get_registry, set_registry

        previous = set_registry(registry)
        try:
            _get(server.url + "/metrics")
            _get(server.url + "/metrics")
        finally:
            set_registry(previous)
        assert registry.get("repro.obs.scrapes_total").value == 2

    def test_reflects_live_updates(self, server, registry):
        registry.gauge("repro.kamel.failure_rate").set(0.5)
        _, _, body = _get(server.url + "/metrics")
        assert "repro_kamel_failure_rate 0.5" in body


class TestHealthz:
    def test_status_and_monitors(self, server, registry):
        registry.monitors.failure.extend(1, 4)
        status, content_type, body = _get(server.url + "/healthz")
        assert status == 200
        assert content_type.startswith("application/json")
        doc = json.loads(body)
        assert doc["status"] == "ok"
        assert doc["uptime_s"] >= 0
        assert doc["monitors"]["failure"]["value"] == 0.25


class TestSpansRoute:
    @pytest.fixture()
    def traced(self):
        enable_tracing()
        clear_spans()
        yield
        disable_tracing()
        clear_spans()

    def test_chrome_trace_by_default(self, server, traced):
        with trace_scope("cafecafecafecafe"):
            with span("impute.trajectory"):
                with span("impute.segment"):
                    pass
        status, content_type, body = _get(server.url + "/spans")
        assert status == 200
        doc = json.loads(body)
        names = [e["name"] for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert names == ["impute.trajectory", "impute.segment"]

    def test_jsonl_format(self, server, traced):
        with span("root"):
            pass
        _, content_type, body = _get(server.url + "/spans?format=jsonl")
        assert content_type == "application/x-ndjson"
        assert json.loads(body.strip())["name"] == "root"


class TestSlowRoute:
    def test_serves_the_default_flight_recorder(self, server):
        from repro.obs.flight import FlightRecord, FlightRecorder, set_flight_recorder

        recorder = FlightRecorder(capacity=4)
        recorder.record(
            FlightRecord(
                trace_id="a" * 16,
                traj_id="traj-slow",
                latency_s=1.25,
                stages={"queue_wait": 1.0, "inference": 0.25},
            )
        )
        previous = set_flight_recorder(recorder)
        try:
            status, content_type, body = _get(server.url + "/slow")
        finally:
            set_flight_recorder(previous)
        assert status == 200
        assert content_type.startswith("application/json")
        payload = json.loads(body)
        assert payload["recorded_total"] == 1
        assert payload["slowest"][0]["traj_id"] == "traj-slow"
        assert payload["slowest"][0]["dominant_stage"] == "queue_wait"


class TestLifecycle:
    def test_unknown_route_404s(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/nope")
        assert excinfo.value.code == 404

    def test_port_zero_resolves_to_real_port(self, server):
        assert server.port != 0
        assert str(server.port) in server.url

    def test_stop_is_idempotent_and_start_restarts(self, registry):
        server = ObservabilityServer(port=0, registry=registry).start()
        server.stop()
        server.stop()
        assert not server.running
        server.start()
        try:
            assert server.running
            status, _, _ = _get(server.url + "/healthz")
            assert status == 200
        finally:
            server.stop()
