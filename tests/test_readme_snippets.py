"""Executable documentation: the README's code snippets must run.

Extracts every ``python`` fenced block from README.md and executes it in
one shared namespace (later blocks may use earlier blocks' variables),
so the quickstart can never drift from the actual API.
"""

import pathlib
import re

import pytest

README = pathlib.Path(__file__).resolve().parent.parent / "README.md"


def python_blocks() -> list[str]:
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadmeSnippets:
    def test_readme_has_python_blocks(self):
        assert len(python_blocks()) >= 2

    def test_python_blocks_execute(self):
        namespace: dict = {}
        for block in python_blocks():
            # Shrink the documented workload so the doc test stays fast;
            # the API calls remain exactly as written.
            block = block.replace("n_trajectories=300", "n_trajectories=120")
            exec(compile(block, str(README), "exec"), namespace)  # noqa: S102
        # The quickstart must actually have imputed something.
        result = namespace.get("result")
        assert result is not None
        assert len(result.trajectory) >= 2

    def test_quickstart_docstring_example_runs(self):
        """The package docstring's Quickstart block, likewise."""
        import repro

        # The literal block is every indented (or blank) line after the
        # ``Quickstart::`` marker, up to the first unindented line.
        match = re.search(r"Quickstart::\n\n((?:    .*\n|\n)+)", repro.__doc__)
        assert match is not None
        code = "\n".join(
            line[4:] if line.startswith("    ") else line
            for line in match.group(1).splitlines()
        )
        code = code.replace("n_trajectories=200", "n_trajectories=120")
        namespace: dict = {}
        exec(compile(code, "repro.__doc__", "exec"), namespace)  # noqa: S102
        assert "dense" in namespace
