"""Tests for the spatial constraints module (paper Section 5)."""

import math

import pytest

from repro.core.config import KamelConfig
from repro.core.constraints import (
    GapContext,
    PassthroughConstraints,
    SpatialConstraints,
    creates_cycle,
)
from repro.core.tokenization import Tokenizer
from repro.geo import Point
from repro.grid import HexGrid


@pytest.fixture()
def setup():
    """A tokenizer with an east-west corridor of interned cells."""
    tokenizer = Tokenizer(HexGrid(75.0))
    tokens = {}
    for name, (x, y) in {
        "S": (0.0, 0.0),
        "D": (600.0, 0.0),
        "mid": (300.0, 0.0),
        "behind_S": (-300.0, 0.0),
        "beyond_D": (900.0, 0.0),
        "north": (300.0, 800.0),
        "far": (5000.0, 5000.0),
    }.items():
        tokens[name] = tokenizer.vocabulary.add(tokenizer.grid.cell_of(Point(x, y)))
    config = KamelConfig(max_speed_mps=15.0)
    constraints = SpatialConstraints(tokenizer, config, max_speed_mps=15.0)
    return tokenizer, tokens, constraints, config


def make_ctx(tokens, dt=60.0, prev=None, nxt=None) -> GapContext:
    return GapContext(
        source=tokens["S"],
        dest=tokens["D"],
        source_time=0.0,
        dest_time=dt,
        prev_token=tokens[prev] if prev else None,
        next_token=tokens[nxt] if nxt else None,
    )


class TestSpeedEllipse:
    def test_midpoint_accepted(self, setup):
        _, tokens, constraints, _ = setup
        assert constraints.within_speed_ellipse(tokens["mid"], make_ctx(tokens))

    def test_far_point_rejected(self, setup):
        _, tokens, constraints, _ = setup
        assert not constraints.within_speed_ellipse(tokens["far"], make_ctx(tokens))

    def test_ellipse_scales_with_time(self, setup):
        _, tokens, constraints, _ = setup
        tight = constraints.ellipse_distance_sum(make_ctx(tokens, dt=45.0))
        loose = constraints.ellipse_distance_sum(make_ctx(tokens, dt=300.0))
        assert loose > tight

    def test_floor_covers_straight_line(self, setup):
        tokenizer, tokens, constraints, _ = setup
        # Zero time difference still admits the straight path.
        ctx = GapContext(tokens["S"], tokens["D"], 0.0, 0.0)
        straight = tokenizer.token_distance_m(tokens["S"], tokens["D"])
        assert constraints.ellipse_distance_sum(ctx) >= straight

    def test_missing_times_uses_floor(self, setup):
        _, tokens, constraints, _ = setup
        ctx = GapContext(tokens["S"], tokens["D"])
        assert constraints.ellipse_distance_sum(ctx) > 0

    def test_invalid_speed(self, setup):
        tokenizer, _, _, config = setup
        with pytest.raises(ValueError):
            SpatialConstraints(tokenizer, config, max_speed_mps=0.0)


class TestDirectionCones:
    def test_candidate_behind_source_rejected(self, setup):
        """Figure 5: a token toward t1 (before S) is off-limits."""
        _, tokens, constraints, _ = setup
        ctx = make_ctx(tokens, prev="behind_S")
        assert constraints.violates_direction(tokens["behind_S"], ctx)

    def test_candidate_beyond_dest_rejected(self, setup):
        _, tokens, constraints, _ = setup
        ctx = make_ctx(tokens, nxt="beyond_D")
        assert constraints.violates_direction(tokens["beyond_D"], ctx)

    def test_forward_candidate_allowed(self, setup):
        _, tokens, constraints, _ = setup
        ctx = make_ctx(tokens, prev="behind_S", nxt="beyond_D")
        assert not constraints.violates_direction(tokens["mid"], ctx)

    def test_no_context_no_rejection(self, setup):
        _, tokens, constraints, _ = setup
        assert not constraints.violates_direction(tokens["behind_S"], make_ctx(tokens))

    def test_perpendicular_not_in_cone(self, setup):
        _, tokens, constraints, _ = setup
        ctx = make_ctx(tokens, prev="behind_S")
        assert not constraints.violates_direction(tokens["north"], ctx)


class TestCyclePrevention:
    def test_trivial_repetition(self):
        assert creates_cycle([10, 20], 0, 10, window=6)
        assert creates_cycle([10, 20], 0, 20, window=6)

    def test_fresh_token_no_cycle(self):
        assert not creates_cycle([10, 20], 0, 30, window=6)

    def test_two_token_cycle(self):
        # inserting 11 after ...10, 11, 10 creates (10, 11)(10, 11)? build:
        # tokens [10, 11, 10, 99]; insert 11 after index 2 -> 10 11 10 11 99
        assert creates_cycle([10, 11, 10, 99], 2, 11, window=6)

    def test_window_limits_detection(self):
        # A length-3 repeat is invisible to a window of 2.
        seq = [1, 2, 3, 1, 2, 99]
        assert creates_cycle(seq, 4, 3, window=3)
        assert not creates_cycle(seq, 4, 3, window=2)

    def test_paper_overpass_example(self):
        """Figure 5(d): S t3 t6 t7 t8 D where t3 appears twice in the
        *trajectory* (before S) is NOT a cycle — no block repeats."""
        # Segment S..D with interior t3 t6 t7 t8; t3 equals a cell that
        # also appears far earlier; no adjacent repeated blocks arise.
        segment = [100, 3, 6, 7]  # S, t3, t6, t7 so far
        assert not creates_cycle(segment, 3, 8, window=6)  # append t8

    def test_insertion_position_matters(self):
        seq = [1, 2, 3]
        # Inserting 2 after position 0 -> 1 2 2 3: cycle.
        assert creates_cycle(seq, 0, 2, window=6)
        # Inserting 9 after position 1 -> 1 2 9 3: fine.
        assert not creates_cycle(seq, 1, 9, window=6)


class TestFilter:
    def test_filters_specials(self, setup):
        _, tokens, constraints, _ = setup
        ctx = make_ctx(tokens)
        out = constraints.filter([(0, 0.5), (1, 0.4), (2, 0.3)], ctx, [ctx.source, ctx.dest], 0)
        assert out == []

    def test_keeps_valid_candidate_order(self, setup):
        _, tokens, constraints, _ = setup
        ctx = make_ctx(tokens)
        candidates = [(tokens["mid"], 0.6), (tokens["far"], 0.3)]
        out = constraints.filter(candidates, ctx, [ctx.source, ctx.dest], 0)
        assert out == [(tokens["mid"], 0.6)]

    def test_path_length_budget_blocks_wandering(self, setup):
        """A candidate that balloons the path beyond what the maximum
        speed allows within the time span is rejected even when its
        position is inside the ellipse."""
        tokenizer, tokens, constraints, _ = setup
        # Tight time budget: 600 m straight in 42 s at 15 m/s leaves
        # almost no detour slack.
        ctx = make_ctx(tokens, dt=42.0)
        north = tokens["north"]  # an 800 m sideways excursion
        out = constraints.filter([(north, 0.9)], ctx, [ctx.source, ctx.dest], 0)
        assert out == []

    def test_cycle_rejected_through_filter(self, setup):
        _, tokens, constraints, _ = setup
        ctx = make_ctx(tokens, dt=600.0)
        segment = [tokens["S"], tokens["mid"], tokens["D"]]
        out = constraints.filter([(tokens["mid"], 0.9)], ctx, segment, 1)
        assert out == []

    def test_passthrough_keeps_everything_but_specials_and_self(self, setup):
        tokenizer, tokens, _, config = setup
        passthrough = PassthroughConstraints(tokenizer, config, max_speed_mps=15.0)
        ctx = make_ctx(tokens)
        candidates = [(tokens["far"], 0.5), (0, 0.4), (tokens["S"], 0.3)]
        out = passthrough.filter(candidates, ctx, [tokens["S"], tokens["D"]], 0)
        assert out == [(tokens["far"], 0.5)]
