"""Unit and property tests for the square grid (S2 substitute)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geo import BoundingBox, Point
from repro.grid import HexGrid, SquareGrid

coords = st.floats(min_value=-5e4, max_value=5e4, allow_nan=False)
cells = st.tuples(st.integers(-300, 300), st.integers(-300, 300))


@pytest.fixture(scope="module")
def grid() -> SquareGrid:
    return SquareGrid(120.0)


class TestGeometry:
    def test_cell_area(self, grid):
        assert grid.cell_area_m2 == pytest.approx(120.0**2)

    def test_centroid_spacing(self, grid):
        assert grid.centroid_spacing_m == 120.0

    def test_cell_of_floor_semantics(self, grid):
        assert grid.cell_of(Point(0, 0)) == (0, 0)
        assert grid.cell_of(Point(-0.001, 0)) == (-1, 0)
        assert grid.cell_of(Point(119.9, 119.9)) == (0, 0)
        assert grid.cell_of(Point(120.0, 0)) == (1, 0)

    @given(coords, coords)
    def test_point_within_own_cell(self, grid, x, y):
        cell = grid.cell_of(Point(x, y))
        c = grid.centroid(cell)
        assert abs(c.x - x) <= 60.0 + 1e-6
        assert abs(c.y - y) <= 60.0 + 1e-6

    @given(cells)
    def test_centroid_maps_back(self, grid, cell):
        assert grid.cell_of(grid.centroid(cell)) == cell


class TestNeighbors:
    def test_four_edge_neighbors(self, grid):
        assert len(grid.neighbors((0, 0))) == 4

    def test_eight_with_corners(self, grid):
        assert len(grid.neighbors_with_corners((0, 0))) == 8

    def test_neighbor_asymmetry_vs_hexagons(self):
        """The paper's Fig. 12-III rationale: square neighbours are not
        uniform — corner neighbours sit sqrt(2) x further away."""
        square = SquareGrid(100.0)
        c = square.centroid((0, 0))
        edge_d = {round(c.distance_to(square.centroid(n)), 6) for n in square.neighbors((0, 0))}
        corner_d = {
            round(c.distance_to(square.centroid(n)), 6)
            for n in square.neighbors_with_corners((0, 0))
        }
        assert len(edge_d) == 1
        assert len(corner_d) == 2  # two distinct distances: edge + corner

        hexes = HexGrid(75.0)
        hc = hexes.centroid((0, 0))
        hex_d = {round(hc.distance_to(hexes.centroid(n)), 6) for n in hexes.neighbors((0, 0))}
        assert len(hex_d) == 1  # hexagons: all six identical

    @given(cells)
    def test_neighbor_symmetry(self, grid, cell):
        for n in grid.neighbors(cell):
            assert cell in grid.neighbors(n)


class TestCellSteps:
    @given(cells, cells)
    def test_manhattan(self, grid, a, b):
        assert grid.cell_steps(a, b) == abs(a[0] - b[0]) + abs(a[1] - b[1])

    @given(cells, cells, cells)
    def test_triangle_inequality(self, grid, a, b, c):
        assert grid.cell_steps(a, c) <= grid.cell_steps(a, b) + grid.cell_steps(b, c)


class TestRegions:
    def test_cells_in_bbox_complete(self, grid):
        box = BoundingBox(-400, -400, 400, 400)
        enumerated = set(grid.cells_in_bbox(box))
        brute = {
            (i, j)
            for i in range(-6, 7)
            for j in range(-6, 7)
            if box.contains_point(grid.centroid((i, j)))
        }
        assert enumerated == brute

    def test_ellipse_contains_focus_cells(self, grid):
        f1, f2 = Point(60, 60), Point(660, 60)
        cells_found = grid.cells_in_ellipse(f1, f2, 900.0)
        assert grid.cell_of(f1) in cells_found
        assert grid.cell_of(f2) in cells_found

    def test_cone_half_plane(self, grid):
        cone = grid.cells_in_cone(Point(60, 60), math.pi / 2, math.pi / 4, 500.0)
        for cell in cone:
            assert grid.centroid(cell).y > 60


class TestAreaMatching:
    def test_area_matched_factory(self):
        square = SquareGrid.area_matched(75.0)
        hexes = HexGrid(75.0)
        assert square.cell_area_m2 == pytest.approx(hexes.cell_area_m2, rel=1e-9)
        # The paper picks 120 m squares for 75 m hexagons.
        assert square.edge_length_m == pytest.approx(120.9, abs=0.5)
