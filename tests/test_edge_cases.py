"""Edge-case coverage across modules: paths the main suites don't hit."""

import numpy as np
import pytest

from repro import Kamel, KamelConfig
from repro.baselines import HmmMapMatcher, MapMatchConfig
from repro.core.partitioning import ModelRepository
from repro.core.store import TrajectoryStore
from repro.core.tokenization import Tokenizer
from repro.geo import BoundingBox, Point, Trajectory
from repro.grid import HexGrid
from repro.mlm import CountingMaskedLM
from repro.nn import Tensor
from repro.roadnet.network import EdgeRef, RoadNetwork


class TestTensorMisc:
    def test_zeros_factory(self):
        t = Tensor.zeros(2, 3, requires_grad=True)
        assert t.shape == (2, 3)
        assert t.requires_grad

    def test_item_and_numpy(self):
        t = Tensor(np.array([2.5]))
        assert t.item() == 2.5
        assert t.numpy() is t.data

    def test_repr(self):
        assert "shape=(2,)" in repr(Tensor(np.zeros(2)))

    def test_ndim(self):
        assert Tensor(np.zeros((2, 3, 4))).ndim == 3

    def test_rsub(self):
        t = Tensor(np.array([1.0]), requires_grad=True)
        out = 5.0 - t
        assert out.data[0] == 4.0

    def test_softmax_other_axis(self):
        t = Tensor(np.random.default_rng(0).normal(size=(3, 4)))
        out = t.softmax(axis=0)
        np.testing.assert_allclose(out.data.sum(axis=0), np.ones(4))


class TestStoreEdges:
    def test_all_special_sequence_kept_but_unplaceable(self):
        tokenizer = Tokenizer(HexGrid(75.0))
        store = TrajectoryStore(tokenizer)
        from repro.core.tokenization import TokenSequence

        store.add(TokenSequence("unk", (2, 2), (0.0, 1.0)))  # all [UNK]
        assert len(store) == 1
        assert store.sequences_within(BoundingBox(-1e6, -1e6, 1e6, 1e6)) == []

    def test_store_bbox_union(self):
        tokenizer = Tokenizer(HexGrid(75.0))
        store = TrajectoryStore(tokenizer)
        t1 = Trajectory("a", [Point(0, 0, t=0.0), Point(200, 0, t=10.0)])
        t2 = Trajectory("b", [Point(5000, 5000, t=0.0), Point(5200, 5000, t=10.0)])
        store.add_many([tokenizer.tokenize(t, grow=True) for t in (t1, t2)])
        box = store.bbox()
        assert box.contains_point(Point(100, 0))
        assert box.contains_point(Point(5100, 5000))


class TestPartitioningEdges:
    def test_batch_spanning_beyond_maintained_cells(self):
        """A training batch wider than any maintained cell falls into the
        'refresh every overlapped cell' path and still builds models."""
        tokenizer = Tokenizer(HexGrid(75.0))
        config = KamelConfig(
            model_threshold_k=5,
            pyramid_height=3,
            pyramid_levels=2,
            pyramid_root_extent_m=4000.0,
        )
        store = TrajectoryStore(tokenizer)
        repo = ModelRepository(tokenizer, store, config, CountingMaskedLM)
        # One giant trajectory spanning most of the root: no maintained
        # cell encloses it.
        giant = Trajectory(
            "giant", [Point(-1500 + i * 100.0, 0.0, t=float(i)) for i in range(31)]
        )
        locals_ = [
            Trajectory(f"l{k}", [Point(i * 60.0, k * 40.0, t=float(i)) for i in range(10)])
            for k in range(6)
        ]
        repo.add_training([tokenizer.tokenize(t, grow=True) for t in locals_ + [giant]])
        assert repo.num_models >= 1

    def test_any_model_prefers_shallowest(self):
        tokenizer = Tokenizer(HexGrid(75.0))
        config = KamelConfig(
            model_threshold_k=3, pyramid_height=3, pyramid_levels=2,
            pyramid_root_extent_m=8000.0,
        )
        store = TrajectoryStore(tokenizer)
        repo = ModelRepository(tokenizer, store, config, CountingMaskedLM)
        trajs = [
            Trajectory(f"t{k}", [Point(i * 60.0, k * 30.0, t=float(i)) for i in range(12)])
            for k in range(8)
        ]
        repo.add_training([tokenizer.tokenize(t, grow=True) for t in trajs])
        best = repo.any_model()
        if best is not None and repo._single:
            shallowest = min(level for level, _, _ in repo._single)
            assert best.region.area >= repo.pyramid.cell_bbox(
                (max(level for level, _, _ in repo._single), 0, 0)
            ).area


class TestMapMatchEdges:
    @pytest.fixture()
    def straight_net(self):
        net = RoadNetwork()
        net.add_node("a", Point(0, 0))
        net.add_node("b", Point(1000, 0))
        net.add_edge("a", "b")
        return net

    def test_route_same_edge_forward_and_backward(self, straight_net):
        matcher = HmmMapMatcher(straight_net)
        start = straight_net.project(Point(100, 5))
        end = straight_net.project(Point(700, -5))
        assert start is not None and end is not None
        dist, geom = matcher._route(start, end, cutoff=5000.0)
        assert dist == pytest.approx(600.0, abs=1.0)
        xs = [p.x for p in geom]
        assert xs == sorted(xs)
        # And the reverse direction flips the geometry.
        dist_back, geom_back = matcher._route(end, start, cutoff=5000.0)
        assert dist_back == pytest.approx(600.0, abs=1.0)
        xs_back = [p.x for p in geom_back]
        assert xs_back == sorted(xs_back, reverse=True)

    def test_route_cutoff_exceeded(self, straight_net):
        matcher = HmmMapMatcher(straight_net)
        start = straight_net.project(Point(0, 0))
        end = straight_net.project(Point(1000, 0))
        assert matcher._route(start, end, cutoff=10.0) is None

    def test_viterbi_handles_candidate_gaps(self, straight_net):
        """Points far off the network produce empty candidate sets; the
        Viterbi runs must skip over them without crashing."""
        matcher = HmmMapMatcher(straight_net, MapMatchConfig(candidate_radius_m=50.0))
        traj = Trajectory(
            "mixed",
            [
                Point(100, 5, t=0.0),
                Point(90_000, 90_000, t=10.0),  # unmatched
                Point(500, -5, t=20.0),
            ],
        )
        matched = matcher.match(traj)
        assert matched[0] is not None
        assert matched[1] is None
        assert matched[2] is not None


class TestKamelModelSelection:
    def test_per_segment_retrieval_when_trajectory_spans_models(self, small_split):
        """A trajectory whose bbox exceeds every pyramid cell still gets
        per-segment models (the paper's 'split into sub-trajectories')."""
        train, test = small_split
        system = Kamel(KamelConfig(model_threshold_k=100)).fit(train)
        # Build a synthetic overlong trajectory by chaining two test ones.
        a, b = test[0], test[1]
        chained = Trajectory("chained", list(a.points) + list(b.points))
        result = system.impute(chained.sparsify(500.0))
        assert result.num_segments >= 1
        # At least some segments succeed even though the whole-trajectory
        # model may be missing.
        assert result.num_failed < result.num_segments or result.num_segments == 1


class TestCountingEdges:
    def test_mask_at_right_edge(self):
        model = CountingMaskedLM().fit([[3, 4, 5, 6]] * 5, 10)
        predictions = model.predict_masked([4, 5, 0], 2, top_k=3)
        assert predictions[0][0] == 6

    def test_single_token_sequence_training(self):
        model = CountingMaskedLM().fit([[7]], 10)
        assert model.num_training_tokens == 1

    def test_top_k_zero_edge(self):
        model = CountingMaskedLM().fit([[3, 4, 5]] * 3, 10)
        assert model.predict_masked([3, 0, 5], 1, top_k=0) == []


class TestConfidencePropagation:
    def test_segment_imputation_confidence_bounds(self, small_split, trained_kamel):
        _, test = small_split
        for t in test[:4]:
            result = trained_kamel.impute(t.sparsify(450.0))
            for outcome in result.segments:
                if outcome.confidence is not None:
                    assert 0.0 < outcome.confidence <= 1.0


class TestStoreAfterLoadImputes:
    def test_loaded_system_supports_add_training(self, trained_kamel, small_split, tmp_path):
        """The persisted trajectory store must support further enrichment."""
        from repro.io import load_kamel

        train, _ = small_split
        trained_kamel.save(tmp_path / "m")
        restored = load_kamel(tmp_path / "m")
        before = len(restored.store)
        restored.add_training(train[:3])
        assert len(restored.store) == before + 3
