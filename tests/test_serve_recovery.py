"""Worker-death recovery: journal replay restores exactly-once results.

Chaos scenario: shard 0's first incarnation is told to die (a hard
``os._exit``, no unwind) on its Nth task. The pool must notice the dead
process, respawn the shard with ``recover=True``, replay the pending
journal entry, and finish the batch — with the final output map still
byte-identical to the single-process baseline and every submitted
trajectory accounted for.
"""

import time

import pytest

from repro.core.streaming import StreamingConfig, StreamingImputationService
from repro.io.serialize import load_kamel, save_kamel
from repro.obs.metrics import get_registry
from repro.resilience.journal import trajectory_to_payload
from repro.serve import ServeConfig, ServingPool

pytestmark = pytest.mark.chaos


@pytest.fixture(scope="module")
def saved_dir(trained_kamel, tmp_path_factory):
    directory = tmp_path_factory.mktemp("recovery_model")
    save_kamel(trained_kamel, directory)
    return directory


@pytest.fixture(scope="module")
def sparse_feed(small_split):
    _, test = small_split
    return [t.sparsify(800.0) for t in test[:12]]


@pytest.fixture(scope="module")
def baseline(saved_dir, sparse_feed):
    system = load_kamel(saved_dir)
    service = StreamingImputationService(system, StreamingConfig())
    return {
        t.traj_id: [trajectory_to_payload(r.trajectory) for r in service.process(t)]
        for t in sparse_feed
    }


@pytest.fixture(scope="module")
def crashed_run(saved_dir, sparse_feed, tmp_path_factory):
    """One pool run where shard 0 dies mid-batch; shared by the asserts."""
    get_registry().reset(prefix="repro.serve")
    journal_dir = tmp_path_factory.mktemp("recovery_journal")
    config = ServeConfig(
        workers=2,
        # Deterministic half/half split so shard 0 is guaranteed enough
        # tasks to reach its crash point.
        strategy="round_robin",
        journal_dir=str(journal_dir),
        crash_worker_after=2,
        drain_timeout_s=240.0,
    )
    pool = ServingPool(str(saved_dir), config)
    with pool:
        results = pool.process_all(sparse_feed, timeout=240)
    return pool, results


class TestWorkerDeathRecovery:
    def test_death_detected_and_shard_revived(self, crashed_run):
        pool, _ = crashed_run
        assert pool.stats.worker_deaths == 1

    def test_journal_replayed(self, crashed_run):
        pool, _ = crashed_run
        # The trajectory that was in flight when the worker died was
        # journaled (begin, no done) and must come back via replay.
        assert pool.stats.journal_replayed >= 1

    def test_nothing_lost(self, crashed_run, sparse_feed):
        pool, results = crashed_run
        assert pool.stats.lost == 0
        assert set(results) == {t.traj_id for t in sparse_feed}

    def test_results_match_single_process(self, crashed_run, baseline):
        _, results = crashed_run
        for traj_id, expected in baseline.items():
            assert results[traj_id]["trips"] == expected

    def test_replayed_results_flagged(self, crashed_run):
        _, results = crashed_run
        assert any(message.get("replayed") for message in results.values())


@pytest.fixture(scope="module")
def retired_run(saved_dir, sparse_feed):
    """Shard 0 dies with revival off: its in-flight work must be written
    off immediately instead of wedging drain() until the timeout."""
    get_registry().reset(prefix="repro.serve")
    config = ServeConfig(
        workers=2,
        strategy="round_robin",
        crash_worker_after=2,
        revive_dead_workers=False,
        drain_timeout_s=240.0,
    )
    pool = ServingPool(str(saved_dir), config)
    with pool:
        started = time.monotonic()
        results = pool.process_all(sparse_feed, timeout=240)
        elapsed = time.monotonic() - started
    return pool, results, elapsed


class TestShardRetirementDeclaresLost:
    def test_lost_work_written_off_explicitly(self, retired_run):
        pool, _, _ = retired_run
        assert pool.stats.worker_deaths == 1
        # A straggler result already in the pipe at write-off time is
        # still accepted, so declared_lost bounds lost from above.
        assert pool.stats.declared_lost >= pool.stats.lost >= 1

    def test_drain_returns_promptly_not_at_timeout(self, retired_run):
        # Regression: before retirement write-off, the dead shard's
        # outstanding entries kept drain() sleeping out the full 240s
        # while the surviving shard sat idle.
        pool, _, elapsed = retired_run
        assert pool.outstanding == 0
        assert elapsed < 120.0

    def test_queue_depth_gauge_reflects_reality(self, retired_run):
        _, _, _ = retired_run
        gauge = get_registry().get("repro.serve.queue_depth")
        assert gauge is not None and gauge.value == 0

    def test_lost_total_counter_matches(self, retired_run):
        pool, _, _ = retired_run
        counter = get_registry().get("repro.serve.lost_total")
        assert counter is not None
        assert counter.value == pool.stats.declared_lost

    def test_healthz_degraded_and_counts_the_write_off(self, retired_run):
        pool, _, _ = retired_run
        health = pool.healthz()
        assert health["status"] == "degraded"
        assert health["declared_lost"] == pool.stats.declared_lost
        assert health["outstanding"] == 0

    def test_surviving_shard_results_still_correct(self, retired_run, baseline):
        pool, results, _ = retired_run
        assert len(results) == pool.stats.completed
        for traj_id, message in results.items():
            assert message["trips"] == baseline[traj_id]


class TestJournalDisabled:
    def test_pool_without_journal_still_serves(self, saved_dir, sparse_feed):
        # No journal_dir: no durability, but the happy path (no crash)
        # must work identically.
        get_registry().reset(prefix="repro.serve")
        pool = ServingPool(str(saved_dir), ServeConfig(workers=1))
        with pool:
            results = pool.process_all(sparse_feed[:4], timeout=120)
        assert len(results) == 4
        assert pool.stats.lost == 0
