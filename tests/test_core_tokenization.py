"""Tests for the tokenization module (paper Section 3)."""

import pytest

from repro.errors import ConfigError
from repro.geo import Point, Trajectory
from repro.grid import HexGrid, SquareGrid
from repro.core.tokenization import TokenSequence, Tokenizer, make_grid


@pytest.fixture()
def tokenizer() -> Tokenizer:
    return Tokenizer(HexGrid(75.0))


def east_trajectory(n=10, spacing=150.0) -> Trajectory:
    return Trajectory("east", [Point(i * spacing, 0.0, t=float(i)) for i in range(n)])


class TestMakeGrid:
    def test_hex(self):
        assert isinstance(make_grid("hex", 75.0), HexGrid)

    def test_square(self):
        assert isinstance(make_grid("square", 120.0), SquareGrid)

    def test_unknown(self):
        with pytest.raises(ConfigError):
            make_grid("triangle", 75.0)


class TestTokenSequence:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TokenSequence("x", (1, 2), (None,))

    def test_len(self):
        assert len(TokenSequence("x", (3, 4, 5), (0.0, 1.0, 2.0))) == 3


class TestTokenize:
    def test_grow_interns_cells(self, tokenizer):
        seq = tokenizer.tokenize(east_trajectory(), grow=True)
        assert len(seq) >= 5
        assert all(not tokenizer.vocabulary.is_special(t) for t in seq.tokens)

    def test_no_grow_unknown_is_unk(self, tokenizer):
        seq = tokenizer.tokenize(east_trajectory(), grow=False)
        assert all(t == tokenizer.vocabulary.unk_id for t in seq.tokens)

    def test_consecutive_duplicates_collapsed(self, tokenizer):
        # Many points inside the same cell collapse to one token.
        traj = Trajectory("slow", [Point(i * 1.0, 0.0, t=float(i)) for i in range(30)])
        seq = tokenizer.tokenize(traj, grow=True)
        assert len(seq) < len(traj)
        for a, b in zip(seq.tokens, seq.tokens[1:]):
            assert a != b

    def test_nonconsecutive_revisit_kept(self, tokenizer):
        """A trajectory that leaves a cell and comes back keeps both visits
        (the paper's overpass example depends on this)."""
        out_and_back = Trajectory(
            "loop",
            [Point(0, 0, t=0.0), Point(300, 0, t=1.0), Point(0, 0, t=2.0)],
        )
        seq = tokenizer.tokenize(out_and_back, grow=True)
        assert len(seq) == 3
        assert seq.tokens[0] == seq.tokens[2]

    def test_times_are_entry_times(self, tokenizer):
        traj = east_trajectory()
        seq = tokenizer.tokenize(traj, grow=True)
        assert seq.times[0] == traj.points[0].t

    def test_tokenize_many(self, tokenizer):
        seqs = tokenizer.tokenize_many([east_trajectory(), east_trajectory(5)], grow=True)
        assert len(seqs) == 2

    def test_empty_trajectory(self, tokenizer):
        seq = tokenizer.tokenize(Trajectory("empty"), grow=True)
        assert len(seq) == 0


class TestTokenGeometry:
    def test_cell_of_token_round_trip(self, tokenizer):
        p = Point(400.0, 300.0)
        token = tokenizer.vocabulary.add(tokenizer.grid.cell_of(p))
        assert tokenizer.cell_of_token(token) == tokenizer.grid.cell_of(p)

    def test_cell_of_special_rejected(self, tokenizer):
        with pytest.raises(ConfigError):
            tokenizer.cell_of_token(tokenizer.vocabulary.mask_id)

    def test_token_for_point(self, tokenizer):
        p = Point(10.0, 10.0)
        assert tokenizer.token_for_point(p) == tokenizer.vocabulary.unk_id
        tokenizer.vocabulary.add(tokenizer.grid.cell_of(p))
        assert not tokenizer.vocabulary.is_special(tokenizer.token_for_point(p))

    def test_centroid_of_token(self, tokenizer):
        p = Point(400.0, 300.0)
        token = tokenizer.vocabulary.add(tokenizer.grid.cell_of(p))
        assert tokenizer.centroid_of_token(token).distance_to(p) <= 75.0

    def test_token_distance(self, tokenizer):
        a = tokenizer.vocabulary.add(tokenizer.grid.cell_of(Point(0, 0)))
        b = tokenizer.vocabulary.add(tokenizer.grid.cell_of(Point(1000, 0)))
        assert tokenizer.token_distance_m(a, b) == pytest.approx(1000.0, abs=150.0)
        assert tokenizer.token_distance_m(a, a) == 0.0

    def test_sequence_bbox(self, tokenizer):
        seq = tokenizer.tokenize(east_trajectory(), grow=True)
        box = tokenizer.sequence_bbox(seq)
        assert box.width > 500.0

    def test_polyline_skips_specials(self, tokenizer):
        seq = tokenizer.tokenize(east_trajectory(), grow=True)
        tokens = list(seq.tokens) + [tokenizer.vocabulary.unk_id]
        polyline = tokenizer.polyline_of(tokens)
        assert len(polyline) == len(seq.tokens)
