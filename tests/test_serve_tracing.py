"""End-to-end distributed tracing for the sharded serving pool.

Unit half: the five-stage breakdown arithmetic and the bounded
:class:`FlightRecorder`. Multiprocess half: one 2-worker pool run with
tracing on — outputs must stay byte-identical to the single-process
baseline, every request must come back with a stage breakdown whose sum
tracks the measured wall latency (the paper-demo acceptance bound is
10%), and the merged span trees must form coherent per-shard lanes in
the Chrome export.
"""

import json
import queue
import urllib.request
from types import SimpleNamespace

import pytest

from repro.core.streaming import StreamingConfig, StreamingImputationService
from repro.io.serialize import load_kamel, save_kamel
from repro.obs.export import spans_to_chrome_trace
from repro.obs.flight import (
    STAGES,
    FlightRecord,
    FlightRecorder,
    stage_breakdown,
    stage_metric,
)
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.tracing import (
    Span,
    clear_spans,
    disable_tracing,
    enable_tracing,
    span,
)
from repro.resilience.journal import trajectory_to_payload
from repro.serve import ServeConfig, ServingPool
from repro.serve.worker import WorkerSpec, _process_one, _unpack_task


@pytest.fixture(scope="module")
def saved_dir(trained_kamel, tmp_path_factory):
    directory = tmp_path_factory.mktemp("tracing_model")
    save_kamel(trained_kamel, directory)
    return directory


@pytest.fixture(scope="module")
def sparse_feed(small_split):
    _, test = small_split
    return [t.sparsify(800.0) for t in test[:10]]


@pytest.fixture(scope="module")
def baseline(saved_dir, sparse_feed):
    system = load_kamel(saved_dir)
    service = StreamingImputationService(system, StreamingConfig())
    return {
        t.traj_id: [trajectory_to_payload(r.trajectory) for r in service.process(t)]
        for t in sparse_feed
    }


def _span_with(name, start, end):
    s = Span(name)
    s.start_s = start
    s.end_s = end
    return s


class TestStageBreakdown:
    def test_without_spans_processing_is_all_inference(self):
        stages = stage_breakdown(0.5, queue_wait_s=0.1, transit_s=0.02)
        assert stages == {
            "queue_wait": pytest.approx(0.1),
            "model_load": 0.0,
            "inference": pytest.approx(0.5),
            "detokenize": 0.0,
            "result_transit": pytest.approx(0.02),
        }

    def test_spans_carve_load_and_detokenize_out_of_processing(self):
        root = _span_with("streaming.process", 0.0, 0.5)
        root.children = [
            _span_with("serve.model_load", 0.0, 0.2),
            _span_with("detokenize", 0.3, 0.4),
        ]
        stages = stage_breakdown(0.5, 0.0, 0.0, roots=[root])
        assert stages["model_load"] == pytest.approx(0.2)
        assert stages["detokenize"] == pytest.approx(0.1)
        assert stages["inference"] == pytest.approx(0.2)

    def test_partition_is_exact(self):
        root = _span_with("r", 0.0, 0.4)
        root.children = [_span_with("serve.model_load", 0.0, 0.15)]
        stages = stage_breakdown(0.4, 0.05, 0.01, roots=[root])
        assert sum(stages.values()) == pytest.approx(0.4 + 0.05 + 0.01)

    def test_span_overshoot_clamped_to_processing(self):
        # A span exit reads the clock later than the enclosing stopwatch
        # did; the parts must still never exceed the whole.
        root = _span_with("r", 0.0, 0.3)
        root.children = [
            _span_with("serve.model_load", 0.0, 0.25),
            _span_with("detokenize", 0.0, 0.25),
        ]
        stages = stage_breakdown(0.3, 0.0, 0.0, roots=[root])
        assert stages["model_load"] == pytest.approx(0.25)
        assert stages["detokenize"] == pytest.approx(0.05)
        assert stages["inference"] == 0.0

    def test_clock_skew_never_goes_negative(self):
        stages = stage_breakdown(0.1, queue_wait_s=-0.003, transit_s=-0.001)
        assert all(value >= 0.0 for value in stages.values())

    def test_stage_vocabulary_is_fixed(self):
        assert set(stage_breakdown(0.0, 0.0, 0.0)) == set(STAGES)


def _record(trace_id, latency, **stages):
    full = {stage: 0.0 for stage in STAGES}
    full.update(stages)
    return FlightRecord(
        trace_id=trace_id, traj_id=f"traj-{trace_id}", latency_s=latency,
        stages=full,
    )


class TestFlightRecorder:
    def test_keeps_only_the_slowest_n(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(10):
            recorder.record(_record(f"{i:016x}", latency=float(i)))
        assert recorder.recorded_total == 10
        assert len(recorder) == 3
        assert [r.latency_s for r in recorder.slowest()] == [9.0, 8.0, 7.0]

    def test_exemplars_track_the_worst_observation_per_stage(self):
        recorder = FlightRecorder(capacity=2)
        recorder.record(_record("a" * 16, 1.0, queue_wait=0.9, inference=0.1))
        recorder.record(_record("b" * 16, 0.5, queue_wait=0.1, inference=0.4))
        exemplars = recorder.exemplars()
        assert exemplars["queue_wait"]["trace_id"] == "a" * 16
        assert exemplars["inference"]["trace_id"] == "b" * 16

    def test_registry_histograms_feed_the_stage_summary(self):
        registry = MetricsRegistry()
        recorder = FlightRecorder(capacity=4, registry=registry)
        for i in range(4):
            recorder.record(_record(f"{i:016x}", 0.2, inference=0.1 * (i + 1)))
        assert registry.get(stage_metric("inference")).count == 4
        summary = recorder.stage_summary()
        assert summary["inference"]["count"] == 4
        assert summary["inference"]["max"] == pytest.approx(0.4)
        assert summary["inference"]["exemplar_trace_id"] == f"{3:016x}"
        assert summary["inference"]["p99"] is not None

    def test_to_dict_is_json_serializable(self):
        recorder = FlightRecorder(capacity=2)
        recorder.record(_record("c" * 16, 0.3, inference=0.3))
        payload = json.loads(json.dumps(recorder.to_dict()))
        assert payload["capacity"] == 2
        assert payload["recorded_total"] == 1
        assert payload["slowest"][0]["trace_id"] == "c" * 16
        assert payload["slowest"][0]["dominant_stage"] == "inference"

    def test_record_round_trips_with_spans(self):
        record = _record("d" * 16, 0.7, queue_wait=0.7)
        record.shard = 1
        record.roots = [_span_with("serve.request", 0.0, 0.7)]
        clone = FlightRecord.from_dict(record.to_dict())
        assert clone.trace_id == record.trace_id
        assert clone.stages == record.stages
        assert clone.shard == 1
        assert clone.roots[0].name == "serve.request"
        assert clone.dominant_stage == "queue_wait"

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)

    def test_clear_resets_everything(self):
        recorder = FlightRecorder(capacity=2)
        recorder.record(_record("e" * 16, 0.1))
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.recorded_total == 0
        assert recorder.exemplars() == {}


class TestWorkerEnvelope:
    def test_envelope_unpacks_trajectory_and_trace_id(self):
        marker = object()
        task = {"trajectory": marker, "trace_id": "f" * 16, "submit_epoch": 1.0}
        trajectory, envelope = _unpack_task(task)
        assert trajectory is marker
        assert envelope is task
        assert envelope.get("trace_id") == "f" * 16

    def test_bare_trajectory_tolerated(self):
        # Journal replay feeds bare trajectories; they mint a fresh id.
        marker = object()
        assert _unpack_task(marker) == (marker, {})

    def test_span_batch_bounds_shipped_spans(self):
        """Overflow roots are dropped and counted, never shipped."""
        get_registry().reset(prefix="repro.serve")
        enable_tracing()
        clear_spans()
        try:
            class _Service:
                stats = SimpleNamespace(quarantined=0)

                def process(self, trajectory, deadline=None, max_rung=None):
                    for i in range(5):
                        with span(f"work.{i}"):
                            pass
                    return []

            spec = WorkerSpec(
                worker_id=0, shard=0, model_dir="unused",
                trace=True, span_batch=2,
            )
            results = queue.Queue()
            _process_one(
                spec, _Service(), None, results,
                SimpleNamespace(traj_id="t-1"), False, "0123456789abcdef",
            )
            message = results.get_nowait()
        finally:
            disable_tracing()
            clear_spans()
        assert message["trace_id"] == "0123456789abcdef"
        assert message["start_epoch"] is not None
        assert "clock_offset" in message
        assert [d["name"] for d in message["spans"]] == ["work.0", "work.1"]
        dropped = get_registry().get("repro.serve.spans_dropped_total")
        assert dropped is not None and dropped.value == 3


class TestTracedPool:
    @pytest.fixture(scope="class")
    def traced_run(self, saved_dir, sparse_feed, tmp_path_factory):
        """One traced 2-worker run shared by every assertion below."""
        get_registry().reset(prefix="repro.serve")
        config = ServeConfig(
            workers=2,
            trace=True,
            flight_capacity=64,
            metrics_port=0,
            journal_dir=str(tmp_path_factory.mktemp("tracing_journal")),
        )
        pool = ServingPool(str(saved_dir), config)
        with pool:
            results = pool.process_all(sparse_feed, timeout=120)
            slow_live = json.loads(
                urllib.request.urlopen(
                    pool.metrics_server.url + "/slow", timeout=5
                ).read()
            )
        return pool, results, slow_live

    def test_tracing_does_not_change_outputs(self, traced_run, baseline):
        _, results, _ = traced_run
        assert set(results) == set(baseline)
        for traj_id, expected in baseline.items():
            assert results[traj_id]["trips"] == expected

    def test_every_request_traced(self, traced_run, sparse_feed):
        pool, _, _ = traced_run
        assert pool.flight.recorded_total == len(sparse_feed)
        counter = get_registry().get("repro.serve.traced_requests_total")
        assert counter is not None and counter.value == len(sparse_feed)

    def test_stage_sums_track_measured_latency(self, traced_run):
        """The demo acceptance bound: every completed trajectory's stage
        durations sum to within 10% of its measured wall latency."""
        pool, _, _ = traced_run
        records = pool.flight.slowest()
        assert records
        for record in records:
            total = sum(record.stages.values())
            assert total == pytest.approx(record.latency_s, rel=0.10), (
                f"stages {record.stages} do not partition "
                f"latency {record.latency_s} for {record.trace_id}"
            )

    def test_flight_records_carry_full_span_trees(self, traced_run):
        pool, _, _ = traced_run
        for record in pool.flight.slowest():
            (request,) = record.roots
            assert request.name == "serve.request"
            child_names = [c.name for c in request.children]
            assert child_names[0] == "serve.queue_wait"
            assert child_names[-1] == "serve.result_transit"
            assert request.find("streaming.process"), "worker spans missing"
            assert all(s.trace_id == record.trace_id for s in request.walk())
            assert record.context["strategy"] == "hash"

    def test_merged_trace_has_one_lane_per_shard(self, traced_run, sparse_feed):
        pool, _, _ = traced_run
        assert len(pool.trace_roots) == len(sparse_feed)
        lanes = {root.thread_id for root in pool.trace_roots}
        assert lanes == set(pool.trace_lanes)
        assert sorted(pool.trace_lanes.values()) == ["shard 0", "shard 1"]

    def test_chrome_export_names_the_lanes(self, traced_run):
        pool, _, _ = traced_run
        doc = spans_to_chrome_trace(pool.trace_roots, thread_names=pool.trace_lanes)
        metadata = [e for e in doc["traceEvents"] if e.get("ph") == "M"]
        lane_names = {
            e["args"]["name"] for e in metadata if e["name"] == "thread_name"
        }
        assert lane_names == {"shard 0", "shard 1"}
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"serve.request", "serve.queue_wait", "serve.result_transit"} <= names

    def test_slow_route_serves_the_flight_payload(self, traced_run, sparse_feed):
        _, _, slow = traced_run
        assert slow["recorded_total"] == len(sparse_feed)
        assert set(slow["stages"]) == set(STAGES)
        assert slow["stages"]["inference"]["count"] == len(sparse_feed)
        assert slow["slowest"], "slowest list must not be empty"
        worst = slow["slowest"][0]
        assert worst["spans"], "retained requests keep their span trees"

    def test_stage_histograms_in_catalog_registry(self, traced_run, sparse_feed):
        _, _, _ = traced_run
        for stage in STAGES:
            metric = get_registry().get(stage_metric(stage))
            assert metric is not None, stage
            assert metric.count == len(sparse_feed)
