"""End-to-end integration tests: the paper's qualitative claims hold.

These run the whole system (tokenize -> partition -> constrain -> impute ->
detokenize -> score) on the session's small synthetic city and assert the
*relationships* the paper reports, not absolute numbers.
"""

import dataclasses

import pytest

from repro import Kamel, KamelConfig, LinearImputer, TrImpute
from repro.baselines import HmmMapMatcher, MapMatchConfig, TrImputeConfig
from repro.eval import evaluate_imputation

SPARSENESS = 500.0
MAXGAP = 100.0
DELTA = 40.0


@pytest.fixture(scope="module")
def scores(small_dataset, small_split, trained_kamel):
    """All four methods evaluated on the same sparse test set."""
    train, test = small_split
    test = test[:8]
    sparse = [t.sparsify(SPARSENESS) for t in test]

    out = {}
    out["KAMEL"] = evaluate_imputation(
        test, trained_kamel.impute_batch(sparse), MAXGAP, DELTA
    )
    linear = LinearImputer(MAXGAP)
    out["Linear"] = evaluate_imputation(test, linear.impute_batch(sparse), MAXGAP, DELTA)
    trimpute = TrImpute(TrImputeConfig(maxgap_m=MAXGAP)).fit(train)
    out["TrImpute"] = evaluate_imputation(
        test, trimpute.impute_batch(sparse), MAXGAP, DELTA
    )
    matcher = HmmMapMatcher(small_dataset.network, MapMatchConfig(maxgap_m=MAXGAP))
    out["MapMatch"] = evaluate_imputation(
        test, matcher.impute_batch(sparse), MAXGAP, DELTA
    )
    return out


class TestPaperClaims:
    def test_kamel_beats_linear(self, scores):
        assert scores["KAMEL"].recall > scores["Linear"].recall
        assert scores["KAMEL"].precision > scores["Linear"].precision

    def test_kamel_competitive_with_trimpute(self, scores):
        """Paper: KAMEL >= TrImpute. On the tiny test city allow a small
        margin; the full-size benchmark suite asserts dominance."""
        assert scores["KAMEL"].recall >= scores["TrImpute"].recall - 0.1

    def test_map_matching_is_upper_bound(self, scores):
        assert scores["MapMatch"].recall >= scores["KAMEL"].recall - 0.02
        assert scores["MapMatch"].recall > 0.9

    def test_linear_failure_is_total(self, scores):
        assert scores["Linear"].failure_rate == 1.0

    def test_kamel_failure_rate_moderate(self, scores):
        assert scores["KAMEL"].failure_rate < 0.5

    def test_kamel_absolute_quality(self, scores):
        assert scores["KAMEL"].recall > 0.6
        assert scores["KAMEL"].precision > 0.6


class TestAblationDirections:
    """Fig. 12-VI's qualitative findings on the small city."""

    @pytest.fixture(scope="class")
    def ablation_scores(self, small_split):
        train, test = small_split
        test = test[:6]
        sparse = [t.sparsify(SPARSENESS) for t in test]
        out = {}
        variants = {
            "full": KamelConfig(max_model_calls=600),
            "no_multi": KamelConfig(max_model_calls=600, use_multipoint=False),
            "no_const": KamelConfig(max_model_calls=600, use_constraints=False),
        }
        for name, config in variants.items():
            system = Kamel(config).fit(train)
            out[name] = evaluate_imputation(
                test, system.impute_batch(sparse), MAXGAP, DELTA
            )
        return out

    def test_removing_multipoint_hurts_recall(self, ablation_scores):
        assert ablation_scores["no_multi"].recall < ablation_scores["full"].recall

    def test_removing_constraints_hurts_precision(self, ablation_scores):
        assert (
            ablation_scores["no_const"].precision
            <= ablation_scores["full"].precision + 0.02
        )


class TestBackendEquivalence:
    def test_bert_backend_end_to_end(self, small_split):
        """The transformer backend runs the identical system path."""
        train, test = small_split
        config = KamelConfig(
            model_backend="bert",
            bert_epochs=25,
            use_partitioning=False,
            max_model_calls=300,
        )
        system = Kamel(config).fit(train[:40])
        sparse = test[0].sparsify(SPARSENESS)
        result = system.impute(sparse)
        assert len(result.trajectory) >= len(sparse)
        scores = evaluate_imputation([test[0]], [result], MAXGAP, DELTA)
        assert scores.recall > 0.3  # clearly better than nothing


class TestGridVariants:
    def test_square_grid_system_runs(self, small_split):
        train, test = small_split
        config = KamelConfig(grid_type="square", cell_edge_m=120.0, max_model_calls=600)
        system = Kamel(config).fit(train)
        result = system.impute(test[0].sparsify(SPARSENESS))
        assert result.num_segments >= 1

    def test_iterative_imputer_system_runs(self, small_split):
        train, test = small_split
        config = KamelConfig(imputer="iterative", max_model_calls=600)
        system = Kamel(config).fit(train)
        result = system.impute(test[0].sparsify(SPARSENESS))
        assert result.num_segments >= 1
