"""Tests for the extension features: ALBERT sharing, lat/lon adapters,
cell-size auto-tuning, and the figure harness at micro scale."""

import numpy as np
import pytest

from repro.core.tuning import tune_cell_size
from repro.core.config import KamelConfig
from repro.geo import (
    LocalProjection,
    projection_for,
    trajectory_from_latlon,
    trajectory_to_latlon,
)
from repro.mlm import BertConfig, BertMaskedLM, TrainingConfig
from repro.mlm.bert import BertModel


class TestAlbertSharing:
    def test_shared_layers_cut_parameters(self):
        base = BertConfig(vocab_size=30, hidden_size=32, num_layers=3, num_heads=2)
        shared = BertConfig(
            vocab_size=30, hidden_size=32, num_layers=3, num_heads=2, share_layers=True
        )
        assert BertModel(shared).num_parameters() < BertModel(base).num_parameters()

    def test_shared_layers_single_block(self):
        config = BertConfig(
            vocab_size=30, hidden_size=32, num_layers=4, num_heads=2, share_layers=True
        )
        model = BertModel(config)
        assert len(model.layers) == 4
        assert all(layer is model.layers[0] for layer in model.layers)

    def test_shared_model_trains(self):
        rng = np.random.default_rng(0)
        seqs = []
        for _ in range(80):
            start = int(rng.integers(3, 10))
            seqs.append(list(range(start, min(start + 6, 15))))
        model = BertMaskedLM(
            BertConfig(
                vocab_size=16,
                hidden_size=32,
                num_layers=2,
                num_heads=2,
                max_seq_len=12,
                share_layers=True,
            ),
            TrainingConfig(epochs=25, seed=0),
        )
        model.fit(seqs, vocab_size=16)
        assert model.loss_history[-1] < model.loss_history[0]
        predictions = model.predict_masked([6, 0, 8], 1, top_k=3)
        assert predictions[0][0] == 7


class TestLatLonAdapter:
    RECORDS = [
        (41.150, -8.610, 0.0),
        (41.151, -8.611, 10.0),
        (41.152, -8.612, 20.0),
    ]

    def test_projection_for_centers_on_mean(self):
        proj = projection_for(self.RECORDS)
        assert proj.ref_lat == pytest.approx(41.151)
        assert proj.ref_lon == pytest.approx(-8.611)

    def test_round_trip(self):
        proj = projection_for(self.RECORDS)
        traj = trajectory_from_latlon("porto", self.RECORDS, proj)
        assert len(traj) == 3
        assert traj.is_time_ordered()
        back = trajectory_to_latlon(traj, proj)
        for (lat1, lon1, t1), (lat2, lon2, t2) in zip(self.RECORDS, back):
            assert lat1 == pytest.approx(lat2, abs=1e-9)
            assert lon1 == pytest.approx(lon2, abs=1e-9)
            assert t1 == t2

    def test_distances_in_meters(self):
        proj = projection_for(self.RECORDS)
        traj = trajectory_from_latlon("porto", self.RECORDS, proj)
        # ~1 millidegree of latitude is ~111 m; with longitude too, more.
        assert 100.0 < traj.points[0].distance_to(traj.points[1]) < 250.0

    def test_empty_records(self):
        from repro.errors import EmptyInputError

        with pytest.raises(EmptyInputError):
            projection_for([])


class TestCellSizeTuning:
    def test_returns_candidate(self, small_dataset):
        train, _ = small_dataset.split(seed=1)
        config = KamelConfig(cell_size_candidates=(50.0, 100.0))
        chosen = tune_cell_size(train[:30], config, sample_size=20, seed=0)
        assert chosen in (50.0, 100.0)

    def test_empty_training_rejected(self):
        with pytest.raises(ValueError):
            tune_cell_size([], KamelConfig())

    def test_auto_tune_through_fit(self, small_dataset):
        from repro import Kamel

        train, _ = small_dataset.split(seed=1)
        config = KamelConfig(
            auto_tune_cell_size=True, cell_size_candidates=(60.0, 120.0)
        )
        system = Kamel(config).fit(train[:30])
        assert system.tokenizer.grid.edge_length_m in (60.0, 120.0)


class TestFigureHarnessMicro:
    """Smoke-run the figure functions at a micro scale."""

    @pytest.fixture(scope="class")
    def micro_scale(self):
        from repro.eval.figures import Scale

        return Scale(
            porto_trajectories=120,
            jakarta_trajectories=30,
            max_test=2,
            sparseness_m=(600.0,),
            deltas_m=(25.0, 75.0),
        )

    def test_fig9_structure(self, micro_scale):
        from repro.eval.figures import fig9_sparseness

        out = fig9_sparseness(micro_scale, methods=("KAMEL", "Linear"))
        assert set(out["datasets"]) == {"porto-like", "jakarta-like"}
        series = out["datasets"]["porto-like"]
        assert len(series["KAMEL"]["recall"]) == 1
        assert 0.0 <= series["KAMEL"]["recall"][0] <= 1.0

    def test_fig10_structure(self, micro_scale):
        from repro.eval.figures import fig10_threshold

        out = fig10_threshold(micro_scale, methods=("Linear",))
        series = out["datasets"]["porto-like"]["Linear"]
        assert len(series["recall"]) == 2
        assert series["recall"][1] >= series["recall"][0] - 1e-9

    def test_fig12_ablation_structure(self, micro_scale):
        from repro.eval.figures import fig12_ablation

        out = fig12_ablation(micro_scale)
        assert set(out["variants"]) == {"KAMEL", "No Part.", "No Const.", "No Multi."}

    def test_all_figures_registry(self):
        from repro.eval.figures import ALL_FIGURES

        assert len(ALL_FIGURES) == 9
        assert all(callable(fn) for fn in ALL_FIGURES.values())


class TestScaleAndWorkloadCaching:
    def test_scale_presets_ordered(self):
        from repro.eval.figures import Scale

        small, full = Scale.small(), Scale.full()
        assert small.porto_trajectories < full.porto_trajectories
        assert small.jakarta_trajectories < full.jakarta_trajectories
        assert small.max_test <= full.max_test

    def test_dataset_cache_returns_same_object(self):
        from repro.eval.figures import _dataset

        a = _dataset("porto", 60)
        b = _dataset("porto", 60)
        assert a is b
        c = _dataset("porto", 61)
        assert c is not a

    def test_dataset_cache_rejects_unknown(self):
        from repro.eval.figures import _dataset

        with pytest.raises(ValueError):
            _dataset("berlin", 10)

    def test_workloads_use_paper_deltas(self):
        from repro.eval.figures import Scale, jakarta_workload, porto_workload

        scale = Scale(porto_trajectories=60, jakarta_trajectories=10, max_test=2)
        assert porto_workload(scale).delta_m == 50.0
        assert jakarta_workload(scale).delta_m == 25.0
