"""Tests for the multipoint imputation strategies (paper Section 6).

A scripted fake model drives the algorithms deterministically: the world
is an east-west corridor of hexagon cells and the model proposes each
cell's east/west neighbours with configurable probabilities.
"""

import dataclasses

import pytest

from repro.core.config import KamelConfig
from repro.core.constraints import GapContext, SpatialConstraints
from repro.core.imputation import (
    BeamSearchImputer,
    IterativeImputer,
    SinglePointImputer,
    make_segment_imputer,
)
from repro.core.tokenization import Tokenizer
from repro.geo import Point
from repro.grid import HexGrid
from repro.mlm.base import MaskedModel, validate_mask_query


class CorridorModel(MaskedModel):
    """Proposes spatial neighbours of the masked position's left anchor.

    The corridor's token ids are interned in a Tokenizer; predictions are
    the cells adjacent (in the grid) to the left neighbour token, weighted
    so the eastward continuation wins.
    """

    def __init__(self, tokenizer: Tokenizer):
        self.tokenizer = tokenizer
        self._fitted = True

    def fit(self, sequences, vocab_size):
        return self

    @property
    def is_fitted(self):
        return True

    @property
    def num_training_tokens(self):
        return 1

    def predict_masked(self, tokens, position, top_k=10):
        validate_mask_query(tokens, position)
        vocab = self.tokenizer.vocabulary
        anchor = tokens[position - 1] if position >= 1 else tokens[position + 1]
        if vocab.is_special(anchor):
            return []
        cell = self.tokenizer.cell_of_token(anchor)
        out = []
        # Eastward neighbour of a pointy-top hexagon: (+1, 0) axial.
        ranked = sorted(
            self.tokenizer.grid.neighbors(cell),
            key=lambda c: -self.tokenizer.grid.centroid(c).x,
        )
        probs = [0.4, 0.2, 0.15, 0.12, 0.08, 0.05]
        for c, p in zip(ranked, probs):
            if c in vocab:
                out.append((vocab.encode(c), p))
        return out[:top_k]


@pytest.fixture()
def world():
    tokenizer = Tokenizer(HexGrid(75.0))
    spacing = tokenizer.grid.centroid_spacing_m
    # Intern a corridor of 12 adjacent cells plus their neighbours.
    corridor = []
    base_cell = tokenizer.grid.cell_of(Point(0, 0))
    cell = base_cell
    for _ in range(12):
        corridor.append(tokenizer.vocabulary.add(cell))
        cell = (cell[0] + 1, cell[1])  # axial east neighbour
    for c in list(tokenizer.vocabulary)[3:]:
        for n in tokenizer.grid.neighbors(c):
            tokenizer.vocabulary.add(n)
    config = KamelConfig(max_speed_mps=20.0, top_k_candidates=6, beam_size=4)
    constraints = SpatialConstraints(tokenizer, config, max_speed_mps=20.0)
    model = CorridorModel(tokenizer)
    return tokenizer, config, constraints, model, corridor, spacing


def corridor_ctx(tokenizer, corridor, spacing, start=0, end=8):
    return GapContext(
        source=corridor[start],
        dest=corridor[end],
        source_time=0.0,
        dest_time=(end - start) * spacing / 10.0,
    )


class TestGapGeometry:
    def test_adjacent_cells_not_a_gap(self, world):
        tokenizer, config, constraints, model, corridor, _ = world
        imputer = IterativeImputer(model, tokenizer, constraints, config)
        assert imputer.find_first_gap([corridor[0], corridor[1]]) is None

    def test_distant_cells_are_a_gap(self, world):
        tokenizer, config, constraints, model, corridor, _ = world
        imputer = IterativeImputer(model, tokenizer, constraints, config)
        assert imputer.find_first_gap([corridor[0], corridor[8]]) == 0

    def test_find_gaps_multiple(self, world):
        tokenizer, config, constraints, model, corridor, _ = world
        imputer = IterativeImputer(model, tokenizer, constraints, config)
        seg = [corridor[0], corridor[5], corridor[6], corridor[11]]
        assert imputer.find_gaps(seg) == [0, 2]

    def test_gap_threshold_override(self, world):
        tokenizer, config, constraints, model, corridor, _ = world
        imputer = IterativeImputer(
            model, tokenizer, constraints, config, gap_threshold_m=400.0
        )
        # Cells three apart (~390 m) are no longer a gap.
        assert imputer.find_first_gap([corridor[0], corridor[3]]) is None

    def test_query_embeds_context_tokens(self, world):
        tokenizer, config, constraints, model, corridor, _ = world
        imputer = IterativeImputer(model, tokenizer, constraints, config)
        ctx = GapContext(
            corridor[1], corridor[5], prev_token=corridor[0], next_token=corridor[6]
        )
        tokens, position = imputer._query((corridor[1], corridor[5]), 0, ctx)
        assert tokens[0] == corridor[0]
        assert tokens[-1] == corridor[6]
        assert position == 2


class TestIterative:
    def test_closes_corridor_gap(self, world):
        tokenizer, config, constraints, model, corridor, spacing = world
        imputer = IterativeImputer(model, tokenizer, constraints, config)
        result = imputer.impute_segment(corridor_ctx(tokenizer, corridor, spacing))
        assert not result.failed
        # The greedy east-walking model fills exactly the corridor between.
        assert list(result.interior) == corridor[1:8]
        assert result.model_calls == len(result.interior)

    def test_no_gap_returns_empty(self, world):
        tokenizer, config, constraints, model, corridor, spacing = world
        imputer = IterativeImputer(model, tokenizer, constraints, config)
        result = imputer.impute_segment(
            corridor_ctx(tokenizer, corridor, spacing, start=0, end=1)
        )
        assert not result.failed
        assert result.interior == ()

    def test_budget_exhaustion_fails(self, world):
        tokenizer, config, constraints, model, corridor, spacing = world
        tight = dataclasses.replace(config, max_model_calls=2)
        imputer = IterativeImputer(model, tokenizer, constraints, tight)
        result = imputer.impute_segment(corridor_ctx(tokenizer, corridor, spacing))
        assert result.failed
        assert result.model_calls <= 3

    def test_starved_candidates_fail(self, world):
        tokenizer, config, constraints, model, corridor, spacing = world

        class SilentModel(CorridorModel):
            def predict_masked(self, tokens, position, top_k=10):
                return []

        imputer = IterativeImputer(SilentModel(tokenizer), tokenizer, constraints, config)
        result = imputer.impute_segment(corridor_ctx(tokenizer, corridor, spacing))
        assert result.failed


class TestBeamSearch:
    def test_closes_corridor_gap(self, world):
        tokenizer, config, constraints, model, corridor, spacing = world
        imputer = BeamSearchImputer(model, tokenizer, constraints, config)
        result = imputer.impute_segment(corridor_ctx(tokenizer, corridor, spacing))
        assert not result.failed
        assert list(result.interior) == corridor[1:8]

    def test_beam_finds_higher_probability_than_greedy_trap(self, world):
        """Where greedy takes a locally best step into a dead end, beam
        search recovers via a lower-probability first step."""
        tokenizer, config, constraints, model, corridor, spacing = world

        class TrapModel(CorridorModel):
            """Top candidate is a northern detour cell that dead-ends."""

            def predict_masked(self, tokens, position, top_k=10):
                base = super().predict_masked(tokens, position, top_k)
                vocab = self.tokenizer.vocabulary
                anchor = tokens[position - 1]
                if vocab.is_special(anchor):
                    return base
                cell = self.tokenizer.cell_of_token(anchor)
                trap = (cell[0], cell[1] + 1)  # north-east neighbour
                if trap in vocab:
                    # After a trap cell, propose nothing (dead end).
                    prev_cell = None
                    if position >= 2 and not vocab.is_special(tokens[position - 2]):
                        prev_cell = self.tokenizer.cell_of_token(tokens[position - 2])
                    if prev_cell == (cell[0], cell[1] - 1):
                        return []
                    return [(vocab.encode(trap), 0.9)] + base
                return base

        trap_model = TrapModel(tokenizer)
        greedy = IterativeImputer(trap_model, tokenizer, constraints, config)
        beam = BeamSearchImputer(trap_model, tokenizer, constraints, config)
        ctx = corridor_ctx(tokenizer, corridor, spacing, end=6)
        beam_result = beam.impute_segment(ctx)
        greedy_result = greedy.impute_segment(ctx)
        assert not beam_result.failed
        # The answer must be a *valid* chain: every consecutive pair within
        # the gap threshold (the trap's pull cannot leave an open gap).
        full = [corridor[0], *beam_result.interior, corridor[6]]
        assert beam.find_gaps(full) == []
        del greedy_result

    def test_length_normalization_monotone_in_alpha(self, world):
        tokenizer, config, constraints, model, corridor, _ = world
        imputer0 = BeamSearchImputer(
            model, tokenizer, constraints, dataclasses.replace(config, length_norm_alpha=0.0)
        )
        imputer1 = BeamSearchImputer(
            model, tokenizer, constraints, dataclasses.replace(config, length_norm_alpha=1.0)
        )
        seg = tuple(corridor[:4])
        assert imputer0._normalized(seg, 0.5) == pytest.approx(0.5)
        assert imputer1._normalized(seg, 0.5) == pytest.approx(1.0)  # 2 interior tokens

    def test_budget_exhaustion(self, world):
        tokenizer, config, constraints, model, corridor, spacing = world
        tight = dataclasses.replace(config, max_model_calls=1)
        imputer = BeamSearchImputer(model, tokenizer, constraints, tight)
        result = imputer.impute_segment(corridor_ctx(tokenizer, corridor, spacing))
        assert result.failed


class TestSinglePointAblation:
    def test_inserts_exactly_one_token(self, world):
        tokenizer, config, constraints, model, corridor, spacing = world
        imputer = SinglePointImputer(model, tokenizer, constraints, config)
        result = imputer.impute_segment(corridor_ctx(tokenizer, corridor, spacing))
        assert not result.failed
        assert len(result.interior) == 1
        assert result.model_calls == 1

    def test_no_gap_no_call(self, world):
        tokenizer, config, constraints, model, corridor, spacing = world
        imputer = SinglePointImputer(model, tokenizer, constraints, config)
        result = imputer.impute_segment(
            corridor_ctx(tokenizer, corridor, spacing, end=1)
        )
        assert result.interior == ()
        assert result.model_calls == 0


class TestFactory:
    def test_beam_default(self, world):
        tokenizer, config, constraints, model, _, _ = world
        assert isinstance(
            make_segment_imputer(model, tokenizer, constraints, config),
            BeamSearchImputer,
        )

    def test_iterative_selected(self, world):
        tokenizer, config, constraints, model, _, _ = world
        cfg = dataclasses.replace(config, imputer="iterative")
        assert isinstance(
            make_segment_imputer(model, tokenizer, constraints, cfg),
            IterativeImputer,
        )

    def test_ablation_overrides_strategy(self, world):
        tokenizer, config, constraints, model, _, _ = world
        cfg = dataclasses.replace(config, use_multipoint=False)
        assert isinstance(
            make_segment_imputer(model, tokenizer, constraints, cfg),
            SinglePointImputer,
        )
