"""A from-scratch DBSCAN implementation (Ester et al., KDD 1996).

KAMEL's detokenization module (Section 7) runs DBSCAN over the GPS points
inside each hexagonal token to discover the per-direction road clusters
whose centroids replace tokens at detokenization time. Token populations
are small (tens to a few thousand points), so this implementation favours
clarity: region queries use a uniform bucket index for the default
Euclidean metric and fall back to a linear scan for custom metrics.
"""

from __future__ import annotations

import math
from collections import defaultdict, deque
from typing import Callable, Optional, Sequence

import numpy as np

NOISE = -1
"""Label assigned to points that belong to no cluster."""


class _BucketIndex:
    """Uniform-grid index answering epsilon-neighbourhood queries."""

    def __init__(self, data: np.ndarray, eps: float) -> None:
        self._data = data
        self._eps = eps
        self._cell = eps if eps > 0 else 1.0
        self._buckets: dict[tuple[int, ...], list[int]] = defaultdict(list)
        for i, row in enumerate(data):
            self._buckets[self._key(row)].append(i)

    def _key(self, row: np.ndarray) -> tuple[int, ...]:
        return tuple(int(math.floor(v / self._cell)) for v in row)

    def query(self, i: int) -> list[int]:
        """Indices of all points within ``eps`` of point ``i`` (incl. i)."""
        row = self._data[i]
        key = self._key(row)
        dims = len(key)
        candidates: list[int] = []
        # Visit the 3^d adjacent buckets.
        offsets: list[tuple[int, ...]] = [()]
        for _ in range(dims):
            offsets = [o + (d,) for o in offsets for d in (-1, 0, 1)]
        for off in offsets:
            bucket = tuple(k + d for k, d in zip(key, off))
            candidates.extend(self._buckets.get(bucket, ()))
        out = []
        for j in candidates:
            if float(np.linalg.norm(self._data[j] - row)) <= self._eps:
                out.append(j)
        return out


def dbscan_labels(
    data: Sequence[Sequence[float]] | np.ndarray,
    eps: float,
    min_samples: int,
    metric: Optional[Callable[[np.ndarray, np.ndarray], float]] = None,
) -> np.ndarray:
    """Cluster ``data`` and return an integer label per point.

    Cluster labels are ``0, 1, 2, ...`` in discovery order; noise points
    get :data:`NOISE`. ``metric`` overrides the Euclidean distance (the
    bucket index is bypassed in that case).
    """
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps!r}")
    if min_samples < 1:
        raise ValueError(f"min_samples must be >= 1, got {min_samples!r}")
    points = np.asarray(data, dtype=float)
    n = len(points)
    labels = np.full(n, NOISE, dtype=int)
    if n == 0:
        return labels

    if metric is None:
        index = _BucketIndex(points, eps)

        def region_query(i: int) -> list[int]:
            return index.query(i)

    else:

        def region_query(i: int) -> list[int]:
            return [j for j in range(n) if metric(points[i], points[j]) <= eps]

    visited = np.zeros(n, dtype=bool)
    cluster = 0
    for i in range(n):
        if visited[i]:
            continue
        visited[i] = True
        seeds = region_query(i)
        if len(seeds) < min_samples:
            continue  # stays noise unless later absorbed as a border point
        labels[i] = cluster
        queue = deque(seeds)
        while queue:
            j = queue.popleft()
            if labels[j] == NOISE:
                labels[j] = cluster  # border point
            if visited[j]:
                continue
            visited[j] = True
            labels[j] = cluster
            j_neighbours = region_query(j)
            if len(j_neighbours) >= min_samples:
                queue.extend(j_neighbours)
        cluster += 1
    return labels


class DBSCAN:
    """Object-style wrapper mirroring the scikit-learn calling convention."""

    def __init__(
        self,
        eps: float,
        min_samples: int,
        metric: Optional[Callable[[np.ndarray, np.ndarray], float]] = None,
    ) -> None:
        self.eps = eps
        self.min_samples = min_samples
        self.metric = metric
        self.labels_: Optional[np.ndarray] = None

    def fit(self, data: Sequence[Sequence[float]] | np.ndarray) -> "DBSCAN":
        self.labels_ = dbscan_labels(data, self.eps, self.min_samples, self.metric)
        return self

    def fit_predict(self, data: Sequence[Sequence[float]] | np.ndarray) -> np.ndarray:
        return self.fit(data).labels_  # type: ignore[return-value]

    @property
    def n_clusters_(self) -> int:
        """Number of clusters discovered by the last :meth:`fit`."""
        if self.labels_ is None:
            raise RuntimeError("fit() has not been called")
        return int(self.labels_.max()) + 1 if len(self.labels_) else 0
