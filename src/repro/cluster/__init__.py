"""Clustering primitives (from-scratch DBSCAN) used by detokenization."""

from repro.cluster.dbscan import DBSCAN, NOISE, dbscan_labels

__all__ = ["DBSCAN", "NOISE", "dbscan_labels"]
