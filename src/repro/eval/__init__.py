"""Evaluation: the paper's metrics, workloads, and experiment harness."""

from repro.eval.metrics import (
    EvaluationScores,
    evaluate_imputation,
    failure_rate,
    point_to_polyline_distance,
    precision,
    recall,
)
from repro.eval.harness import (
    ExperimentRunner,
    MethodScores,
    SegmentRecord,
    Workload,
    build_workload,
    classify_segments,
    score_segments,
    sparsify_indices,
)
from repro.eval.report import render_series, render_table

__all__ = [
    "EvaluationScores",
    "ExperimentRunner",
    "MethodScores",
    "SegmentRecord",
    "Workload",
    "build_workload",
    "classify_segments",
    "evaluate_imputation",
    "failure_rate",
    "point_to_polyline_distance",
    "precision",
    "recall",
    "render_series",
    "render_table",
    "score_segments",
    "sparsify_indices",
]
