"""Plain-text rendering of experiment tables and figure series."""

from __future__ import annotations

from typing import Mapping, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """A fixed-width ASCII table."""
    cells = [[_fmt(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render_series(
    title: str,
    x_label: str,
    xs: Sequence[object],
    series: Mapping[str, Sequence[float]],
) -> str:
    """A figure-like table: one row per x value, one column per method.

    This is the textual stand-in for the paper's plots: same x axis, same
    series, so the *shape* (who wins, where curves cross) is readable.
    """
    headers = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return f"{title}\n{render_table(headers, rows)}"


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_markdown_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """A GitHub-flavoured markdown table."""
    lines = ["| " + " | ".join(_fmt(h) for h in headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(_fmt(c) for c in row) + " |")
    return "\n".join(lines)


def figure_to_markdown(name: str, result: dict) -> str:
    """Render one figure-function output dict as markdown sections.

    Understands the shapes produced by :mod:`repro.eval.figures`:
    sweep series keyed by method/variant, and flat per-label score dicts.
    """
    sections: list[str] = [f"### {name}"]

    def series_block(title: str, xs, series: dict) -> str:
        headers = ["x"] + list(series.keys())
        metrics = sorted(
            {metric for s in series.values() for metric in s}
        ) if series and isinstance(next(iter(series.values())), dict) else []
        out = [f"**{title}**", ""]
        for metric in metrics:
            rows = [
                [x] + [series[m].get(metric, [None] * len(xs))[i] for m in series]
                for i, x in enumerate(xs)
            ]
            out.append(f"*{metric}*")
            out.append(render_markdown_table(headers, rows))
            out.append("")
        return "\n".join(out)

    if "datasets" in result:
        xs = result.get("sparseness_m") or result.get("deltas_m") or []
        for dataset, series in result["datasets"].items():
            if xs and isinstance(next(iter(series.values()), None), dict) and any(
                isinstance(v, list) for s in series.values() for v in s.values()
            ):
                sections.append(series_block(dataset, xs, series))
            else:
                headers = ["method"] + sorted(
                    {k for s in series.values() for k in s}
                )
                rows = [
                    [m] + [series[m].get(h) for h in headers[1:]] for m in series
                ]
                sections.append(f"**{dataset}**\n\n" + render_markdown_table(headers, rows))
    elif "variants" in result:
        xs = result.get("sparseness_m", [])
        sections.append(series_block("variants", xs, result["variants"]))
    elif "classes" in result:
        xs = result.get("sparseness_m", [])
        for road_class, series in result["classes"].items():
            sections.append(series_block(road_class, xs, series))
    elif "series" in result and isinstance(result["series"], dict):
        first = next(iter(result["series"].values()), None)
        if isinstance(first, dict):
            headers = ["label"] + sorted({k for s in result["series"].values() for k in s})
            rows = [
                [label] + [scores.get(h) for h in headers[1:]]
                for label, scores in result["series"].items()
            ]
            sections.append(render_markdown_table(headers, rows))
        else:
            xs = (
                result.get("cell_sizes_m")
                or result.get("fractions")
                or result.get("sampling_s")
                or []
            )
            headers = ["x"] + list(result["series"].keys())
            rows = [
                [x] + [result["series"][k][i] for k in result["series"]]
                for i, x in enumerate(xs)
            ]
            sections.append(render_markdown_table(headers, rows))
    else:
        sections.append("```\n" + repr(result) + "\n```")
    return "\n\n".join(sections) + "\n"
