"""Trajectory similarity measures: Hausdorff and discrete Fréchet.

The paper's recall/precision metrics score point coverage; these two
classical curve distances complement them when a single-number distance
between an imputed trajectory and its ground truth is wanted (e.g. for
the extension experiments in ``benchmarks/``):

* **Hausdorff distance** — the worst-case distance from any point of one
  polyline to the other (order-insensitive);
* **discrete Fréchet distance** — the classic "dog leash" distance over
  point sequences (order-sensitive: a trajectory that covers the right
  streets in the wrong order scores badly).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import EmptyInputError
from repro.eval.metrics import point_to_polyline_distance
from repro.geo import Point, Trajectory


def directed_hausdorff(
    from_points: Sequence[Point], to_polyline: Sequence[Point]
) -> float:
    """sup over ``from_points`` of the distance to ``to_polyline``."""
    if not from_points or not to_polyline:
        raise EmptyInputError("hausdorff distance needs non-empty inputs")
    return max(point_to_polyline_distance(p, to_polyline) for p in from_points)


def hausdorff_distance(a: Trajectory, b: Trajectory) -> float:
    """Symmetric polyline Hausdorff distance in meters."""
    return max(
        directed_hausdorff(list(a.points), list(b.points)),
        directed_hausdorff(list(b.points), list(a.points)),
    )


def discrete_frechet_distance(a: Trajectory, b: Trajectory) -> float:
    """Discrete Fréchet distance between the two point sequences.

    Standard dynamic program (Eiter & Mannila 1994), iterative to avoid
    recursion limits on long trajectories. O(|a|*|b|) time and memory.
    """
    pa, pb = a.points, b.points
    if not pa or not pb:
        raise EmptyInputError("frechet distance needs non-empty trajectories")
    n, m = len(pa), len(pb)
    previous = [0.0] * m
    for j in range(m):
        d = pa[0].distance_to(pb[j])
        previous[j] = d if j == 0 else max(previous[j - 1], d)
    for i in range(1, n):
        current = [0.0] * m
        current[0] = max(previous[0], pa[i].distance_to(pb[0]))
        for j in range(1, m):
            reach = min(previous[j], previous[j - 1], current[j - 1])
            current[j] = max(reach, pa[i].distance_to(pb[j]))
        previous = current
    return previous[-1]


def mean_deviation(truth: Trajectory, imputed: Trajectory, step_m: float = 25.0) -> float:
    """Average distance from the truth polyline to the imputed polyline.

    A smoother companion to recall: discretizes the ground truth every
    ``step_m`` meters and averages the distance of each probe to the
    imputed polyline.
    """
    probes = truth.discretize(step_m)
    if not probes:
        raise EmptyInputError("mean_deviation needs a non-empty ground truth")
    line = list(imputed.points)
    return sum(point_to_polyline_distance(p, line) for p in probes) / len(probes)
