"""The paper's performance metrics (Section 8, "Performance metrics").

* **Recall** — discretize the *ground truth* trajectory into points every
  ``maxgap`` meters; the recall is the fraction of those points within the
  accuracy threshold delta of the *imputed* trajectory (as a polyline).
* **Precision** — discretize the *imputed* trajectory the same way; the
  precision is the fraction of those points within delta of the ground
  truth polyline.
* **Failure rate** — the fraction of segments imputed by a straight line
  (tracked by the imputers themselves via
  :class:`repro.core.result.ImputationResult`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.result import ImputationResult
from repro.geo import Point, Trajectory


def point_to_segment_distance(p: Point, a: Point, b: Point) -> float:
    """Distance from ``p`` to the segment ``ab``."""
    dx, dy = b.x - a.x, b.y - a.y
    seg2 = dx * dx + dy * dy
    if seg2 == 0.0:
        return p.distance_to(a)
    t = max(0.0, min(1.0, ((p.x - a.x) * dx + (p.y - a.y) * dy) / seg2))
    return p.distance_to(Point(a.x + t * dx, a.y + t * dy))


def point_to_polyline_distance(p: Point, polyline: Sequence[Point]) -> float:
    """Distance from ``p`` to the nearest point of a polyline."""
    if not polyline:
        return float("inf")
    if len(polyline) == 1:
        return p.distance_to(polyline[0])
    best = float("inf")
    for a, b in zip(polyline, polyline[1:]):
        # Cheap reject: both endpoints further than best + segment length.
        d = point_to_segment_distance(p, a, b)
        if d < best:
            best = d
    return best


def _coverage(
    probes: Sequence[Point], reference: Sequence[Point], delta_m: float
) -> float:
    """Fraction of ``probes`` within ``delta_m`` of the reference polyline."""
    if not probes:
        return 0.0
    hits = sum(
        1 for p in probes if point_to_polyline_distance(p, reference) <= delta_m
    )
    return hits / len(probes)


def recall(
    ground_truth: Trajectory,
    imputed: Trajectory,
    maxgap_m: float,
    delta_m: float,
) -> float:
    """Paper recall: ground-truth probe points recovered by the imputation."""
    probes = ground_truth.discretize(maxgap_m)
    return _coverage(probes, list(imputed.points), delta_m)


def precision(
    ground_truth: Trajectory,
    imputed: Trajectory,
    maxgap_m: float,
    delta_m: float,
) -> float:
    """Paper precision: imputed probe points that lie on the ground truth."""
    probes = imputed.discretize(maxgap_m)
    return _coverage(probes, list(ground_truth.points), delta_m)


def failure_rate(results: Sequence[ImputationResult]) -> float:
    """Fraction of all segments (across results) imputed by a straight line."""
    total = sum(r.num_segments for r in results)
    if total == 0:
        return 0.0
    failed = sum(r.num_failed for r in results)
    return failed / total


@dataclass(frozen=True)
class EvaluationScores:
    """Aggregate metrics over a test set."""

    recall: float
    precision: float
    failure_rate: float
    num_trajectories: int
    num_segments: int

    def as_dict(self) -> dict[str, float]:
        return {
            "recall": self.recall,
            "precision": self.precision,
            "failure_rate": self.failure_rate,
        }


def evaluate_imputation(
    ground_truths: Sequence[Trajectory],
    results: Sequence[ImputationResult],
    maxgap_m: float,
    delta_m: float,
) -> EvaluationScores:
    """Mean recall/precision over trajectories plus the global failure rate."""
    if len(ground_truths) != len(results):
        raise ValueError(
            f"{len(ground_truths)} ground truths vs {len(results)} results"
        )
    if not results:
        return EvaluationScores(0.0, 0.0, 0.0, 0, 0)
    recalls = []
    precisions = []
    for truth, result in zip(ground_truths, results):
        recalls.append(recall(truth, result.trajectory, maxgap_m, delta_m))
        precisions.append(precision(truth, result.trajectory, maxgap_m, delta_m))
    return EvaluationScores(
        recall=sum(recalls) / len(recalls),
        precision=sum(precisions) / len(precisions),
        failure_rate=failure_rate(results),
        num_trajectories=len(results),
        num_segments=sum(r.num_segments for r in results),
    )
