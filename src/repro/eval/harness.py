"""Experiment harness: workloads, method runners, per-segment analysis.

Builds the paper's evaluation protocol (Section 8): take a dataset, split
80/20, sparsify the test trajectories by imposing ``Sparse_distance``
gaps, impute them with each method, and score recall / precision / failure
rate at an accuracy threshold delta. The per-segment utilities support the
road-type study (Fig. 12-I/II), which classifies every test segment as
straight or curved and scores each class separately.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence

from repro.baselines import HmmMapMatcher, LinearImputer, MapMatchConfig, TrImpute, TrImputeConfig
from repro.core.config import KamelConfig
from repro.core.kamel import Kamel
from repro.core.result import ImputationResult, Imputer
from repro.eval.metrics import (
    EvaluationScores,
    evaluate_imputation,
    point_to_polyline_distance,
)
from repro.geo import Point, Trajectory
from repro.obs import instrument as obs
from repro.obs.tracing import span, trace_scope
from repro.roadnet.datasets import Dataset


def sparsify_indices(trajectory: Trajectory, sparse_distance_m: float) -> list[int]:
    """Indices kept by the paper's sparsification procedure.

    Matches :meth:`repro.geo.Trajectory.sparsify`: keep the first point,
    drop points within ``sparse_distance_m`` of travelled distance, keep
    the next, and always keep the last.
    """
    if sparse_distance_m <= 0:
        raise ValueError("sparse_distance_m must be positive")
    pts = trajectory.points
    if len(pts) <= 2:
        return list(range(len(pts)))
    kept = [0]
    travelled = 0.0
    for i in range(1, len(pts)):
        travelled += pts[i - 1].distance_to(pts[i])
        if travelled >= sparse_distance_m:
            kept.append(i)
            travelled = 0.0
    if kept[-1] != len(pts) - 1:
        kept.append(len(pts) - 1)
    return kept


@dataclass(frozen=True)
class Workload:
    """One evaluation setting: data split plus metric parameters."""

    name: str
    dataset: Dataset
    train: tuple[Trajectory, ...]
    test_truth: tuple[Trajectory, ...]
    test_sparse: tuple[Trajectory, ...]
    test_kept_indices: tuple[tuple[int, ...], ...]
    sparse_distance_m: float
    maxgap_m: float
    delta_m: float

    def with_sparseness(self, sparse_distance_m: float) -> "Workload":
        """Same split, different imposed gap size."""
        sparse, kept = _sparsify_set(self.test_truth, sparse_distance_m)
        return replace(
            self,
            test_sparse=sparse,
            test_kept_indices=kept,
            sparse_distance_m=sparse_distance_m,
        )

    def with_delta(self, delta_m: float) -> "Workload":
        return replace(self, delta_m=delta_m)

    def with_train(self, train: Sequence[Trajectory]) -> "Workload":
        return replace(self, train=tuple(train))


def _sparsify_set(
    truths: Sequence[Trajectory], sparse_distance_m: float
) -> tuple[tuple[Trajectory, ...], tuple[tuple[int, ...], ...]]:
    sparse = []
    kept_all = []
    for t in truths:
        kept = sparsify_indices(t, sparse_distance_m)
        sparse.append(t.with_points([t.points[i] for i in kept]))
        kept_all.append(tuple(kept))
    return tuple(sparse), tuple(kept_all)


def build_workload(
    dataset: Dataset,
    sparse_distance_m: float = 1000.0,
    maxgap_m: float = 100.0,
    delta_m: float = 50.0,
    train_fraction: float = 0.8,
    seed: int = 0,
    max_test: Optional[int] = None,
) -> Workload:
    """The paper's protocol: split, then sparsify the test trajectories."""
    train, test = dataset.split(train_fraction, seed=seed)
    test = [t for t in test if len(t) >= 2]
    if max_test is not None:
        test = test[:max_test]
    sparse, kept = _sparsify_set(test, sparse_distance_m)
    return Workload(
        name=dataset.name,
        dataset=dataset,
        train=tuple(train),
        test_truth=tuple(test),
        test_sparse=sparse,
        test_kept_indices=kept,
        sparse_distance_m=sparse_distance_m,
        maxgap_m=maxgap_m,
        delta_m=delta_m,
    )


@dataclass(frozen=True)
class MethodScores:
    """One method's metrics plus wall-clock costs on a workload."""

    method: str
    scores: EvaluationScores
    train_time_s: float
    impute_time_s: float
    results: tuple[ImputationResult, ...] = ()


ImputerBuilder = Callable[[Workload], Imputer]
"""Builds *and trains* an imputer for a workload."""


def kamel_builder(config: Optional[KamelConfig] = None) -> ImputerBuilder:
    def build(workload: Workload) -> Imputer:
        cfg = config or KamelConfig(maxgap_m=workload.maxgap_m)
        return Kamel(cfg).fit(list(workload.train))

    return build


def trimpute_builder(config: Optional[TrImputeConfig] = None) -> ImputerBuilder:
    def build(workload: Workload) -> Imputer:
        cfg = config or TrImputeConfig(maxgap_m=workload.maxgap_m)
        return TrImpute(cfg).fit(list(workload.train))

    return build


def linear_builder() -> ImputerBuilder:
    def build(workload: Workload) -> Imputer:
        return LinearImputer(workload.maxgap_m)

    return build


def mapmatch_builder(config: Optional[MapMatchConfig] = None) -> ImputerBuilder:
    def build(workload: Workload) -> Imputer:
        cfg = config or MapMatchConfig(maxgap_m=workload.maxgap_m)
        return HmmMapMatcher(workload.dataset.network, cfg)

    return build


DEFAULT_BUILDERS: dict[str, Callable[[], ImputerBuilder]] = {
    "KAMEL": kamel_builder,
    "TrImpute": trimpute_builder,
    "Linear": linear_builder,
    "MapMatch": mapmatch_builder,
}


class ExperimentRunner:
    """Runs methods on workloads, caching trained imputers per workload.

    Training is expensive and independent of the metric parameters, so a
    trained imputer is reused when only ``delta`` changes (as the paper
    does when sweeping the accuracy threshold).
    """

    def __init__(
        self,
        workload: Workload,
        trained: Optional[dict[str, tuple[Imputer, float]]] = None,
    ) -> None:
        """``trained`` lets sweeps share trained imputers across runners.

        Training depends only on the train split and maxgap, so a sweep
        over sparseness or delta may train once and impute many times —
        exactly how the paper runs its figures.
        """
        self.workload = workload
        self._trained: dict[str, tuple[Imputer, float]] = (
            trained if trained is not None else {}
        )
        self._imputed: dict[str, tuple[tuple[ImputationResult, ...], float]] = {}

    def train(self, name: str, builder: ImputerBuilder) -> tuple[Imputer, float]:
        """Train (or reuse) a method; its wall time is both returned and
        recorded into the ``repro.eval.train_seconds`` histogram, so the
        figure scripts and the metrics snapshot report one measurement."""
        if name not in self._trained:
            with trace_scope():
                with span("eval.train", method=name, workload=self.workload.name):
                    with obs.stopwatch("repro.eval.train_seconds") as sw:
                        imputer = builder(self.workload)
            self._trained[name] = (imputer, sw.seconds)
        return self._trained[name]

    def impute(self, name: str, builder: ImputerBuilder) -> tuple[
        tuple[ImputationResult, ...], float
    ]:
        if name not in self._imputed:
            imputer, _ = self.train(name, builder)
            with trace_scope():
                with span("eval.impute", method=name, workload=self.workload.name):
                    with obs.stopwatch("repro.eval.impute_seconds") as sw:
                        results = tuple(
                            imputer.impute_batch(list(self.workload.test_sparse))
                        )
            self._imputed[name] = (results, sw.seconds)
        return self._imputed[name]

    def run(self, name: str, builder: ImputerBuilder) -> MethodScores:
        results, impute_time = self.impute(name, builder)
        _, train_time = self._trained[name]
        scores = evaluate_imputation(
            list(self.workload.test_truth),
            list(results),
            self.workload.maxgap_m,
            self.workload.delta_m,
        )
        return MethodScores(name, scores, train_time, impute_time, results)

    def run_default(self, name: str) -> MethodScores:
        return self.run(name, DEFAULT_BUILDERS[name]())


# -- per-segment analysis (road-type study, Fig. 12-I/II) --------------------


@dataclass(frozen=True)
class SegmentRecord:
    """One sparse-trajectory segment with everything needed to score it."""

    truth_points: tuple[Point, ...]
    imputed_points: tuple[Point, ...]
    failed: Optional[bool]
    """None when the gap was below maxgap (never imputed)."""
    straight: bool


def _denoised_arc_length(points: Sequence[Point], min_step_m: float = 75.0) -> float:
    """Arc length over a coarsened copy of ``points``.

    Raw GPS noise inflates arc length badly at dense sampling (a 5 m sigma
    on 11 m steps adds ~20 % per step), which would classify *every*
    segment as curved. Walking the polyline in >= ``min_step_m`` strides
    reduces the noise contribution to a fraction of a percent while
    preserving genuine road curvature at the scales that matter here.
    """
    if len(points) < 2:
        return 0.0
    arc = 0.0
    anchor = points[0]
    for p in points[1:-1]:
        if anchor.distance_to(p) >= min_step_m:
            arc += anchor.distance_to(p)
            anchor = p
    arc += anchor.distance_to(points[-1])
    return arc


def classify_segments(
    workload: Workload,
    results: Sequence[ImputationResult],
    straightness_threshold_m: float = 15.0,
) -> list[SegmentRecord]:
    """Split every test trajectory into per-segment records.

    A segment is *straight* when the Euclidean distance between its
    endpoints is within ``straightness_threshold_m`` of the distance
    travelled along the (noise-coarsened) ground truth — the paper's
    criterion with the travelled arc standing in for the road-network
    distance (the simulated vehicle drives exactly on the network). The
    threshold is 15 m rather than the paper's 5 m to absorb the residual
    GPS-noise inflation of the arc estimate.
    """
    records: list[SegmentRecord] = []
    for truth, sparse, kept, result in zip(
        workload.test_truth, workload.test_sparse, workload.test_kept_indices, results
    ):
        failures = {o.start_index: o.failed for o in result.segments}
        pieces = _split_by_anchor_points(result.trajectory, sparse)
        for k in range(len(kept) - 1):
            lo, hi = kept[k], kept[k + 1]
            truth_points = truth.points[lo : hi + 1]
            arc = _denoised_arc_length(truth_points)
            euclid = truth_points[0].distance_to(truth_points[-1])
            records.append(
                SegmentRecord(
                    truth_points=tuple(truth_points),
                    imputed_points=tuple(pieces[k]),
                    failed=failures.get(k),
                    straight=(arc - euclid) <= straightness_threshold_m,
                )
            )
    return records


def _split_by_anchor_points(
    imputed: Trajectory, sparse: Trajectory
) -> list[tuple[Point, ...]]:
    """Slice the imputed trajectory at the sparse anchor points.

    Imputers keep every sparse point in order, so the imputed sequence is
    anchor, interior*, anchor, interior*, ... — slice on coordinate
    equality with the next expected anchor.
    """
    pieces: list[tuple[Point, ...]] = []
    anchors = sparse.points
    current: list[Point] = []
    next_anchor = 1
    for p in imputed.points:
        current.append(p)
        if (
            next_anchor < len(anchors)
            and p.x == anchors[next_anchor].x
            and p.y == anchors[next_anchor].y
        ):
            pieces.append(tuple(current))
            current = [p]
            next_anchor += 1
    while len(pieces) < len(anchors) - 1:
        pieces.append(tuple(current) if current else ())
        current = []
    return pieces


# -- confidence calibration (quality observability) ---------------------------


@dataclass(frozen=True)
class CalibrationRecord:
    """One scored segment: reported confidence vs realized accuracy."""

    segment_index: int
    confidence: float
    accuracy: float
    """Fraction of ground-truth probes (discretized at maxgap) within
    ``delta_m`` of the imputed polyline — the paper's recall criterion
    applied per segment, used here as the realized-accuracy signal."""
    cells: tuple[tuple[int, int], ...] = ()
    """Grid cells of the segment's imputed interior points (empty when no
    grid was supplied), for spatial quality attribution."""


def calibration_records(
    workload: Workload,
    results: Sequence[ImputationResult],
    grid=None,
) -> list[CalibrationRecord]:
    """Pair every scored segment's confidence with its realized accuracy.

    Only segments the imputer scored are included (failed segments and
    unscored baselines carry ``confidence=None``). Pass the imputer's
    grid (``system.tokenizer.grid``) to also attribute each segment's
    interior points to cells.
    """
    records: list[CalibrationRecord] = []
    for truth, sparse, kept, result in zip(
        workload.test_truth, workload.test_sparse, workload.test_kept_indices, results
    ):
        outcomes = {o.start_index: o for o in result.segments}
        pieces = _split_by_anchor_points(result.trajectory, sparse)
        for k in range(len(kept) - 1):
            outcome = outcomes.get(k)
            if outcome is None or outcome.confidence is None:
                continue
            lo, hi = kept[k], kept[k + 1]
            truth_line = list(truth.points[lo : hi + 1])
            imputed_line = list(pieces[k])
            if len(truth_line) < 2 or len(imputed_line) < 2:
                continue
            hits = total = 0
            for probe in Trajectory("t", truth_line).discretize(workload.maxgap_m):
                total += 1
                if point_to_polyline_distance(probe, imputed_line) <= workload.delta_m:
                    hits += 1
            if total == 0:
                continue
            cells: tuple[tuple[int, int], ...] = ()
            if grid is not None:
                cells = tuple(grid.cell_of(p) for p in imputed_line[1:-1])
            records.append(
                CalibrationRecord(
                    segment_index=k,
                    confidence=outcome.confidence,
                    accuracy=hits / total,
                    cells=cells,
                )
            )
    return records


def calibrate(
    workload: Workload,
    results: Sequence[ImputationResult],
    tracker=None,
    grid=None,
    bins: int = 10,
):
    """Run the ground-truth calibration pass over one method's results.

    Returns a fresh :class:`repro.obs.quality.ReliabilityLedger` binning
    reported confidence against realized per-segment accuracy (its
    ``ece()`` and ``rows()`` back the ``kamel quality`` table). When a
    :class:`repro.obs.quality.QualityTracker` is passed, every record is
    also folded into its ground-truth ledger and spatial map — wiring
    eval-time truth into the same state the ``/quality`` endpoint and the
    heatmap read.
    """
    from repro.obs.quality import ReliabilityLedger

    ledger = ReliabilityLedger(bins)
    for record in calibration_records(workload, results, grid=grid):
        ledger.record(record.confidence, record.accuracy)
        if tracker is not None:
            tracker.record_ground_truth(
                record.confidence, record.accuracy, record.cells
            )
    return ledger


def score_segments(
    records: Sequence[SegmentRecord],
    maxgap_m: float,
    delta_m: float,
) -> EvaluationScores:
    """Recall/precision/failure over a set of segment records."""
    recall_hits = recall_total = 0
    precision_hits = precision_total = 0
    failed = imputed = 0
    for rec in records:
        if len(rec.truth_points) < 2 or len(rec.imputed_points) < 2:
            continue
        truth_line = list(rec.truth_points)
        imputed_line = list(rec.imputed_points)
        for probe in Trajectory("t", truth_line).discretize(maxgap_m):
            recall_total += 1
            if point_to_polyline_distance(probe, imputed_line) <= delta_m:
                recall_hits += 1
        for probe in Trajectory("i", imputed_line).discretize(maxgap_m):
            precision_total += 1
            if point_to_polyline_distance(probe, truth_line) <= delta_m:
                precision_hits += 1
        if rec.failed is not None:
            imputed += 1
            if rec.failed:
                failed += 1
    return EvaluationScores(
        recall=recall_hits / recall_total if recall_total else 0.0,
        precision=precision_hits / precision_total if precision_total else 0.0,
        failure_rate=failed / imputed if imputed else 0.0,
        num_trajectories=0,
        num_segments=len(records),
    )
