"""Per-figure experiment definitions (paper Section 8).

One function per table/figure of the paper's evaluation. Each returns a
plain dict of series keyed the way the paper's plots are, so benchmarks
can both assert on shapes and print paper-style rows. ``Scale`` controls
dataset/sweep sizes: ``Scale.small()`` finishes in seconds and is what the
benchmark suite runs; ``Scale.full()`` is the overnight setting.

Synthetic-city workloads stand in for Porto/Jakarta (see DESIGN.md); sweep
axes are scaled to the ~3 km cities (the paper's 500–4000 m sparseness on
a ~25 km city becomes 400–2000 m here).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.core.config import KamelConfig
from repro.eval.harness import (
    DEFAULT_BUILDERS,
    ExperimentRunner,
    Workload,
    build_workload,
    classify_segments,
    kamel_builder,
    score_segments,
)
from repro.roadnet.datasets import Dataset, make_jakarta_like, make_porto_like

METHODS = ("KAMEL", "TrImpute", "Linear", "MapMatch")


@dataclass(frozen=True)
class Scale:
    """Experiment sizing knobs."""

    porto_trajectories: int = 800
    jakarta_trajectories: int = 150
    max_test: int = 8
    sparseness_m: tuple[float, ...] = (400.0, 800.0, 1200.0, 1600.0, 2000.0)
    deltas_m: tuple[float, ...] = (10.0, 25.0, 50.0, 75.0, 100.0)
    default_sparseness_m: float = 800.0
    porto_delta_m: float = 50.0
    jakarta_delta_m: float = 25.0
    maxgap_m: float = 100.0

    @classmethod
    def small(cls) -> "Scale":
        """Benchmark-suite sizing: every figure in seconds, shapes intact."""
        return cls(
            porto_trajectories=800,
            jakarta_trajectories=150,
            max_test=5,
            sparseness_m=(400.0, 800.0, 1600.0),
            deltas_m=(10.0, 25.0, 50.0, 100.0),
        )

    @classmethod
    def full(cls) -> "Scale":
        return cls(
            porto_trajectories=1600,
            jakarta_trajectories=300,
            max_test=15,
        )


@functools.lru_cache(maxsize=8)
def _dataset(name: str, n: int) -> Dataset:
    if name == "porto":
        return make_porto_like(n_trajectories=n)
    if name == "jakarta":
        return make_jakarta_like(n_trajectories=n)
    raise ValueError(f"unknown dataset {name!r}")


def porto_workload(scale: Scale) -> Workload:
    return build_workload(
        _dataset("porto", scale.porto_trajectories),
        sparse_distance_m=scale.default_sparseness_m,
        maxgap_m=scale.maxgap_m,
        delta_m=scale.porto_delta_m,
        max_test=scale.max_test,
    )


def jakarta_workload(scale: Scale) -> Workload:
    return build_workload(
        _dataset("jakarta", scale.jakarta_trajectories),
        sparse_distance_m=scale.default_sparseness_m,
        maxgap_m=scale.maxgap_m,
        delta_m=scale.jakarta_delta_m,
        max_test=scale.max_test,
    )


def _run_methods(
    workload: Workload,
    methods: Sequence[str] = METHODS,
    trained: Optional[dict] = None,
) -> dict[str, dict[str, float]]:
    runner = ExperimentRunner(workload, trained=trained)
    out: dict[str, dict[str, float]] = {}
    for name in methods:
        scores = runner.run_default(name)
        out[name] = {
            "recall": scores.scores.recall,
            "precision": scores.scores.precision,
            "failure_rate": scores.scores.failure_rate,
            "train_time_s": scores.train_time_s,
            "impute_time_s": scores.impute_time_s,
        }
    return out


# -- Figure 9: impact of data sparseness -------------------------------------


def fig9_sparseness(
    scale: Optional[Scale] = None, methods: Sequence[str] = METHODS
) -> dict:
    """Recall/precision/failure vs Sparse_distance, both datasets."""
    scale = scale or Scale.small()
    out: dict = {"sparseness_m": list(scale.sparseness_m), "datasets": {}}
    for dataset_name, workload in (
        ("porto-like", porto_workload(scale)),
        ("jakarta-like", jakarta_workload(scale)),
    ):
        series: dict[str, dict[str, list[float]]] = {
            m: {"recall": [], "precision": [], "failure_rate": []} for m in methods
        }
        trained: dict = {}
        for sparseness in scale.sparseness_m:
            results = _run_methods(workload.with_sparseness(sparseness), methods, trained)
            for m in methods:
                for metric in ("recall", "precision", "failure_rate"):
                    series[m][metric].append(results[m][metric])
        out["datasets"][dataset_name] = series
    return out


# -- Figure 10: impact of the accuracy threshold ------------------------------


def fig10_threshold(
    scale: Optional[Scale] = None, methods: Sequence[str] = METHODS
) -> dict:
    """Recall/precision vs delta, both datasets.

    Imputation runs once per dataset; only the scoring threshold sweeps
    (exactly how the paper evaluates this figure).
    """
    scale = scale or Scale.small()
    out: dict = {"deltas_m": list(scale.deltas_m), "datasets": {}}
    for dataset_name, workload in (
        ("porto-like", porto_workload(scale)),
        ("jakarta-like", jakarta_workload(scale)),
    ):
        runner = ExperimentRunner(workload)
        series: dict[str, dict[str, list[float]]] = {
            m: {"recall": [], "precision": []} for m in methods
        }
        for m in methods:
            runner.impute(m, DEFAULT_BUILDERS[m]())
        for delta in scale.deltas_m:
            scoped = ExperimentRunner(workload.with_delta(delta), trained=runner._trained)
            scoped._imputed = runner._imputed
            for m in methods:
                scores = scoped.run_default(m)
                series[m]["recall"].append(scores.scores.recall)
                series[m]["precision"].append(scores.scores.precision)
        out["datasets"][dataset_name] = series
    return out


# -- Figure 11: training and imputation time -----------------------------------


def fig11_timing(
    scale: Optional[Scale] = None, methods: Sequence[str] = ("KAMEL", "TrImpute", "MapMatch")
) -> dict:
    """Wall-clock training and imputation time per dataset and method."""
    scale = scale or Scale.small()
    out: dict = {"datasets": {}}
    for dataset_name, workload in (
        ("porto-like", porto_workload(scale)),
        ("jakarta-like", jakarta_workload(scale)),
    ):
        results = _run_methods(workload, methods)
        out["datasets"][dataset_name] = {
            m: {
                "train_time_s": results[m]["train_time_s"],
                "impute_time_s": results[m]["impute_time_s"],
            }
            for m in methods
        }
    return out


# -- Figure 12-I/II: impact of road type ----------------------------------------


def fig12_road_type(
    scale: Optional[Scale] = None,
    methods: Sequence[str] = ("KAMEL", "TrImpute", "Linear"),
) -> dict:
    """Straight vs curved segment metrics across sparseness (Jakarta)."""
    scale = scale or Scale.small()
    workload = jakarta_workload(scale)
    out: dict = {"sparseness_m": list(scale.sparseness_m), "classes": {}}
    for road_class in ("straight", "curved"):
        out["classes"][road_class] = {
            m: {"recall": [], "precision": [], "failure_rate": [], "num_segments": []}
            for m in methods
        }
    trained: dict = {}
    for sparseness in scale.sparseness_m:
        scoped = workload.with_sparseness(sparseness)
        runner = ExperimentRunner(scoped, trained=trained)
        for m in methods:
            results, _ = runner.impute(m, DEFAULT_BUILDERS[m]())
            records = classify_segments(scoped, results)
            for road_class in ("straight", "curved"):
                subset = [r for r in records if r.straight == (road_class == "straight")]
                scores = score_segments(subset, scoped.maxgap_m, scoped.delta_m)
                bucket = out["classes"][road_class][m]
                bucket["recall"].append(scores.recall)
                bucket["precision"].append(scores.precision)
                bucket["failure_rate"].append(scores.failure_rate)
                bucket["num_segments"].append(len(subset))
    return out


# -- Figure 12-III: grid type -----------------------------------------------------


def fig12_grid_type(scale: Optional[Scale] = None) -> dict:
    """KAMEL with hexagons (H3-style) vs area-matched squares (S2-style)."""
    scale = scale or Scale.small()
    workload = jakarta_workload(scale)
    variants = {
        "Hexagons": KamelConfig(maxgap_m=scale.maxgap_m, grid_type="hex", cell_edge_m=75.0),
        # 120 m squares ~ the same cell area as 75 m hexagons (paper 8.5).
        "Squares": KamelConfig(maxgap_m=scale.maxgap_m, grid_type="square", cell_edge_m=120.0),
    }
    out: dict = {"sparseness_m": list(scale.sparseness_m), "variants": {}}
    trained: dict = {}
    for label, config in variants.items():
        series = {"recall": [], "precision": [], "failure_rate": []}
        for sparseness in scale.sparseness_m:
            scoped = workload.with_sparseness(sparseness)
            runner = ExperimentRunner(scoped, trained=trained)
            scores = runner.run(label, kamel_builder(config))
            series["recall"].append(scores.scores.recall)
            series["precision"].append(scores.scores.precision)
            series["failure_rate"].append(scores.scores.failure_rate)
        out["variants"][label] = series
    return out


# -- Figure 12-IV/V: training data properties ----------------------------------------


def fig12_training_size(
    scale: Optional[Scale] = None, fractions: Sequence[float] = (1.0, 0.75, 0.5, 0.25)
) -> dict:
    """KAMEL trained on 100/75/50/25 % of the training trajectories."""
    scale = scale or Scale.small()
    workload = jakarta_workload(scale)
    out: dict = {"fractions": list(fractions), "series": {}}
    for fraction in fractions:
        cut = max(1, int(round(fraction * len(workload.train))))
        scoped = workload.with_train(workload.train[:cut])
        runner = ExperimentRunner(scoped)
        scores = runner.run(f"KAMEL-{int(fraction * 100)}%", kamel_builder())
        out["series"][f"{int(fraction * 100)}%"] = scores.scores.as_dict()
    return out


def fig12_training_density(
    scale: Optional[Scale] = None,
    sampling_intervals_s: Sequence[float] = (1.0, 15.0, 30.0, 60.0),
) -> dict:
    """KAMEL trained on down-sampled (1/15/30/60 s) training trajectories."""
    scale = scale or Scale.small()
    workload = jakarta_workload(scale)
    out: dict = {"sampling_s": list(sampling_intervals_s), "series": {}}
    for interval in sampling_intervals_s:
        resampled = [t.resample_time(interval) for t in workload.train]
        scoped = workload.with_train(resampled)
        runner = ExperimentRunner(scoped)
        scores = runner.run(f"KAMEL-{interval:.0f}s", kamel_builder())
        out["series"][f"{interval:.0f}s"] = scores.scores.as_dict()
    return out


# -- Figure 12-VI: ablation ------------------------------------------------------------


def fig12_ablation(scale: Optional[Scale] = None) -> dict:
    """Full KAMEL vs No Part. / No Const. / No Multi. (Jakarta)."""
    scale = scale or Scale.small()
    workload = jakarta_workload(scale)
    variants = {
        "KAMEL": KamelConfig(maxgap_m=scale.maxgap_m),
        "No Part.": KamelConfig(maxgap_m=scale.maxgap_m, use_partitioning=False),
        "No Const.": KamelConfig(maxgap_m=scale.maxgap_m, use_constraints=False),
        "No Multi.": KamelConfig(maxgap_m=scale.maxgap_m, use_multipoint=False),
    }
    out: dict = {"sparseness_m": list(scale.sparseness_m), "variants": {}}
    trained: dict = {}
    for label, config in variants.items():
        series = {"recall": [], "precision": [], "failure_rate": []}
        for sparseness in scale.sparseness_m:
            scoped = workload.with_sparseness(sparseness)
            runner = ExperimentRunner(scoped, trained=trained)
            scores = runner.run(label, kamel_builder(config))
            series["recall"].append(scores.scores.recall)
            series["precision"].append(scores.scores.precision)
            series["failure_rate"].append(scores.scores.failure_rate)
        out["variants"][label] = series
    return out


# -- Figure 3(d): cell-size accuracy curve ------------------------------------------------


def fig3_cell_size(
    scale: Optional[Scale] = None,
    cell_sizes_m: Sequence[float] = (25.0, 50.0, 75.0, 150.0, 300.0),
) -> dict:
    """Imputation accuracy as a function of the hexagon edge length.

    Reproduces the Section 3.2 optimization curve: both very small and
    very large cells hurt; the optimum is interior.
    """
    scale = scale or Scale.small()
    workload = porto_workload(scale)
    out: dict = {"cell_sizes_m": list(cell_sizes_m), "series": {"recall": [], "precision": []}}
    for size in cell_sizes_m:
        config = KamelConfig(maxgap_m=scale.maxgap_m, cell_edge_m=size)
        runner = ExperimentRunner(workload)
        scores = runner.run(f"KAMEL-{size:.0f}m", kamel_builder(config))
        out["series"]["recall"].append(scores.scores.recall)
        out["series"]["precision"].append(scores.scores.precision)
    return out


ALL_FIGURES: dict[str, Callable[..., dict]] = {
    "fig9": fig9_sparseness,
    "fig10": fig10_threshold,
    "fig11": fig11_timing,
    "fig12-road-type": fig12_road_type,
    "fig12-grid-type": fig12_grid_type,
    "fig12-training-size": fig12_training_size,
    "fig12-training-density": fig12_training_density,
    "fig12-ablation": fig12_ablation,
    "fig3-cell-size": fig3_cell_size,
}
