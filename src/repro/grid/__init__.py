"""Spatial grids used by KAMEL's tokenization module.

Two interchangeable tessellations of the local planar frame:

* :class:`HexGrid` — a flat hexagonal grid, the from-scratch substitute for
  Uber's H3 index that the paper uses (Section 3.1). Every cell has six
  neighbours with identical centroid distance and shared-border length.
* :class:`SquareGrid` — a square grid, the substitute for Google S2 squares,
  used by the grid-type experiment (Fig. 12-III).

Cells are identified by small integer tuples (axial ``(q, r)`` coordinates
for hexagons, ``(col, row)`` for squares), so they are cheap to hash and to
intern into a :class:`repro.mlm.vocab.Vocabulary`.
"""

from repro.grid.base import Cell, Grid
from repro.grid.hexgrid import HexGrid
from repro.grid.squaregrid import SquareGrid

__all__ = ["Cell", "Grid", "HexGrid", "SquareGrid"]
