"""A flat hexagonal grid in axial coordinates (H3 substitute).

Pointy-top hexagons of edge length ``s`` tile the plane. A cell is an axial
coordinate ``(q, r)``; conversions follow the standard axial/cube formulas
(e.g. the Red Blob Games hexagon reference):

* centroid:  ``x = s * sqrt(3) * (q + r / 2)``, ``y = s * 3/2 * r``
* point -> cell: invert the above to fractional axial coordinates, then
  round in cube space (the component with the largest rounding error is
  recomputed from the other two).

Every cell has exactly six neighbours; all of them share a border of length
``s`` and sit at centroid distance ``s * sqrt(3)`` — the uniformity the
paper argues makes hexagons better BERT tokens than squares (Section 3.1).
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.geo import BoundingBox, Point
from repro.grid.base import Cell, Grid

_SQRT3 = math.sqrt(3.0)

_AXIAL_DIRECTIONS: tuple[Cell, ...] = (
    (1, 0),
    (1, -1),
    (0, -1),
    (-1, 0),
    (-1, 1),
    (0, 1),
)


def _cube_round(qf: float, rf: float) -> Cell:
    """Round fractional axial coordinates to the nearest hexagon."""
    sf = -qf - rf
    q, r, s = round(qf), round(rf), round(sf)
    dq, dr, ds = abs(q - qf), abs(r - rf), abs(s - sf)
    if dq > dr and dq > ds:
        q = -r - s
    elif dr > ds:
        r = -q - s
    return int(q), int(r)


class HexGrid(Grid):
    """Pointy-top hexagonal tessellation with edge length ``edge_length_m``."""

    @property
    def cell_area_m2(self) -> float:
        return 1.5 * _SQRT3 * self.edge_length_m**2

    @property
    def centroid_spacing_m(self) -> float:
        return _SQRT3 * self.edge_length_m

    def cell_of(self, point: Point) -> Cell:
        s = self.edge_length_m
        qf = (_SQRT3 / 3.0 * point.x - point.y / 3.0) / s
        rf = (2.0 / 3.0 * point.y) / s
        return _cube_round(qf, rf)

    def centroid(self, cell: Cell) -> Point:
        q, r = cell
        s = self.edge_length_m
        return Point(s * _SQRT3 * (q + r / 2.0), s * 1.5 * r)

    def neighbors(self, cell: Cell) -> list[Cell]:
        q, r = cell
        return [(q + dq, r + dr) for dq, dr in _AXIAL_DIRECTIONS]

    def cell_steps(self, a: Cell, b: Cell) -> int:
        dq = a[0] - b[0]
        dr = a[1] - b[1]
        return (abs(dq) + abs(dr) + abs(dq + dr)) // 2

    def cells_in_bbox(self, box: BoundingBox) -> Iterator[Cell]:
        s = self.edge_length_m
        # r is determined by y alone: y = 1.5 * s * r.
        r_lo = math.floor(box.min_y / (1.5 * s)) - 1
        r_hi = math.ceil(box.max_y / (1.5 * s)) + 1
        for r in range(r_lo, r_hi + 1):
            y = s * 1.5 * r
            if not (box.min_y <= y <= box.max_y):
                continue
            # At this row, x = s*sqrt(3)*(q + r/2): solve for the q window.
            q_lo = math.floor(box.min_x / (s * _SQRT3) - r / 2.0) - 1
            q_hi = math.ceil(box.max_x / (s * _SQRT3) - r / 2.0) + 1
            for q in range(q_lo, q_hi + 1):
                x = s * _SQRT3 * (q + r / 2.0)
                if box.min_x <= x <= box.max_x:
                    yield (q, r)

    def vertices(self, cell: Cell) -> list[Point]:
        """The six corner points of ``cell`` (useful for plotting/tests)."""
        c = self.centroid(cell)
        s = self.edge_length_m
        out = []
        for k in range(6):
            angle = math.pi / 6.0 + k * math.pi / 3.0  # pointy-top corners
            out.append(Point(c.x + s * math.cos(angle), c.y + s * math.sin(angle)))
        return out
