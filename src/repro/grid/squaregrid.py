"""A square grid (Google S2 substitute) for the grid-type experiment."""

from __future__ import annotations

import math
from typing import Iterator

from repro.geo import BoundingBox, Point
from repro.grid.base import Cell, Grid

_EDGE_DIRECTIONS: tuple[Cell, ...] = ((1, 0), (-1, 0), (0, 1), (0, -1))
_CORNER_DIRECTIONS: tuple[Cell, ...] = ((1, 1), (1, -1), (-1, 1), (-1, -1))


class SquareGrid(Grid):
    """Axis-aligned squares of side ``edge_length_m``.

    Cell ``(i, j)`` covers ``[i*E, (i+1)*E) x [j*E, (j+1)*E)``. As the paper
    notes when motivating hexagons (Section 3.1), a square cell has four
    edge-sharing neighbours plus four corner neighbours with different
    adjacency properties; :meth:`neighbors` returns the edge-sharing four
    and :meth:`neighbors_with_corners` all eight.
    """

    @property
    def cell_area_m2(self) -> float:
        return self.edge_length_m**2

    @property
    def centroid_spacing_m(self) -> float:
        return self.edge_length_m

    def cell_of(self, point: Point) -> Cell:
        e = self.edge_length_m
        return (math.floor(point.x / e), math.floor(point.y / e))

    def centroid(self, cell: Cell) -> Point:
        i, j = cell
        e = self.edge_length_m
        return Point((i + 0.5) * e, (j + 0.5) * e)

    def neighbors(self, cell: Cell) -> list[Cell]:
        i, j = cell
        return [(i + di, j + dj) for di, dj in _EDGE_DIRECTIONS]

    def neighbors_with_corners(self, cell: Cell) -> list[Cell]:
        """All eight surrounding cells (edge- and corner-sharing)."""
        i, j = cell
        return [
            (i + di, j + dj) for di, dj in _EDGE_DIRECTIONS + _CORNER_DIRECTIONS
        ]

    def cell_steps(self, a: Cell, b: Cell) -> int:
        # Manhattan distance: the minimum number of edge crossings.
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    def cells_in_bbox(self, box: BoundingBox) -> Iterator[Cell]:
        e = self.edge_length_m
        i_lo = math.floor(box.min_x / e) - 1
        i_hi = math.ceil(box.max_x / e) + 1
        j_lo = math.floor(box.min_y / e) - 1
        j_hi = math.ceil(box.max_y / e) + 1
        for i in range(i_lo, i_hi + 1):
            for j in range(j_lo, j_hi + 1):
                if box.contains_point(self.centroid((i, j))):
                    yield (i, j)

    @classmethod
    def area_matched(cls, hex_edge_length_m: float) -> "SquareGrid":
        """A square grid whose cells cover the same area as hexagons.

        The paper's Fig. 12-III comparison sets the S2 edge so the square
        covers a similar area to the 75 m hexagon; a hexagon of edge ``s``
        has area ``1.5*sqrt(3)*s^2``, so the matching square edge is
        ``s * sqrt(1.5*sqrt(3))`` (~1.61 s, i.e. ~121 m for 75 m hexagons,
        matching the paper's 120 m choice).
        """
        return cls(hex_edge_length_m * math.sqrt(1.5 * math.sqrt(3.0)))
