"""The grid interface shared by hexagonal and square tessellations."""

from __future__ import annotations

import abc
from typing import Iterator

from repro.geo import BoundingBox, Point

Cell = tuple[int, int]
"""A grid cell identifier: integer lattice coordinates."""


class Grid(abc.ABC):
    """A non-overlapping tessellation of the plane into cells.

    Concrete grids must map points to cells and cells back to centroid
    points, and enumerate neighbours. The ellipse/bbox enumeration helpers
    are implemented generically on top of those primitives.
    """

    def __init__(self, edge_length_m: float) -> None:
        if edge_length_m <= 0:
            raise ValueError(f"edge_length_m must be positive, got {edge_length_m!r}")
        self.edge_length_m = float(edge_length_m)

    # -- primitives ------------------------------------------------------

    @abc.abstractmethod
    def cell_of(self, point: Point) -> Cell:
        """The cell containing ``point``."""

    @abc.abstractmethod
    def centroid(self, cell: Cell) -> Point:
        """The centroid of ``cell`` (untimed)."""

    @abc.abstractmethod
    def neighbors(self, cell: Cell) -> list[Cell]:
        """Cells sharing an edge with ``cell``."""

    @abc.abstractmethod
    def cell_steps(self, a: Cell, b: Cell) -> int:
        """Minimum number of edge-crossing steps between two cells."""

    @property
    @abc.abstractmethod
    def cell_area_m2(self) -> float:
        """Area of one cell in square meters."""

    @property
    @abc.abstractmethod
    def centroid_spacing_m(self) -> float:
        """Distance between the centroids of two edge-sharing cells."""

    # -- derived operations ----------------------------------------------

    def cell_distance_m(self, a: Cell, b: Cell) -> float:
        """Euclidean distance between the centroids of two cells."""
        return self.centroid(a).distance_to(self.centroid(b))

    def ring(self, cell: Cell, radius: int) -> set[Cell]:
        """All cells within ``radius`` steps of ``cell`` (incl. itself)."""
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius!r}")
        seen = {cell}
        frontier = [cell]
        for _ in range(radius):
            nxt: list[Cell] = []
            for c in frontier:
                for n in self.neighbors(c):
                    if n not in seen:
                        seen.add(n)
                        nxt.append(n)
            frontier = nxt
        return seen

    @abc.abstractmethod
    def cells_in_bbox(self, box: BoundingBox) -> Iterator[Cell]:
        """Every cell whose centroid lies inside ``box``."""

    def cells_in_ellipse(self, f1: Point, f2: Point, max_distance_sum: float) -> set[Cell]:
        """Cells whose centroid lies in the ellipse with foci ``f1``/``f2``.

        The ellipse is the speed-constraint area of Section 5.1: the locus
        of points whose summed distance to the two foci is at most
        ``max_distance_sum``.
        """
        if max_distance_sum < f1.distance_to(f2):
            return set()
        # Bounding box of the ellipse: semi-major a along the focal axis,
        # semi-minor b; an axis-aligned box of half-extents a covers it.
        semi_major = max_distance_sum / 2.0
        cx, cy = (f1.x + f2.x) / 2.0, (f1.y + f2.y) / 2.0
        box = BoundingBox(cx - semi_major, cy - semi_major, cx + semi_major, cy + semi_major)
        out: set[Cell] = set()
        for cell in self.cells_in_bbox(box):
            c = self.centroid(cell)
            if c.distance_to(f1) + c.distance_to(f2) <= max_distance_sum:
                out.add(cell)
        return out

    def cells_in_cone(
        self, apex: Point, direction: float, half_angle: float, max_range: float
    ) -> set[Cell]:
        """Cells whose centroid falls in an angular cone from ``apex``.

        Used by the direction constraint of Section 5.1: the cone opens
        around ``direction`` (radians) with the given ``half_angle`` and
        reaches ``max_range`` meters.
        """
        from repro.geo.point import angle_difference  # local import: tiny helper

        box = BoundingBox(
            apex.x - max_range, apex.y - max_range, apex.x + max_range, apex.y + max_range
        )
        out: set[Cell] = set()
        for cell in self.cells_in_bbox(box):
            c = self.centroid(cell)
            d = apex.distance_to(c)
            if d == 0.0 or d > max_range:
                continue
            if angle_difference(apex.bearing_to(c), direction) <= half_angle:
                out.add(cell)
        return out

    def __repr__(self) -> str:
        return f"{type(self).__name__}(edge_length_m={self.edge_length_m})"
