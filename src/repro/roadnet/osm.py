"""OpenStreetMap XML import: build a :class:`RoadNetwork` from real data.

The synthetic generator covers the paper's experiments; this loader lets a
user point the map-matching reference (and the map-inference evaluation)
at a real extract. Parses the standard OSM XML format (``<node>`` +
``<way>`` elements), keeps ways carrying a ``highway`` tag from a
configurable whitelist, projects coordinates into the local planar frame,
and returns the largest connected component.

Only stdlib XML parsing is used; files of a few hundred MB are out of
scope (clip extracts first).
"""

from __future__ import annotations

import pathlib
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.errors import EmptyInputError, KamelError
from repro.geo import LocalProjection
from repro.roadnet.network import RoadNetwork

DEFAULT_HIGHWAY_TYPES = frozenset(
    {
        "motorway",
        "trunk",
        "primary",
        "secondary",
        "tertiary",
        "unclassified",
        "residential",
        "living_street",
        "service",
        "motorway_link",
        "trunk_link",
        "primary_link",
        "secondary_link",
        "tertiary_link",
    }
)


@dataclass(frozen=True)
class OsmImportResult:
    """The imported network plus the projection that placed it."""

    network: RoadNetwork
    projection: LocalProjection
    num_ways: int
    num_skipped_ways: int
    highway_counts: dict = field(default_factory=dict)


def load_osm_xml(
    source: Union[str, pathlib.Path],
    highway_types: Optional[frozenset] = None,
    projection: Optional[LocalProjection] = None,
) -> OsmImportResult:
    """Parse OSM XML from a path or an XML string.

    ``source`` is treated as a file path when such a file exists,
    otherwise as the XML content itself (handy for tests and snippets).
    """
    allowed = highway_types if highway_types is not None else DEFAULT_HIGHWAY_TYPES
    text = None
    candidate = pathlib.Path(str(source))
    try:
        if candidate.is_file():
            text = candidate.read_text()
    except OSError:
        text = None
    if text is None:
        text = str(source)
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise KamelError(f"invalid OSM XML: {exc}") from exc

    # Pass 1: node coordinates.
    node_coords: dict[str, tuple[float, float]] = {}
    for node in root.iter("node"):
        node_id = node.get("id")
        lat, lon = node.get("lat"), node.get("lon")
        if node_id is None or lat is None or lon is None:
            continue
        node_coords[node_id] = (float(lat), float(lon))
    if not node_coords:
        raise EmptyInputError("OSM input contains no nodes")

    if projection is None:
        mean_lat = sum(lat for lat, _ in node_coords.values()) / len(node_coords)
        mean_lon = sum(lon for _, lon in node_coords.values()) / len(node_coords)
        projection = LocalProjection(mean_lat, mean_lon)

    # Pass 2: ways.
    network = RoadNetwork()
    added_nodes: set[str] = set()
    highway_counts: dict[str, int] = {}
    num_ways = 0
    num_skipped = 0
    for way in root.iter("way"):
        tags = {
            tag.get("k"): tag.get("v")
            for tag in way.findall("tag")
            if tag.get("k") is not None
        }
        highway = tags.get("highway")
        if highway not in allowed:
            num_skipped += 1
            continue
        refs = [nd.get("ref") for nd in way.findall("nd")]
        refs = [r for r in refs if r in node_coords]
        if len(refs) < 2:
            num_skipped += 1
            continue
        num_ways += 1
        highway_counts[highway] = highway_counts.get(highway, 0) + 1
        for ref in refs:
            if ref not in added_nodes:
                lat, lon = node_coords[ref]
                network.add_node(ref, projection.to_local(lat, lon))
                added_nodes.add(ref)
        for u, v in zip(refs, refs[1:]):
            if u != v and not network.graph.has_edge(u, v):
                network.add_edge(u, v)

    if network.num_edges == 0:
        raise EmptyInputError("OSM input contains no usable highway ways")
    return OsmImportResult(
        network=network.largest_component(),
        projection=projection,
        num_ways=num_ways,
        num_skipped_ways=num_skipped,
        highway_counts=highway_counts,
    )
