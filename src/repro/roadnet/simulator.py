"""GPS trajectory simulation over a road network.

Trips pick random origin/destination nodes, follow the shortest path, and
drive it with a per-trip cruise speed plus short-term speed fluctuations.
The vehicle position is sampled every ``sample_interval_s`` seconds and
perturbed by isotropic Gaussian GPS noise, producing the timestamped,
road-constrained, noisy trajectories that real taxi datasets exhibit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import networkx as nx
import numpy as np

from repro.errors import ConfigError, EmptyInputError
from repro.geo import Point, Trajectory, interpolate
from repro.roadnet.network import RoadNetwork


@dataclass(frozen=True)
class SimulatorConfig:
    """Trip and sensor model parameters."""

    speed_mean_mps: float = 11.0
    """Mean cruise speed (~40 km/h)."""
    speed_std_mps: float = 2.5
    """Across-trip cruise speed spread."""
    speed_jitter: float = 0.15
    """Within-trip relative speed fluctuation per sample."""
    gps_noise_std_m: float = 5.0
    sample_interval_s: float = 1.0
    min_trip_length_m: float = 800.0
    max_trip_length_m: float = float("inf")
    hotspot_fraction: float = 0.0
    """Fraction of trip endpoints drawn from a small set of hub nodes
    (taxi stands, stations) instead of uniformly — real taxi demand is
    heavily clustered, and a non-zero value skews coverage accordingly."""
    n_hotspots: int = 3
    seed: int = 11

    def __post_init__(self) -> None:
        if self.speed_mean_mps <= 0:
            raise ConfigError("speed_mean_mps must be positive")
        if self.sample_interval_s <= 0:
            raise ConfigError("sample_interval_s must be positive")
        if self.min_trip_length_m < 0:
            raise ConfigError("min_trip_length_m must be non-negative")
        if self.gps_noise_std_m < 0:
            raise ConfigError("gps_noise_std_m must be non-negative")
        if not 0.0 <= self.hotspot_fraction <= 1.0:
            raise ConfigError("hotspot_fraction must be in [0, 1]")
        if self.n_hotspots < 1:
            raise ConfigError("n_hotspots must be >= 1")


class TrajectorySimulator:
    """Simulates GPS trajectories of shortest-path trips on a network."""

    def __init__(self, network: RoadNetwork, config: Optional[SimulatorConfig] = None) -> None:
        if network.num_nodes == 0:
            raise EmptyInputError("cannot simulate on an empty network")
        self.network = network
        self.config = config or SimulatorConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self._nodes = list(network.nodes())
        # Hubs come from their own RNG stream: drawing them from the main
        # stream would shift every subsequent trip for all users of the
        # default (hotspot-free) configuration.
        hub_rng = np.random.default_rng(self.config.seed + 7777)
        n_hubs = min(self.config.n_hotspots, len(self._nodes))
        hub_indices = hub_rng.choice(len(self._nodes), size=n_hubs, replace=False)
        self.hotspots = [self._nodes[int(i)] for i in hub_indices]

    def _random_endpoint(self):
        """One trip endpoint: a hub with ``hotspot_fraction`` probability."""
        cfg = self.config
        if self._rng.random() < cfg.hotspot_fraction:
            return self.hotspots[int(self._rng.integers(len(self.hotspots)))]
        return self._nodes[int(self._rng.integers(len(self._nodes)))]

    def _random_trip_path(self, max_attempts: int = 50) -> list:
        """A random node path whose length satisfies the trip bounds."""
        cfg = self.config
        for _ in range(max_attempts):
            if cfg.hotspot_fraction > 0:
                source = self._random_endpoint()
                target = self._random_endpoint()
                if source == target:
                    continue
            else:
                # Keep the original single-draw sampling so the default
                # configuration consumes the RNG stream exactly as before
                # hotspots existed (recorded experiment numbers depend on
                # bit-identical datasets).
                u, v = self._rng.choice(len(self._nodes), size=2, replace=False)
                source, target = self._nodes[int(u)], self._nodes[int(v)]
            try:
                length = self.network.shortest_path_length(source, target)
            except nx.NetworkXNoPath:
                continue
            if cfg.min_trip_length_m <= length <= cfg.max_trip_length_m:
                return self.network.shortest_path(source, target)
        raise EmptyInputError(
            "could not sample a trip within the configured length bounds; "
            "check min/max_trip_length_m against the city extent"
        )

    def _drive(self, polyline: list[Point], start_time: float) -> list[Point]:
        """Drive ``polyline`` and emit noisy samples every interval."""
        cfg = self.config
        cruise = max(1.0, self._rng.normal(cfg.speed_mean_mps, cfg.speed_std_mps))
        samples: list[Point] = []
        t = start_time
        seg_idx = 0
        seg_pos = 0.0  # meters into the current segment
        pos = polyline[0]
        samples.append(self._noisy(pos, t))
        while seg_idx < len(polyline) - 1:
            speed = cruise * max(0.2, 1.0 + self._rng.normal(0.0, cfg.speed_jitter))
            advance = speed * cfg.sample_interval_s
            # Walk forward `advance` meters across segments.
            while advance > 0 and seg_idx < len(polyline) - 1:
                a, b = polyline[seg_idx], polyline[seg_idx + 1]
                seg_len = a.distance_to(b)
                remaining = seg_len - seg_pos
                if advance < remaining:
                    seg_pos += advance
                    advance = 0.0
                    pos = interpolate(a, b, seg_pos / seg_len) if seg_len else b
                else:
                    advance -= remaining
                    seg_idx += 1
                    seg_pos = 0.0
                    pos = b
            t += cfg.sample_interval_s
            samples.append(self._noisy(pos, t))
        return samples

    def _noisy(self, p: Point, t: float) -> Point:
        nx_, ny_ = self._rng.normal(0.0, self.config.gps_noise_std_m, size=2)
        return Point(p.x + nx_, p.y + ny_, t)

    def simulate_one(self, traj_id: str, start_time: float = 0.0) -> Trajectory:
        """One random trip as a noisy sampled trajectory."""
        path = self._random_trip_path()
        polyline = self.network.path_geometry(path)
        return Trajectory(traj_id, self._drive(polyline, start_time))

    def simulate(self, n: int, id_prefix: str = "trip") -> list[Trajectory]:
        """``n`` independent trips."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n!r}")
        return [self.simulate_one(f"{id_prefix}-{k}", start_time=0.0) for k in range(n)]

    def stream(self, id_prefix: str = "trip") -> Iterator[Trajectory]:
        """An endless stream of trips (for the online-mode examples)."""
        k = 0
        while True:
            yield self.simulate_one(f"{id_prefix}-{k}")
            k += 1
