"""Synthetic road networks and GPS trajectory simulation.

The paper evaluates on the Porto taxi and Jakarta ride-sharing datasets,
which are not redistributable inside this sandbox. This package builds the
closest synthetic equivalent: a procedurally generated city road network
(grid arterials with jitter, diagonal avenues, curved roads, roundabouts)
and a trip simulator that drives shortest paths over it at realistic speeds,
emitting noisy GPS samples at a configurable rate.

KAMEL itself never sees the network — only the trajectories — exactly as in
the paper. The network is used only by (a) the simulator that produces
ground-truth trajectories and (b) the map-matching reference baseline.
"""

from repro.roadnet.network import RoadNetwork
from repro.roadnet.generator import CityConfig, generate_city
from repro.roadnet.simulator import SimulatorConfig, TrajectorySimulator
from repro.roadnet.datasets import (
    Dataset,
    make_city_dataset,
    make_jakarta_like,
    make_porto_like,
)

__all__ = [
    "CityConfig",
    "Dataset",
    "RoadNetwork",
    "SimulatorConfig",
    "TrajectorySimulator",
    "generate_city",
    "make_city_dataset",
    "make_jakarta_like",
    "make_porto_like",
]
