"""Dataset factories mirroring the paper's Porto and Jakarta workloads.

The real datasets are unavailable offline; these factories produce synthetic
stand-ins that preserve the *contrast the paper's analysis relies on*:

* **Porto-like** — many trajectories, each short (the real Porto set
  averages ~50 points per trajectory).
* **Jakarta-like** — far fewer trajectories, each much longer and densely
  sampled (the real Jakarta set averages ~1000 points per trajectory),
  which the paper credits for KAMEL's stronger Jakarta numbers.

Both ship with an 80/20 train/test split helper matching Section 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.geo import Trajectory
from repro.roadnet.generator import CityConfig, generate_city
from repro.roadnet.network import RoadNetwork
from repro.roadnet.simulator import SimulatorConfig, TrajectorySimulator


@dataclass(frozen=True)
class Dataset:
    """A named workload: the (hidden) network plus its trajectories.

    ``network`` exists only for ground-truth simulation and the
    map-matching reference — KAMEL never reads it.
    """

    name: str
    network: RoadNetwork
    trajectories: tuple[Trajectory, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not isinstance(self.trajectories, tuple):
            object.__setattr__(self, "trajectories", tuple(self.trajectories))

    @property
    def num_points(self) -> int:
        return sum(len(t) for t in self.trajectories)

    @property
    def mean_points_per_trajectory(self) -> float:
        if not self.trajectories:
            return 0.0
        return self.num_points / len(self.trajectories)

    def split(self, train_fraction: float = 0.8, seed: int = 0) -> tuple[
        list[Trajectory], list[Trajectory]
    ]:
        """Shuffled train/test split (paper: 80 % / 20 %)."""
        if not 0.0 < train_fraction < 1.0:
            raise ConfigError(f"train_fraction must be in (0,1), got {train_fraction!r}")
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self.trajectories))
        cut = int(round(train_fraction * len(self.trajectories)))
        train = [self.trajectories[i] for i in order[:cut]]
        test = [self.trajectories[i] for i in order[cut:]]
        return train, test


def make_city_dataset(
    name: str,
    n_trajectories: int,
    city: CityConfig | None = None,
    simulator: SimulatorConfig | None = None,
) -> Dataset:
    """Generate a city and simulate ``n_trajectories`` trips over it."""
    network = generate_city(city)
    sim = TrajectorySimulator(network, simulator)
    return Dataset(name, network, tuple(sim.simulate(n_trajectories, id_prefix=name)))


def make_porto_like(
    n_trajectories: int = 300,
    scale: float = 1.0,
    seed: int = 7,
) -> Dataset:
    """Porto-style workload: many short taxi trips.

    ``scale`` multiplies the city extent (1.0 -> ~3x3 km). Trips are kept
    short (0.8–2.5 km) and sampled every 15 s like the real Porto data,
    yielding a few tens of points per trajectory.
    """
    city = CityConfig(
        width_m=3000.0 * scale,
        height_m=3000.0 * scale,
        block_m=250.0,
        seed=seed,
    )
    sim = SimulatorConfig(
        sample_interval_s=15.0,
        min_trip_length_m=800.0 * scale,
        max_trip_length_m=2500.0 * scale,
        seed=seed + 1,
    )
    return make_city_dataset("porto-like", n_trajectories, city, sim)


def make_jakarta_like(
    n_trajectories: int = 60,
    scale: float = 1.0,
    seed: int = 13,
) -> Dataset:
    """Jakarta-style workload: few but long, densely sampled trips."""
    city = CityConfig(
        width_m=3200.0 * scale,
        height_m=3200.0 * scale,
        block_m=250.0,
        n_roundabouts=4,
        curved_fraction=0.3,
        seed=seed,
    )
    sim = SimulatorConfig(
        sample_interval_s=1.0,
        min_trip_length_m=2500.0 * scale,
        max_trip_length_m=6500.0 * scale,
        seed=seed + 1,
    )
    return make_city_dataset("jakarta-like", n_trajectories, city, sim)
