"""Procedural city road-network generation.

Builds a synthetic city with the road features the paper's analysis leans
on (Section 5's constraint examples and Section 8.4's road-type study):

* a jittered grid of arterial streets (straight segments),
* curved roads (quadratic-Bezier bulges replacing some straight edges),
* roundabouts replacing selected intersections,
* diagonal avenues whose polylines cross other roads without sharing a
  node — the planar-graph analogue of an overpass.

Generation is fully deterministic for a given seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.geo import Point
from repro.roadnet.network import RoadNetwork


@dataclass(frozen=True)
class CityConfig:
    """Parameters of the synthetic city.

    The defaults produce a ~3 km x 3 km city, small enough for tests and
    large enough that the paper's scaled sparseness sweep (250–2000 m gaps)
    is meaningful. ``repro.roadnet.datasets`` scales these per dataset.
    """

    width_m: float = 3000.0
    height_m: float = 3000.0
    block_m: float = 250.0
    """Spacing between arterial streets."""
    jitter_m: float = 30.0
    """Random displacement applied to every grid intersection."""
    removal_fraction: float = 0.12
    """Fraction of grid edges randomly removed (creates irregular blocks)."""
    curved_fraction: float = 0.25
    """Fraction of surviving edges replaced by curved geometry."""
    curve_bulge: float = 0.35
    """Bezier control-point offset as a fraction of edge length."""
    n_roundabouts: int = 3
    roundabout_radius_m: float = 25.0
    n_diagonals: int = 2
    """Diagonal avenues crossing the grid (overpass-style, no shared nodes)."""
    seed: int = 7

    def __post_init__(self) -> None:
        if self.width_m <= 0 or self.height_m <= 0:
            raise ConfigError("city extent must be positive")
        if self.block_m <= 0 or self.block_m > min(self.width_m, self.height_m):
            raise ConfigError(f"block_m out of range: {self.block_m!r}")
        if not 0.0 <= self.removal_fraction < 0.5:
            raise ConfigError("removal_fraction must be in [0, 0.5)")
        if not 0.0 <= self.curved_fraction <= 1.0:
            raise ConfigError("curved_fraction must be in [0, 1]")


def _bezier(a: Point, c: Point, b: Point, n: int) -> list[Point]:
    """Sample a quadratic Bezier curve from ``a`` to ``b`` via control ``c``."""
    out = []
    for k in range(n + 1):
        t = k / n
        x = (1 - t) ** 2 * a.x + 2 * (1 - t) * t * c.x + t**2 * b.x
        y = (1 - t) ** 2 * a.y + 2 * (1 - t) * t * c.y + t**2 * b.y
        out.append(Point(x, y))
    return out


def _curved_geometry(a: Point, b: Point, bulge: float, rng: np.random.Generator) -> list[Point]:
    """Bulged edge geometry: a Bezier arc bowing to one side."""
    mid = a.midpoint(b)
    length = a.distance_to(b)
    angle = a.bearing_to(b) + math.pi / 2.0 * (1 if rng.random() < 0.5 else -1)
    control = Point(
        mid.x + bulge * length * math.cos(angle),
        mid.y + bulge * length * math.sin(angle),
    )
    samples = max(4, int(length / 25.0))
    geom = _bezier(a, control, b, samples)
    geom[0], geom[-1] = a, b  # pin endpoints exactly
    return geom


def generate_city(config: CityConfig | None = None) -> RoadNetwork:
    """Generate a synthetic city road network per ``config``."""
    cfg = config or CityConfig()
    rng = np.random.default_rng(cfg.seed)
    net = RoadNetwork()

    cols = int(cfg.width_m / cfg.block_m) + 1
    rows = int(cfg.height_m / cfg.block_m) + 1
    if cols < 3 or rows < 3:
        raise ConfigError("city too small for its block size (need >= 3x3 grid)")

    # 1. Jittered grid intersections.
    coords: dict[tuple[int, int], Point] = {}
    for i in range(cols):
        for j in range(rows):
            jx, jy = rng.normal(0.0, cfg.jitter_m, size=2)
            coords[(i, j)] = Point(i * cfg.block_m + jx, j * cfg.block_m + jy)
            net.add_node(("g", i, j), coords[(i, j)])

    # 2. Grid edges with random removals.
    grid_edges: list[tuple[tuple, tuple]] = []
    for i in range(cols):
        for j in range(rows):
            if i + 1 < cols:
                grid_edges.append((("g", i, j), ("g", i + 1, j)))
            if j + 1 < rows:
                grid_edges.append((("g", i, j), ("g", i, j + 1)))
    removable = rng.permutation(len(grid_edges))
    n_remove = int(cfg.removal_fraction * len(grid_edges))
    removed = set(int(k) for k in removable[:n_remove])
    kept = [e for k, e in enumerate(grid_edges) if k not in removed]

    # 3. Curved geometry on a random subset of kept edges.
    curved_mask = rng.random(len(kept)) < cfg.curved_fraction
    for (u, v), curved in zip(kept, curved_mask):
        a, b = net.node_point(u), net.node_point(v)
        if curved:
            net.add_edge(u, v, _curved_geometry(a, b, cfg.curve_bulge, rng))
        else:
            net.add_edge(u, v)

    # 4. Roundabouts: replace interior intersections by a ring of nodes.
    interior = [
        (i, j) for i in range(1, cols - 1) for j in range(1, rows - 1)
    ]
    rng.shuffle(interior)
    made = 0
    for i, j in interior:
        if made >= cfg.n_roundabouts:
            break
        node = ("g", i, j)
        if node not in net.graph or net.graph.degree(node) < 3:
            continue
        made += 1
        center = net.node_point(node)
        neighbours = list(net.graph.neighbors(node))
        # Ring nodes placed toward each neighbour, connected in a cycle.
        ring: list[tuple] = []
        for k, nb in enumerate(neighbours):
            angle = center.bearing_to(net.node_point(nb))
            rp = Point(
                center.x + cfg.roundabout_radius_m * math.cos(angle),
                center.y + cfg.roundabout_radius_m * math.sin(angle),
            )
            rid = ("r", i, j, k)
            net.add_node(rid, rp)
            ring.append(rid)
        # Reconnect each neighbour to its ring node, preserving curvature
        # is unnecessary at this 25 m scale: straight stubs suffice.
        for rid, nb in zip(ring, neighbours):
            net.graph.remove_edge(node, nb)
            net.add_edge(rid, nb)
        # Close the ring with short arcs (ordered by angle around center).
        ring_sorted = sorted(
            ring, key=lambda r: center.bearing_to(net.node_point(r))
        )
        for a_id, b_id in zip(ring_sorted, ring_sorted[1:] + ring_sorted[:1]):
            pa, pb = net.node_point(a_id), net.node_point(b_id)
            if pa.distance_to(pb) < 1e-6:
                continue
            mid_angle = math.atan2(
                (pa.y + pb.y) / 2.0 - center.y, (pa.x + pb.x) / 2.0 - center.x
            )
            arc_mid = Point(
                center.x + cfg.roundabout_radius_m * 1.15 * math.cos(mid_angle),
                center.y + cfg.roundabout_radius_m * 1.15 * math.sin(mid_angle),
            )
            net.add_edge(a_id, b_id, _bezier(pa, arc_mid, pb, 4))
        net.graph.remove_node(node)

    # 5. Diagonal avenues: long edges whose geometry crosses the grid
    #    without intersecting it (overpass-style).
    for d in range(cfg.n_diagonals):
        if d % 2 == 0:
            u, v = ("g", 0, 0), ("g", cols - 1, rows - 1)
        else:
            u, v = ("g", 0, rows - 1), ("g", cols - 1, 0)
        if u in net.graph and v in net.graph and not net.graph.has_edge(u, v):
            a, b = net.node_point(u), net.node_point(v)
            net.add_edge(u, v, _curved_geometry(a, b, 0.08, rng))

    return net.largest_component()
