"""The road network graph: nodes, polyline edges, and spatial queries."""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Hashable, Iterator, Optional, Sequence

import networkx as nx

from repro.errors import EmptyInputError
from repro.geo import BoundingBox, Point, interpolate

NodeId = Hashable


@dataclass(frozen=True)
class EdgeRef:
    """A directed traversal of one undirected edge ``(u, v)``."""

    u: NodeId
    v: NodeId

    def reversed(self) -> "EdgeRef":
        return EdgeRef(self.v, self.u)

    def key(self) -> tuple[NodeId, NodeId]:
        """Canonical undirected key (sorted endpoints by repr)."""
        a, b = sorted((self.u, self.v), key=repr)
        return (a, b)


@dataclass(frozen=True)
class EdgePosition:
    """A position on the network: an edge plus meters from its ``u`` end."""

    edge: EdgeRef
    offset_m: float
    point: Point
    distance_m: float
    """Distance from the query point that produced this projection."""


def _polyline_length(points: Sequence[Point]) -> float:
    return sum(a.distance_to(b) for a, b in zip(points, points[1:]))


def _point_along(points: Sequence[Point], offset: float) -> Point:
    """The point ``offset`` meters along a polyline (clamped to its ends)."""
    if offset <= 0:
        return points[0]
    walked = 0.0
    for a, b in zip(points, points[1:]):
        seg = a.distance_to(b)
        if walked + seg >= offset:
            if seg == 0.0:
                return b
            return interpolate(a, b, (offset - walked) / seg)
        walked += seg
    return points[-1]


def _project_to_segment(p: Point, a: Point, b: Point) -> tuple[Point, float, float]:
    """Project ``p`` onto segment ``ab``.

    Returns ``(foot, along, dist)``: the closest point on the segment, its
    distance from ``a`` along the segment, and its distance from ``p``.
    """
    ax, ay, bx, by = a.x, a.y, b.x, b.y
    dx, dy = bx - ax, by - ay
    seg2 = dx * dx + dy * dy
    if seg2 == 0.0:
        return a, 0.0, p.distance_to(a)
    t = max(0.0, min(1.0, ((p.x - ax) * dx + (p.y - ay) * dy) / seg2))
    foot = Point(ax + t * dx, ay + t * dy)
    return foot, t * math.sqrt(seg2), p.distance_to(foot)


class RoadNetwork:
    """An undirected road graph with polyline edge geometry.

    Nodes are arbitrary hashable identifiers with planar coordinates; every
    edge carries a geometry polyline (oriented from its ``u`` to its ``v``
    node) and a precomputed length used as the shortest-path weight.
    """

    def __init__(self, index_cell_m: float = 100.0) -> None:
        self._graph = nx.Graph()
        self._index_cell_m = index_cell_m
        self._edge_index: Optional[dict[tuple[int, int], list[tuple[NodeId, NodeId]]]] = None

    # -- construction ------------------------------------------------------

    def add_node(self, node: NodeId, point: Point) -> None:
        self._graph.add_node(node, point=point)

    def add_edge(
        self, u: NodeId, v: NodeId, geometry: Optional[Sequence[Point]] = None
    ) -> None:
        """Add an undirected edge; geometry defaults to the straight segment.

        The supplied geometry must run from ``u`` to ``v``.
        """
        pu, pv = self.node_point(u), self.node_point(v)
        if geometry is None:
            geometry = (pu, pv)
        geometry = tuple(geometry)
        if geometry[0].distance_to(pu) > 1e-6 or geometry[-1].distance_to(pv) > 1e-6:
            raise ValueError(f"edge geometry does not connect nodes {u!r} and {v!r}")
        self._graph.add_edge(u, v, geometry=geometry, length=_polyline_length(geometry))
        self._edge_index = None  # invalidate spatial index

    # -- basic accessors ---------------------------------------------------

    @property
    def graph(self) -> nx.Graph:
        return self._graph

    @property
    def num_nodes(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def num_edges(self) -> int:
        return self._graph.number_of_edges()

    def nodes(self) -> Iterator[NodeId]:
        return iter(self._graph.nodes)

    def node_point(self, node: NodeId) -> Point:
        try:
            return self._graph.nodes[node]["point"]
        except KeyError as exc:
            raise KeyError(f"unknown node {node!r}") from exc

    def edge_geometry(self, u: NodeId, v: NodeId) -> tuple[Point, ...]:
        """Geometry of edge ``(u, v)`` oriented from ``u`` to ``v``."""
        data = self._graph.edges[u, v]
        geom: tuple[Point, ...] = data["geometry"]
        # Stored geometry is oriented from the lower endpoint at insert
        # time; flip when traversing the other way.
        if geom[0].distance_to(self.node_point(u)) <= 1e-6:
            return geom
        return tuple(reversed(geom))

    def edge_length(self, u: NodeId, v: NodeId) -> float:
        return self._graph.edges[u, v]["length"]

    def total_length(self) -> float:
        """Summed length of all edges in meters."""
        return sum(d["length"] for _, _, d in self._graph.edges(data=True))

    def bbox(self) -> BoundingBox:
        if self.num_nodes == 0:
            raise EmptyInputError("network has no nodes")
        return BoundingBox.from_points(
            self.node_point(n) for n in self._graph.nodes
        )

    # -- routing -----------------------------------------------------------

    def shortest_path(self, source: NodeId, target: NodeId) -> list[NodeId]:
        """Node sequence of the length-weighted shortest path."""
        return nx.shortest_path(self._graph, source, target, weight="length")

    def shortest_path_length(self, source: NodeId, target: NodeId) -> float:
        return nx.shortest_path_length(self._graph, source, target, weight="length")

    def single_source_lengths(self, source: NodeId, cutoff: Optional[float] = None) -> dict:
        """Dijkstra lengths from ``source`` to every reachable node."""
        return nx.single_source_dijkstra_path_length(
            self._graph, source, cutoff=cutoff, weight="length"
        )

    def path_geometry(self, path: Sequence[NodeId]) -> list[Point]:
        """Concatenate edge geometries along a node path (deduplicated)."""
        if len(path) < 2:
            return [self.node_point(path[0])] if path else []
        out: list[Point] = []
        for u, v in zip(path, path[1:]):
            geom = self.edge_geometry(u, v)
            if out:
                geom = geom[1:]
            out.extend(geom)
        return out

    def largest_component(self) -> "RoadNetwork":
        """A copy containing only the largest connected component."""
        if self.num_nodes == 0:
            return self
        keep = max(nx.connected_components(self._graph), key=len)
        sub = RoadNetwork(self._index_cell_m)
        # Sort for determinism: set iteration order depends on the
        # per-process hash seed, and node order drives trip sampling.
        for n in sorted(keep, key=repr):
            sub.add_node(n, self.node_point(n))
        for u, v, data in self._graph.edges(data=True):
            if u in keep and v in keep:
                sub._graph.add_edge(u, v, **data)
        return sub

    # -- spatial queries ----------------------------------------------------

    def _build_edge_index(self) -> dict[tuple[int, int], list[tuple[NodeId, NodeId]]]:
        index: dict[tuple[int, int], list[tuple[NodeId, NodeId]]] = defaultdict(list)
        cell = self._index_cell_m
        for u, v, data in self._graph.edges(data=True):
            geom: Sequence[Point] = data["geometry"]
            seen: set[tuple[int, int]] = set()
            for a, b in zip(geom, geom[1:]):
                steps = max(1, int(a.distance_to(b) / cell) + 1)
                for k in range(steps + 1):
                    p = interpolate(a, b, k / steps)
                    key = (math.floor(p.x / cell), math.floor(p.y / cell))
                    if key not in seen:
                        seen.add(key)
                        index[key].append((u, v))
        return dict(index)

    def _candidate_edges(self, p: Point, radius: float) -> set[tuple[NodeId, NodeId]]:
        if self._edge_index is None:
            self._edge_index = self._build_edge_index()
        cell = self._index_cell_m
        reach = max(1, int(math.ceil(radius / cell)))
        ci, cj = math.floor(p.x / cell), math.floor(p.y / cell)
        out: set[tuple[NodeId, NodeId]] = set()
        for di in range(-reach, reach + 1):
            for dj in range(-reach, reach + 1):
                out.update(self._edge_index.get((ci + di, cj + dj), ()))
        return out

    def project(self, p: Point, radius: float = 250.0) -> Optional[EdgePosition]:
        """The closest network position to ``p`` within ``radius`` meters."""
        candidates = self.nearest_edges(p, radius, limit=1)
        return candidates[0] if candidates else None

    def nearest_edges(
        self, p: Point, radius: float = 250.0, limit: int = 8
    ) -> list[EdgePosition]:
        """Up to ``limit`` distinct edge projections within ``radius``.

        Results are sorted by distance from ``p``; each edge appears once
        (its best projection). Used by the HMM map-matching baseline to
        enumerate candidate states.
        """
        best: dict[tuple[NodeId, NodeId], EdgePosition] = {}
        for u, v in self._candidate_edges(p, radius):
            geom = self.edge_geometry(u, v)
            walked = 0.0
            for a, b in zip(geom, geom[1:]):
                foot, along, dist = _project_to_segment(p, a, b)
                if dist <= radius:
                    pos = EdgePosition(EdgeRef(u, v), walked + along, foot, dist)
                    key = EdgeRef(u, v).key()
                    if key not in best or dist < best[key].distance_m:
                        best[key] = pos
                walked += a.distance_to(b)
        ranked = sorted(best.values(), key=lambda e: e.distance_m)
        return ranked[:limit]

    def nearest_node(self, p: Point) -> NodeId:
        """The node closest to ``p`` (linear scan; fine at city scale)."""
        if self.num_nodes == 0:
            raise EmptyInputError("network has no nodes")
        return min(self._graph.nodes, key=lambda n: self.node_point(n).distance_to(p))

    def point_along_edge(self, edge: EdgeRef, offset_m: float) -> Point:
        """The point ``offset_m`` meters along ``edge`` from its ``u`` end."""
        return _point_along(self.edge_geometry(edge.u, edge.v), offset_m)

    def __repr__(self) -> str:
        return f"RoadNetwork(nodes={self.num_nodes}, edges={self.num_edges})"
