"""Fault tolerance for the KAMEL pipeline: stay up, degrade gracefully.

The paper sells KAMEL as a deployable *online* system, and its Section 6
hard call limit with the straight-line fallback is already a one-rung
degradation path.  This package generalizes that into a full resilience
layer, stdlib-only like the rest of the reproduction:

* :mod:`repro.resilience.deadline` — :class:`Deadline` time budgets
  threaded through ``Kamel.impute`` down to the model-call loops; an
  overrun raises :class:`repro.errors.DeadlineExceeded` and triggers
  fallback instead of a hang;
* :mod:`repro.resilience.ladder` — the explicit degradation ladder
  (full beam → reduced beam → counting model → linear), each segment's
  resolving rung recorded on its
  :class:`repro.core.result.SegmentOutcome`;
* :mod:`repro.resilience.breaker` — :class:`CircuitBreaker` and
  :class:`RetryPolicy` (jittered exponential backoff) guarding pyramid
  model lookup and masked-model inference; an open circuit
  short-circuits to the next rung;
* :mod:`repro.resilience.journal` — the streaming service's write-ahead
  :class:`StreamJournal` (crash → resume only unfinished work) and
  :class:`QuarantineStore` dead-letter file;
* :mod:`repro.resilience.validate` — typed rejection of malformed inputs
  (:class:`repro.errors.QuarantinedInputError`);
* :mod:`repro.resilience.chaos` — the seeded fault-injection harness
  (:class:`ChaosMonkey`) proving all of the above under test.

See ``docs/resilience.md`` for the ladder diagram, deadline semantics,
and file formats.
"""

from repro.resilience.breaker import (
    CircuitBreaker,
    GuardedModel,
    PipelineGuards,
    RetryPolicy,
)
from repro.resilience.chaos import (
    ChaosConfig,
    ChaosMonkey,
    InjectedCrash,
    InjectedFault,
    chaos_scope,
    install_grid_chaos,
    install_repository_chaos,
)
from repro.resilience.deadline import Deadline
from repro.resilience.journal import (
    QuarantineStore,
    StreamJournal,
    trajectory_from_payload,
    trajectory_to_payload,
)
from repro.resilience.ladder import (
    ALL_RUNGS,
    DegradationLadder,
    RUNG_COUNTING,
    RUNG_FULL,
    RUNG_LINEAR,
    RUNG_REDUCED_BEAM,
)
from repro.resilience.validate import MAX_COORDINATE_M, validate_trajectory

__all__ = [
    "ALL_RUNGS",
    "ChaosConfig",
    "ChaosMonkey",
    "CircuitBreaker",
    "Deadline",
    "DegradationLadder",
    "GuardedModel",
    "InjectedCrash",
    "InjectedFault",
    "MAX_COORDINATE_M",
    "PipelineGuards",
    "QuarantineStore",
    "RetryPolicy",
    "RUNG_COUNTING",
    "RUNG_FULL",
    "RUNG_LINEAR",
    "RUNG_REDUCED_BEAM",
    "StreamJournal",
    "chaos_scope",
    "install_grid_chaos",
    "install_repository_chaos",
    "trajectory_from_payload",
    "trajectory_to_payload",
    "validate_trajectory",
]
