"""Time budgets for the imputation pipeline.

A :class:`Deadline` is a wall-clock budget threaded through
``Kamel.impute`` → ``core.imputation`` → the masked-model calls.  The
search loops call :meth:`Deadline.check` between model calls; an expired
budget raises :class:`repro.errors.DeadlineExceeded`, which the
degradation ladder converts into a straight-line fallback instead of a
hung request.  The paper's hard model-call limit bounds *work*; deadlines
bound *time* — the unit an online SLA is actually written in.

Deadlines are immutable once started, combinable (the tighter of a
per-trajectory and a per-segment budget wins), and take an injectable
monotonic clock so tests can drive them deterministically.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Optional

from repro.errors import DeadlineExceeded

__all__ = ["Deadline"]

Clock = Callable[[], float]


class Deadline:
    """A monotonic-clock budget: "this work must finish by ``expires_at``".

    ``Deadline.after(0.25)`` starts a 250 ms budget now;
    ``Deadline.unlimited()`` never expires (the no-op fast path, so call
    sites can thread a deadline unconditionally).
    """

    __slots__ = ("expires_at", "budget_s", "_clock")

    def __init__(
        self,
        expires_at: float,
        budget_s: float = math.inf,
        clock: Clock = time.monotonic,
    ) -> None:
        self.expires_at = expires_at
        self.budget_s = budget_s
        self._clock = clock

    # -- constructors ------------------------------------------------------

    @classmethod
    def after(cls, seconds: float, clock: Clock = time.monotonic) -> "Deadline":
        """A budget of ``seconds`` starting now."""
        if seconds <= 0:
            raise ValueError(f"deadline budget must be positive, got {seconds!r}")
        return cls(clock() + seconds, seconds, clock)

    @classmethod
    def unlimited(cls, clock: Clock = time.monotonic) -> "Deadline":
        """A deadline that never expires."""
        return cls(math.inf, math.inf, clock)

    @classmethod
    def combine(cls, *deadlines: Optional["Deadline"]) -> "Deadline":
        """The tightest of the given deadlines (``None`` entries ignored).

        Per-segment budgets are combined with the enclosing per-trajectory
        budget this way, so whichever runs out first wins.
        """
        present = [d for d in deadlines if d is not None]
        if not present:
            return cls.unlimited()
        tightest = min(present, key=lambda d: d.expires_at)
        return cls(tightest.expires_at, tightest.budget_s, tightest._clock)

    # -- interrogation -----------------------------------------------------

    @property
    def is_unlimited(self) -> bool:
        return math.isinf(self.expires_at)

    def remaining(self) -> float:
        """Seconds left (negative once expired, ``inf`` when unlimited)."""
        if self.is_unlimited:
            return math.inf
        return self.expires_at - self._clock()

    @property
    def expired(self) -> bool:
        return not self.is_unlimited and self._clock() >= self.expires_at

    def overrun_s(self) -> float:
        """How far past the deadline we are (0.0 while still inside it)."""
        return max(0.0, -self.remaining()) if not self.is_unlimited else 0.0

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceeded` if the budget has run out.

        Called between units of work (model calls, beam rounds) — never
        inside one — so an overrun is bounded by the duration of a single
        unit, not by the whole search.
        """
        if self.expired:
            raise DeadlineExceeded(
                f"{what} exceeded its {self.budget_s:.3g}s deadline",
                overrun_s=self.overrun_s(),
            )

    def sub_budget(self, seconds: Optional[float]) -> "Deadline":
        """A child deadline of ``seconds`` capped by this one.

        ``seconds=None`` returns this deadline unchanged — the per-segment
        threading path when only a trajectory budget is configured.
        """
        if seconds is None:
            return self
        return Deadline.combine(self, Deadline.after(seconds, self._clock))

    def __repr__(self) -> str:
        if self.is_unlimited:
            return "Deadline(unlimited)"
        return f"Deadline(budget={self.budget_s:.3g}s, remaining={self.remaining():.3g}s)"
