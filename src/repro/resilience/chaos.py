"""Seeded, deterministic fault injection for the imputation pipeline.

A :class:`ChaosMonkey` drives three kinds of mischief from one seeded
RNG, so every scenario replays exactly:

* **failures** — hooked call sites (pyramid model lookup, masked-model
  inference) raise :class:`InjectedFault`, a *non*-``KamelError``
  simulating infrastructure trouble the retry/breaker/ladder stack must
  absorb;
* **latency** — hooked sites sleep ``latency_s`` with probability
  ``latency_rate`` (deadline-enforcement fodder);
* **corruption** — a grid lookup returns a neighboring cell instead of
  the true one (GPS-noise-at-the-worst-moment; constraints and
  detokenization must stay sane).

Hooks are *installed*, never baked in: production code paths carry one
``None``-checked slot (``PipelineGuards.chaos``,
``StreamingImputationService.chaos``) or are wrapped per-instance
(:func:`install_grid_chaos`), so an uninstrumented system pays an
attribute test at most.  :func:`chaos_scope` installs a monkey on a
system/service/grid and restores everything on exit.
"""

from __future__ import annotations

import contextlib
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.obs import instrument as obs
from repro.obs.logging import get_logger

__all__ = [
    "ChaosConfig",
    "ChaosMonkey",
    "InjectedFault",
    "InjectedCrash",
    "install_grid_chaos",
    "install_repository_chaos",
    "chaos_scope",
]

_log = get_logger("resilience.chaos")


class InjectedFault(RuntimeError):
    """A simulated infrastructure failure (deliberately not a KamelError)."""


class InjectedCrash(RuntimeError):
    """A simulated process death mid-stream (kill-and-resume scenarios)."""


@dataclass(frozen=True)
class ChaosConfig:
    """One reproducible fault scenario."""

    seed: int = 0
    failure_rate: float = 0.0
    """Probability a call at a ``failure_sites`` site raises InjectedFault."""
    latency_rate: float = 0.0
    """Probability a hooked call sleeps ``latency_s`` first."""
    latency_s: float = 0.01
    corruption_rate: float = 0.0
    """Probability a chaotic grid lookup returns a neighboring cell."""
    failure_sites: tuple[str, ...] = ("repository.retrieve", "model.predict")
    """Which hook sites may fail (latency applies to every hooked site)."""
    crash_after: Optional[int] = None
    """Raise InjectedCrash on the Nth (1-based) ``service.process`` call."""
    stall_after: Optional[int] = None
    """Wedge (sleep ``stall_s``) before the Nth (1-based) dequeued task.

    A *stalled worker* is the pool-level overload driver: its shard's
    queue backs up deterministically while the process stays alive, which
    is exactly the shape admission control and brownout must absorb.
    """
    stall_s: float = 0.0
    ipc_delay_rate: float = 0.0
    """Probability an IPC hook site (``ipc_sites``) sleeps ``ipc_delay_s``."""
    ipc_delay_s: float = 0.01
    ipc_sites: tuple[str, ...] = ("ipc.dequeue", "ipc.result")
    """Which IPC sites may be delayed: slow dequeue, delayed result pipe."""

    def __post_init__(self) -> None:
        for name in (
            "failure_rate",
            "latency_rate",
            "corruption_rate",
            "ipc_delay_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        for name in ("latency_s", "stall_s", "ipc_delay_s"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value!r}")
        for name in ("crash_after", "stall_after"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1, got {value!r}")


@dataclass
class ChaosReport:
    """What a monkey actually did (for test assertions and the CLI table)."""

    faults: dict = field(default_factory=dict)
    delays: dict = field(default_factory=dict)
    corruptions: int = 0
    crashes: int = 0
    stalls: int = 0
    calls: dict = field(default_factory=dict)

    @property
    def total_faults(self) -> int:
        return sum(self.faults.values())

    @property
    def total_delays(self) -> int:
        return sum(self.delays.values())

    def to_dict(self) -> dict:
        return {
            "calls": dict(self.calls),
            "faults": dict(self.faults),
            "delays": dict(self.delays),
            "corruptions": self.corruptions,
            "crashes": self.crashes,
            "stalls": self.stalls,
        }


class ChaosMonkey:
    """The seeded fault injector the hooks consult.

    One ``random.Random(seed)`` drives every decision, so a fixed seed and
    a fixed call sequence replay the exact same faults.  ``sleep`` is
    injectable so tests can count delays without waiting.
    """

    def __init__(
        self,
        config: ChaosConfig,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.config = config
        self._rng = random.Random(config.seed)
        self._sleep = sleep
        self.report = ChaosReport()
        self._process_calls = 0
        self._dequeue_calls = 0

    # -- the generic call-site hook ----------------------------------------

    def on_call(self, site: str) -> None:
        """Fire at a hooked call site: maybe delay, maybe fail."""
        cfg = self.config
        self.report.calls[site] = self.report.calls.get(site, 0) + 1
        if cfg.latency_rate and self._rng.random() < cfg.latency_rate:
            self.report.delays[site] = self.report.delays.get(site, 0) + 1
            obs.count("repro.resilience.chaos.delays_total")
            self._sleep(cfg.latency_s)
        if (
            cfg.failure_rate
            and site in cfg.failure_sites
            and self._rng.random() < cfg.failure_rate
        ):
            self.report.faults[site] = self.report.faults.get(site, 0) + 1
            obs.count("repro.resilience.chaos.faults_total")
            raise InjectedFault(f"injected failure at {site}")

    # -- specialized hooks -------------------------------------------------

    def corrupt_cell(self, cell, neighbors: list) -> object:
        """Maybe swap a grid cell for one of its neighbors."""
        cfg = self.config
        if (
            cfg.corruption_rate
            and neighbors
            and self._rng.random() < cfg.corruption_rate
        ):
            self.report.corruptions += 1
            obs.count("repro.resilience.chaos.corruptions_total")
            return neighbors[self._rng.randrange(len(neighbors))]
        return cell

    def on_process(self) -> None:
        """Fire at the top of ``service.process`` (crash injection)."""
        self._process_calls += 1
        crash_after = self.config.crash_after
        if crash_after is not None and self._process_calls == crash_after:
            self.report.crashes += 1
            _log.warning(
                "injected crash",
                extra={"data": {"process_calls": self._process_calls}},
            )
            raise InjectedCrash(
                f"injected crash on process call #{self._process_calls}"
            )

    # -- pool-level IPC hooks ------------------------------------------------

    def on_dequeue(self) -> None:
        """Fire right after a worker dequeues a task (stall injection).

        The stall is counter-driven, not RNG-driven, so overload tests get
        a deterministic "worker N wedges on its Kth task" scenario
        regardless of how much randomized chaos rode along before it.
        """
        self._dequeue_calls += 1
        cfg = self.config
        if (
            cfg.stall_after is not None
            and self._dequeue_calls == cfg.stall_after
            and cfg.stall_s > 0
        ):
            self.report.stalls += 1
            obs.count("repro.resilience.chaos.stalls_total")
            _log.warning(
                "injected worker stall",
                extra={"data": {
                    "dequeue_calls": self._dequeue_calls,
                    "stall_s": cfg.stall_s,
                }},
            )
            self._sleep(cfg.stall_s)
        self.on_ipc("ipc.dequeue")

    def on_ipc(self, site: str) -> None:
        """Fire at an IPC boundary: maybe delay (slow dequeue / result pipe)."""
        cfg = self.config
        if (
            cfg.ipc_delay_rate
            and site in cfg.ipc_sites
            and self._rng.random() < cfg.ipc_delay_rate
        ):
            self.report.delays[site] = self.report.delays.get(site, 0) + 1
            obs.count("repro.resilience.chaos.ipc_delays_total")
            self._sleep(cfg.ipc_delay_s)

    def __repr__(self) -> str:
        return (
            f"ChaosMonkey(seed={self.config.seed}, "
            f"faults={self.report.total_faults}, delays={self.report.total_delays})"
        )


def install_grid_chaos(grid, monkey: ChaosMonkey) -> Callable[[], None]:
    """Wrap ``grid.cell_of`` with latency + corruption injection.

    Installs an instance-level override (the class stays untouched) and
    returns an uninstaller that restores the original method.
    """
    original = type(grid).cell_of

    def chaotic_cell_of(point):
        if monkey.config.latency_rate and monkey._rng.random() < monkey.config.latency_rate:
            monkey.report.delays["grid.cell_of"] = (
                monkey.report.delays.get("grid.cell_of", 0) + 1
            )
            obs.count("repro.resilience.chaos.delays_total")
            monkey._sleep(monkey.config.latency_s)
        cell = original(grid, point)
        return monkey.corrupt_cell(cell, grid.neighbors(cell))

    grid.cell_of = chaotic_cell_of

    def uninstall() -> None:
        if grid.__dict__.get("cell_of") is chaotic_cell_of:
            del grid.__dict__["cell_of"]

    return uninstall


def install_repository_chaos(repository, monkey: ChaosMonkey) -> Callable[[], None]:
    """Point ``repository.fault_hook`` at ``monkey``; returns an uninstaller.

    Faults raised here surface *inside* ``ModelRepository.retrieve`` —
    upstream of the retry/breaker guards — which is the realistic shape of
    a wedged model store.
    """
    previous = repository.fault_hook
    repository.fault_hook = monkey.on_call

    def uninstall() -> None:
        repository.fault_hook = previous

    return uninstall


@contextlib.contextmanager
def chaos_scope(
    monkey: ChaosMonkey,
    system=None,
    service=None,
    grid=None,
) -> Iterator[ChaosMonkey]:
    """Install ``monkey`` on the given components; restore on exit.

    ``system`` is a :class:`repro.core.kamel.Kamel` (hooks model lookup and
    inference via its :class:`~repro.resilience.breaker.PipelineGuards`),
    ``service`` a :class:`~repro.core.streaming.StreamingImputationService`
    (crash injection), ``grid`` any :class:`repro.grid.base.Grid`
    (latency + corruption on ``cell_of``).
    """
    uninstallers: list[Callable[[], None]] = []
    if system is not None:
        previous = system.guards.chaos
        system.guards.chaos = monkey
        uninstallers.append(lambda: setattr(system.guards, "chaos", previous))
    if service is not None:
        previous_svc = service.chaos
        service.chaos = monkey
        uninstallers.append(lambda: setattr(service, "chaos", previous_svc))
    if grid is not None:
        uninstallers.append(install_grid_chaos(grid, monkey))
    try:
        yield monkey
    finally:
        for undo in reversed(uninstallers):
            undo()
