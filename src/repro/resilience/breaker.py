"""Circuit breaking and retry-with-jittered-backoff.

Two cooperating guards around the pipeline's flaky-able dependencies
(pyramid model lookup, masked-model inference):

* :class:`RetryPolicy` — absorb *transient* failures: retry the call a few
  times with exponential backoff and deterministic seeded jitter (the
  nucliadb-style storage retry pattern, scaled down to in-process work).
* :class:`CircuitBreaker` — contain *persistent* failures: after
  ``failure_threshold`` consecutive errors the circuit opens and every
  call short-circuits with :class:`repro.errors.CircuitOpenError` until
  ``recovery_s`` has passed, when one half-open probe is allowed through;
  success closes the circuit, failure re-opens it.

The degradation ladder treats ``CircuitOpenError`` as "skip this rung
now" — an open inference circuit sends the segment straight to the
counting-model rung without burning its deadline on doomed calls.

Everything takes injectable clock/sleep functions so tests drive state
transitions without real waiting, and the jitter RNG is seeded so chaos
runs replay exactly.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Optional, Sequence, TypeVar

from repro.errors import CircuitOpenError
from repro.mlm.base import MaskedModel, TokenProb
from repro.obs import instrument as obs
from repro.obs.logging import get_logger

__all__ = ["CircuitBreaker", "RetryPolicy", "PipelineGuards", "GuardedModel"]

_log = get_logger("resilience.breaker")

T = TypeVar("T")

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

_STATE_VALUES = {CLOSED: 0.0, HALF_OPEN: 1.0, OPEN: 2.0}
"""Gauge encoding: 0 closed, 1 half-open, 2 open."""


class CircuitBreaker:
    """A three-state (closed / open / half-open) circuit breaker.

    Counts *consecutive* failures; any success resets the count.  While
    open, :meth:`call` raises :class:`CircuitOpenError` without invoking
    the wrapped callable.  After ``recovery_s`` the next call becomes the
    half-open probe.
    """

    def __init__(
        self,
        name: str,
        failure_threshold: int = 5,
        recovery_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        state_gauge: Optional[str] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if recovery_s <= 0:
            raise ValueError(f"recovery_s must be positive, got {recovery_s}")
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_s = recovery_s
        self._clock = clock
        self._state_gauge = state_gauge
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self.open_count = 0

    # -- state machine -----------------------------------------------------

    def _set_state(self, state: str) -> None:
        if state == self.state:
            return
        self.state = state
        if self._state_gauge is not None:
            obs.gauge(self._state_gauge).set(_STATE_VALUES[state])
        _log.info(
            "circuit state change",
            extra={"data": {"breaker": self.name, "state": state}},
        )

    def allow(self) -> bool:
        """Whether a call may proceed right now (may flip open→half-open)."""
        if self.state == OPEN:
            assert self.opened_at is not None
            if self._clock() - self.opened_at >= self.recovery_s:
                self._set_state(HALF_OPEN)
                return True
            return False
        return True

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.state != CLOSED:
            self._set_state(CLOSED)

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == HALF_OPEN or self.consecutive_failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self.opened_at = self._clock()
        self.open_count += 1
        obs.count("repro.resilience.breaker_open_total")
        self._set_state(OPEN)

    def reset(self) -> None:
        """Force the circuit closed (test/admin hook)."""
        self.consecutive_failures = 0
        self.opened_at = None
        self._set_state(CLOSED)

    # -- call wrapper ------------------------------------------------------

    def call(self, fn: Callable[[], T]) -> T:
        """Run ``fn`` under the breaker; raise ``CircuitOpenError`` if open."""
        if not self.allow():
            raise CircuitOpenError(
                f"circuit {self.name!r} is open "
                f"({self.consecutive_failures} consecutive failures)"
            )
        try:
            result = fn()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result

    def __repr__(self) -> str:
        return f"CircuitBreaker({self.name}, {self.state}, failures={self.consecutive_failures})"


class RetryPolicy:
    """Retry a callable with exponential backoff and seeded jitter.

    ``attempts`` is the number of *retries* after the first try.  The
    delay before retry ``n`` (1-based) is ``base_delay_s * 2**(n-1)``
    scaled by a jitter factor drawn uniformly from ``[0.5, 1.0)`` — the
    "full jitter halved" scheme, deterministic under a fixed seed.
    """

    def __init__(
        self,
        attempts: int = 2,
        base_delay_s: float = 0.01,
        max_delay_s: float = 0.25,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
        retry_on: tuple[type[BaseException], ...] = (Exception,),
    ) -> None:
        if attempts < 0:
            raise ValueError(f"attempts must be >= 0, got {attempts}")
        self.attempts = attempts
        self.base_delay_s = base_delay_s
        self.max_delay_s = max_delay_s
        self.retry_on = retry_on
        self._rng = random.Random(seed)
        self._sleep = sleep
        self.total_retries = 0

    def delay_for(self, attempt: int) -> float:
        """The jittered backoff before retry ``attempt`` (1-based)."""
        raw = min(self.max_delay_s, self.base_delay_s * 2 ** (attempt - 1))
        return raw * (0.5 + 0.5 * self._rng.random())

    def call(self, fn: Callable[[], T]) -> T:
        """Run ``fn``, retrying transient failures; re-raise the last one."""
        attempt = 0
        while True:
            try:
                return fn()
            except self.retry_on as exc:
                attempt += 1
                if attempt > self.attempts:
                    raise
                self.total_retries += 1
                obs.count("repro.resilience.retries_total")
                delay = self.delay_for(attempt)
                _log.debug(
                    "retrying after transient failure",
                    extra={"data": {
                        "attempt": attempt,
                        "delay_s": round(delay, 4),
                        "error": type(exc).__name__,
                    }},
                )
                self._sleep(delay)


class GuardedModel(MaskedModel):
    """A :class:`MaskedModel` proxy: inference under retry + breaker + chaos.

    Wraps the model chosen for a segment so every ``predict_masked`` call
    runs through the inference guards.  The chaos hook fires *inside* the
    retried callable — an injected transient fault can be absorbed by a
    retry, which is exactly the behavior the harness needs to prove.
    """

    def __init__(self, inner: MaskedModel, guards: "PipelineGuards") -> None:
        self.inner = inner
        self.guards = guards

    def fit(self, sequences, vocab_size) -> "MaskedModel":  # pragma: no cover
        raise NotImplementedError("GuardedModel wraps an already-trained model")

    def predict_masked(
        self, tokens: Sequence[int], position: int, top_k: int = 10
    ) -> list[TokenProb]:
        def attempt() -> list[TokenProb]:
            self.guards.chaos_hook("model.predict")
            return self.inner.predict_masked(tokens, position, top_k)

        return self.guards.inference_breaker.call(
            lambda: self.guards.inference_retry.call(attempt)
        )

    @property
    def is_fitted(self) -> bool:
        return self.inner.is_fitted

    @property
    def num_training_tokens(self) -> int:
        return self.inner.num_training_tokens


class PipelineGuards:
    """The per-system bundle of breakers, retry policies, and chaos slot.

    One instance hangs off each :class:`repro.core.kamel.Kamel`; it holds
    no trained state, so resetting it (as chaos tests do) never touches
    the models.  ``chaos`` is the injectable
    :class:`repro.resilience.chaos.ChaosMonkey` — ``None`` in production,
    so the hook is one attribute check on the hot path.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_s: float = 30.0,
        retry_attempts: int = 2,
        retry_base_delay_s: float = 0.01,
        seed: int = 0,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.lookup_breaker = CircuitBreaker(
            "repository.lookup",
            failure_threshold,
            recovery_s,
            clock,
            state_gauge="repro.resilience.breaker.lookup_state",
        )
        self.inference_breaker = CircuitBreaker(
            "model.inference",
            failure_threshold,
            recovery_s,
            clock,
            state_gauge="repro.resilience.breaker.inference_state",
        )
        self.lookup_retry = RetryPolicy(
            retry_attempts, retry_base_delay_s, seed=seed, sleep=sleep
        )
        self.inference_retry = RetryPolicy(
            retry_attempts, retry_base_delay_s, seed=seed + 1, sleep=sleep
        )
        self.chaos = None  # Optional[repro.resilience.chaos.ChaosMonkey]

    def chaos_hook(self, site: str) -> None:
        """Fire the installed chaos monkey at ``site`` (no-op when None)."""
        if self.chaos is not None:
            self.chaos.on_call(site)

    def guard_model(self, model: MaskedModel) -> MaskedModel:
        """Wrap ``model`` for guarded inference (idempotent)."""
        if isinstance(model, GuardedModel):
            return model
        return GuardedModel(model, self)

    def guarded_lookup(self, fn: Callable[[], T]) -> T:
        """Run a repository lookup under chaos hook + retry + breaker."""

        def attempt() -> T:
            self.chaos_hook("repository.retrieve")
            return fn()

        return self.lookup_breaker.call(lambda: self.lookup_retry.call(attempt))

    def reset(self) -> None:
        """Close both circuits (chaos installation stays as-is)."""
        self.lookup_breaker.reset()
        self.inference_breaker.reset()

    def __repr__(self) -> str:
        return (
            f"PipelineGuards(lookup={self.lookup_breaker.state}, "
            f"inference={self.inference_breaker.state}, "
            f"chaos={'on' if self.chaos is not None else 'off'})"
        )
