"""The graceful-degradation ladder (formalizing the paper's fallback).

Section 6 of the paper already contains a one-rung degradation path: a
gap whose search exhausts the hard model-call limit is filled with a
straight line.  This module generalizes that into an explicit, ordered
policy the whole pipeline shares:

========  =====================================================
rung      what serves the segment
========  =====================================================
full      the configured imputer (beam search, full width) on the
          pyramid-repository model — the paper's happy path
reduced   beam search at ``degraded_beam_size`` — same model, a
          fraction of the cost, used when the full search failed
          or the deadline is tightening
counting  greedy iterative imputation on the global counting
          fallback model — survives an open inference circuit or a
          missing repository model (the PLMTrajRec concern: stay
          usable when the heavy model path is down)
linear    straight-line interpolation — never fails, the paper's
          "failure" outcome
========  =====================================================

Every segment records the rung that resolved it on its
:class:`repro.core.result.SegmentOutcome`; only the ``linear`` rung
counts as a *failure* (the paper's metric), while anything below
``full`` counts as *degraded* — two distinct rates, both exported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.obs import instrument as obs

__all__ = [
    "RUNG_FULL",
    "RUNG_REDUCED_BEAM",
    "RUNG_COUNTING",
    "RUNG_LINEAR",
    "ALL_RUNGS",
    "DegradationLadder",
]

RUNG_FULL = "full"
RUNG_REDUCED_BEAM = "reduced_beam"
RUNG_COUNTING = "counting"
RUNG_LINEAR = "linear"

ALL_RUNGS = (RUNG_FULL, RUNG_REDUCED_BEAM, RUNG_COUNTING, RUNG_LINEAR)
"""Top-to-bottom order; a segment only ever moves downward."""


@dataclass(frozen=True)
class DegradationLadder:
    """The ordered rungs a segment may descend, ending in ``linear``.

    Built once per system from its config: the reduced-beam rung only
    exists for the beam imputer (halving an iterative search saves
    nothing), and the counting rung only when the global fallback model
    is enabled.  ``linear`` is always last and always present.
    """

    rungs: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.rungs or self.rungs[-1] != RUNG_LINEAR:
            raise ValueError("a degradation ladder must end in the linear rung")
        unknown = set(self.rungs) - set(ALL_RUNGS)
        if unknown:
            raise ValueError(f"unknown ladder rungs: {sorted(unknown)}")
        if list(self.rungs) != [r for r in ALL_RUNGS if r in self.rungs]:
            raise ValueError(f"ladder rungs out of order: {self.rungs}")

    @classmethod
    def for_config(cls, config) -> "DegradationLadder":
        """The ladder implied by a :class:`repro.core.config.KamelConfig`."""
        rungs = [RUNG_FULL]
        if config.imputer == "beam" and config.use_multipoint:
            rungs.append(RUNG_REDUCED_BEAM)
        if config.enable_fallback_model:
            rungs.append(RUNG_COUNTING)
        rungs.append(RUNG_LINEAR)
        return cls(tuple(rungs))

    def below(self, rung: str) -> tuple[str, ...]:
        """The rungs strictly below ``rung`` (what's left to try)."""
        return self.rungs[self.rungs.index(rung) + 1 :]

    @staticmethod
    def allows(rung: str, cap: Optional[str]) -> bool:
        """Whether ``rung`` may run under a brownout cap.

        ``cap`` names the *most expensive* rung still permitted (``None``
        means uncapped).  Rungs above the cap are skipped; ``linear`` is
        always allowed — the ladder must keep its floor.
        """
        if cap is None or rung == RUNG_LINEAR:
            return True
        return ALL_RUNGS.index(rung) >= ALL_RUNGS.index(cap)

    @staticmethod
    def tighter_cap(a: Optional[str], b: Optional[str]) -> Optional[str]:
        """The more restrictive (lower) of two rung caps; ``None`` = uncapped."""
        if a is None:
            return b
        if b is None:
            return a
        return a if ALL_RUNGS.index(a) >= ALL_RUNGS.index(b) else b

    @staticmethod
    def record(rung: str) -> None:
        """Count one segment resolved at ``rung``."""
        obs.count(f"repro.kamel.rung.{rung}_total")

    @staticmethod
    def is_failure(rung: str) -> bool:
        """The paper's failure definition: only the straight line counts."""
        return rung == RUNG_LINEAR

    @staticmethod
    def is_degraded(rung: str) -> bool:
        """Anything below the top rung, including linear."""
        return rung != RUNG_FULL

    def __len__(self) -> int:
        return len(self.rungs)

    def __iter__(self):
        return iter(self.rungs)
