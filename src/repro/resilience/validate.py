"""Input validation: decide early whether a trajectory is processable.

The grid tokenizer happily maps any *finite* coordinate to a cell, so the
failure mode of malformed input is not a clean exception — it is a NaN
propagating into cell indices, or a coordinate light-years off the grid
allocating an absurd ellipse of candidate cells.  This module front-loads
the check: :func:`validate_trajectory` raises a typed
:class:`repro.errors.QuarantinedInputError` with a machine-readable
``reason``, which the streaming service converts into a dead-letter
record instead of a dead stream.

Deliberately *not* rejected: negative timestamps (the time origin is
arbitrary), duplicate timestamps (a parked vehicle), and reversed
timestamps (constraints fall back to their geometric floor) — all are
degenerate-but-processable, and tests pin that they stay so.
"""

from __future__ import annotations

import math

from repro.errors import QuarantinedInputError
from repro.geo import Trajectory

__all__ = ["MAX_COORDINATE_M", "validate_trajectory"]

MAX_COORDINATE_M = 1e7
"""Coordinate magnitude bound (10 000 km — beyond any local planar frame).
Finite-but-absurd coordinates are "out of grid": the lattice is unbounded
mathematically, but cell indices past this point stop being meaningful."""


def validate_trajectory(
    trajectory: Trajectory, max_coordinate_m: float = MAX_COORDINATE_M
) -> None:
    """Raise :class:`QuarantinedInputError` if ``trajectory`` is malformed.

    Reasons: ``non_finite_coordinate``, ``coordinate_out_of_range``,
    ``non_finite_timestamp``.
    """
    for index, p in enumerate(trajectory.points):
        if not (math.isfinite(p.x) and math.isfinite(p.y)):
            raise QuarantinedInputError(
                f"trajectory {trajectory.traj_id!r} point {index} has a "
                f"non-finite coordinate ({p.x!r}, {p.y!r})",
                reason="non_finite_coordinate",
            )
        if abs(p.x) > max_coordinate_m or abs(p.y) > max_coordinate_m:
            raise QuarantinedInputError(
                f"trajectory {trajectory.traj_id!r} point {index} is outside "
                f"the representable grid (|coord| > {max_coordinate_m:g} m)",
                reason="coordinate_out_of_range",
            )
        if p.t is not None and not math.isfinite(p.t):
            raise QuarantinedInputError(
                f"trajectory {trajectory.traj_id!r} point {index} has a "
                f"non-finite timestamp ({p.t!r})",
                reason="non_finite_timestamp",
            )
