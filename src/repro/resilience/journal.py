"""Streaming checkpoint/recovery: write-ahead journal + dead-letter store.

The :class:`~repro.core.streaming.StreamingImputationService` loses work
two ways: a crash mid-batch drops everything in flight, and one malformed
trajectory can kill the whole stream.  This module closes both holes with
two append-only JSONL files:

* :class:`StreamJournal` — a write-ahead journal.  ``begin`` records the
  full trajectory payload *before* processing starts; ``done`` marks it
  finished.  After a crash, :meth:`StreamJournal.pending` replays the
  file and returns exactly the trajectories that were begun but never
  finished — resume reprocesses only those, and the imputation path is
  deterministic, so the resumed output is identical to an uninterrupted
  run.
* :class:`QuarantineStore` — the dead-letter file.  Inputs rejected by
  validation land here with a machine-readable reason instead of an
  exception escaping the stream.

Both tolerate a torn final line (the crash happened mid-write): replay
skips any line that does not parse.  Records are self-contained JSON, so
the files double as an audit log readable with ``jq``.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass
from typing import Iterator, Optional, TextIO, Union

from repro.geo import Point, Trajectory
from repro.obs.logging import get_logger

__all__ = [
    "StreamJournal",
    "QuarantineStore",
    "trajectory_to_payload",
    "trajectory_from_payload",
]

_log = get_logger("resilience.journal")

PathLike = Union[str, os.PathLike]


# -- trajectory payloads ------------------------------------------------------


def trajectory_to_payload(trajectory: Trajectory) -> dict:
    """A JSON-safe dict round-trippable via :func:`trajectory_from_payload`."""
    return {
        "traj_id": trajectory.traj_id,
        "points": [[p.x, p.y, p.t] for p in trajectory.points],
    }


def trajectory_from_payload(payload: dict) -> Trajectory:
    return Trajectory(
        payload["traj_id"],
        tuple(Point(x, y, t) for x, y, t in payload["points"]),
    )


def _read_records(path: pathlib.Path) -> Iterator[dict]:
    """Parse a JSONL file, skipping torn or corrupt lines."""
    if not path.exists():
        return
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # A crash mid-append leaves at most one torn line; skip it
                # (the work it described replays as pending or is re-sent).
                _log.warning(
                    "skipping corrupt journal line",
                    extra={"data": {"path": str(path), "line": lineno}},
                )
                continue
            if isinstance(record, dict):
                yield record


class _AppendFile:
    """A lazily opened, line-buffered append handle with optional fsync."""

    def __init__(self, path: PathLike, sync: bool = False) -> None:
        self.path = pathlib.Path(path)
        self.sync = sync
        self._handle: Optional[TextIO] = None

    def append(self, record: dict) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        self._handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._handle.flush()
        if self.sync:
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class StreamJournal:
    """The service's write-ahead journal (one JSONL file).

    Events: ``{"event": "begin", "traj_id": ..., "trajectory": {...}}``
    before processing, ``{"event": "done", "traj_id": ...}`` after (a
    quarantined input is also ``done`` — it was *handled*, with the
    details in the quarantine store).  ``sync=True`` fsyncs every append
    (durable against power loss, ~10× slower); the default survives
    process crashes, which is the failure mode the chaos suite injects.
    """

    def __init__(self, path: PathLike, sync: bool = False) -> None:
        self._file = _AppendFile(path, sync)
        self.begun = 0
        self.finished = 0

    @property
    def path(self) -> pathlib.Path:
        return self._file.path

    # -- writing -----------------------------------------------------------

    def begin(self, trajectory: Trajectory) -> None:
        self._file.append(
            {
                "event": "begin",
                "traj_id": trajectory.traj_id,
                "trajectory": trajectory_to_payload(trajectory),
            }
        )
        self.begun += 1

    def done(self, traj_id: str) -> None:
        self._file.append({"event": "done", "traj_id": traj_id})
        self.finished += 1

    def close(self) -> None:
        self._file.close()

    # -- recovery ----------------------------------------------------------

    def pending(self) -> list[Trajectory]:
        """Trajectories begun but never marked done, in journal order.

        Re-reads the file, so it reflects prior incarnations of the
        process — this is the crash-recovery entry point.
        """
        begun: dict[str, dict] = {}
        order: list[str] = []
        for record in _read_records(self.path):
            traj_id = record.get("traj_id")
            if traj_id is None:
                continue
            if record.get("event") == "begin" and "trajectory" in record:
                if traj_id not in begun:
                    order.append(traj_id)
                begun[traj_id] = record["trajectory"]
            elif record.get("event") == "done":
                begun.pop(traj_id, None)
        out: list[Trajectory] = []
        for traj_id in order:
            payload = begun.get(traj_id)
            if payload is None:
                continue
            try:
                out.append(trajectory_from_payload(payload))
            except (KeyError, TypeError, ValueError):
                _log.warning(
                    "unreadable journal payload",
                    extra={"data": {"traj_id": traj_id}},
                )
        return out

    def __repr__(self) -> str:
        return f"StreamJournal({self.path}, begun={self.begun}, done={self.finished})"


@dataclass(frozen=True)
class QuarantineEntry:
    """One dead-lettered input."""

    traj_id: str
    reason: str
    trajectory: Optional[Trajectory]


class QuarantineStore:
    """The dead-letter file for inputs the service refused to process."""

    def __init__(self, path: PathLike, sync: bool = False) -> None:
        self._file = _AppendFile(path, sync)
        self.added = 0

    @property
    def path(self) -> pathlib.Path:
        return self._file.path

    def add(self, trajectory: Trajectory, reason: str) -> None:
        self._file.append(
            {
                "traj_id": trajectory.traj_id,
                "reason": reason,
                "trajectory": trajectory_to_payload(trajectory),
            }
        )
        self.added += 1
        _log.warning(
            "trajectory quarantined",
            extra={"data": {"trajectory": trajectory.traj_id, "reason": reason}},
        )

    def entries(self) -> list[QuarantineEntry]:
        out: list[QuarantineEntry] = []
        for record in _read_records(self.path):
            if "traj_id" not in record or "reason" not in record:
                continue
            trajectory: Optional[Trajectory] = None
            payload = record.get("trajectory")
            if payload is not None:
                try:
                    trajectory = trajectory_from_payload(payload)
                except (KeyError, TypeError, ValueError):
                    trajectory = None
            out.append(QuarantineEntry(record["traj_id"], record["reason"], trajectory))
        return out

    def __len__(self) -> int:
        return len(self.entries())

    def close(self) -> None:
        self._file.close()

    def __repr__(self) -> str:
        return f"QuarantineStore({self.path}, added={self.added})"
