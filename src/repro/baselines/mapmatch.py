"""HMM map matching + shortest-path imputation (the paper's reference).

The paper plots "Map Matching" (Yang & Gidofalvi's FMM-style HMM matcher)
as the method that *does* know the road network — an effective upper bound
KAMEL is measured against. This implementation:

1. enumerates candidate edge projections for every sparse point,
2. runs Viterbi with Gaussian emission probabilities (GPS noise) and
   transitions penalizing the difference between network route distance
   and straight-line distance (the classic Newson-Krumm formulation),
3. imputes each gap with the route geometry between the matched
   positions, discretized at ``maxgap`` spacing.

A segment with no candidates or no connecting route falls back to a
straight line and counts as failed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import networkx as nx

from repro.core.result import ImputationResult, Imputer, SegmentOutcome
from repro.geo import Point, Trajectory, interpolate
from repro.roadnet.network import EdgePosition, RoadNetwork


@dataclass(frozen=True)
class MapMatchConfig:
    """HMM parameters (Newson-Krumm style)."""

    maxgap_m: float = 100.0
    candidate_radius_m: float = 120.0
    max_candidates: int = 5
    emission_sigma_m: float = 30.0
    transition_beta_m: float = 40.0
    route_cutoff_factor: float = 4.0
    """Route search gives up beyond ``factor * euclid + 500`` meters."""

    def __post_init__(self) -> None:
        if self.maxgap_m <= 0:
            raise ValueError("maxgap_m must be positive")
        if self.max_candidates < 1:
            raise ValueError("max_candidates must be >= 1")
        if self.emission_sigma_m <= 0 or self.transition_beta_m <= 0:
            raise ValueError("sigma and beta must be positive")


class HmmMapMatcher(Imputer):
    """Viterbi map matching over a known road network."""

    def __init__(self, network: RoadNetwork, config: Optional[MapMatchConfig] = None) -> None:
        self.network = network
        self.config = config or MapMatchConfig()

    @property
    def name(self) -> str:
        return "MapMatch"

    # -- HMM components -----------------------------------------------------

    def _emission_logp(self, candidate: EdgePosition) -> float:
        sigma = self.config.emission_sigma_m
        return -(candidate.distance_m**2) / (2.0 * sigma**2)

    def _route(
        self, start: EdgePosition, end: EdgePosition, cutoff: float
    ) -> Optional[tuple[float, list[Point]]]:
        """Shortest route between two on-edge positions.

        Returns (network distance, geometry polyline) or None when no
        route exists within ``cutoff`` meters.
        """
        net = self.network
        if start.edge.key() == end.edge.key():
            # Same edge: walk along it between the two offsets.
            along = abs(end.offset_m - start.offset_m)
            if along > cutoff:
                return None
            geom = net.edge_geometry(start.edge.u, start.edge.v)
            lo, hi = sorted((start.offset_m, end.offset_m))
            sub = _subline(geom, lo, hi)
            if start.offset_m > end.offset_m:
                sub = list(reversed(sub))
            return along, sub

        start_len = net.edge_length(start.edge.u, start.edge.v)
        end_len = net.edge_length(end.edge.u, end.edge.v)
        # Distance from the start position to each endpoint of its edge,
        # and from each endpoint of the end edge to the end position.
        exits = {
            start.edge.u: start.offset_m,
            start.edge.v: start_len - start.offset_m,
        }
        entries = {
            end.edge.u: end.offset_m,
            end.edge.v: end_len - end.offset_m,
        }
        best: Optional[tuple[float, object, object]] = None
        lengths_cache: dict = {}
        for exit_node, exit_cost in exits.items():
            if exit_node not in lengths_cache:
                lengths_cache[exit_node] = self.network.single_source_lengths(
                    exit_node, cutoff=cutoff
                )
            lengths = lengths_cache[exit_node]
            for entry_node, entry_cost in entries.items():
                mid = lengths.get(entry_node)
                if mid is None:
                    continue
                total = exit_cost + mid + entry_cost
                if best is None or total < best[0]:
                    best = (total, exit_node, entry_node)
        if best is None or best[0] > cutoff:
            return None
        total, exit_node, entry_node = best

        geometry: list[Point] = [start.point]
        start_geom = net.edge_geometry(start.edge.u, start.edge.v)
        if exit_node == start.edge.u:
            geometry.extend(reversed(_subline(start_geom, 0.0, start.offset_m)[:-1]))
        else:
            geometry.extend(_subline(start_geom, start.offset_m, start_len)[1:])
        try:
            node_path = net.shortest_path(exit_node, entry_node)
        except nx.NetworkXNoPath:
            return None
        geometry.extend(net.path_geometry(node_path)[1:])
        end_geom = net.edge_geometry(end.edge.u, end.edge.v)
        if entry_node == end.edge.u:
            geometry.extend(_subline(end_geom, 0.0, end.offset_m)[1:])
        else:
            geometry.extend(reversed(_subline(end_geom, end.offset_m, end_len)[:-1]))
        geometry.append(end.point)
        return total, geometry

    def match(self, trajectory: Trajectory) -> list[Optional[EdgePosition]]:
        """Viterbi-match each point to an edge position (None = unmatched)."""
        cfg = self.config
        candidate_sets: list[list[EdgePosition]] = [
            self.network.nearest_edges(p, cfg.candidate_radius_m, cfg.max_candidates)
            for p in trajectory.points
        ]

        matched: list[Optional[EdgePosition]] = [None] * len(trajectory)
        # Viterbi over contiguous runs of points that have candidates.
        run_start = 0
        while run_start < len(trajectory):
            if not candidate_sets[run_start]:
                run_start += 1
                continue
            run_end = run_start
            while run_end + 1 < len(trajectory) and candidate_sets[run_end + 1]:
                run_end += 1
            self._viterbi_run(trajectory, candidate_sets, run_start, run_end, matched)
            run_start = run_end + 1
        return matched

    def _viterbi_run(
        self,
        trajectory: Trajectory,
        candidate_sets: list[list[EdgePosition]],
        start: int,
        end: int,
        matched: list[Optional[EdgePosition]],
    ) -> None:
        cfg = self.config
        points = trajectory.points
        scores = [self._emission_logp(c) for c in candidate_sets[start]]
        backptr: list[list[int]] = []
        for t in range(start + 1, end + 1):
            straight = points[t - 1].distance_to(points[t])
            cutoff = cfg.route_cutoff_factor * straight + 500.0
            prev_cands = candidate_sets[t - 1]
            cur_cands = candidate_sets[t]
            new_scores = [float("-inf")] * len(cur_cands)
            pointers = [0] * len(cur_cands)
            for j, cur in enumerate(cur_cands):
                emit = self._emission_logp(cur)
                for i, prev in enumerate(prev_cands):
                    if scores[i] == float("-inf"):
                        continue
                    route = self._route(prev, cur, cutoff)
                    if route is None:
                        continue
                    trans = -abs(route[0] - straight) / cfg.transition_beta_m
                    total = scores[i] + trans + emit
                    if total > new_scores[j]:
                        new_scores[j] = total
                        pointers[j] = i
            if all(s == float("-inf") for s in new_scores):
                # Broken chain: fall back to emission only (restart).
                new_scores = [self._emission_logp(c) for c in cur_cands]
            scores = new_scores
            backptr.append(pointers)

        best = max(range(len(scores)), key=lambda j: scores[j])
        choice = best
        for t in range(end, start, -1):
            matched[t] = candidate_sets[t][choice]
            choice = backptr[t - start - 1][choice]
        matched[start] = candidate_sets[start][choice]

    # -- Imputer interface ---------------------------------------------------------

    def impute(self, trajectory: Trajectory) -> ImputationResult:
        cfg = self.config
        points = trajectory.points
        if len(points) < 2:
            return ImputationResult(trajectory, ())
        matched = self.match(trajectory)
        out: list[Point] = [points[0]]
        outcomes: list[SegmentOutcome] = []
        for i in range(len(points) - 1):
            a, b = points[i], points[i + 1]
            gap = a.distance_to(b)
            if gap <= cfg.maxgap_m:
                out.append(b)
                continue
            interior = self._impute_gap(matched[i], matched[i + 1], gap)
            if interior is None:
                interior = _linear_interior(a, b, cfg.maxgap_m)
                outcomes.append(SegmentOutcome(i, True, 0, len(interior)))
            else:
                interior = _assign_times(a, b, interior)
                outcomes.append(SegmentOutcome(i, False, 0, len(interior)))
            out.extend(interior)
            out.append(b)
        return ImputationResult(trajectory.with_points(out), tuple(outcomes))

    def _impute_gap(
        self,
        start: Optional[EdgePosition],
        end: Optional[EdgePosition],
        straight: float,
    ) -> Optional[list[Point]]:
        if start is None or end is None:
            return None
        cutoff = self.config.route_cutoff_factor * straight + 500.0
        route = self._route(start, end, cutoff)
        if route is None:
            return None
        _, geometry = route
        dense = Trajectory("route", geometry).discretize(self.config.maxgap_m)
        return dense[1:-1]


def _subline(geometry: Sequence[Point], off_a: float, off_b: float) -> list[Point]:
    """The polyline portion between two arc-length offsets (off_a <= off_b)."""
    out: list[Point] = []
    walked = 0.0
    out.append(_point_at(geometry, off_a))
    for u, v in zip(geometry, geometry[1:]):
        seg = u.distance_to(v)
        end = walked + seg
        if off_a < end < off_b:
            out.append(v)
        walked = end
    out.append(_point_at(geometry, off_b))
    return out


def _point_at(geometry: Sequence[Point], offset: float) -> Point:
    if offset <= 0:
        return geometry[0]
    walked = 0.0
    for u, v in zip(geometry, geometry[1:]):
        seg = u.distance_to(v)
        if walked + seg >= offset:
            if seg == 0.0:
                return v
            return interpolate(u, v, (offset - walked) / seg)
        walked += seg
    return geometry[-1]


def _linear_interior(a: Point, b: Point, maxgap_m: float) -> list[Point]:
    n = max(1, int(math.ceil(a.distance_to(b) / maxgap_m)))
    return [interpolate(a, b, k / n) for k in range(1, n)]


def _assign_times(a: Point, b: Point, interior: list[Point]) -> list[Point]:
    if a.t is None or b.t is None or not interior:
        return interior
    path = [a] + interior + [b]
    cum = [0.0]
    for u, v in zip(path, path[1:]):
        cum.append(cum[-1] + u.distance_to(v))
    total = cum[-1]
    if total == 0.0:
        return interior
    span = b.t - a.t
    return [p.with_time(a.t + span * (cum[k + 1] / total)) for k, p in enumerate(interior)]
