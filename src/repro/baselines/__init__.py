"""The paper's comparison methods (Section 8, "Baselines").

* :class:`LinearImputer` — straight-line interpolation (the baseline; by
  the paper's definition its failure rate is 100 %).
* :class:`TrImpute` — reimplementation of the crowd-wisdom, network-free
  state of the art (Elshrif et al., SIGSPATIAL 2022): a guided walk over
  historical GPS point density.
* :class:`HmmMapMatcher` — HMM map matching + shortest-path imputation,
  the road-network-equipped reference (not a competitor: it is given the
  ground-truth network that KAMEL never sees).
"""

from repro.baselines.linear import LinearImputer
from repro.baselines.trimpute import TrImpute, TrImputeConfig
from repro.baselines.mapmatch import HmmMapMatcher, MapMatchConfig

__all__ = [
    "HmmMapMatcher",
    "LinearImputer",
    "MapMatchConfig",
    "TrImpute",
    "TrImputeConfig",
]
