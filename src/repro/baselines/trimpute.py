"""TrImpute: crowd-wisdom trajectory imputation (Elshrif et al., 2022).

The paper's direct competitor and the network-free state of the art it
evaluates against. TrImpute keeps *no model*: it indexes the raw
historical GPS points on a fine grid, remembering per cell how many points
were seen and their average travel direction. To impute a gap it walks
from the source toward the destination, at each step voting among nearby
cells by (a) historical point density, (b) agreement between the cell's
historical direction and the direction toward the destination, and
(c) forward progress. The walk fails — and the segment falls back to a
straight line — when no populated cell supports the next step, which is
exactly why the technique "only works when there are significant amounts
of highly dense historical data" (paper Sections 1 and 9).
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.result import ImputationResult, Imputer, SegmentOutcome
from repro.errors import NotFittedError
from repro.geo import Point, Trajectory
from repro.geo.point import angle_difference


@dataclass(frozen=True)
class TrImputeConfig:
    """Knobs of the crowd-wisdom walk."""

    maxgap_m: float = 100.0
    cell_m: float = 50.0
    """Edge of the voting grid cells."""
    search_radius_cells: int = 3
    """How far (in cells) a step may jump from the current cell."""
    min_votes: int = 2
    """Cells with fewer historical points than this cannot be stepped on."""
    direction_tolerance_deg: float = 100.0
    """A step must stay within this bearing of the destination."""
    max_steps: int = 120
    density_weight: float = 1.0
    direction_weight: float = 2.0

    def __post_init__(self) -> None:
        if self.maxgap_m <= 0 or self.cell_m <= 0:
            raise ValueError("maxgap_m and cell_m must be positive")
        if self.search_radius_cells < 1:
            raise ValueError("search_radius_cells must be >= 1")
        if self.max_steps < 1:
            raise ValueError("max_steps must be >= 1")


@dataclass
class _CellStats:
    count: int = 0
    sum_x: float = 0.0
    sum_y: float = 0.0
    sum_cos: float = 0.0
    sum_sin: float = 0.0

    def add(self, p: Point, direction: Optional[float]) -> None:
        self.count += 1
        self.sum_x += p.x
        self.sum_y += p.y
        if direction is not None:
            self.sum_cos += math.cos(direction)
            self.sum_sin += math.sin(direction)

    @property
    def mean_point(self) -> Point:
        return Point(self.sum_x / self.count, self.sum_y / self.count)

    @property
    def mean_direction(self) -> Optional[float]:
        if self.sum_cos == 0.0 and self.sum_sin == 0.0:
            return None
        return math.atan2(self.sum_sin, self.sum_cos)


class TrImpute(Imputer):
    """The crowd-wisdom walker."""

    def __init__(self, config: Optional[TrImputeConfig] = None) -> None:
        self.config = config or TrImputeConfig()
        self._cells: dict[tuple[int, int], _CellStats] = defaultdict(_CellStats)
        self._fitted = False

    @property
    def name(self) -> str:
        return "TrImpute"

    # -- training ("computing a simple set of stats and lookup indices") --

    def _key(self, p: Point) -> tuple[int, int]:
        c = self.config.cell_m
        return (math.floor(p.x / c), math.floor(p.y / c))

    def fit(self, trajectories: Sequence[Trajectory]) -> "TrImpute":
        for traj in trajectories:
            pts = traj.points
            for i, p in enumerate(pts):
                direction: Optional[float] = None
                if len(pts) >= 2:
                    a = pts[i - 1] if i > 0 else pts[0]
                    b = pts[i + 1] if i + 1 < len(pts) else pts[-1]
                    if a.distance_to(b) > 0:
                        direction = a.bearing_to(b)
                self._cells[self._key(p)].add(p, direction)
        self._fitted = True
        return self

    @property
    def num_populated_cells(self) -> int:
        return len(self._cells)

    # -- the guided walk -----------------------------------------------------

    def _candidate_cells(self, around: tuple[int, int]) -> list[tuple[int, int]]:
        r = self.config.search_radius_cells
        i0, j0 = around
        out = []
        for di in range(-r, r + 1):
            for dj in range(-r, r + 1):
                if di == 0 and dj == 0:
                    continue
                key = (i0 + di, j0 + dj)
                if key in self._cells:
                    out.append(key)
        return out

    def _score(self, stats: _CellStats, pos: Point, dest: Point) -> Optional[float]:
        cfg = self.config
        cell_pt = stats.mean_point
        step = pos.distance_to(cell_pt)
        if step == 0.0:
            return None
        to_dest = pos.bearing_to(dest)
        to_cell = pos.bearing_to(cell_pt)
        if angle_difference(to_dest, to_cell) > math.radians(cfg.direction_tolerance_deg):
            return None
        density = math.log1p(stats.count) * cfg.density_weight
        alignment = 0.0
        mean_dir = stats.mean_direction
        if mean_dir is not None:
            # Historical flow through the cell should roughly agree with
            # where we are headed (either way: roads carry both directions).
            diff = angle_difference(mean_dir, to_dest)
            diff = min(diff, math.pi - diff)
            alignment = (1.0 - diff / (math.pi / 2.0)) * cfg.direction_weight
        progress = dest.distance_to(cell_pt)
        return density + alignment - progress / (10.0 * cfg.cell_m)

    def _walk(self, a: Point, b: Point) -> Optional[list[Point]]:
        """Crowd-guided walk from a to b; None when the walk gets stuck."""
        cfg = self.config
        pos = a
        visited: set[tuple[int, int]] = {self._key(a)}
        interior: list[Point] = []
        for _ in range(cfg.max_steps):
            if pos.distance_to(b) <= cfg.maxgap_m:
                return interior
            best_key: Optional[tuple[int, int]] = None
            best_score = float("-inf")
            for key in self._candidate_cells(self._key(pos)):
                if key in visited:
                    continue
                stats = self._cells[key]
                if stats.count < cfg.min_votes:
                    continue
                score = self._score(stats, pos, b)
                if score is not None and score > best_score:
                    best_score = score
                    best_key = key
            if best_key is None:
                return None
            visited.add(best_key)
            pos = self._cells[best_key].mean_point
            interior.append(pos)
        return None

    # -- Imputer interface ------------------------------------------------------

    def impute(self, trajectory: Trajectory) -> ImputationResult:
        if not self._fitted:
            raise NotFittedError("TrImpute.impute before fit")
        cfg = self.config
        points = trajectory.points
        if len(points) < 2:
            return ImputationResult(trajectory, ())
        out: list[Point] = [points[0]]
        outcomes: list[SegmentOutcome] = []
        for i in range(len(points) - 1):
            a, b = points[i], points[i + 1]
            if a.distance_to(b) <= cfg.maxgap_m:
                out.append(b)
                continue
            interior = self._walk(a, b)
            if interior is None:
                interior = _linear_interior(a, b, cfg.maxgap_m)
                outcomes.append(SegmentOutcome(i, True, 0, len(interior)))
            else:
                interior = _assign_times(a, b, interior)
                outcomes.append(SegmentOutcome(i, False, 0, len(interior)))
            out.extend(interior)
            out.append(b)
        return ImputationResult(trajectory.with_points(out), tuple(outcomes))


def _linear_interior(a: Point, b: Point, maxgap_m: float) -> list[Point]:
    from repro.geo import interpolate

    n = max(1, int(math.ceil(a.distance_to(b) / maxgap_m)))
    return [interpolate(a, b, k / n) for k in range(1, n)]


def _assign_times(a: Point, b: Point, interior: list[Point]) -> list[Point]:
    if a.t is None or b.t is None or not interior:
        return interior
    path = [a] + interior + [b]
    cum = [0.0]
    for u, v in zip(path, path[1:]):
        cum.append(cum[-1] + u.distance_to(v))
    total = cum[-1]
    if total == 0.0:
        return interior
    span = b.t - a.t
    return [p.with_time(a.t + span * (cum[k + 1] / total)) for k, p in enumerate(interior)]
