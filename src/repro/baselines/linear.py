"""Linear interpolation: the paper's baseline imputer."""

from __future__ import annotations

import math

from repro.core.result import ImputationResult, Imputer, SegmentOutcome
from repro.geo import Point, Trajectory, interpolate


class LinearImputer(Imputer):
    """Fills every gap with evenly spaced points on a straight line.

    Per the paper's failure-rate definition — "an imputation technique
    fails ... when it just inserts a linear line between the segment end
    points" — every segment this imputer touches counts as failed, giving
    it the constant 100 % failure rate seen in Figures 9(e)-(f).
    """

    def __init__(self, maxgap_m: float = 100.0) -> None:
        if maxgap_m <= 0:
            raise ValueError(f"maxgap_m must be positive, got {maxgap_m!r}")
        self.maxgap_m = maxgap_m

    @property
    def name(self) -> str:
        return "Linear"

    def impute(self, trajectory: Trajectory) -> ImputationResult:
        points = trajectory.points
        if len(points) < 2:
            return ImputationResult(trajectory, ())
        out: list[Point] = [points[0]]
        outcomes: list[SegmentOutcome] = []
        for i in range(len(points) - 1):
            a, b = points[i], points[i + 1]
            gap = a.distance_to(b)
            if gap > self.maxgap_m:
                n_intervals = max(1, int(math.ceil(gap / self.maxgap_m)))
                interior = [
                    interpolate(a, b, k / n_intervals) for k in range(1, n_intervals)
                ]
                out.extend(interior)
                outcomes.append(SegmentOutcome(i, True, 0, len(interior)))
            out.append(b)
        return ImputationResult(trajectory.with_points(out), tuple(outcomes))
