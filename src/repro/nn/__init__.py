"""A minimal reverse-mode automatic differentiation engine on numpy.

This is the from-scratch substitute for the deep-learning framework the
paper's BERT implementation runs on (the sandbox has no torch/TF and no
network). It provides exactly the operator set a transformer encoder
needs — broadcast arithmetic, (batched) matmul, softmax, LayerNorm, GELU,
embedding lookup, dropout, and a fused masked cross-entropy — plus an Adam
optimizer and a small Module/Parameter system.

Gradients are validated against numerical differentiation in
``tests/test_nn_autograd.py``.
"""

from repro.nn.tensor import Tensor, no_grad
from repro.nn import functional
from repro.nn.module import Dropout, Embedding, LayerNorm, Linear, Module, Parameter, Sequential
from repro.nn.optim import Adam, clip_grad_norm

__all__ = [
    "Adam",
    "Dropout",
    "Embedding",
    "LayerNorm",
    "Linear",
    "Module",
    "Parameter",
    "Sequential",
    "Tensor",
    "clip_grad_norm",
    "functional",
    "no_grad",
]
