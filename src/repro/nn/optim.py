"""Optimizers and gradient utilities."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.nn.module import Parameter


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clip norm.
    """
    params = [p for p in parameters if p.grad is not None]
    total = math.sqrt(sum(float((p.grad**2).sum()) for p in params))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


class Adam:
    """Adam with optional decoupled weight decay and linear warmup.

    The learning-rate schedule follows BERT's: linear warmup for
    ``warmup_steps`` then constant (the runs here are short enough that
    decay adds nothing).
    """

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        warmup_steps: int = 0,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr!r}")
        self.parameters = list(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.warmup_steps = warmup_steps
        self.t = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def current_lr(self) -> float:
        if self.warmup_steps and self.t < self.warmup_steps:
            return self.lr * (self.t + 1) / self.warmup_steps
        return self.lr

    def step(self) -> None:
        """Apply one update using the accumulated gradients."""
        lr = self.current_lr()
        self.t += 1
        b1, b2 = self.beta1, self.beta2
        bc1 = 1.0 - b1**self.t
        bc2 = 1.0 - b2**self.t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            m *= b1
            m += (1.0 - b1) * g
            v *= b2
            v += (1.0 - b2) * g * g
            update = (m / bc1) / (np.sqrt(v / bc2) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * p.data
            p.data -= lr * update

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()
