"""Loss functions and stateless helpers for the autograd engine."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax built from primitive ops."""
    a = logits
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - logsumexp
    softmax = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(grad - softmax * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (a,), backward)


def cross_entropy(
    logits: Tensor, targets: np.ndarray, ignore_index: int = -100
) -> Tensor:
    """Mean cross-entropy over positions whose target != ``ignore_index``.

    ``logits`` has shape ``(..., V)`` and ``targets`` the matching leading
    shape. This is the masked-LM loss: un-masked positions carry the
    ignore index and contribute nothing.
    """
    targets = np.asarray(targets, dtype=np.int64)
    flat_logits = logits.reshape(-1, logits.shape[-1])
    flat_targets = targets.reshape(-1)
    active = flat_targets != ignore_index
    n_active = int(active.sum())
    if n_active == 0:
        raise ValueError("cross_entropy: every target is the ignore index")

    logp = log_softmax(flat_logits, axis=-1)
    # Gather log-probabilities of the target classes as a primitive op so
    # the backward pass scatters into exactly those entries.
    a = logp
    rows = np.nonzero(active)[0]
    cols = flat_targets[active]
    picked = a.data[rows, cols]
    out_data = np.array(-picked.sum() / n_active)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            g = np.zeros_like(a.data)
            g[rows, cols] = -float(grad) / n_active
            a._accumulate(g)

    return Tensor._make(out_data, (a,), backward)


def mse(pred: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant target array."""
    diff = pred - Tensor(np.asarray(target, dtype=np.float64))
    return (diff * diff).mean()
