"""The autograd ``Tensor``: a numpy array plus a reverse-mode tape."""

from __future__ import annotations

import contextlib
import math
from typing import Callable, Iterator, Optional, Sequence, Union

import numpy as np

_GRAD_ENABLED = [True]


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Disable graph construction inside the ``with`` block (inference)."""
    _GRAD_ENABLED.append(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.pop()


def _grad_enabled() -> bool:
    return _GRAD_ENABLED[-1]


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (undo numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum away leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were 1 in the original shape.
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


ArrayLike = Union["Tensor", np.ndarray, float, int, Sequence]


class Tensor:
    """An N-d array that records the operations applied to it.

    Calling :meth:`backward` on a scalar result propagates gradients to
    every ``requires_grad`` tensor that contributed to it. Data is always
    float64 unless explicitly constructed otherwise, which keeps gradient
    checks tight; the models here are small enough that speed is fine.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward_fn", "_parents")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward_fn: Optional[Callable[[np.ndarray], None]] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = requires_grad and _grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._parents = _parents if self.requires_grad or _parents else ()
        self._backward_fn = _backward_fn

    # -- construction helpers ---------------------------------------------

    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def _lift(value: ArrayLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward_fn: Callable[[np.ndarray], None],
    ) -> "Tensor":
        needs = _grad_enabled() and any(p.requires_grad for p in parents)
        if not needs:
            return Tensor(data)
        return Tensor(data, requires_grad=True, _parents=parents, _backward_fn=backward_fn)

    # -- bookkeeping --------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self) -> float:
        # ndarray.item() accepts any size-1 array; float() only 0-d ones.
        return float(self.data.item())

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to 1 and must match this tensor's shape; calling
        it on a non-scalar without an explicit gradient is an error.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without grad requires a scalar tensor")
            grad = np.ones_like(self.data)

        order: list[Tensor] = []
        seen: set[int] = set()

        def visit(t: "Tensor") -> None:
            stack = [(t, False)]
            while stack:
                node, expanded = stack.pop()
                if expanded:
                    order.append(node)
                    continue
                if id(node) in seen:
                    continue
                seen.add(id(node))
                stack.append((node, True))
                for p in node._parents:
                    if p.requires_grad:
                        stack.append((p, False))

        visit(self)
        self._accumulate(np.asarray(grad, dtype=np.float64))
        for node in reversed(order):
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # -- arithmetic ---------------------------------------------------------

    def __add__(self, other: ArrayLike) -> "Tensor":
        a, b = self, Tensor._lift(other)
        out_data = a.data + b.data

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(_unbroadcast(grad, a.shape))
            if b.requires_grad:
                b._accumulate(_unbroadcast(grad, b.shape))

        return Tensor._make(out_data, (a, b), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-Tensor._lift(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor._lift(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        a, b = self, Tensor._lift(other)
        out_data = a.data * b.data

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(_unbroadcast(grad * b.data, a.shape))
            if b.requires_grad:
                b._accumulate(_unbroadcast(grad * a.data, b.shape))

        return Tensor._make(out_data, (a, b), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        a, b = self, Tensor._lift(other)
        out_data = a.data / b.data

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(_unbroadcast(grad / b.data, a.shape))
            if b.requires_grad:
                b._accumulate(_unbroadcast(-grad * a.data / (b.data**2), b.shape))

        return Tensor._make(out_data, (a, b), backward)

    def pow(self, exponent: float) -> "Tensor":
        a = self
        out_data = a.data**exponent

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad * exponent * a.data ** (exponent - 1))

        return Tensor._make(out_data, (a,), backward)

    def exp(self) -> "Tensor":
        a = self
        out_data = np.exp(a.data)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad * out_data)

        return Tensor._make(out_data, (a,), backward)

    def log(self) -> "Tensor":
        a = self
        out_data = np.log(a.data)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad / a.data)

        return Tensor._make(out_data, (a,), backward)

    def tanh(self) -> "Tensor":
        a = self
        out_data = np.tanh(a.data)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (a,), backward)

    # -- shape ops ------------------------------------------------------------

    def reshape(self, *shape: int) -> "Tensor":
        a = self
        out_data = a.data.reshape(shape)
        original = a.shape

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (a,), backward)

    def transpose(self, axis1: int, axis2: int) -> "Tensor":
        a = self
        out_data = np.swapaxes(a.data, axis1, axis2)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(np.swapaxes(grad, axis1, axis2))

        return Tensor._make(out_data, (a,), backward)

    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        a = self
        out_data = a.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not a.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            a._accumulate(np.broadcast_to(g, a.shape).copy())

        return Tensor._make(out_data, (a,), backward)

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # -- linear algebra ---------------------------------------------------------

    def matmul(self, other: "Tensor") -> "Tensor":
        a, b = self, Tensor._lift(other)
        out_data = a.data @ b.data

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                ga = grad @ np.swapaxes(b.data, -1, -2)
                a._accumulate(_unbroadcast(ga, a.shape))
            if b.requires_grad:
                gb = np.swapaxes(a.data, -1, -2) @ grad
                b._accumulate(_unbroadcast(gb, b.shape))

        return Tensor._make(out_data, (a, b), backward)

    __matmul__ = matmul

    # -- neural-network primitives ------------------------------------------------

    def softmax(self, axis: int = -1) -> "Tensor":
        a = self
        shifted = a.data - a.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out_data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                dot = (grad * out_data).sum(axis=axis, keepdims=True)
                a._accumulate(out_data * (grad - dot))

        return Tensor._make(out_data, (a,), backward)

    def gelu(self) -> "Tensor":
        """GELU activation (tanh approximation, as used by BERT)."""
        a = self
        c = math.sqrt(2.0 / math.pi)
        x = a.data
        inner = c * (x + 0.044715 * x**3)
        t = np.tanh(inner)
        out_data = 0.5 * x * (1.0 + t)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                dinner = c * (1.0 + 3 * 0.044715 * x**2)
                dgelu = 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t**2) * dinner
                a._accumulate(grad * dgelu)

        return Tensor._make(out_data, (a,), backward)

    def relu(self) -> "Tensor":
        a = self
        mask = a.data > 0
        out_data = a.data * mask

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad * mask)

        return Tensor._make(out_data, (a,), backward)

    def layernorm(self, weight: "Tensor", bias: "Tensor", eps: float = 1e-5) -> "Tensor":
        """Layer normalization over the last axis with affine parameters."""
        a = self
        mu = a.data.mean(axis=-1, keepdims=True)
        var = a.data.var(axis=-1, keepdims=True)
        inv = 1.0 / np.sqrt(var + eps)
        xhat = (a.data - mu) * inv
        out_data = xhat * weight.data + bias.data

        def backward(grad: np.ndarray) -> None:
            if weight.requires_grad:
                weight._accumulate(
                    _unbroadcast(grad * xhat, weight.shape)
                )
            if bias.requires_grad:
                bias._accumulate(_unbroadcast(grad, bias.shape))
            if a.requires_grad:
                gx = grad * weight.data
                term1 = gx
                term2 = gx.mean(axis=-1, keepdims=True)
                term3 = xhat * (gx * xhat).mean(axis=-1, keepdims=True)
                a._accumulate(inv * (term1 - term2 - term3))

        return Tensor._make(out_data, (a, weight, bias), backward)

    def embedding(self, ids: np.ndarray) -> "Tensor":
        """Row lookup: ``self`` is a (V, D) table, ``ids`` an int array."""
        table = self
        ids = np.asarray(ids, dtype=np.int64)
        out_data = table.data[ids]

        def backward(grad: np.ndarray) -> None:
            if table.requires_grad:
                g = np.zeros_like(table.data)
                np.add.at(g, ids.reshape(-1), grad.reshape(-1, table.data.shape[-1]))
                table._accumulate(g)

        return Tensor._make(out_data, (table,), backward)

    def dropout(self, p: float, rng: np.random.Generator, training: bool) -> "Tensor":
        """Inverted dropout; identity when not training or ``p == 0``."""
        if not training or p <= 0.0:
            return self
        a = self
        keep = (rng.random(a.shape) >= p) / (1.0 - p)
        out_data = a.data * keep

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(grad * keep)

        return Tensor._make(out_data, (a,), backward)

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"
