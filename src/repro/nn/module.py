"""Parameter containers and standard layers."""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor (always requires grad)."""

    def __init__(self, data: np.ndarray) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class with recursive parameter discovery and train/eval mode."""

    def __init__(self) -> None:
        self.training = True

    def parameters(self) -> Iterator[Parameter]:
        seen: set[int] = set()
        for value in vars(self).values():
            yield from _parameters_of(value, seen)

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        seen: set[int] = set()
        for name, value in vars(self).items():
            yield from _named_parameters_of(f"{prefix}{name}", value, seen)

    def num_parameters(self) -> int:
        return sum(p.data.size for p in self.parameters())

    def train(self) -> "Module":
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in vars(self).values():
            for module in _modules_of(value):
                module._set_mode(training)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter array, keyed by dotted attribute path."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        extra = set(state) - set(own)
        if missing or extra:
            raise KeyError(f"state dict mismatch: missing={missing}, extra={extra}")
        for name, p in own.items():
            arr = np.asarray(state[name], dtype=np.float64)
            if arr.shape != p.data.shape:
                raise ValueError(f"shape mismatch for {name}: {arr.shape} vs {p.data.shape}")
            p.data = arr.copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


def _parameters_of(value, seen: set[int]) -> Iterator[Parameter]:
    if isinstance(value, Parameter):
        if id(value) not in seen:
            seen.add(id(value))
            yield value
    elif isinstance(value, Module):
        for sub in vars(value).values():
            yield from _parameters_of(sub, seen)
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _parameters_of(item, seen)


def _named_parameters_of(name: str, value, seen: set[int]) -> Iterator[tuple[str, Parameter]]:
    if isinstance(value, Parameter):
        if id(value) not in seen:
            seen.add(id(value))
            yield name, value
    elif isinstance(value, Module):
        for sub_name, sub in vars(value).items():
            yield from _named_parameters_of(f"{name}.{sub_name}", sub, seen)
    elif isinstance(value, (list, tuple)):
        for idx, item in enumerate(value):
            yield from _named_parameters_of(f"{name}.{idx}", item, seen)


def _modules_of(value) -> Iterator[Module]:
    if isinstance(value, Module):
        yield value
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _modules_of(item)


class Linear(Module):
    """Affine map ``x @ W + b`` with Xavier-uniform initialization."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator) -> None:
        super().__init__()
        bound = np.sqrt(6.0 / (in_features + out_features))
        self.weight = Parameter(rng.uniform(-bound, bound, size=(in_features, out_features)))
        self.bias = Parameter(np.zeros(out_features))

    def forward(self, x: Tensor) -> Tensor:
        return x @ self.weight + self.bias


class Embedding(Module):
    """Lookup table of shape ``(num_embeddings, dim)``."""

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.weight = Parameter(rng.normal(0.0, 0.02, size=(num_embeddings, dim)))

    def forward(self, ids: np.ndarray) -> Tensor:
        return self.weight.embedding(ids)


class LayerNorm(Module):
    """Layer normalization over the last axis."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.weight = Parameter(np.ones(dim))
        self.bias = Parameter(np.zeros(dim))
        self.eps = eps

    def forward(self, x: Tensor) -> Tensor:
        return x.layernorm(self.weight, self.bias, self.eps)


class Dropout(Module):
    """Inverted dropout driven by an explicit RNG for reproducibility."""

    def __init__(self, p: float, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout p must be in [0, 1), got {p!r}")
        self.p = p
        self.rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        return x.dropout(self.p, self.rng, self.training)


class Sequential(Module):
    """Apply modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.modules = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for m in self.modules:
            x = m(x)
        return x
