"""Cell-size auto-tuning (paper Section 3.2).

The optimal tokenization cell size is dataset-dependent: too small and
tokens are too rare to learn, too large and a cell stops being
representative (Figure 3d). KAMEL "samples the input data and tries
training BERT models for various cell sizes, then picks the size that
achieves the highest accuracy" — this module implements exactly that loop
on a training-data sample, scoring each candidate size by imputation
recall on a held-out, artificially sparsified slice.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from repro.core.config import KamelConfig
from repro.geo import Trajectory


def tune_cell_size(
    trajectories: Sequence[Trajectory],
    config: KamelConfig,
    sample_size: int = 60,
    sparse_distance_m: Optional[float] = None,
    seed: int = 0,
) -> float:
    """Pick the best cell edge length from ``config.cell_size_candidates``.

    Trains a lightweight single-model KAMEL (counting backend — the tuner
    only compares sizes against each other, so backend-relative accuracy
    is what matters and speed wins) per candidate size on a sample and
    scores held-out recall. Returns the winning edge length in meters.
    """
    from repro.core.kamel import Kamel  # deferred: Kamel imports this module
    from repro.eval.metrics import recall

    if not trajectories:
        raise ValueError("tune_cell_size needs training trajectories")
    sparse_distance = sparse_distance_m or 8.0 * config.maxgap_m

    rng = np.random.default_rng(seed)
    order = rng.permutation(len(trajectories))[:sample_size]
    sample = [trajectories[i] for i in order]
    cut = max(1, int(0.7 * len(sample)))
    train, held_out = sample[:cut], sample[cut:]
    if not held_out:
        held_out = train[-1:]

    best_size = config.cell_edge_m
    best_score = float("-inf")
    for size in config.cell_size_candidates:
        trial_config = dataclasses.replace(
            config,
            cell_edge_m=size,
            auto_tune_cell_size=False,
            use_partitioning=False,
            model_backend="counting",
        )
        system = Kamel(trial_config).fit(train)
        scores = []
        for truth in held_out:
            sparse = truth.sparsify(sparse_distance)
            if len(sparse) < 2:
                continue
            result = system.impute(sparse)
            # Fixed delta across candidates: scoring each size against its
            # own cell size would bias the sweep toward coarse grids.
            scores.append(
                recall(truth, result.trajectory, config.maxgap_m, delta_m=config.maxgap_m / 2.0)
            )
        score = float(np.mean(scores)) if scores else float("-inf")
        if score > best_score:
            best_score = score
            best_size = size
    return best_size
