"""Detokenization: tokens -> representative GPS points (paper Section 7).

Offline, the training points inside every grid cell are clustered with
DBSCAN using position *and* travel direction as features, so a cell
containing (say) a right turn yields one cluster per road direction
(Figure 8). Online, each imputed token is replaced by the centroid of the
cluster whose direction best matches the local travel direction; with one
cluster the data centroid is used, and with none the cell centroid — the
paper's three outcome cases.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.cluster import NOISE, dbscan_labels
from repro.core.config import KamelConfig
from repro.core.tokenization import Tokenizer
from repro.geo import Point, Trajectory
from repro.geo.point import angle_difference
from repro.grid.base import Cell
from repro.obs import instrument as obs


@dataclass(frozen=True)
class DirectionalCluster:
    """One DBSCAN cluster inside a cell: where, and heading which way."""

    centroid: Point
    direction: float
    """Circular-mean travel direction (radians, math convention)."""
    size: int


@dataclass(frozen=True)
class CellClusters:
    """Per-cell detokenization metadata (the paper's token metadata)."""

    clusters: tuple[DirectionalCluster, ...] = field(default_factory=tuple)
    data_centroid: Optional[Point] = None
    num_points: int = 0


def _point_directions(trajectory: Trajectory) -> list[tuple[Point, float]]:
    """Each trajectory point paired with its local travel direction."""
    pts = trajectory.points
    out: list[tuple[Point, float]] = []
    n = len(pts)
    if n < 2:
        return out
    for i, p in enumerate(pts):
        if i == 0:
            ref_a, ref_b = pts[0], pts[1]
        elif i == n - 1:
            ref_a, ref_b = pts[n - 2], pts[n - 1]
        else:
            ref_a, ref_b = pts[i - 1], pts[i + 1]
        if ref_a.distance_to(ref_b) == 0.0:
            continue
        out.append((p, ref_a.bearing_to(ref_b)))
    return out


def _circular_mean(angles: np.ndarray) -> float:
    return float(math.atan2(np.sin(angles).mean(), np.cos(angles).mean()))


class Detokenizer:
    """Builds and applies the per-token cluster metadata."""

    def __init__(self, tokenizer: Tokenizer, config: KamelConfig) -> None:
        self.tokenizer = tokenizer
        self.config = config
        self._cells: dict[Cell, CellClusters] = {}

    # -- offline (training time) -------------------------------------------

    def fit(self, trajectories: Iterable[Trajectory]) -> "Detokenizer":
        """Cluster every cell's training points by position + direction."""
        per_cell: dict[Cell, list[tuple[float, float, float]]] = defaultdict(list)
        grid = self.tokenizer.grid
        for traj in trajectories:
            for p, direction in _point_directions(traj):
                per_cell[grid.cell_of(p)].append((p.x, p.y, direction))
        for cell, rows in per_cell.items():
            self._cells[cell] = self._cluster_cell(rows)
        return self

    def _cluster_cell(self, rows: list[tuple[float, float, float]]) -> CellClusters:
        cfg = self.config
        xs = np.array([r[0] for r in rows])
        ys = np.array([r[1] for r in rows])
        dirs = np.array([r[2] for r in rows])
        data_centroid = Point(float(xs.mean()), float(ys.mean()))
        if len(rows) < cfg.dbscan_min_samples:
            return CellClusters((), data_centroid, len(rows))

        # Feature space: meters for position; direction mapped onto a
        # circle of radius ``direction_weight_m`` so opposite headings on
        # the same road land far apart.
        w = cfg.direction_weight_m
        features = np.column_stack(
            [xs, ys, w * np.cos(dirs), w * np.sin(dirs)]
        )
        # Scale epsilon by the cell's *size* (sqrt of area), not its edge
        # length: hexagon and square grids of equal cell area then cluster
        # identically, keeping the Fig. 12-III comparison fair.
        eps = cfg.dbscan_eps_fraction * math.sqrt(self.tokenizer.grid.cell_area_m2)
        labels = dbscan_labels(features, eps=eps, min_samples=cfg.dbscan_min_samples)

        clusters: list[DirectionalCluster] = []
        for label in sorted(set(labels) - {NOISE}):
            members = labels == label
            clusters.append(
                DirectionalCluster(
                    Point(float(xs[members].mean()), float(ys[members].mean())),
                    _circular_mean(dirs[members]),
                    int(members.sum()),
                )
            )
        return CellClusters(tuple(clusters), data_centroid, len(rows))

    @property
    def num_cells(self) -> int:
        return len(self._cells)

    def cell_info(self, cell: Cell) -> CellClusters:
        return self._cells.get(cell, CellClusters())

    # -- online (imputation time) ------------------------------------------------

    def point_for_token(
        self,
        token_id: int,
        incoming_from: Optional[Point],
        outgoing_to: Optional[Point],
    ) -> Point:
        """The representative point for one imputed token.

        The token direction angle is the average of the incoming angle
        (from the previous point toward this token) and the outgoing angle
        (from this token toward the next), per the paper's online
        procedure; the best-aligned cluster centroid wins.
        """
        cell = self.tokenizer.cell_of_token(token_id)
        hexagon_centroid = self.tokenizer.grid.centroid(cell)
        obs.count("repro.detokenization.tokens_total")
        info = self._cells.get(cell)
        if info is None or info.data_centroid is None:
            obs.count("repro.detokenization.mode.cell_centroid_total")
            return hexagon_centroid
        if not info.clusters:
            obs.count("repro.detokenization.mode.data_centroid_total")
            return info.data_centroid
        if len(info.clusters) == 1:
            obs.count("repro.detokenization.mode.single_cluster_total")
            return info.clusters[0].centroid

        direction = self._token_direction(hexagon_centroid, incoming_from, outgoing_to)
        if direction is None:
            # No directional context at all: the biggest cluster is the
            # best unconditional guess.
            obs.count("repro.detokenization.mode.largest_cluster_total")
            return max(info.clusters, key=lambda c: c.size).centroid
        best = min(
            info.clusters, key=lambda c: angle_difference(c.direction, direction)
        )
        obs.count("repro.detokenization.mode.direction_match_total")
        return best.centroid

    @staticmethod
    def _token_direction(
        here: Point, incoming_from: Optional[Point], outgoing_to: Optional[Point]
    ) -> Optional[float]:
        angles: list[float] = []
        if incoming_from is not None and incoming_from.distance_to(here) > 0:
            angles.append(incoming_from.bearing_to(here))
        if outgoing_to is not None and here.distance_to(outgoing_to) > 0:
            angles.append(here.bearing_to(outgoing_to))
        if not angles:
            return None
        return _circular_mean(np.array(angles))

    def detokenize_interior(
        self,
        interior_tokens: Sequence[int],
        start_point: Point,
        end_point: Point,
    ) -> list[Point]:
        """Convert a gap's imputed tokens into points, left to right.

        The direction context for each token uses the previously chosen
        point on the left and the next token's cell centroid (or the gap's
        end point) on the right.
        """
        centroids = [self.tokenizer.centroid_of_token(t) for t in interior_tokens]
        out: list[Point] = []
        previous = start_point
        for idx, token in enumerate(interior_tokens):
            nxt = centroids[idx + 1] if idx + 1 < len(centroids) else end_point
            chosen = self.point_for_token(token, previous, nxt)
            out.append(chosen)
            previous = chosen
        return out
