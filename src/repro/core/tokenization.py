"""Tokenization: points -> grid-cell tokens (paper Section 3).

Every input trajectory — training or sparse — passes through here first.
Points are mapped to grid cells; the cell is interned in a shared
:class:`~repro.mlm.vocab.Vocabulary` so downstream models work on small
integer ids. Consecutive points falling in the same cell collapse into
one token occurrence (a vehicle sampled at 1 Hz can sit in a 75 m hexagon
for many samples; the language analogy wants one "word", and the
timestamps of the collapsed run are kept as the token's entry time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.errors import ConfigError
from repro.geo import BoundingBox, Point, Trajectory
from repro.grid import Cell, Grid, HexGrid, SquareGrid
from repro.mlm.vocab import Vocabulary


@dataclass(frozen=True)
class TokenSequence:
    """A tokenized trajectory: ids plus the entry time of each token."""

    traj_id: str
    tokens: tuple[int, ...]
    times: tuple[Optional[float], ...]

    def __post_init__(self) -> None:
        if len(self.tokens) != len(self.times):
            raise ValueError("tokens and times must have equal length")
        if not isinstance(self.tokens, tuple):
            object.__setattr__(self, "tokens", tuple(self.tokens))
        if not isinstance(self.times, tuple):
            object.__setattr__(self, "times", tuple(self.times))

    def __len__(self) -> int:
        return len(self.tokens)


def make_grid(grid_type: str, cell_edge_m: float) -> Grid:
    """Factory for the two tokenization grids."""
    if grid_type == "hex":
        return HexGrid(cell_edge_m)
    if grid_type == "square":
        return SquareGrid(cell_edge_m)
    raise ConfigError(f"unknown grid_type {grid_type!r}")


class Tokenizer:
    """Maps trajectories to token sequences over a shared vocabulary."""

    def __init__(self, grid: Grid, vocabulary: Optional[Vocabulary] = None) -> None:
        self.grid = grid
        self.vocabulary = vocabulary if vocabulary is not None else Vocabulary()

    # -- encoding -----------------------------------------------------------

    def tokenize(self, trajectory: Trajectory, grow: bool = False) -> TokenSequence:
        """Tokenize one trajectory.

        ``grow=True`` interns unseen cells (training data); sparse query
        trajectories should use ``grow=False`` so cells the models never
        saw come out as ``[UNK]`` — mirroring BERT's out-of-vocabulary
        behaviour. Consecutive duplicate cells are collapsed.
        """
        tokens: list[int] = []
        times: list[Optional[float]] = []
        last_cell: Optional[Cell] = None
        for p in trajectory.points:
            cell = self.grid.cell_of(p)
            if cell == last_cell:
                continue
            last_cell = cell
            if grow:
                tokens.append(self.vocabulary.add(cell))
            else:
                tokens.append(self.vocabulary.encode(cell))
            times.append(p.t)
        return TokenSequence(trajectory.traj_id, tuple(tokens), tuple(times))

    def tokenize_many(
        self, trajectories: Iterable[Trajectory], grow: bool = False
    ) -> list[TokenSequence]:
        return [self.tokenize(t, grow=grow) for t in trajectories]

    # -- token geometry -------------------------------------------------------

    def cell_of_token(self, token_id: int) -> Cell:
        """The grid cell a (non-special) token id stands for."""
        item = self.vocabulary.decode(token_id)
        if self.vocabulary.is_special(token_id):
            raise ConfigError(f"token {token_id} ({item!r}) has no cell")
        return item  # type: ignore[return-value]

    def token_for_point(self, p: Point) -> int:
        """Encode a single point (``[UNK]`` for unseen cells)."""
        return self.vocabulary.encode(self.grid.cell_of(p))

    def centroid_of_token(self, token_id: int) -> Point:
        return self.grid.centroid(self.cell_of_token(token_id))

    def token_distance_m(self, a: int, b: int) -> float:
        """Centroid distance between two tokens in meters."""
        return self.grid.cell_distance_m(self.cell_of_token(a), self.cell_of_token(b))

    def sequence_bbox(self, seq: TokenSequence) -> BoundingBox:
        """Bounding box of a token sequence's cell centroids."""
        return BoundingBox.from_points(
            self.centroid_of_token(t)
            for t in seq.tokens
            if not self.vocabulary.is_special(t)
        )

    def polyline_of(self, tokens: Sequence[int]) -> list[Point]:
        """Cell-centroid polyline of a token sequence (skips specials)."""
        return [
            self.centroid_of_token(t)
            for t in tokens
            if not self.vocabulary.is_special(t)
        ]

    def __repr__(self) -> str:
        return f"Tokenizer(grid={self.grid!r}, vocab={self.vocabulary!r})"
