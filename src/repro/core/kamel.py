"""The assembled KAMEL system (paper Figure 1).

:class:`Kamel` wires the five modules together behind a two-method API:

* :meth:`Kamel.fit` / :meth:`Kamel.add_training` — the training input path:
  tokenize, store, maintain the pyramid model repository, and build the
  detokenization cluster metadata;
* :meth:`Kamel.impute` (plus batch and streaming variants) — the sparse
  input path: tokenize, pick the right model from the repository, run
  multipoint imputation under spatial constraints, and detokenize.

A segment whose imputation cannot be served by the happy path descends an
explicit degradation ladder (:mod:`repro.resilience.ladder`): full beam
search → reduced beam width → the global counting fallback model →
straight line. Only the last rung counts as a *failure* (the paper's
failure-rate definition); every rung below the top counts as *degraded*,
and both the rung and the reason it was reached are recorded on the
segment's :class:`~repro.core.result.SegmentOutcome`. Model lookup and
inference run behind retry + circuit-breaker guards
(:mod:`repro.resilience.breaker`), and every impute call can carry a
:class:`~repro.resilience.deadline.Deadline` so a pathological gap
triggers fallback instead of hanging an online request.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.core.config import KamelConfig
from repro.core.constraints import GapContext, PassthroughConstraints, SpatialConstraints
from repro.core.detokenization import Detokenizer
from repro.core.imputation import (
    IterativeImputer,
    SegmentImputation,
    make_segment_imputer,
)
from repro.core.partitioning import ModelRepository, StoredModel
from repro.core.result import ImputationResult, Imputer, SegmentOutcome
from repro.core.store import TrajectoryStore
from repro.core.tokenization import Tokenizer, make_grid
from repro.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    EmptyInputError,
    NotFittedError,
)
from repro.geo import BoundingBox, Point, Trajectory, interpolate
from repro.mlm.base import MaskedModel
from repro.mlm.bert import BertMaskedLM, TrainingConfig
from repro.mlm.counting import CountingMaskedLM
from repro.obs import instrument as obs
from repro.obs.drift import (
    DEFAULT_DRIFT_LIMIT,
    DEFAULT_DRIFT_WINDOW,
    DistributionSketch,
    DriftDetector,
)
from repro.obs.logging import get_logger
from repro.obs.quality import QualityTracker, quality_state
from repro.obs.tracing import span, trace_scope
from repro.resilience.breaker import PipelineGuards
from repro.resilience.deadline import Deadline
from repro.resilience.ladder import (
    DegradationLadder,
    RUNG_COUNTING,
    RUNG_FULL,
    RUNG_LINEAR,
    RUNG_REDUCED_BEAM,
)
from repro.resilience.validate import validate_trajectory

_log = get_logger("core.kamel")


def infer_max_speed(trajectories: Iterable[Trajectory], percentile: float = 95.0) -> float:
    """The paper's "fixed speed inferred from training trajectory data".

    Uses a high percentile of observed point-to-point speeds, robust to
    GPS-noise spikes. Falls back to an urban 14 m/s when no timed segment
    exists.
    """
    speeds: list[float] = []
    for traj in trajectories:
        for a, b in traj.segments():
            if a.t is None or b.t is None or b.t <= a.t:
                continue
            speeds.append(a.distance_to(b) / (b.t - a.t))
    if not speeds:
        return 14.0
    return float(np.percentile(speeds, percentile))


class Kamel(Imputer):
    """The scalable BERT-based trajectory imputation system."""

    def __init__(self, config: Optional[KamelConfig] = None) -> None:
        self.config = config or KamelConfig()
        self.tokenizer: Optional[Tokenizer] = None
        self.store: Optional[TrajectoryStore] = None
        self.repository: Optional[ModelRepository] = None
        self.detokenizer: Optional[Detokenizer] = None
        self.constraints: Optional[SpatialConstraints] = None
        self.max_speed_mps: Optional[float] = None
        self._global_model: Optional[MaskedModel] = None
        self._fallback_model: Optional[CountingMaskedLM] = None
        self._training_trajectories: list[Trajectory] = []
        self._gap_threshold_m: Optional[float] = None
        self._fitted = False
        # Quality observability is opt-in (enable_quality_observability):
        # both hooks stay None by default, so the hot paths pay exactly
        # one `is None` branch when disabled.
        self._reference_sketch: Optional[DistributionSketch] = None
        self._drift: Optional[DriftDetector] = None
        self._quality: Optional[QualityTracker] = None
        cfg = self.config
        self.ladder = DegradationLadder.for_config(cfg)
        self.guards = PipelineGuards(
            failure_threshold=cfg.breaker_failure_threshold,
            recovery_s=cfg.breaker_recovery_s,
            retry_attempts=cfg.retry_attempts,
            retry_base_delay_s=cfg.retry_base_delay_s,
            seed=cfg.seed,
        )

    # -- training path ------------------------------------------------------

    def _model_factory(self) -> MaskedModel:
        cfg = self.config
        if cfg.model_backend == "bert":
            return BertMaskedLM(
                config=None,  # sized at fit() time from the vocabulary
                training=TrainingConfig(epochs=cfg.bert_epochs, lr=cfg.bert_lr, seed=cfg.seed),
            )
        return CountingMaskedLM()

    def _build_components(self, cell_edge_m: float) -> None:
        cfg = self.config
        grid = make_grid(cfg.grid_type, cell_edge_m)
        self.tokenizer = Tokenizer(grid)
        self.store = TrajectoryStore(self.tokenizer)
        self.repository = ModelRepository(
            self.tokenizer, self.store, cfg, self._model_factory
        )
        self.detokenizer = Detokenizer(self.tokenizer, cfg)

    def fit(self, trajectories: Sequence[Trajectory]) -> "Kamel":
        """Train the system from scratch on ``trajectories``."""
        if not trajectories:
            raise EmptyInputError("Kamel.fit needs at least one training trajectory")
        cfg = self.config
        with span("kamel.fit", trajectories=len(trajectories), backend=cfg.model_backend):
            with obs.stopwatch("repro.kamel.fit_seconds"):
                cell_edge = cfg.cell_edge_m
                if cfg.auto_tune_cell_size:
                    from repro.core.tuning import tune_cell_size  # avoid import cycle

                    cell_edge = tune_cell_size(list(trajectories), cfg)
                self._build_components(cell_edge)
                self._training_trajectories = []
                self._fitted = True
                self.add_training(trajectories)
        _log.info(
            "fit complete",
            extra={"data": {
                "trajectories": len(trajectories),
                "cell_edge_m": self.tokenizer.grid.edge_length_m,
                "vocabulary": len(self.tokenizer.vocabulary),
                "models": self.repository.num_models if self.repository else 0,
            }},
        )
        return self

    def add_training(self, trajectories: Sequence[Trajectory]) -> None:
        """Ingest additional training data (the paper's enrichment path)."""
        if not self._fitted:
            raise NotFittedError("call fit() before add_training()")
        assert self.tokenizer and self.repository and self.detokenizer
        trajectories = [t for t in trajectories if len(t) >= 2]
        if not trajectories:
            return
        obs.count("repro.kamel.training_trajectories_total", len(trajectories))
        self._training_trajectories.extend(trajectories)

        cfg = self.config
        inferred = infer_max_speed(self._training_trajectories)
        self.max_speed_mps = cfg.max_speed_mps or inferred
        constraints_cls = SpatialConstraints if cfg.use_constraints else PassthroughConstraints
        self.constraints = constraints_cls(self.tokenizer, cfg, self.max_speed_mps)

        sequences = self.tokenizer.tokenize_many(trajectories, grow=True)
        self._update_gap_threshold(sequences)
        if cfg.use_partitioning:
            self.repository.add_training(sequences)
        else:
            # Ablation: one model over everything (Fig. 12-VI "No Part.").
            assert self.store is not None
            self.store.add_many(sequences)
            model = self._model_factory()
            model.fit(
                [s.tokens for s in self.store], len(self.tokenizer.vocabulary)
            )
            self._global_model = model
        # Detokenization metadata is rebuilt over all data: DBSCAN results
        # are not incrementally mergeable and training is offline anyway.
        self.detokenizer.fit(self._training_trajectories)

        # The drift reference sketch follows the same rebuild-over-all
        # policy; it is O(points) and must describe *everything* the
        # models were fit on, including enrichment batches.
        self._reference_sketch = DistributionSketch.from_trajectories(
            self._training_trajectories, self.tokenizer.grid
        )
        if self._drift is not None:
            self._drift.reference = self._reference_sketch

        if cfg.enable_fallback_model:
            # The counting rung's global model: O(tokens) to refit, lives
            # in-process, and therefore survives an open inference circuit
            # or a wedged repository lookup.
            assert self.store is not None
            fallback = CountingMaskedLM()
            fallback.fit(
                [s.tokens for s in self.store], len(self.tokenizer.vocabulary)
            )
            self._fallback_model = fallback

    def _update_gap_threshold(self, sequences) -> None:
        """Floor the gap test at the training data's own token spacing.

        A counting or BERT model trained on 15 s samples has simply never
        seen transitions between adjacent cells the vehicle skipped over;
        demanding finer spacing than the training granularity makes every
        gap unclosable. The paper's metrics score the imputed *polyline*,
        so coarser-but-correct token spacing loses no accuracy.
        """
        steps: list[float] = []
        vocab = self.tokenizer.vocabulary if self.tokenizer else None
        for seq in sequences:
            for a, b in zip(seq.tokens, seq.tokens[1:]):
                if vocab.is_special(a) or vocab.is_special(b):
                    continue
                steps.append(self.tokenizer.token_distance_m(a, b))
        if steps:
            typical = float(np.median(steps))
            self._gap_threshold_m = max(self._gap_threshold_m or 0.0, 1.3 * typical)

    @property
    def gap_threshold_m(self) -> Optional[float]:
        """Training-data-derived floor of the imputation gap test."""
        return self._gap_threshold_m

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    @property
    def name(self) -> str:
        return "KAMEL"

    # -- model selection -------------------------------------------------------

    def _model_for_box(self, box: BoundingBox) -> Optional[MaskedModel]:
        """Repository lookup behind the retry + circuit-breaker guards.

        Raises :class:`CircuitOpenError` when the lookup breaker is open
        and lets exhausted-retry infrastructure faults propagate; the
        ladder loop in :meth:`_impute_segment` turns both into a descent
        to the next rung instead of a lost trajectory.
        """
        if not self.config.use_partitioning:
            return self._global_model
        assert self.repository is not None
        with span("repository.lookup"):
            stored: Optional[StoredModel] = self.guards.guarded_lookup(
                lambda: self.repository.retrieve(box)
            )
        return stored.model if stored is not None else None

    # -- imputation path ----------------------------------------------------------

    def impute(
        self,
        trajectory: Trajectory,
        deadline: Optional[Deadline] = None,
        max_rung: Optional[str] = None,
    ) -> ImputationResult:
        """Densify one sparse trajectory (offline or per-stream-item).

        ``deadline`` caps the whole call; when omitted, one is derived
        from ``config.trajectory_deadline_s`` (if set). An expiring
        deadline degrades remaining segments to cheaper ladder rungs —
        ultimately straight lines — rather than hanging.

        ``max_rung`` caps the *top* of the ladder (brownout control): a
        rung name from :data:`~repro.resilience.ladder.ALL_RUNGS` below
        which every segment must start.  Rungs above the cap are skipped
        with fallback reason ``"brownout"``; ``linear`` is never capped.

        Raises :class:`~repro.errors.QuarantinedInputError` for inputs no
        rung can process (non-finite or absurd coordinates/timestamps).
        """
        if not self._fitted:
            raise NotFittedError("call fit() before impute()")
        assert self.tokenizer and self.detokenizer and self.constraints
        validate_trajectory(trajectory)
        cfg = self.config
        points = trajectory.points
        if len(points) < 2:
            return ImputationResult(trajectory, ())
        if deadline is None and cfg.trajectory_deadline_s is not None:
            deadline = Deadline.after(cfg.trajectory_deadline_s)

        # One request id per impute call; joins an enclosing scope (the
        # streaming service's) so spans and WARNING logs stay correlated.
        with trace_scope():
            with span("impute.trajectory", points=len(points)) as sp:
                with obs.stopwatch("repro.kamel.impute_seconds"):
                    result = self._impute_points(
                        trajectory, points, cfg, deadline, max_rung
                    )
                sp.set(
                    segments=result.num_segments,
                    failed=result.num_failed,
                    degraded=result.num_degraded,
                    model_calls=result.total_model_calls,
                )
        obs.count("repro.kamel.trajectories_total")
        obs.count("repro.kamel.segments_total", len(points) - 1)
        obs.count("repro.kamel.segments_imputed_total", result.num_segments)
        obs.count("repro.kamel.segments_failed_total", result.num_failed)
        obs.count("repro.kamel.segments_degraded_total", result.num_degraded)
        obs.count("repro.kamel.model_calls_total", result.total_model_calls)
        # The gauges track *windowed* rates so long-lived services reflect
        # recent behavior; cumulative ratios remain derivable from the
        # counters. Failure = linear rung only (the paper's definition);
        # degraded = any rung below full — same split as StreamStats.
        windowed = obs.monitors().failure.extend(result.num_failed, result.num_segments)
        obs.gauge("repro.kamel.failure_rate").set(windowed)
        degraded = obs.monitors().degraded.extend(
            result.num_degraded, result.num_segments
        )
        obs.gauge("repro.kamel.degraded_rate").set(degraded)
        if self._drift is not None:
            self._drift.observe(trajectory)
        return result

    def _impute_points(
        self,
        trajectory: Trajectory,
        points: Sequence[Point],
        cfg: KamelConfig,
        deadline: Optional[Deadline] = None,
        max_rung: Optional[str] = None,
    ) -> ImputationResult:
        # Per Section 4.1: pick the model for the whole trajectory first;
        # segments it does not cover fall back to per-segment retrieval
        # (the paper's "split into sub-trajectories").
        try:
            trajectory_model = self._model_for_box(trajectory.bbox())
        except Exception:
            # Lookup circuit open or an injected/infrastructure fault that
            # outlived the retries: per-segment rungs retry and descend.
            trajectory_model = None

        out_points: list[Point] = [points[0]]
        outcomes: list[SegmentOutcome] = []
        reference_speed: Optional[float] = None
        for i in range(len(points) - 1):
            a, b = points[i], points[i + 1]
            if a.distance_to(b) <= cfg.maxgap_m:
                out_points.append(b)
                reference_speed = _segment_speed([a, b])
                continue
            prev_pt = points[i - 1] if i > 0 else None
            next_pt = points[i + 2] if i + 2 < len(points) else None
            seg_deadline = deadline
            if cfg.segment_deadline_s is not None:
                base = deadline if deadline is not None else Deadline.unlimited()
                seg_deadline = base.sub_budget(cfg.segment_deadline_s)
            interior, outcome = self._impute_segment(
                i, a, b, prev_pt, next_pt, trajectory_model, reference_speed,
                seg_deadline, max_rung,
            )
            if outcome.failed:
                _log.warning(
                    "segment fell back to the linear line",
                    extra={"data": {
                        "trajectory": trajectory.traj_id,
                        "segment": i,
                        "gap_m": round(a.distance_to(b), 1),
                        "model_calls": outcome.model_calls,
                    }},
                )
            out_points.extend(interior)
            out_points.append(b)
            outcomes.append(outcome)
            if not outcome.failed:
                reference_speed = _segment_speed([a, *interior, b])
        return ImputationResult(
            trajectory.with_points(out_points), tuple(outcomes)
        )

    def _impute_segment(
        self,
        index: int,
        a: Point,
        b: Point,
        prev_pt: Optional[Point],
        next_pt: Optional[Point],
        trajectory_model: Optional[MaskedModel],
        reference_speed: Optional[float] = None,
        deadline: Optional[Deadline] = None,
        max_rung: Optional[str] = None,
    ) -> tuple[list[Point], SegmentOutcome]:
        assert self.tokenizer and self.detokenizer and self.constraints
        cfg = self.config
        vocab = self.tokenizer.vocabulary

        def linear(reason: str, calls: int = 0) -> tuple[list[Point], SegmentOutcome]:
            obs.count(f"repro.kamel.fallback.{reason}_total")
            DegradationLadder.record(RUNG_LINEAR)
            interior = _linear_interior(a, b, cfg.maxgap_m)
            outcome = SegmentOutcome(
                index, True, calls, len(interior),
                rung=RUNG_LINEAR, fallback_reason=reason,
            )
            if self._quality is not None:
                self._observe_segment_quality(outcome, (), interior)
            return interior, outcome

        with span("tokenize"):
            source = self.tokenizer.token_for_point(a)
            dest = self.tokenizer.token_for_point(b)
            if vocab.is_special(source) or vocab.is_special(dest):
                return linear("endpoint_unseen")

            prev_token = None
            if prev_pt is not None:
                t = self.tokenizer.token_for_point(prev_pt)
                if not vocab.is_special(t) and t != source:
                    prev_token = t
            next_token = None
            if next_pt is not None:
                t = self.tokenizer.token_for_point(next_pt)
                if not vocab.is_special(t) and t != dest:
                    next_token = t

        ctx = GapContext(
            source=source,
            dest=dest,
            source_time=a.t,
            dest_time=b.t,
            prev_token=prev_token,
            next_token=next_token,
            reference_speed_mps=reference_speed,
        )

        # Walk the degradation ladder top-down. Any rung error — deadline,
        # open circuit, injected fault, exhausted search — descends to the
        # next rung; the linear rung always succeeds, so no input is ever
        # dropped or left hanging.
        calls_spent = 0
        reason: Optional[str] = None
        for rung in self.ladder.rungs:
            if rung == RUNG_LINEAR:
                break
            if not DegradationLadder.allows(rung, max_rung):
                # Brownout cap: the pool told us to skip the expensive
                # rungs; the segment starts lower on the ladder instead.
                obs.count("repro.resilience.brownout_skips_total")
                reason = reason or "brownout"
                continue
            if deadline is not None and deadline.expired:
                obs.count("repro.resilience.deadline_exceeded_total")
                reason = "deadline"
                break
            try:
                result = self._run_rung(rung, ctx, a, b, trajectory_model, deadline)
            except DeadlineExceeded:
                obs.count("repro.resilience.deadline_exceeded_total")
                reason = "deadline"
                break
            except CircuitOpenError:
                reason = reason or "circuit_open"
                continue
            except Exception as exc:
                # An infrastructure fault (injected or real) that outlived
                # the retries. Degrade, never propagate past the ladder.
                obs.count("repro.resilience.rung_errors_total")
                _log.warning(
                    "ladder rung raised; descending",
                    extra={"data": {
                        "rung": rung, "segment": index,
                        "error": type(exc).__name__,
                    }},
                )
                reason = reason or "rung_error"
                continue
            if result is None:  # rung has no usable model here
                reason = reason or "no_model"
                continue
            calls_spent += result.model_calls
            if result.failed:
                reason = reason or "search_failed"
                continue

            with span("detokenize"):
                interior_points = self.detokenizer.detokenize_interior(
                    result.interior or (), a, b
                )
            interior_points = _assign_times(a, b, interior_points)
            DegradationLadder.record(rung)
            # Detokenization is 1:1 token -> point, so the per-token
            # scores carry over; the length check guards the invariant.
            point_confs = result.point_confidences
            if len(point_confs) != len(interior_points):
                point_confs = ()
            outcome = SegmentOutcome(
                index,
                False,
                calls_spent,
                len(interior_points),
                confidence=result.confidence,
                rung=rung,
                fallback_reason=reason if rung != RUNG_FULL else None,
                point_confidences=point_confs,
            )
            if self._quality is not None:
                self._observe_segment_quality(
                    outcome, result.interior or (), interior_points
                )
            return interior_points, outcome
        return linear(reason or "search_failed", calls_spent)

    def _run_rung(
        self,
        rung: str,
        ctx: GapContext,
        a: Point,
        b: Point,
        trajectory_model: Optional[MaskedModel],
        deadline: Optional[Deadline],
    ) -> Optional[SegmentImputation]:
        """Attempt one ladder rung; ``None`` when its model is unavailable."""
        assert self.tokenizer and self.constraints
        cfg = self.config
        if rung in (RUNG_FULL, RUNG_REDUCED_BEAM):
            model = trajectory_model
            if model is None:
                model = self._model_for_box(BoundingBox.from_points([a, b]))
            if model is None or not model.is_fitted:
                return None
            rung_cfg = cfg
            if rung == RUNG_REDUCED_BEAM:
                rung_cfg = replace(
                    cfg,
                    beam_size=min(cfg.beam_size, cfg.degraded_beam_size),
                    max_model_calls=min(cfg.max_model_calls, cfg.degraded_max_model_calls),
                )
            imputer = make_segment_imputer(
                self.guards.guard_model(model),
                self.tokenizer,
                self.constraints,
                rung_cfg,
                self._gap_threshold_m,
            )
        elif rung == RUNG_COUNTING:
            model = self._fallback_model
            if model is None or not model.is_fitted:
                return None
            # Deliberately *unguarded*: the counting model is in-process
            # state, not a remote dependency, so it must keep serving while
            # the inference circuit is open.
            rung_cfg = replace(
                cfg, max_model_calls=min(cfg.max_model_calls, cfg.degraded_max_model_calls)
            )
            imputer = IterativeImputer(
                model, self.tokenizer, self.constraints, rung_cfg, self._gap_threshold_m
            )
        else:  # pragma: no cover - ladder construction forbids unknown rungs
            return None
        return imputer.impute_segment(ctx, deadline)

    # -- batch and streaming fronts ------------------------------------------------

    def impute_batch(self, trajectories: Sequence[Trajectory]) -> list[ImputationResult]:
        """Offline bulk mode."""
        return [self.impute(t) for t in trajectories]

    def impute_stream(
        self, trajectories: Iterable[Trajectory]
    ) -> Iterator[ImputationResult]:
        """Online mode: lazily impute an incoming trajectory stream."""
        for trajectory in trajectories:
            yield self.impute(trajectory)

    # -- quality observability ---------------------------------------------------

    @property
    def reference_sketch(self) -> Optional[DistributionSketch]:
        """The training-time distribution sketch (drift baseline)."""
        return self._reference_sketch

    @property
    def drift_detector(self) -> Optional[DriftDetector]:
        """The online drift detector (None until quality obs is enabled)."""
        return self._drift

    @property
    def quality_tracker(self) -> Optional[QualityTracker]:
        """The calibration/spatial tracker (None until quality obs is enabled)."""
        return self._quality

    def enable_quality_observability(
        self,
        drift_limit: Optional[float] = DEFAULT_DRIFT_LIMIT,
        calibration_limit: Optional[float] = None,
        drift_window: int = DEFAULT_DRIFT_WINDOW,
        min_observations: int = 8,
    ) -> "Kamel":
        """Turn on drift detection and confidence-calibration tracking.

        Off by default: the impute hot paths then pay exactly one ``is
        None`` branch. Enabled, every impute call folds the input
        trajectory into a rolling drift window scored against the
        training reference sketch, and every imputed segment feeds the
        reliability ledger and per-cell quality map
        (:mod:`repro.obs.quality`). ``drift_limit`` (unseen-cell mass:
        the share of recent serving points landing in never-trained
        cells) and ``calibration_limit`` (windowed |confidence −
        accuracy|) install
        edge-triggered thresholds on the ``drift``/``calibration``
        monitors, so sustained drift or miscalibration flips ``/healthz``
        to ``degraded``; pass ``None`` to track without alerting. The
        state is published under the *current* metrics registry, where
        the ``/quality`` endpoint reads it.
        """
        if not self._fitted:
            raise NotFittedError("call fit() before enable_quality_observability()")
        assert self.tokenizer is not None
        if self._reference_sketch is None or self._reference_sketch.total_points == 0:
            # Loaded systems may predate drift.json: rebuild the sketch
            # from the token store (exact cells, centroid-coarse features).
            if self._training_trajectories:
                self._reference_sketch = DistributionSketch.from_trajectories(
                    self._training_trajectories, self.tokenizer.grid
                )
            elif self.store is not None:
                self._reference_sketch = DistributionSketch.from_token_store(
                    self.store, self.tokenizer
                )
        if self._reference_sketch is None:
            raise NotFittedError("no training data to build a drift reference from")
        self._drift = DriftDetector(
            self._reference_sketch,
            self.tokenizer.grid,
            window=drift_window,
            min_observations=min_observations,
        )
        self._quality = QualityTracker()
        state = quality_state()
        state.tracker = self._quality
        state.drift = self._drift
        hub = obs.monitors()
        if drift_limit is not None:
            hub.drift.add_threshold(
                drift_limit,
                _on_quality_alert,
                min_count=min_observations,
                on_clear=_on_quality_cleared,
            )
        if calibration_limit is not None:
            hub.calibration.add_threshold(
                calibration_limit,
                _on_quality_alert,
                on_clear=_on_quality_cleared,
            )
        _log.info(
            "quality observability enabled",
            extra={"data": {
                "reference_cells": self._reference_sketch.num_cells,
                "drift_window": drift_window,
                "drift_limit": drift_limit,
                "calibration_limit": calibration_limit,
            }},
        )
        return self

    def _observe_segment_quality(
        self, outcome: SegmentOutcome, tokens: Sequence[int], points: Sequence[Point]
    ) -> None:
        """Feed one segment to the quality tracker (enabled path only)."""
        assert self.tokenizer is not None and self._quality is not None
        grid = self.tokenizer.grid
        cells = [grid.cell_of(p) for p in points]
        snap: Optional[float] = None
        if tokens and len(tokens) == len(points):
            total = sum(
                p.distance_to(self.tokenizer.centroid_of_token(t))
                for t, p in zip(tokens, points)
            )
            snap = total / len(points)
        self._quality.observe_segment(outcome, cells, snap_distance_m=snap)

    # -- persistence -----------------------------------------------------------

    def save(self, directory) -> None:
        """Persist the trained system to ``directory`` (see repro.io)."""
        from repro.io import save_kamel  # deferred: io imports this module

        save_kamel(self, directory)

    @classmethod
    def load(cls, directory) -> "Kamel":
        """Restore a system persisted with :meth:`save`."""
        from repro.io import load_kamel

        return load_kamel(directory)

    def __repr__(self) -> str:
        state = "fitted" if self._fitted else "unfitted"
        return f"Kamel({state}, backend={self.config.model_backend!r})"


def _on_quality_alert(monitor, value: float) -> None:
    _log.warning(
        "quality monitor breached",
        extra={"data": {"monitor": monitor.name, "value": round(value, 4)}},
    )


def _on_quality_cleared(monitor, value: float) -> None:
    _log.info(
        "quality monitor recovered",
        extra={"data": {"monitor": monitor.name, "value": round(value, 4)}},
    )


def _segment_speed(points: list[Point]) -> Optional[float]:
    """Average travel speed over a point chain (None without timestamps)."""
    if len(points) < 2 or points[0].t is None or points[-1].t is None:
        return None
    duration = points[-1].t - points[0].t
    if duration <= 0:
        return None
    length = sum(u.distance_to(v) for u, v in zip(points, points[1:]))
    return length / duration


def _linear_interior(a: Point, b: Point, maxgap_m: float) -> list[Point]:
    """Straight-line fallback points at <= maxgap spacing (exclusive ends)."""
    distance = a.distance_to(b)
    n_intervals = max(1, int(math.ceil(distance / maxgap_m)))
    return [interpolate(a, b, k / n_intervals) for k in range(1, n_intervals)]


def _assign_times(a: Point, b: Point, interior: list[Point]) -> list[Point]:
    """Timestamp imputed points by cumulative arc length between a and b."""
    if a.t is None or b.t is None or not interior:
        return interior
    path = [a] + interior + [b]
    cumulative = [0.0]
    for u, v in zip(path, path[1:]):
        cumulative.append(cumulative[-1] + u.distance_to(v))
    total = cumulative[-1]
    if total == 0.0:
        return interior
    span = b.t - a.t
    return [
        p.with_time(a.t + span * (cumulative[k + 1] / total))
        for k, p in enumerate(interior)
    ]
