"""The raw trajectory store backing the model repository (Section 4).

The paper keeps "a simple trajectory store" of every tokenized training
trajectory so the partitioning module can re-read an area's trajectories
when (re)building models. This in-memory implementation indexes sequences
by bounding box and answers the two queries maintenance needs: "all
sequences fully inside region R" and "total token count inside R".
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import EmptyInputError
from repro.geo import BoundingBox
from repro.core.tokenization import Tokenizer, TokenSequence


class TrajectoryStore:
    """Holds tokenized training trajectories with bbox metadata."""

    def __init__(self, tokenizer: Tokenizer) -> None:
        self._tokenizer = tokenizer
        self._sequences: list[TokenSequence] = []
        self._bboxes: list[Optional[BoundingBox]] = []
        self._token_count = 0

    def add(self, sequence: TokenSequence) -> None:
        """Store one tokenized trajectory."""
        self._sequences.append(sequence)
        box: Optional[BoundingBox] = None
        if len(sequence) > 0:
            try:
                box = self._tokenizer.sequence_bbox(sequence)
            except EmptyInputError:
                box = None  # all-special sequence: unplaceable but kept
        self._bboxes.append(box)
        self._token_count += len(sequence)

    def add_many(self, sequences: list[TokenSequence]) -> None:
        for seq in sequences:
            self.add(seq)

    def __len__(self) -> int:
        return len(self._sequences)

    def __iter__(self) -> Iterator[TokenSequence]:
        return iter(self._sequences)

    @property
    def total_tokens(self) -> int:
        return self._token_count

    def bbox(self) -> BoundingBox:
        """The bounding box of everything stored."""
        boxes = [b for b in self._bboxes if b is not None]
        if not boxes:
            raise EmptyInputError("trajectory store is empty")
        return BoundingBox.union_all(boxes)

    def sequences_within(self, region: BoundingBox) -> list[TokenSequence]:
        """Sequences whose bounding box is fully enclosed by ``region``."""
        return [
            seq
            for seq, box in zip(self._sequences, self._bboxes)
            if box is not None and region.contains_box(box)
        ]

    def tokens_within(self, region: BoundingBox) -> int:
        """Number of tokens whose cell centroid lies in ``region``.

        Counted token-by-token (not via whole-trajectory containment), as
        the pyramid thresholds of Section 4.1 are per-cell token counts.
        """
        vocab = self._tokenizer.vocabulary
        count = 0
        for seq, box in zip(self._sequences, self._bboxes):
            if box is None or not region.intersects(box):
                continue
            for token in seq.tokens:
                if vocab.is_special(token):
                    continue
                if region.contains_point(self._tokenizer.centroid_of_token(token)):
                    count += 1
        return count
