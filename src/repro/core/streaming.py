"""The online imputation service (paper Section 2, "online mode").

:class:`StreamingImputationService` is the deployable wrapper around a
trained :class:`~repro.core.kamel.Kamel`: it applies a cleaning chain to
every incoming trajectory (outlier removal, optional smoothing, trip
splitting), imputes each resulting trip against the precomputed models,
and keeps running operational counters. Imputation never retrains — the
paper's scalability argument — but fully processed trajectories can be
fed back as training data in periodic offline batches via
:meth:`enqueue_for_training` / :meth:`flush_training`.

Operationally the service can expose itself: set
:attr:`StreamingConfig.metrics_port` and it starts an
:class:`~repro.obs.server.ObservabilityServer` serving ``/metrics``
(Prometheus), ``/healthz``, ``/quality``, and ``/spans``; set the
``alert_*`` thresholds and the rolling quality monitors fire WARNING
logs when the windowed failure rate, degraded rate, processing latency,
input drift, or confidence calibration worsens.
Every :meth:`process` call runs under its own trace id, stamped on all
spans and log lines it produces.

Durability: point :attr:`StreamingConfig.journal_path` at a file and
every input is journaled (write-ahead) before processing and marked done
after, so a crash mid-batch loses nothing — :meth:`recover` on the
restarted service reprocesses exactly the unfinished work. Point
:attr:`StreamingConfig.quarantine_path` at a file and inputs no ladder
rung can process (non-finite coordinates, absurd values) are
dead-lettered there with their reason instead of poisoning the stream.
The invariant the chaos suite asserts: every submitted trajectory is
processed, quarantined, or journal-pending — never silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.core.kamel import Kamel
from repro.core.result import ImputationResult
from repro.errors import NotFittedError, QuarantinedInputError
from repro.geo import Trajectory
from repro.obs import instrument as obs
from repro.obs.logging import get_logger
from repro.obs.monitor import RollingMonitor
from repro.obs.server import ObservabilityServer
from repro.obs.tracing import span, trace_scope
from repro.resilience.journal import QuarantineStore, StreamJournal
from repro.resilience.validate import validate_trajectory

from repro.preprocess import KalmanSmoother, remove_outliers, split_by_time_gap

_log = get_logger("core.streaming")


@dataclass
class StreamStats:
    """Running counters over everything the service processed."""

    trajectories_in: int = 0
    trips_out: int = 0
    points_in: int = 0
    points_out: int = 0
    segments: int = 0
    failed_segments: int = 0
    degraded_segments: int = 0
    model_calls: int = 0
    processing_seconds: float = 0.0
    quarantined: int = 0
    journal_replayed: int = 0

    @property
    def failure_rate(self) -> float:
        """Share of segments resolved by the *linear* ladder rung only —
        the paper's failure definition, and the same numerator the
        windowed ``repro.kamel.failure_rate`` gauge uses (the cumulative
        and windowed views agree on what counts as a failure)."""
        if self.segments == 0:
            return 0.0
        return self.failed_segments / self.segments

    @property
    def degraded_rate(self) -> float:
        """Share of segments resolved below the *top* ladder rung
        (reduced beam, counting, or linear) — the cumulative counterpart
        of the windowed ``repro.kamel.degraded_rate`` gauge."""
        if self.segments == 0:
            return 0.0
        return self.degraded_segments / self.segments

    @property
    def densification_ratio(self) -> float:
        if self.points_in == 0:
            return 0.0
        return self.points_out / self.points_in

    @property
    def mean_latency_ms(self) -> float:
        if self.trips_out == 0:
            return 0.0
        return self.processing_seconds / self.trips_out * 1000.0


@dataclass(frozen=True)
class StreamingConfig:
    """What the ingest pipeline does before imputation."""

    max_speed_mps: float = 60.0
    """Outlier gate for raw fixes."""
    smooth: bool = False
    """Apply Kalman smoothing to each incoming trajectory."""
    trip_gap_s: float = 600.0
    """Recording pauses longer than this split the input into trips."""
    min_trip_points: int = 2
    training_batch_size: int = 50
    """`enqueue_for_training` triggers an offline batch at this size."""
    metrics_port: Optional[int] = None
    """Serve /metrics, /healthz, /spans on this localhost port (0 picks a
    free ephemeral port); None (default) starts no endpoint."""
    alert_failure_rate: Optional[float] = None
    """WARN when the windowed segment failure rate exceeds this."""
    alert_degraded_rate: Optional[float] = None
    """WARN when the windowed below-top-rung segment rate exceeds this."""
    alert_latency_s: Optional[float] = None
    """WARN when the windowed mean process() latency exceeds this (seconds)."""
    alert_drift_score: Optional[float] = None
    """WARN when the windowed headline drift score (unseen-cell mass of
    serving traffic vs the training sketch) exceeds this. The monitor is
    only fed when the system has quality observability enabled
    (:meth:`Kamel.enable_quality_observability`)."""
    alert_calibration_gap: Optional[float] = None
    """WARN when the windowed |confidence - realized accuracy| exceeds
    this (fed by the quality tracker, like ``alert_drift_score``)."""
    alert_min_observations: int = 20
    """Observations a rolling window needs before its alerts can fire."""
    journal_path: Optional[str] = None
    """Write-ahead journal file (JSONL). None (default) disables the
    journal; with it set, :meth:`StreamingImputationService.recover`
    resumes exactly the work a crash left unfinished."""
    journal_sync: bool = False
    """fsync the journal after every record (durable across power loss,
    measurably slower)."""
    quarantine_path: Optional[str] = None
    """Dead-letter file (JSONL) for inputs no ladder rung can process.
    None (default) logs and drops them instead."""


class StreamingImputationService:
    """Clean -> split -> impute, one incoming trajectory at a time."""

    def __init__(
        self,
        system: Kamel,
        config: Optional[StreamingConfig] = None,
    ) -> None:
        if not system.is_fitted:
            raise NotFittedError("the service needs a trained Kamel system")
        self.system = system
        self.config = config or StreamingConfig()
        self.stats = StreamStats()
        self._smoother = KalmanSmoother()
        self._training_queue: list[Trajectory] = []
        self.active_alerts: set[str] = set()
        self._wire_alerts()
        self.chaos = None  # Optional[repro.resilience.chaos.ChaosMonkey]
        self.journal: Optional[StreamJournal] = None
        if self.config.journal_path is not None:
            self.journal = StreamJournal(
                self.config.journal_path, sync=self.config.journal_sync
            )
        self.quarantine: Optional[QuarantineStore] = None
        if self.config.quarantine_path is not None:
            self.quarantine = QuarantineStore(self.config.quarantine_path)
        self.metrics_server: Optional[ObservabilityServer] = None
        if self.config.metrics_port is not None:
            self.metrics_server = ObservabilityServer(
                port=self.config.metrics_port
            ).start()

    # -- telemetry endpoint & alerts ---------------------------------------

    @property
    def metrics_url(self) -> Optional[str]:
        """Base URL of the running telemetry endpoint (None if disabled)."""
        if self.metrics_server is None:
            return None
        return self.metrics_server.url

    def close(self) -> None:
        """Stop the telemetry endpoint (idempotent; the service remains usable)."""
        if self.metrics_server is not None:
            self.metrics_server.stop()
            self.metrics_server = None

    def __enter__(self) -> "StreamingImputationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _wire_alerts(self) -> None:
        """Attach the configured thresholds to the rolling monitors.

        Alerts are edge-triggered: one WARNING when a windowed value
        crosses its limit, one INFO when it recovers; ``active_alerts``
        holds the currently-breached monitor names so callers can shed
        load or stop enqueueing while degraded.
        """
        cfg = self.config
        hub = obs.monitors()
        pairs = []
        if cfg.alert_failure_rate is not None:
            pairs.append((hub.failure, cfg.alert_failure_rate))
        if cfg.alert_degraded_rate is not None:
            pairs.append((hub.degraded, cfg.alert_degraded_rate))
        if cfg.alert_latency_s is not None:
            pairs.append((hub.latency, cfg.alert_latency_s))
        if cfg.alert_drift_score is not None:
            pairs.append((hub.drift, cfg.alert_drift_score))
        if cfg.alert_calibration_gap is not None:
            pairs.append((hub.calibration, cfg.alert_calibration_gap))
        for monitor, limit in pairs:
            monitor.add_threshold(
                limit,
                self._on_alert,
                min_count=cfg.alert_min_observations,
                on_clear=self._on_alert_cleared,
            )

    def _on_alert(self, monitor: RollingMonitor, value: float) -> None:
        self.active_alerts.add(monitor.name)
        obs.count("repro.streaming.alerts_total")
        _log.warning(
            "rolling monitor above threshold",
            extra={"data": {
                "monitor": monitor.name,
                "value": round(value, 6),
                "window": monitor.count,
            }},
        )

    def _on_alert_cleared(self, monitor: RollingMonitor, value: float) -> None:
        self.active_alerts.discard(monitor.name)
        _log.info(
            "rolling monitor recovered",
            extra={"data": {"monitor": monitor.name, "value": round(value, 6)}},
        )

    @property
    def degraded(self) -> bool:
        """Whether any configured rolling-monitor threshold is breached."""
        return bool(self.active_alerts)

    # -- the hot path -----------------------------------------------------

    def _clean(self, trajectory: Trajectory) -> list[Trajectory]:
        cfg = self.config
        cleaned = remove_outliers(trajectory, cfg.max_speed_mps)
        if cfg.smooth:
            cleaned = self._smoother.smooth(cleaned)
        return split_by_time_gap(cleaned, cfg.trip_gap_s, cfg.min_trip_points)

    def process(
        self,
        trajectory: Trajectory,
        deadline=None,
        max_rung: Optional[str] = None,
    ) -> list[ImputationResult]:
        """Impute one incoming trajectory (possibly several trips).

        Durability contract: with a journal configured, the input is
        journaled *before* any work and marked done *after* all of it —
        a crash anywhere in between leaves the entry pending for
        :meth:`recover`. An input the pipeline cannot process
        (:class:`~repro.errors.QuarantinedInputError`) is dead-lettered
        and returns ``[]``; it never raises out of this method, and it
        counts as done in the journal.

        ``deadline`` (a :class:`~repro.resilience.deadline.Deadline`)
        bounds the whole call — the serving tier propagates per-request
        deadlines here so a late request finishes on cheaper ladder
        rungs instead of missing entirely.  ``max_rung`` caps the top of
        the degradation ladder (brownout control); both thread straight
        into :meth:`Kamel.impute`.

        The wall time recorded into ``StreamStats.processing_seconds`` and
        the ``repro.streaming.process_seconds`` histogram come from the
        same stopwatch, so the legacy fields and the registry agree. The
        whole call runs under one request trace id, inherited by the
        per-trip ``Kamel.impute`` scopes.
        """
        if self.journal is not None:
            self.journal.begin(trajectory)
        if self.chaos is not None:
            # May raise InjectedCrash — deliberately *after* the journal
            # write, simulating death mid-processing: the entry stays
            # pending and recover() picks it up.
            self.chaos.on_process()
        with trace_scope():
            with span("streaming.process", points=len(trajectory)):
                with obs.stopwatch("repro.streaming.process_seconds") as sw:
                    self.stats.trajectories_in += 1
                    self.stats.points_in += len(trajectory)
                    results: list[ImputationResult] = []
                    try:
                        # Validate the raw input before cleaning: NaN/inf
                        # coordinates would silently confuse the outlier
                        # filter's distance math instead of failing typed.
                        validate_trajectory(trajectory)
                        for trip in self._clean(trajectory):
                            result = self.system.impute(
                                trip, deadline=deadline, max_rung=max_rung
                            )
                            results.append(result)
                            self.stats.trips_out += 1
                            self.stats.points_out += len(result.trajectory)
                            self.stats.segments += result.num_segments
                            self.stats.failed_segments += result.num_failed
                            self.stats.degraded_segments += result.num_degraded
                            self.stats.model_calls += result.total_model_calls
                    except QuarantinedInputError as exc:
                        self._quarantine(trajectory, exc.reason)
                        results = []
        self.stats.processing_seconds += sw.seconds
        obs.monitors().latency.observe(sw.seconds)
        obs.count("repro.streaming.trajectories_in_total")
        obs.count("repro.streaming.points_in_total", len(trajectory))
        obs.count("repro.streaming.trips_out_total", len(results))
        obs.count(
            "repro.streaming.points_out_total",
            sum(len(r.trajectory) for r in results),
        )
        if self.journal is not None:
            self.journal.done(trajectory.traj_id)
        return results

    def _quarantine(self, trajectory: Trajectory, reason: str) -> None:
        self.stats.quarantined += 1
        obs.count("repro.streaming.quarantined_total")
        if self.quarantine is not None:
            self.quarantine.add(trajectory, reason)
        else:
            _log.warning(
                "input dropped (no quarantine store configured)",
                extra={"data": {"trajectory": trajectory.traj_id, "reason": reason}},
            )

    # -- crash recovery ----------------------------------------------------

    def recover(self) -> list[ImputationResult]:
        """Reprocess the work a crash left unfinished (call before new
        traffic on a restarted service).

        Reads the write-ahead journal, replays every begun-but-not-done
        input through the normal :meth:`process` path (journaling,
        quarantine, and stats included), and returns the results in the
        original submission order. Imputation is deterministic, so a
        replayed input produces the same output the crashed process would
        have. No journal configured — nothing to do.
        """
        if self.journal is None:
            return []
        pending = self.journal.pending()
        if not pending:
            return []
        _log.info(
            "recovering unfinished work from the journal",
            extra={"data": {"pending": len(pending)}},
        )
        results: list[ImputationResult] = []
        for trajectory in pending:
            obs.count("repro.streaming.journal_replayed_total")
            self.stats.journal_replayed += 1
            results.extend(self.process(trajectory))
        return results

    def process_stream(
        self, trajectories: Iterable[Trajectory]
    ) -> Iterator[ImputationResult]:
        """Lazily process an endless feed."""
        for trajectory in trajectories:
            yield from self.process(trajectory)

    # -- offline enrichment ------------------------------------------------

    def enqueue_for_training(self, trajectory: Trajectory) -> bool:
        """Queue a (dense) trajectory for the next offline training batch.

        Returns True when the queue reached the batch size and was flushed
        into :meth:`repro.core.kamel.Kamel.add_training` — the paper's
        "scheduled as a background process for a batch of new
        trajectories".
        """
        self._training_queue.append(trajectory)
        if len(self._training_queue) >= self.config.training_batch_size:
            self.flush_training()
            return True
        return False

    def flush_training(self) -> int:
        """Run the queued offline batch now; returns its size."""
        batch, self._training_queue = self._training_queue, []
        if batch:
            self.system.add_training(batch)
            obs.count("repro.streaming.training_flushes_total")
            _log.info(
                "offline training batch flushed",
                extra={"data": {"batch_size": len(batch)}},
            )
        return len(batch)

    @property
    def pending_training(self) -> int:
        return len(self._training_queue)
