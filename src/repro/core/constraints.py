"""Spatial constraints on model output (paper Section 5).

Three filters applied to every batch of candidate tokens coming out of the
masked model before the multipoint-imputation module may use them:

* **speed ellipse** — a candidate must lie inside the ellipse whose foci
  are the segment end tokens S and D and whose distance sum is what the
  maximum speed allows within the segment's time span (Section 5.1);
* **direction cones** — a candidate must not fall within the configured
  angle of the direction from S back toward its previous token, nor of
  the direction from D onward toward its next token (Section 5.1);
* **cycle prevention** — inserting the candidate must not create a
  repeated consecutive token block of length up to ``x`` (Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.config import KamelConfig
from repro.core.tokenization import Tokenizer
from repro.geo import Point
from repro.geo.point import angle_difference
from repro.mlm.base import TokenProb
from repro.obs import instrument as obs


@dataclass(frozen=True)
class GapContext:
    """Everything the constraints need to know about one segment.

    ``source``/``dest`` are the segment end tokens (S and D in the paper's
    figures); ``prev_token``/``next_token`` are the trajectory tokens just
    before S and just after D (t1 and t2), when they exist. Times are the
    raw GPS timestamps of the segment endpoints.
    """

    source: int
    dest: int
    source_time: Optional[float] = None
    dest_time: Optional[float] = None
    prev_token: Optional[int] = None
    next_token: Optional[int] = None
    reference_speed_mps: Optional[float] = None
    """Observed speed of the preceding imputed segment, for the paper's
    adaptive speed-constraint variant (``KamelConfig.speed_mode``)."""


def creates_cycle(tokens: Sequence[int], insert_pos: int, candidate: int, window: int) -> bool:
    """Would inserting ``candidate`` after ``tokens[insert_pos]`` repeat a block?

    Checks every pair of adjacent equal blocks of length 1..``window`` that
    includes the inserted token — the paper's "sequence of the last x
    tokens are repeated" test, applied locally around the insertion point
    (tokens elsewhere are unchanged, so no new cycle can appear there).
    """
    new = list(tokens[: insert_pos + 1]) + [candidate] + list(tokens[insert_pos + 1 :])
    inserted_at = insert_pos + 1
    n = len(new)
    for block in range(1, window + 1):
        # Two adjacent blocks occupy [start, start+2*block); consider every
        # placement that covers the inserted index.
        lo = max(0, inserted_at - 2 * block + 1)
        hi = min(inserted_at, n - 2 * block)
        for start in range(lo, hi + 1):
            first = new[start : start + block]
            second = new[start + block : start + 2 * block]
            if first == second:
                return True
    return False


_REJECTION_COUNTERS = (
    "special",
    "speed_ellipse",
    "local_detour",
    "length_budget",
    "direction_cone",
    "cycle",
)


def _record_filter(n_in: int, n_out: int, rejected: dict[str, int]) -> None:
    """Flush one filter call's tallies into the metrics registry."""
    obs.count("repro.constraints.candidates_in_total", n_in)
    obs.count("repro.constraints.candidates_out_total", n_out)
    for reason, n in rejected.items():
        if n:
            obs.count(f"repro.constraints.rejected.{reason}_total", n)
    # Windowed rejection ratio for the rolling quality monitors: each
    # candidate contributes one 0/1 bit, so the window weights filter
    # calls by how many candidates they actually saw.
    obs.monitors().rejection.extend(n_in - n_out, n_in)


class SpatialConstraints:
    """Applies the Section 5 filters to candidate tokens."""

    def __init__(
        self,
        tokenizer: Tokenizer,
        config: KamelConfig,
        max_speed_mps: float,
    ) -> None:
        if max_speed_mps <= 0:
            raise ValueError(f"max_speed_mps must be positive, got {max_speed_mps!r}")
        self.tokenizer = tokenizer
        self.config = config
        self.max_speed_mps = max_speed_mps

    # -- individual constraints -------------------------------------------

    def ellipse_distance_sum(self, ctx: GapContext) -> float:
        """The speed-ellipse bound for this segment (meters).

        ``max_speed * TimeDiff(S, D)`` per the paper, with a slack factor
        and a geometric floor (the straight-line distance plus a couple of
        cells) so zero/short time differences never exclude everything.
        """
        s_pt = self.tokenizer.centroid_of_token(ctx.source)
        d_pt = self.tokenizer.centroid_of_token(ctx.dest)
        straight = s_pt.distance_to(d_pt)
        floor = max(
            self.config.ellipse_min_sum_m,
            straight + 2.0 * self.tokenizer.grid.centroid_spacing_m,
        )
        if ctx.source_time is None or ctx.dest_time is None:
            return floor
        time_diff = abs(ctx.dest_time - ctx.source_time)
        speed_bound = self.max_speed_mps
        if (
            self.config.speed_mode == "adaptive"
            and ctx.reference_speed_mps is not None
            and ctx.reference_speed_mps > 0
        ):
            # The paper's alternative bound: the preceding segment's speed
            # times a conservative factor, never exceeding the fleet-wide
            # maximum (a traffic jam should tighten, not loosen, physics).
            speed_bound = min(
                self.max_speed_mps,
                ctx.reference_speed_mps * self.config.adaptive_speed_factor,
            )
        return max(floor, speed_bound * time_diff * self.config.speed_slack)

    def within_speed_ellipse(self, candidate: int, ctx: GapContext) -> bool:
        c = self.tokenizer.centroid_of_token(candidate)
        s_pt = self.tokenizer.centroid_of_token(ctx.source)
        d_pt = self.tokenizer.centroid_of_token(ctx.dest)
        return c.distance_to(s_pt) + c.distance_to(d_pt) <= self.ellipse_distance_sum(ctx)

    def _in_cone(self, apex: Point, toward: Point, candidate_pt: Point) -> bool:
        d = apex.distance_to(candidate_pt)
        if d == 0.0:
            return False
        return (
            angle_difference(apex.bearing_to(candidate_pt), apex.bearing_to(toward))
            <= self.config.cone_half_angle_rad
        )

    def violates_direction(self, candidate: int, ctx: GapContext) -> bool:
        """True when the candidate falls in a forbidden direction cone."""
        c = self.tokenizer.centroid_of_token(candidate)
        if ctx.prev_token is not None:
            apex = self.tokenizer.centroid_of_token(ctx.source)
            toward = self.tokenizer.centroid_of_token(ctx.prev_token)
            if apex.distance_to(toward) > 0 and self._in_cone(apex, toward, c):
                return True
        if ctx.next_token is not None:
            apex = self.tokenizer.centroid_of_token(ctx.dest)
            toward = self.tokenizer.centroid_of_token(ctx.next_token)
            if apex.distance_to(toward) > 0 and self._in_cone(apex, toward, c):
                return True
        return False

    # -- the combined filter ---------------------------------------------------

    def filter(
        self,
        candidates: Sequence[TokenProb],
        ctx: GapContext,
        segment: Sequence[int],
        insert_pos: int,
    ) -> list[TokenProb]:
        """Drop candidates violating any constraint (order preserved).

        ``segment`` is the segment token list built so far (S .. D) and
        ``insert_pos`` the index after which the candidate would go.
        """
        vocab = self.tokenizer.vocabulary
        gap_left = self.tokenizer.centroid_of_token(segment[insert_pos])
        gap_right = self.tokenizer.centroid_of_token(segment[insert_pos + 1])
        local_budget = gap_left.distance_to(gap_right) + self.config.local_detour_slack_m
        # Travel-distance budget: the whole imputed path may not be longer
        # than the maximum speed allows within the segment's time span —
        # the same bound as the position ellipse, applied to arc length.
        # Without it, the search can zig-zag arbitrarily inside the
        # ellipse and "close" a gap with a physically impossible path.
        length_budget = self.ellipse_distance_sum(ctx)
        current_length = self._segment_length(segment)
        # Rejections are tallied locally and flushed as one counter update
        # per filter call, keeping the per-candidate loop free of registry
        # traffic (this runs once per model call, inside the beam loop).
        rejected = dict.fromkeys(_REJECTION_COUNTERS, 0)
        out: list[TokenProb] = []
        for token, prob in candidates:
            if vocab.is_special(token):
                rejected["special"] += 1
                continue
            if not self.within_speed_ellipse(token, ctx):
                rejected["speed_ellipse"] += 1
                continue
            c = self.tokenizer.centroid_of_token(token)
            if c.distance_to(gap_left) + c.distance_to(gap_right) > local_budget:
                rejected["local_detour"] += 1
                continue
            new_length = (
                current_length
                - gap_left.distance_to(gap_right)
                + c.distance_to(gap_left)
                + c.distance_to(gap_right)
            )
            if new_length > length_budget:
                rejected["length_budget"] += 1
                continue
            if self.violates_direction(token, ctx):
                rejected["direction_cone"] += 1
                continue
            if creates_cycle(segment, insert_pos, token, self.config.cycle_window):
                rejected["cycle"] += 1
                continue
            out.append((token, prob))
        _record_filter(len(candidates), len(out), rejected)
        return out

    def _segment_length(self, segment: Sequence[int]) -> float:
        """Arc length of a segment's token-centroid polyline."""
        centroids = [self.tokenizer.centroid_of_token(t) for t in segment]
        return sum(a.distance_to(b) for a, b in zip(centroids, centroids[1:]))


class PassthroughConstraints(SpatialConstraints):
    """Ablation variant (Fig. 12-VI "No Const."): accept any prediction.

    Only special tokens and immediate self-repetition are still rejected —
    without the latter, iterative calling would loop forever on its own
    output, which the paper's "trivial cycle" rejection exists to prevent
    even in the ablated system.
    """

    def filter(
        self,
        candidates: Sequence[TokenProb],
        ctx: GapContext,
        segment: Sequence[int],
        insert_pos: int,
    ) -> list[TokenProb]:
        vocab = self.tokenizer.vocabulary
        rejected = dict.fromkeys(_REJECTION_COUNTERS, 0)
        out: list[TokenProb] = []
        for token, prob in candidates:
            if vocab.is_special(token):
                rejected["special"] += 1
                continue
            if creates_cycle(segment, insert_pos, token, 1):
                rejected["cycle"] += 1
                continue
            out.append((token, prob))
        _record_filter(len(candidates), len(out), rejected)
        return out
