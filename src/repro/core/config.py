"""System configuration with the paper's defaults (Section 8)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError


@dataclass(frozen=True)
class KamelConfig:
    """Every knob of the KAMEL system, defaulted to the paper's choices.

    The paper tunes hexagon edge 75 m, beam size 10, ``maxgap`` 100 m,
    direction cone 45 degrees, cycle window 6, and length-normalization
    strength 1 (Sections 3–8). Pyramid height/levels and the model
    threshold ``k`` are scaled down relative to the paper's city-scale
    deployments; the defaults here suit the ~3 km synthetic cities of
    :mod:`repro.roadnet`.
    """

    # -- Tokenization (Section 3) --
    grid_type: str = "hex"
    """``"hex"`` (Uber-H3-style, paper default) or ``"square"`` (S2-style)."""
    cell_edge_m: float = 75.0
    auto_tune_cell_size: bool = False
    """When True, :meth:`repro.core.kamel.Kamel.fit` sweeps candidate cell
    sizes on a sample of the training data (Section 3.2)."""
    cell_size_candidates: tuple[float, ...] = (25.0, 50.0, 75.0, 100.0, 150.0)

    # -- Model backend (the "BERT" black box) --
    model_backend: str = "counting"
    """``"bert"`` (transformer MLM, faithful but slow) or ``"counting"``
    (drop-in fast backend; see DESIGN.md substitution table)."""
    bert_hidden_size: int = 48
    bert_num_layers: int = 2
    bert_num_heads: int = 2
    bert_max_seq_len: int = 64
    bert_epochs: int = 20
    bert_lr: float = 3e-3
    top_k_candidates: int = 10
    """Candidates requested from the masked model per call."""

    # -- Partitioning (Section 4) --
    use_partitioning: bool = True
    """Ablation switch: False trains one model for all data (Fig. 12-VI)."""
    pyramid_height: int = 5
    """H: leaf level is ``H - 1`` (the paper uses 10 at city scale)."""
    pyramid_levels: int = 3
    """L: number of lowest pyramid levels that maintain models."""
    pyramid_root_extent_m: float = 96_000.0
    """Side length of the pyramid root cell ("the whole space"). The paper
    roots its pyramid at the whole world with city-scale leaves; 96 km with
    H=5 gives 6 km leaves — comfortably enclosing the ~3 km synthetic
    cities the way Porto sat inside one leaf in the paper's deployment."""
    model_threshold_k: int = 500
    """k: minimum token count to build a leaf model (paper default 20 000;
    scaled for synthetic cities). A model at level ``l`` needs
    ``k * 4**(leaf_level - l)`` tokens; neighbor-cell models need double."""

    # -- Spatial constraints (Section 5) --
    use_constraints: bool = True
    """Ablation switch: False accepts every model prediction (Fig. 12-VI)."""
    max_speed_mps: Optional[float] = None
    """Speed-ellipse bound; ``None`` infers it from training data (paper:
    "a fixed speed inferred from its training trajectory data")."""
    speed_mode: str = "fixed"
    """``"fixed"`` uses the single inferred/fleet-wide maximum speed
    (paper default). ``"adaptive"`` implements the paper's mentioned
    alternative: "consider the speed of the preceding imputed segment
    multiplied by a conservative factor" — each segment's ellipse is
    bounded by the previous segment's observed speed times
    ``adaptive_speed_factor`` (falling back to the fixed bound when no
    preceding segment exists)."""
    adaptive_speed_factor: float = 1.5
    speed_slack: float = 1.25
    """Multiplier on the inferred max speed (conservative headroom)."""
    ellipse_min_sum_m: float = 250.0
    """Lower bound on the ellipse distance sum, so near-instantaneous
    segment endpoints still admit at least a few cells."""
    local_detour_slack_m: float = 250.0
    """Per-insertion movement constraint: a token inserted between the two
    current gap endpoints u, v must satisfy ``d(c,u) + d(c,v) <= d(u,v) +
    slack``. This is the speed constraint applied recursively to every
    sub-gap: each insertion may detour by at most ``slack`` meters, so
    curved roads (U-turns, roundabouts) remain imputable while the search
    is forced to make net progress across the gap."""
    cone_half_angle_deg: float = 45.0
    cycle_window: int = 6
    """x: maximum repeated-suffix length checked by cycle prevention."""

    # -- Multipoint imputation (Section 6) --
    use_multipoint: bool = True
    """Ablation switch: False performs a single model call per gap."""
    imputer: str = "beam"
    """``"beam"`` (Algorithm 2, paper default) or ``"iterative"`` (Alg. 1)."""
    maxgap_m: float = 100.0
    beam_size: int = 10
    length_norm_alpha: float = 1.0
    max_model_calls: int = 1500
    """Hard limit per gap; exceeding it is a failure -> linear fallback.
    Beam search expands every open gap of every surviving beam entry per
    round, so long gaps (15+ tokens) legitimately need hundreds of calls."""

    # -- Detokenization (Section 7) --
    dbscan_min_samples: int = 4
    dbscan_eps_fraction: float = 0.35
    """DBSCAN epsilon as a fraction of the cell edge length."""
    direction_weight_m: float = 60.0
    """Scale converting direction (unit circle) into meters for clustering,
    so points moving opposite ways on the same road separate."""

    # -- Resilience (deadlines, degradation ladder, breakers) --
    trajectory_deadline_s: Optional[float] = None
    """Wall-time budget for one ``Kamel.impute`` call; ``None`` disables.
    An expired budget sends the remaining segments to the linear rung
    instead of hanging the request."""
    segment_deadline_s: Optional[float] = None
    """Per-segment budget, combined with (capped by) the trajectory budget."""
    degraded_beam_size: int = 3
    """Beam width of the ladder's reduced-beam rung."""
    degraded_max_model_calls: int = 200
    """Model-call budget for the reduced-beam and counting rungs."""
    enable_fallback_model: bool = True
    """Maintain a global counting model as the ladder's safety-net rung
    (cheap to train; survives an open inference circuit or a repository
    miss — the heavy model path being unavailable must not mean linear)."""
    breaker_failure_threshold: int = 5
    """Consecutive failures before a circuit (lookup or inference) opens."""
    breaker_recovery_s: float = 30.0
    """Seconds an open circuit waits before allowing a half-open probe."""
    retry_attempts: int = 2
    """Retries (after the first try) for transient lookup/inference faults."""
    retry_base_delay_s: float = 0.01
    """Base of the jittered exponential backoff between retries."""

    # -- misc --
    seed: int = 0

    def __post_init__(self) -> None:
        if self.grid_type not in ("hex", "square"):
            raise ConfigError(f"grid_type must be 'hex' or 'square', got {self.grid_type!r}")
        if self.speed_mode not in ("fixed", "adaptive"):
            raise ConfigError(
                f"speed_mode must be 'fixed' or 'adaptive', got {self.speed_mode!r}"
            )
        if self.adaptive_speed_factor <= 0:
            raise ConfigError("adaptive_speed_factor must be positive")
        if self.model_backend not in ("counting", "bert"):
            raise ConfigError(
                f"model_backend must be 'counting' or 'bert', got {self.model_backend!r}"
            )
        if self.imputer not in ("beam", "iterative"):
            raise ConfigError(f"imputer must be 'beam' or 'iterative', got {self.imputer!r}")
        if self.cell_edge_m <= 0:
            raise ConfigError("cell_edge_m must be positive")
        if self.maxgap_m <= 0:
            raise ConfigError("maxgap_m must be positive")
        if self.beam_size < 1:
            raise ConfigError("beam_size must be >= 1")
        if not 0.0 <= self.length_norm_alpha <= 1.0:
            raise ConfigError("length_norm_alpha must be in [0, 1]")
        if self.cycle_window < 1:
            raise ConfigError("cycle_window must be >= 1")
        if not 0.0 < self.cone_half_angle_deg < 90.0:
            raise ConfigError("cone_half_angle_deg must be in (0, 90)")
        if self.pyramid_levels < 1 or self.pyramid_levels > self.pyramid_height:
            raise ConfigError("pyramid_levels must be in [1, pyramid_height]")
        if self.pyramid_root_extent_m <= 0:
            raise ConfigError("pyramid_root_extent_m must be positive")
        if self.model_threshold_k < 1:
            raise ConfigError("model_threshold_k must be >= 1")
        if self.max_model_calls < 1:
            raise ConfigError("max_model_calls must be >= 1")
        if self.top_k_candidates < 1:
            raise ConfigError("top_k_candidates must be >= 1")
        if self.trajectory_deadline_s is not None and self.trajectory_deadline_s <= 0:
            raise ConfigError("trajectory_deadline_s must be positive when set")
        if self.segment_deadline_s is not None and self.segment_deadline_s <= 0:
            raise ConfigError("segment_deadline_s must be positive when set")
        if self.degraded_beam_size < 1:
            raise ConfigError("degraded_beam_size must be >= 1")
        if self.degraded_max_model_calls < 1:
            raise ConfigError("degraded_max_model_calls must be >= 1")
        if self.breaker_failure_threshold < 1:
            raise ConfigError("breaker_failure_threshold must be >= 1")
        if self.breaker_recovery_s <= 0:
            raise ConfigError("breaker_recovery_s must be positive")
        if self.retry_attempts < 0:
            raise ConfigError("retry_attempts must be >= 0")
        if self.retry_base_delay_s < 0:
            raise ConfigError("retry_base_delay_s must be >= 0")

    @property
    def cone_half_angle_rad(self) -> float:
        return math.radians(self.cone_half_angle_deg)

    @property
    def leaf_level(self) -> int:
        return self.pyramid_height - 1

    def model_threshold(self, level: int) -> int:
        """Token count required for a single-cell model at ``level``."""
        if not 0 <= level <= self.leaf_level:
            raise ConfigError(f"level {level} outside pyramid of height {self.pyramid_height}")
        return self.model_threshold_k * 4 ** (self.leaf_level - level)


DEFAULT_CONFIG = KamelConfig()
