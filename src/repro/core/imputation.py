"""Multipoint imputation (paper Section 6).

Fills a trajectory gap between two end tokens S and D with a sequence of
tokens such that no two consecutive tokens are further apart than
``maxgap``. Two strategies from the paper:

* :class:`IterativeImputer` — Algorithm 1: greedily insert the single most
  probable valid token at the first remaining gap, repeat.
* :class:`BeamSearchImputer` — Algorithm 2: bidirectional beam search over
  token insertions with length-normalized sequence probabilities
  ``P * |S|^alpha`` (Wu et al.'s length normalization, alpha = 1 default).

Both enforce a hard budget of model calls per gap; exhausting it without
closing every gap is a *failure*, and the caller falls back to a straight
line (which is exactly what the paper's failure-rate metric counts).

One reading note on Algorithm 2: the pseudocode line 19 updates the
completed-answer bound with ``Min``, but the worked example (Figure 7)
prunes against the *best* completed normalized score ("new lower bound is
0.36"); we follow the example and keep the maximum.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.config import KamelConfig
from repro.core.constraints import GapContext, SpatialConstraints
from repro.core.tokenization import Tokenizer
from repro.mlm.base import MaskedModel, TokenProb
from repro.obs import instrument as obs
from repro.obs.logging import get_logger
from repro.obs.tracing import span
from repro.resilience.deadline import Deadline

_log = get_logger("core.imputation")


@dataclass(frozen=True)
class SegmentImputation:
    """Result of imputing one segment: interior tokens (or None) + cost."""

    interior: Optional[tuple[int, ...]]
    model_calls: int
    confidence: Optional[float] = None
    """The strategy's own score for the returned sequence (see
    :attr:`repro.core.result.SegmentOutcome.confidence`)."""
    point_confidences: tuple[float, ...] = ()
    """Per-interior-token confidences, aligned with ``interior``: the
    model probability of the candidate chosen at each position (under the
    winning beam, for beam search). Empty for failed segments and for the
    trivial no-gap case; otherwise ``len == len(interior)``."""

    @property
    def failed(self) -> bool:
        return self.interior is None


class SegmentImputer(abc.ABC):
    """Shared machinery for the Section 6 strategies."""

    def __init__(
        self,
        model: MaskedModel,
        tokenizer: Tokenizer,
        constraints: SpatialConstraints,
        config: KamelConfig,
        gap_threshold_m: Optional[float] = None,
    ) -> None:
        self.model = model
        self.tokenizer = tokenizer
        self.constraints = constraints
        self.config = config
        self._gap_threshold_m = gap_threshold_m

    # -- gap geometry -----------------------------------------------------

    @property
    def gap_threshold_m(self) -> float:
        """The distance above which two consecutive tokens form a gap.

        ``maxgap`` from the config, floored at the grid's centroid spacing:
        two *adjacent* cells are never a gap (the paper's Figure 6 counts
        gaps in token steps, and with 75 m hexagons the 130 m centroid
        spacing already exceeds the 100 m default maxgap — a literal
        meters-only test could never terminate). :class:`repro.core.kamel`
        additionally floors this at the training data's own token spacing:
        the model cannot produce transitions finer than it ever observed,
        and the paper's metrics measure distance to the imputed *polyline*,
        which is insensitive to the spacing of points along it.
        """
        floor = max(self.config.maxgap_m, self.tokenizer.grid.centroid_spacing_m + 1e-6)
        if self._gap_threshold_m is not None:
            return max(floor, self._gap_threshold_m)
        return floor

    def _gap_after(self, seg: Sequence[int], i: int) -> bool:
        """Whether the distance between seg[i] and seg[i+1] exceeds maxgap."""
        return self.tokenizer.token_distance_m(seg[i], seg[i + 1]) > self.gap_threshold_m

    def find_first_gap(self, seg: Sequence[int]) -> Optional[int]:
        """Index ``i`` of the first pair (i, i+1) further apart than maxgap."""
        for i in range(len(seg) - 1):
            if self._gap_after(seg, i):
                return i
        return None

    def find_gaps(self, seg: Sequence[int]) -> list[int]:
        """All gap positions in ``seg``."""
        return [i for i in range(len(seg) - 1) if self._gap_after(seg, i)]

    # -- model interaction ---------------------------------------------------

    def _query(
        self, seg: Sequence[int], i: int, ctx: GapContext
    ) -> tuple[list[int], int]:
        """The model input for predicting a token between seg[i], seg[i+1].

        The trajectory tokens surrounding the segment (t1 before S, t2
        after D) are included as extra context when known.
        """
        prefix = [ctx.prev_token] if ctx.prev_token is not None else []
        suffix = [ctx.next_token] if ctx.next_token is not None else []
        tokens = prefix + list(seg[: i + 1]) + [0] + list(seg[i + 1 :]) + suffix
        position = len(prefix) + i + 1
        return tokens, position

    def _call_budget(self, ctx: GapContext) -> int:
        """The model-call limit for this segment.

        The configured limit covers a ~1 km gap; longer gaps need
        proportionally more beam rounds, so the budget scales with the
        straight-line span (the paper's hard limit exists to bound cost,
        not to punish long gaps specifically).
        """
        span = self.tokenizer.token_distance_m(ctx.source, ctx.dest)
        scale = max(1.0, span / 1000.0)
        return int(self.config.max_model_calls * scale)

    def _candidates(
        self,
        seg: Sequence[int],
        i: int,
        ctx: GapContext,
        deadline: Optional[Deadline] = None,
    ) -> list[TokenProb]:
        """One constrained model call for the gap after position ``i``.

        The deadline is checked *before* the model call — the expensive
        unit of work — so an overrun raises
        :class:`repro.errors.DeadlineExceeded` at most one model call
        past the budget, never mid-search with unbounded slack.
        """
        if deadline is not None:
            deadline.check("segment imputation")
        tokens, position = self._query(seg, i, ctx)
        # Attribute-free spans: this runs once per model call, so the
        # disabled-tracing cost must stay at one branch, no kwargs dict.
        with span("model.predict"):
            raw = self.model.predict_masked(
                tokens, position, top_k=self.config.top_k_candidates
            )
        with span("constraints.filter"):
            return self.constraints.filter(raw, ctx, seg, i)

    # -- the instrumented front door ---------------------------------------

    strategy_name: str = "unknown"
    """Short id used in metric names and span attributes."""

    def impute_segment(
        self, ctx: GapContext, deadline: Optional[Deadline] = None
    ) -> SegmentImputation:
        """Fill the gap between ``ctx.source`` and ``ctx.dest``.

        Template method: runs the strategy's :meth:`_impute` inside an
        ``impute.segment`` span and records the per-segment metrics
        (strategy, model calls, budget consumption, failure) so every
        strategy is measured identically. ``deadline`` (when given) is
        checked between model calls; an overrun propagates
        :class:`repro.errors.DeadlineExceeded` to the caller, whose
        degradation ladder converts it into a fallback.
        """
        budget = self._call_budget(ctx)
        with span("impute.segment", strategy=self.strategy_name) as sp:
            result = self._impute(ctx, deadline)
            sp.set(
                model_calls=result.model_calls,
                budget=budget,
                failed=result.failed,
            )
        obs.count("repro.imputation.segments_total")
        obs.count(f"repro.imputation.{self.strategy_name}.segments_total")
        # The histogram's P² quantiles are *estimates* (a p50 of 47.98
        # calls is interpolation, not an observation); the counter is the
        # exact total the profiler's cost ledger reconciles against.
        obs.count("repro.imputation.model_calls_total", result.model_calls)
        obs.observe("repro.imputation.calls_per_segment", result.model_calls)
        if budget > 0:
            obs.observe(
                "repro.imputation.budget_consumed_ratio",
                min(1.0, result.model_calls / budget),
            )
        if result.failed:
            obs.count("repro.imputation.failures_total")
            if result.model_calls >= budget:
                obs.count("repro.imputation.budget_exhausted_total")
            # DEBUG detail behind the facade's fallback WARNING: which
            # strategy gave up and how much budget it burned, correlated
            # to the request by the trace id on the log record.
            _log.debug(
                "segment imputation failed",
                extra={"data": {
                    "strategy": self.strategy_name,
                    "model_calls": result.model_calls,
                    "budget": budget,
                }},
            )
        return result

    @abc.abstractmethod
    def _impute(
        self, ctx: GapContext, deadline: Optional[Deadline] = None
    ) -> SegmentImputation:
        """The strategy body (metrics and spans handled by the caller)."""


class IterativeImputer(SegmentImputer):
    """Algorithm 1: iterative greedy BERT calling."""

    strategy_name = "iterative"

    def _impute(
        self, ctx: GapContext, deadline: Optional[Deadline] = None
    ) -> SegmentImputation:
        seg: list[int] = [ctx.source, ctx.dest]
        probs: list[float] = []
        calls = 0
        probability = 1.0
        budget = self._call_budget(ctx)
        pointer = self.find_first_gap(seg)
        while pointer is not None:
            if calls >= budget:
                return SegmentImputation(None, calls)
            candidates = self._candidates(seg, pointer, ctx, deadline)
            calls += 1
            if not candidates:
                return SegmentImputation(None, calls)
            best_token, best_prob = candidates[0]
            probability *= best_prob
            # seg position pointer+1 holds interior index pointer (the
            # source endpoint occupies seg[0]), so probs tracks interior.
            seg.insert(pointer + 1, best_token)
            probs.insert(pointer, best_prob)
            pointer = self.find_first_gap(seg)
        interior = tuple(seg[1:-1])
        normalized = probability * max(1, len(interior)) ** self.config.length_norm_alpha
        return SegmentImputation(
            interior,
            calls,
            confidence=min(1.0, normalized),
            point_confidences=tuple(probs),
        )


@dataclass(frozen=True)
class _Beam:
    """One partial segment under beam search."""

    seg: tuple[int, ...]
    prob: float
    pointer: int
    """The gap position this beam entry will expand next."""
    probs: tuple[float, ...] = ()
    """Per-interior-token probabilities, aligned with ``seg[1:-1]``."""


class BeamSearchImputer(SegmentImputer):
    """Algorithm 2: bidirectional beam search with length normalization."""

    strategy_name = "beam"

    def _normalized(self, seg: Sequence[int], prob: float) -> float:
        interior = max(1, len(seg) - 2)
        return prob * interior**self.config.length_norm_alpha

    def _impute(
        self, ctx: GapContext, deadline: Optional[Deadline] = None
    ) -> SegmentImputation:
        cfg = self.config
        initial = (ctx.source, ctx.dest)
        first_gap = self.find_first_gap(initial)
        if first_gap is None:
            return SegmentImputation((), 0, confidence=1.0)

        all_gaps: list[_Beam] = [_Beam(initial, 1.0, first_gap)]
        answers: list[tuple[tuple[int, ...], float, tuple[float, ...]]] = []
        prob_limit = float("-inf")
        calls = 0
        budget = self._call_budget(ctx)

        while all_gaps:
            new_segments: list[tuple[tuple[int, ...], float, tuple[float, ...]]] = []
            for beam in all_gaps:
                if calls >= budget:
                    break
                candidates = self._candidates(beam.seg, beam.pointer, ctx, deadline)
                calls += 1
                for token, p in candidates[: cfg.beam_size]:
                    seg = (
                        beam.seg[: beam.pointer + 1]
                        + (token,)
                        + beam.seg[beam.pointer + 1 :]
                    )
                    # seg position pointer+1 is interior index pointer.
                    probs = (
                        beam.probs[: beam.pointer]
                        + (p,)
                        + beam.probs[beam.pointer :]
                    )
                    new_segments.append((seg, beam.prob * p, probs))
            if calls >= budget and not new_segments:
                break

            # Keep the global top-B segments, pruned against the best
            # completed normalized score so far.
            new_segments.sort(key=lambda sp: -sp[1])
            survivors = [
                (seg, prob, probs)
                for seg, prob, probs in new_segments
                if self._normalized(seg, prob) >= prob_limit
            ][: cfg.beam_size]

            all_gaps = []
            for seg, prob, probs in survivors:
                gaps = self.find_gaps(seg)
                if not gaps:
                    score = self._normalized(seg, prob)
                    answers.append((seg, score, probs))
                    prob_limit = max(prob_limit, score)
                else:
                    for g in gaps:
                        all_gaps.append(_Beam(seg, prob, g, probs))
            if calls >= budget:
                break

        if not answers:
            return SegmentImputation(None, calls)
        best_seg, best_score, best_probs = max(answers, key=lambda sp: sp[1])
        return SegmentImputation(
            best_seg[1:-1],
            calls,
            confidence=min(1.0, best_score),
            point_confidences=best_probs,
        )


class SinglePointImputer(SegmentImputer):
    """Ablation variant (Fig. 12-VI "No Multi."): one model call per gap.

    Inserts at most one token between S and D; if the gap is still wider
    than maxgap afterwards (it usually is), the remainder stays empty. A
    segment still counts as failed when even that single token cannot be
    produced, mirroring how the ablated system behaves in the paper (the
    recall drops because most of the gap is simply left unfilled).
    """

    strategy_name = "single_point"

    def _impute(
        self, ctx: GapContext, deadline: Optional[Deadline] = None
    ) -> SegmentImputation:
        seg = (ctx.source, ctx.dest)
        if self.find_first_gap(seg) is None:
            return SegmentImputation((), 0, confidence=1.0)
        candidates = self._candidates(seg, 0, ctx, deadline)
        if not candidates:
            return SegmentImputation(None, 1)
        return SegmentImputation(
            (candidates[0][0],),
            1,
            confidence=candidates[0][1],
            point_confidences=(candidates[0][1],),
        )


def make_segment_imputer(
    model: MaskedModel,
    tokenizer: Tokenizer,
    constraints: SpatialConstraints,
    config: KamelConfig,
    gap_threshold_m: Optional[float] = None,
) -> SegmentImputer:
    """Build the strategy selected by ``config`` (incl. ablation switch)."""
    if not config.use_multipoint:
        return SinglePointImputer(model, tokenizer, constraints, config, gap_threshold_m)
    if config.imputer == "iterative":
        return IterativeImputer(model, tokenizer, constraints, config, gap_threshold_m)
    return BeamSearchImputer(model, tokenizer, constraints, config, gap_threshold_m)
