"""Partitioning: the pyramid model repository (paper Section 4).

A pyramid of ``H`` levels covers "the whole space" (a large square rooted
around the training data); level ``l`` splits the root into ``4**l`` equal
cells. Only the lowest ``L`` levels *maintain* models. Two model kinds
exist (Section 4.1):

* **single-cell** models trained on the trajectories fully enclosed in one
  cell — built when the cell holds at least ``k * 4**(leaf - l)`` tokens;
* **neighbor-cell** models trained on the union of two edge-sharing cells
  (stored at the north/west cell), built at double that threshold — they
  cover trajectories that straddle a cell border.

Retrieval for a sparse trajectory finds the smallest cell (or neighbor
pair) fully enclosing its bounding rectangle that has a model; when none
exists the caller degrades per the paper (split, then straight line).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.core.config import KamelConfig
from repro.core.store import TrajectoryStore
from repro.core.tokenization import Tokenizer, TokenSequence
from repro.errors import ModelRepositoryError
from repro.geo import BoundingBox, Point
from repro.mlm.base import MaskedModel
from repro.obs import instrument as obs
from repro.obs.logging import get_logger
from repro.obs.tracing import span

_log = get_logger("core.partitioning")

CellKey = tuple[int, int, int]
"""(level, i, j): cell j-th row, i-th column of the 2**level split."""

PairKey = tuple[CellKey, CellKey]
"""A neighbor-cell model key, ordered (storage cell, pointing cell)."""


class PyramidIndex:
    """Pure geometry of the pyramid decomposition."""

    def __init__(self, root: BoundingBox, height: int) -> None:
        if height < 1:
            raise ModelRepositoryError(f"pyramid height must be >= 1, got {height}")
        if root.width <= 0 or root.height <= 0:
            raise ModelRepositoryError("pyramid root must have positive extent")
        self.root = root
        self.height = height

    @classmethod
    def rooted_at(cls, center: Point, extent_m: float, height: int) -> "PyramidIndex":
        """Root a pyramid of the given extent around ``center``.

        The root is anchored so ``center`` falls at the *center of a leaf
        cell* near the root's middle. Naively centering the root on the
        data would put cell boundaries of every level exactly through the
        data centroid (the worst case for "smallest cell fully enclosing
        the trajectory" retrieval); the half-leaf shift keeps the data
        comfortably inside one cell per maintained level instead.
        """
        leaf = extent_m / 2 ** (height - 1)
        shift = (2 ** max(0, height - 2) + 0.5) * leaf
        min_x = center.x - shift
        min_y = center.y - shift
        return cls(
            BoundingBox(min_x, min_y, min_x + extent_m, min_y + extent_m),
            height,
        )

    @property
    def leaf_level(self) -> int:
        return self.height - 1

    def cells_per_side(self, level: int) -> int:
        return 2**level

    def cell_bbox(self, key: CellKey) -> BoundingBox:
        level, i, j = key
        n = self.cells_per_side(level)
        w = self.root.width / n
        h = self.root.height / n
        return BoundingBox(
            self.root.min_x + i * w,
            self.root.min_y + j * h,
            self.root.min_x + (i + 1) * w,
            self.root.min_y + (j + 1) * h,
        )

    def cell_containing_point(self, p: Point, level: int) -> Optional[CellKey]:
        n = self.cells_per_side(level)
        if not self.root.contains_point(p):
            return None
        i = min(n - 1, int(math.floor((p.x - self.root.min_x) / self.root.width * n)))
        j = min(n - 1, int(math.floor((p.y - self.root.min_y) / self.root.height * n)))
        return (level, i, j)

    def cell_containing_bbox(self, box: BoundingBox, level: int) -> Optional[CellKey]:
        """The level-``level`` cell fully enclosing ``box``, if any."""
        lo = self.cell_containing_point(Point(box.min_x, box.min_y), level)
        hi = self.cell_containing_point(Point(box.max_x, box.max_y), level)
        if lo is None or hi is None or lo != hi:
            return None
        return lo

    def pair_containing_bbox(self, box: BoundingBox, level: int) -> Optional[PairKey]:
        """An edge-sharing cell pair at ``level`` enclosing ``box``, if any."""
        lo = self.cell_containing_point(Point(box.min_x, box.min_y), level)
        hi = self.cell_containing_point(Point(box.max_x, box.max_y), level)
        if lo is None or hi is None or lo == hi:
            return None
        (_, i1, j1), (_, i2, j2) = lo, hi
        if abs(i1 - i2) + abs(j1 - j2) != 1:
            return None
        return _pair_key(lo, hi)

    def parent(self, key: CellKey) -> Optional[CellKey]:
        level, i, j = key
        if level == 0:
            return None
        return (level - 1, i // 2, j // 2)

    def children(self, key: CellKey) -> list[CellKey]:
        level, i, j = key
        if level >= self.leaf_level:
            return []
        return [
            (level + 1, 2 * i + di, 2 * j + dj) for di in (0, 1) for dj in (0, 1)
        ]

    def neighbors(self, key: CellKey) -> list[CellKey]:
        """Edge-sharing same-level neighbours inside the root."""
        level, i, j = key
        n = self.cells_per_side(level)
        out = []
        for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            ni, nj = i + di, j + dj
            if 0 <= ni < n and 0 <= nj < n:
                out.append((level, ni, nj))
        return out

    def smallest_enclosing(
        self, box: BoundingBox, maintained_levels: Iterator[int]
    ) -> Optional[CellKey]:
        """Deepest maintained-level single cell fully enclosing ``box``."""
        for level in sorted(maintained_levels, reverse=True):
            cell = self.cell_containing_bbox(box, level)
            if cell is not None:
                return cell
        return None


def _pair_key(a: CellKey, b: CellKey) -> PairKey:
    """Canonical neighbor-model key: the north-or-west cell stores it."""
    (_, ia, ja), (_, ib, jb) = a, b
    # West = smaller i; north = larger j (y grows north in the local frame).
    if (ia < ib) or (ia == ib and ja > jb):
        return (a, b)
    return (b, a)


@dataclass
class StoredModel:
    """A model plus the metadata the paper keeps beside it."""

    model: MaskedModel
    region: BoundingBox
    token_count: int
    kind: str
    """``"single"`` or ``"neighbor"``."""
    builds: int = 1
    """How many times this slot has been (re)built."""


@dataclass
class RepositoryStats:
    """Counters mirroring the deployment numbers the paper reports."""

    single_models: int = 0
    neighbor_models: int = 0
    models_per_level: dict = field(default_factory=dict)
    rebuilds: int = 0


class ModelRepository:
    """Builds, stores, and retrieves per-area masked models."""

    def __init__(
        self,
        tokenizer: Tokenizer,
        store: TrajectoryStore,
        config: KamelConfig,
        model_factory: Callable[[], MaskedModel],
        pyramid: Optional[PyramidIndex] = None,
    ) -> None:
        self.tokenizer = tokenizer
        self.store = store
        self.config = config
        self.model_factory = model_factory
        self.pyramid = pyramid
        self._single: dict[CellKey, StoredModel] = {}
        self._neighbor: dict[PairKey, StoredModel] = {}
        self._token_counts: dict[CellKey, int] = {}
        self.fault_hook: Optional[Callable[[str], None]] = None
        """Chaos-injection slot: called with the site name at the top of
        every :meth:`retrieve`. Installed by
        :func:`repro.resilience.chaos.install_repository_chaos`; faults it
        raises surface *inside* the lookup, exercising the retry/breaker
        stack exactly like a wedged model store would."""

    # -- bookkeeping -------------------------------------------------------

    @property
    def maintained_levels(self) -> list[int]:
        """The lowest L levels of the pyramid (deepest last)."""
        leaf = self.config.leaf_level
        first = max(0, leaf - self.config.pyramid_levels + 1)
        return list(range(first, leaf + 1))

    def _ensure_pyramid(self, around: Point) -> PyramidIndex:
        if self.pyramid is None:
            self.pyramid = PyramidIndex.rooted_at(
                around, self.config.pyramid_root_extent_m, self.config.pyramid_height
            )
        return self.pyramid

    def token_count(self, key: CellKey) -> int:
        return self._token_counts.get(key, 0)

    def stats(self) -> RepositoryStats:
        per_level: dict[int, int] = {}
        for (level, _, _), _m in self._single.items():
            per_level[level] = per_level.get(level, 0) + 1
        rebuilds = sum(
            m.builds - 1 for m in list(self._single.values()) + list(self._neighbor.values())
        )
        return RepositoryStats(
            single_models=len(self._single),
            neighbor_models=len(self._neighbor),
            models_per_level=per_level,
            rebuilds=rebuilds,
        )

    # -- maintenance (Section 4.2) -------------------------------------------

    def add_training(self, sequences: list[TokenSequence]) -> None:
        """Ingest a batch of tokenized training trajectories.

        Implements the four maintenance steps of Section 4.2: store the
        data, find the smallest enclosing cell C, then (re)build models at
        C, its neighbor pairs, its ancestors, and its descendants wherever
        token thresholds are now met.
        """
        sequences = [s for s in sequences if len(s) >= 2]
        if not sequences:
            return
        self.store.add_many(sequences)
        pyramid = self._ensure_pyramid(self._batch_centroid(sequences))
        self._update_token_counts(sequences, pyramid)

        batch_box = BoundingBox.union_all(
            [self.tokenizer.sequence_bbox(s) for s in sequences]
        )
        anchor = pyramid.smallest_enclosing(batch_box, iter(self.maintained_levels))
        touched: list[CellKey] = []
        if anchor is not None:
            touched.append(anchor)
            # Step 3: ancestors up to the lowest maintained level.
            cursor = pyramid.parent(anchor)
            while cursor is not None and cursor[0] >= self.maintained_levels[0]:
                touched.append(cursor)
                cursor = pyramid.parent(cursor)
            # Step 4: descendants down to the leaves.
            frontier = pyramid.children(anchor)
            while frontier:
                touched.extend(frontier)
                nxt: list[CellKey] = []
                for child in frontier:
                    nxt.extend(pyramid.children(child))
                frontier = nxt
        else:
            # The batch spans more than any maintained cell: refresh every
            # maintained cell it overlaps.
            for level in self.maintained_levels:
                n = pyramid.cells_per_side(level)
                for i in range(n):
                    for j in range(n):
                        key = (level, i, j)
                        if self.token_count(key) and pyramid.cell_bbox(key).intersects(
                            batch_box
                        ):
                            touched.append(key)

        for key in touched:
            self._maybe_build_single(key)
            self._maybe_build_neighbors(key)
        _log.debug(
            "maintenance pass",
            extra={"data": {
                "sequences": len(sequences),
                "touched_cells": len(touched),
                "models": self.num_models,
            }},
        )

    def _batch_centroid(self, sequences: list[TokenSequence]) -> Point:
        boxes = [self.tokenizer.sequence_bbox(s) for s in sequences]
        box = BoundingBox.union_all(boxes)
        return box.center

    def _update_token_counts(
        self, sequences: list[TokenSequence], pyramid: PyramidIndex
    ) -> None:
        vocab = self.tokenizer.vocabulary
        for seq in sequences:
            for token in seq.tokens:
                if vocab.is_special(token):
                    continue
                centroid = self.tokenizer.centroid_of_token(token)
                for level in self.maintained_levels:
                    key = pyramid.cell_containing_point(centroid, level)
                    if key is not None:
                        self._token_counts[key] = self._token_counts.get(key, 0) + 1

    def _train_model(self, region: BoundingBox) -> Optional[tuple[MaskedModel, int]]:
        sequences = self.store.sequences_within(region)
        if not sequences:
            return None
        model = self.model_factory()
        with span("repository.build_model", sequences=len(sequences)):
            with obs.stopwatch("repro.partitioning.model_build_seconds"):
                model.fit([s.tokens for s in sequences], len(self.tokenizer.vocabulary))
        obs.count("repro.partitioning.model_builds_total")
        return model, sum(len(s) for s in sequences)

    def _maybe_build_single(self, key: CellKey) -> None:
        assert self.pyramid is not None
        level = key[0]
        if self.token_count(key) < self.config.model_threshold(level):
            return
        trained = self._train_model(self.pyramid.cell_bbox(key))
        if trained is None:
            return
        model, tokens = trained
        existing = self._single.get(key)
        self._single[key] = StoredModel(
            model,
            self.pyramid.cell_bbox(key),
            tokens,
            "single",
            builds=(existing.builds + 1) if existing else 1,
        )

    def _maybe_build_neighbors(self, key: CellKey) -> None:
        assert self.pyramid is not None
        level = key[0]
        threshold = 2 * self.config.model_threshold(level)
        for other in self.pyramid.neighbors(key):
            if self.token_count(key) + self.token_count(other) < threshold:
                continue
            pair = _pair_key(key, other)
            region = self.pyramid.cell_bbox(pair[0]).union(self.pyramid.cell_bbox(pair[1]))
            trained = self._train_model(region)
            if trained is None:
                continue
            model, tokens = trained
            existing = self._neighbor.get(pair)
            self._neighbor[pair] = StoredModel(
                model,
                region,
                tokens,
                "neighbor",
                builds=(existing.builds + 1) if existing else 1,
            )

    # -- retrieval (Section 4.1) ------------------------------------------------

    def retrieve(self, box: BoundingBox) -> Optional[StoredModel]:
        """The model of the smallest cell or neighbor pair enclosing ``box``."""
        obs.count("repro.partitioning.lookup_total")
        if self.fault_hook is not None:
            self.fault_hook("repository.retrieve")
        if self.pyramid is None:
            self._record_miss()
            return None
        for level in sorted(self.maintained_levels, reverse=True):
            cell = self.pyramid.cell_containing_bbox(box, level)
            if cell is not None and cell in self._single:
                self._record_hit("single", level)
                return self._single[cell]
            pair = self.pyramid.pair_containing_bbox(box, level)
            if pair is not None and pair in self._neighbor:
                self._record_hit("neighbor", level)
                return self._neighbor[pair]
        self._record_miss()
        return None

    @staticmethod
    def _record_hit(kind: str, level: int) -> None:
        obs.count(f"repro.partitioning.lookup_hit.{kind}_total")
        obs.observe("repro.partitioning.lookup_hit_level", level)
        hub = obs.monitors()
        hub.hit_rate.observe(1.0)
        hub.hit_level.observe(level)

    @staticmethod
    def _record_miss() -> None:
        obs.count("repro.partitioning.lookup_miss_total")
        hub = obs.monitors()
        hub.hit_rate.observe(0.0)
        hub.hit_level.observe(None)

    def any_model(self) -> Optional[StoredModel]:
        """Some model, preferring the broadest single-cell one (fallback)."""
        if self._single:
            return min(self._single.items(), key=lambda kv: kv[0][0])[1]
        if self._neighbor:
            return next(iter(self._neighbor.values()))
        return None

    @property
    def num_models(self) -> int:
        return len(self._single) + len(self._neighbor)

    def __repr__(self) -> str:
        return (
            f"ModelRepository(single={len(self._single)}, "
            f"neighbor={len(self._neighbor)}, levels={self.maintained_levels})"
        )
