"""KAMEL's core: the five paper modules and the system facade.

* :mod:`repro.core.tokenization` — Section 3 (hexagonal tokenization and
  cell-size optimization),
* :mod:`repro.core.partitioning` — Section 4 (pyramid model repository and
  trajectory store),
* :mod:`repro.core.constraints` — Section 5 (speed / direction constraints
  and cycle prevention),
* :mod:`repro.core.imputation` — Section 6 (iterative BERT calling and
  bidirectional beam search),
* :mod:`repro.core.detokenization` — Section 7 (DBSCAN cluster centroids),
* :mod:`repro.core.kamel` — the assembled system (Figure 1).
"""

from repro.core.config import KamelConfig
from repro.core.result import ImputationResult, Imputer, SegmentOutcome
from repro.core.tokenization import TokenSequence, Tokenizer
from repro.core.store import TrajectoryStore
from repro.core.constraints import GapContext, SpatialConstraints
from repro.core.imputation import BeamSearchImputer, IterativeImputer, SegmentImputer
from repro.core.partitioning import ModelRepository, PyramidIndex
from repro.core.detokenization import Detokenizer
from repro.core.kamel import Kamel
from repro.core.streaming import StreamingConfig, StreamingImputationService, StreamStats
from repro.core.tuning import tune_cell_size

__all__ = [
    "BeamSearchImputer",
    "Detokenizer",
    "GapContext",
    "ImputationResult",
    "Imputer",
    "IterativeImputer",
    "Kamel",
    "KamelConfig",
    "ModelRepository",
    "PyramidIndex",
    "SegmentImputer",
    "SegmentOutcome",
    "SpatialConstraints",
    "StreamStats",
    "StreamingConfig",
    "StreamingImputationService",
    "TokenSequence",
    "Tokenizer",
    "TrajectoryStore",
    "tune_cell_size",
]
