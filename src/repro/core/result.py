"""The imputer interface and its result types (shared with baselines)."""

from __future__ import annotations

import abc
from collections import Counter
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.geo import Trajectory


@dataclass(frozen=True)
class SegmentOutcome:
    """What happened to one sparse-trajectory segment (gap)."""

    start_index: int
    """Index of the segment's first endpoint in the sparse trajectory."""
    failed: bool
    """True when the segment fell back to a straight line (paper's
    "failure" definition in Section 8's metrics)."""
    model_calls: int = 0
    imputed_points: int = 0
    confidence: Optional[float] = None
    """The imputer's own score for this segment: the length-normalized
    sequence probability for beam search, the product of chosen candidate
    probabilities for iterative calling. ``None`` for failed segments and
    for imputers that do not score (baselines). Comparable within one
    system configuration, not across methods."""
    rung: Optional[str] = None
    """Which degradation-ladder rung resolved this segment (see
    :mod:`repro.resilience.ladder`): ``"full"``, ``"reduced_beam"``,
    ``"counting"``, or ``"linear"``. Defaults from ``failed`` for
    constructors that predate the ladder (baselines): failed segments are
    ``"linear"``, successful ones ``"full"``."""
    fallback_reason: Optional[str] = None
    """Why the segment left the top rung (``"endpoint_unseen"``,
    ``"no_model"``, ``"search_failed"``, ``"deadline"``,
    ``"circuit_open"``, ``"rung_error"``); ``None`` at the top rung."""
    point_confidences: tuple[float, ...] = ()
    """Per-imputed-point confidences, aligned with the segment's imputed
    points in trajectory order: the model probability of the candidate
    chosen at each position (detokenization is 1:1 token → point, so the
    token-level scores carry over). Empty for failed segments and for
    imputers that do not score per point (baselines, linear fallback);
    otherwise ``len == imputed_points``."""

    def __post_init__(self) -> None:
        if self.rung is None:
            object.__setattr__(self, "rung", "linear" if self.failed else "full")
        if not isinstance(self.point_confidences, tuple):
            object.__setattr__(
                self, "point_confidences", tuple(self.point_confidences)
            )

    @property
    def degraded(self) -> bool:
        """Resolved below the top ladder rung (includes linear failures)."""
        return self.rung != "full"


@dataclass(frozen=True)
class ImputationResult:
    """A dense trajectory plus per-segment bookkeeping."""

    trajectory: Trajectory
    segments: tuple[SegmentOutcome, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not isinstance(self.segments, tuple):
            object.__setattr__(self, "segments", tuple(self.segments))

    @property
    def num_segments(self) -> int:
        return len(self.segments)

    @property
    def num_failed(self) -> int:
        return sum(1 for s in self.segments if s.failed)

    @property
    def num_degraded(self) -> int:
        """Segments resolved below the top ladder rung (incl. failures)."""
        return sum(1 for s in self.segments if s.degraded)

    @property
    def failure_rate(self) -> float:
        """Fraction of segments imputed by a straight line."""
        if not self.segments:
            return 0.0
        return self.num_failed / len(self.segments)

    @property
    def degraded_rate(self) -> float:
        """Fraction of segments resolved below the top ladder rung."""
        if not self.segments:
            return 0.0
        return self.num_degraded / len(self.segments)

    @property
    def rung_counts(self) -> dict[str, int]:
        """How many segments each ladder rung resolved."""
        return dict(Counter(s.rung for s in self.segments if s.rung))

    @property
    def total_model_calls(self) -> int:
        return sum(s.model_calls for s in self.segments)

    @property
    def point_confidences(self) -> dict[int, tuple[float, ...]]:
        """Per-point confidences of every scored segment, keyed by the
        segment's ``start_index`` (segments without per-point scores —
        failures, baselines — are omitted)."""
        return {
            s.start_index: s.point_confidences
            for s in self.segments
            if s.point_confidences
        }


class Imputer(abc.ABC):
    """Anything that densifies sparse trajectories.

    Implemented by :class:`repro.core.kamel.Kamel` and every baseline in
    :mod:`repro.baselines`, so the evaluation harness treats them
    uniformly.
    """

    @abc.abstractmethod
    def impute(self, trajectory: Trajectory) -> ImputationResult:
        """Densify one sparse trajectory."""

    def impute_batch(self, trajectories: Sequence[Trajectory]) -> list[ImputationResult]:
        """Densify a batch (offline bulk mode)."""
        return [self.impute(t) for t in trajectories]

    @property
    def name(self) -> str:
        """Display name used in experiment tables."""
        return type(self).__name__
