"""Constant-velocity Kalman filtering and RTS smoothing for GPS tracks.

State is ``[x, y, vx, vy]``; the motion model is constant velocity with
white process noise on acceleration, and the measurement is the noisy
position. The forward pass is the standard Kalman filter; the backward
pass is the Rauch-Tung-Striebel smoother, which conditions every state on
the *whole* trajectory — appropriate here because KAMEL's training and
evaluation are offline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigError
from repro.geo import Point, Trajectory


@dataclass(frozen=True)
class KalmanConfig:
    """Noise model of the filter."""

    measurement_noise_m: float = 5.0
    """GPS position noise sigma."""
    process_noise_mps2: float = 1.5
    """Acceleration white-noise sigma (how fast speed may change)."""
    initial_speed_uncertainty_mps: float = 15.0

    def __post_init__(self) -> None:
        if self.measurement_noise_m <= 0:
            raise ConfigError("measurement_noise_m must be positive")
        if self.process_noise_mps2 <= 0:
            raise ConfigError("process_noise_mps2 must be positive")
        if self.initial_speed_uncertainty_mps <= 0:
            raise ConfigError("initial_speed_uncertainty_mps must be positive")


def _transition(dt: float) -> np.ndarray:
    f = np.eye(4)
    f[0, 2] = dt
    f[1, 3] = dt
    return f


def _process_noise(dt: float, sigma: float) -> np.ndarray:
    """Discrete white-noise-acceleration covariance (per axis, stacked)."""
    q11 = dt**4 / 4.0
    q12 = dt**3 / 2.0
    q22 = dt**2
    q = np.zeros((4, 4))
    for axis in (0, 1):
        q[axis, axis] = q11
        q[axis, axis + 2] = q12
        q[axis + 2, axis] = q12
        q[axis + 2, axis + 2] = q22
    return q * sigma**2


_H = np.zeros((2, 4))
_H[0, 0] = 1.0
_H[1, 1] = 1.0


class KalmanSmoother:
    """Filter + RTS smoother over a timestamped trajectory."""

    def __init__(self, config: Optional[KalmanConfig] = None) -> None:
        self.config = config or KalmanConfig()

    def smooth(self, trajectory: Trajectory) -> Trajectory:
        """Return a denoised copy of ``trajectory``.

        Requires timestamps; trajectories with fewer than three points or
        without usable timestamps are returned unchanged (there is nothing
        to smooth against).
        """
        points = trajectory.points
        if len(points) < 3 or not trajectory.is_time_ordered():
            return trajectory
        cfg = self.config
        r = np.eye(2) * cfg.measurement_noise_m**2

        n = len(points)
        measurements = np.array([[p.x, p.y] for p in points])
        times = np.array([p.t for p in points], dtype=float)

        # Forward filter, storing everything the RTS pass needs.
        filtered_means = np.zeros((n, 4))
        filtered_covs = np.zeros((n, 4, 4))
        predicted_means = np.zeros((n, 4))
        predicted_covs = np.zeros((n, 4, 4))
        transitions = np.zeros((n, 4, 4))

        mean = np.array([measurements[0, 0], measurements[0, 1], 0.0, 0.0])
        cov = np.diag(
            [
                cfg.measurement_noise_m**2,
                cfg.measurement_noise_m**2,
                cfg.initial_speed_uncertainty_mps**2,
                cfg.initial_speed_uncertainty_mps**2,
            ]
        )
        filtered_means[0] = mean
        filtered_covs[0] = cov
        predicted_means[0] = mean
        predicted_covs[0] = cov
        transitions[0] = np.eye(4)

        for k in range(1, n):
            dt = max(1e-3, times[k] - times[k - 1])
            f = _transition(dt)
            q = _process_noise(dt, cfg.process_noise_mps2)
            pred_mean = f @ mean
            pred_cov = f @ cov @ f.T + q

            innovation = measurements[k] - _H @ pred_mean
            s = _H @ pred_cov @ _H.T + r
            gain = pred_cov @ _H.T @ np.linalg.inv(s)
            mean = pred_mean + gain @ innovation
            cov = (np.eye(4) - gain @ _H) @ pred_cov

            filtered_means[k] = mean
            filtered_covs[k] = cov
            predicted_means[k] = pred_mean
            predicted_covs[k] = pred_cov
            transitions[k] = f

        # Backward RTS smoothing.
        smoothed = filtered_means.copy()
        smoothed_cov = filtered_covs[-1]
        for k in range(n - 2, -1, -1):
            f = transitions[k + 1]
            gain = filtered_covs[k] @ f.T @ np.linalg.inv(predicted_covs[k + 1])
            smoothed[k] = filtered_means[k] + gain @ (
                smoothed[k + 1] - predicted_means[k + 1]
            )
            smoothed_cov = (
                filtered_covs[k]
                + gain @ (smoothed_cov - predicted_covs[k + 1]) @ gain.T
            )

        out = [
            Point(float(smoothed[k, 0]), float(smoothed[k, 1]), points[k].t)
            for k in range(n)
        ]
        return trajectory.with_points(out)

    def smooth_many(self, trajectories) -> list[Trajectory]:
        return [self.smooth(t) for t in trajectories]
