"""Trajectory preprocessing: what production pipelines run before KAMEL.

Real GPS feeds are messier than "sparse but clean": they carry noise
spikes, stay points (parked vehicles emitting for minutes), and long
recording gaps that should split a file into separate trips. This package
provides the standard cleaning stages:

* :class:`KalmanSmoother` — constant-velocity Kalman filter +
  Rauch-Tung-Striebel smoother for GPS noise reduction;
* :func:`remove_outliers` — speed-gated removal of impossible jumps;
* :func:`detect_stay_points` / :func:`remove_stay_points` — classic
  stay-point detection (Li et al. 2008 style);
* :func:`split_by_time_gap` — cut a point stream into trips.

All stages consume and produce :class:`repro.geo.Trajectory`, so they
compose ahead of :meth:`repro.core.Kamel.fit` / ``impute``.
"""

from repro.preprocess.kalman import KalmanConfig, KalmanSmoother
from repro.preprocess.cleaning import (
    StayPoint,
    detect_stay_points,
    remove_outliers,
    remove_stay_points,
    split_by_time_gap,
)

__all__ = [
    "KalmanConfig",
    "KalmanSmoother",
    "StayPoint",
    "detect_stay_points",
    "remove_outliers",
    "remove_stay_points",
    "split_by_time_gap",
]
