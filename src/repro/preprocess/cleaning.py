"""Outlier removal, stay-point detection, and trip segmentation."""

from __future__ import annotations

from dataclasses import dataclass
from repro.geo import Point, Trajectory


def remove_outliers(
    trajectory: Trajectory, max_speed_mps: float = 50.0
) -> Trajectory:
    """Drop points only reachable at impossible speed from their predecessor.

    A single corrupted fix produces two impossible jumps (into and out of
    the bogus point); dropping the point repairs both. Points without
    timestamps are kept (speed cannot be judged).
    """
    if max_speed_mps <= 0:
        raise ValueError(f"max_speed_mps must be positive, got {max_speed_mps!r}")
    points = trajectory.points
    if len(points) < 2:
        return trajectory
    kept: list[Point] = [points[0]]
    for p in points[1:]:
        prev = kept[-1]
        if p.t is None or prev.t is None or p.t <= prev.t:
            kept.append(p)
            continue
        speed = prev.distance_to(p) / (p.t - prev.t)
        if speed <= max_speed_mps:
            kept.append(p)
    return trajectory.with_points(kept)


@dataclass(frozen=True)
class StayPoint:
    """A dwell: the vehicle stayed within a radius for a duration."""

    centroid: Point
    start_index: int
    end_index: int
    duration_s: float


def detect_stay_points(
    trajectory: Trajectory,
    radius_m: float = 50.0,
    min_duration_s: float = 120.0,
) -> list[StayPoint]:
    """Classic stay-point detection (Li et al., 2008).

    Scans forward: if every point within a window stays within
    ``radius_m`` of the window's anchor for at least ``min_duration_s``,
    the window is a stay point.
    """
    if radius_m <= 0 or min_duration_s <= 0:
        raise ValueError("radius_m and min_duration_s must be positive")
    points = trajectory.points
    stays: list[StayPoint] = []
    i = 0
    n = len(points)
    while i < n - 1:
        anchor = points[i]
        j = i + 1
        while j < n and anchor.distance_to(points[j]) <= radius_m:
            j += 1
        last = points[j - 1]
        if (
            anchor.t is not None
            and last.t is not None
            and last.t - anchor.t >= min_duration_s
        ):
            window = points[i:j]
            cx = sum(p.x for p in window) / len(window)
            cy = sum(p.y for p in window) / len(window)
            mid_t = (anchor.t + last.t) / 2.0
            stays.append(
                StayPoint(Point(cx, cy, mid_t), i, j - 1, last.t - anchor.t)
            )
            i = j
        else:
            i += 1
    return stays


def remove_stay_points(
    trajectory: Trajectory,
    radius_m: float = 50.0,
    min_duration_s: float = 120.0,
) -> Trajectory:
    """Collapse each detected stay window into its single centroid point."""
    stays = detect_stay_points(trajectory, radius_m, min_duration_s)
    if not stays:
        return trajectory
    points = trajectory.points
    out: list[Point] = []
    cursor = 0
    for stay in stays:
        out.extend(points[cursor : stay.start_index])
        out.append(stay.centroid)
        cursor = stay.end_index + 1
    out.extend(points[cursor:])
    return trajectory.with_points(out)


def split_by_time_gap(
    trajectory: Trajectory,
    max_gap_s: float = 300.0,
    min_points: int = 2,
) -> list[Trajectory]:
    """Cut the point stream wherever recording paused longer than the gap.

    A device that goes silent for minutes has usually ended one trip and
    begun another; feeding the concatenation to an imputer would invent a
    road between the two parking spots.
    """
    if max_gap_s <= 0:
        raise ValueError(f"max_gap_s must be positive, got {max_gap_s!r}")
    if min_points < 1:
        raise ValueError(f"min_points must be >= 1, got {min_points!r}")
    points = trajectory.points
    if len(points) < 2:
        return [trajectory] if len(points) >= min_points else []
    pieces: list[list[Point]] = [[points[0]]]
    for prev, cur in trajectory.segments():
        if prev.t is not None and cur.t is not None and cur.t - prev.t > max_gap_s:
            pieces.append([])
        pieces[-1].append(cur)
    out = []
    for k, piece in enumerate(pieces):
        if len(piece) >= min_points:
            suffix = f"/{k}" if len(pieces) > 1 else ""
            out.append(Trajectory(f"{trajectory.traj_id}{suffix}", piece))
    return out
