"""Planar points, distances, bearings, and the lat/lon projection."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

EARTH_RADIUS_M = 6_371_008.8
"""Mean earth radius in meters (IUGG value), used by geodesic helpers."""


@dataclass(frozen=True, slots=True)
class Point:
    """A timestamped point in the local planar frame.

    ``x`` and ``y`` are meters in an arbitrary but consistent local frame
    (east and north of some origin). ``t`` is a POSIX-style timestamp in
    seconds; ``None`` for purely spatial points (e.g. cell centroids).
    """

    x: float
    y: float
    t: Optional[float] = None

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in meters."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def bearing_to(self, other: "Point") -> float:
        """Direction angle from this point to ``other``.

        Measured in radians counter-clockwise from the positive x axis
        (standard math convention), in ``[-pi, pi]``.
        """
        return math.atan2(other.y - self.y, other.x - self.x)

    def offset(self, dx: float, dy: float) -> "Point":
        """Return a copy translated by ``(dx, dy)`` meters."""
        return Point(self.x + dx, self.y + dy, self.t)

    def with_time(self, t: Optional[float]) -> "Point":
        """Return a copy with the timestamp replaced by ``t``."""
        return Point(self.x, self.y, t)

    def midpoint(self, other: "Point") -> "Point":
        """The spatial midpoint; the timestamp is averaged when both exist."""
        t: Optional[float] = None
        if self.t is not None and other.t is not None:
            t = (self.t + other.t) / 2.0
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0, t)


def interpolate(a: Point, b: Point, fraction: float) -> Point:
    """Linearly interpolate between ``a`` and ``b``.

    ``fraction`` = 0 yields ``a``, 1 yields ``b``; values outside ``[0, 1]``
    extrapolate. Timestamps are interpolated when both endpoints carry one.
    """
    t: Optional[float] = None
    if a.t is not None and b.t is not None:
        t = a.t + (b.t - a.t) * fraction
    return Point(a.x + (b.x - a.x) * fraction, a.y + (b.y - a.y) * fraction, t)


def bearing(a: Point, b: Point) -> float:
    """Direction angle from ``a`` to ``b`` in radians (math convention)."""
    return a.bearing_to(b)


def normalize_angle(angle: float) -> float:
    """Wrap ``angle`` (radians) into ``(-pi, pi]``."""
    wrapped = math.fmod(angle, 2.0 * math.pi)
    if wrapped <= -math.pi:
        wrapped += 2.0 * math.pi
    elif wrapped > math.pi:
        wrapped -= 2.0 * math.pi
    return wrapped


def angle_difference(a: float, b: float) -> float:
    """Smallest absolute difference between two angles, in ``[0, pi]``."""
    return abs(normalize_angle(a - b))


def haversine_m(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance in meters between two WGS84 coordinates."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlam = math.radians(lon2 - lon1)
    h = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(h)))


class LocalProjection:
    """Equirectangular projection around a reference coordinate.

    Adequate for the city-scale extents this library targets (tens of
    kilometers), where the distortion of the equirectangular approximation
    is far below GPS noise. Maps (lat, lon) to planar (x, y) meters with
    the reference coordinate at the origin, x pointing east and y north.
    """

    def __init__(self, ref_lat: float, ref_lon: float) -> None:
        if not -90.0 <= ref_lat <= 90.0:
            raise ValueError(f"reference latitude out of range: {ref_lat!r}")
        if not -180.0 <= ref_lon <= 180.0:
            raise ValueError(f"reference longitude out of range: {ref_lon!r}")
        self.ref_lat = ref_lat
        self.ref_lon = ref_lon
        self._meters_per_deg_lat = math.pi * EARTH_RADIUS_M / 180.0
        self._meters_per_deg_lon = self._meters_per_deg_lat * math.cos(math.radians(ref_lat))

    def to_local(self, lat: float, lon: float, t: Optional[float] = None) -> Point:
        """Project a WGS84 coordinate into the local planar frame."""
        x = (lon - self.ref_lon) * self._meters_per_deg_lon
        y = (lat - self.ref_lat) * self._meters_per_deg_lat
        return Point(x, y, t)

    def to_latlon(self, point: Point) -> tuple[float, float]:
        """Inverse-project a local point back to (lat, lon)."""
        lat = self.ref_lat + point.y / self._meters_per_deg_lat
        lon = self.ref_lon + point.x / self._meters_per_deg_lon
        return lat, lon

    def __repr__(self) -> str:
        return f"LocalProjection(ref_lat={self.ref_lat}, ref_lon={self.ref_lon})"
