"""Convenience adapters for feeding real-world lat/lon data into KAMEL.

The whole library works in a local planar frame in meters; these helpers
project WGS84 GPS records into that frame (and imputed results back), so a
user with a CSV of ``(lat, lon, timestamp)`` rows can use the system
without touching the projection machinery.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.errors import EmptyInputError
from repro.geo.point import LocalProjection
from repro.geo.trajectory import Trajectory

LatLonRecord = tuple[float, float, Optional[float]]
"""(latitude, longitude, timestamp-or-None)."""


def projection_for(records: Iterable[LatLonRecord]) -> LocalProjection:
    """A local projection centered on the records' mean coordinate."""
    lats, lons = [], []
    for lat, lon, _t in records:
        lats.append(lat)
        lons.append(lon)
    if not lats:
        raise EmptyInputError("cannot build a projection from zero records")
    return LocalProjection(sum(lats) / len(lats), sum(lons) / len(lons))


def trajectory_from_latlon(
    traj_id: str,
    records: Sequence[LatLonRecord],
    projection: LocalProjection,
) -> Trajectory:
    """Project WGS84 records into a planar trajectory."""
    return Trajectory(
        traj_id, [projection.to_local(lat, lon, t) for lat, lon, t in records]
    )


def trajectory_to_latlon(
    trajectory: Trajectory, projection: LocalProjection
) -> list[LatLonRecord]:
    """Inverse-project a (possibly imputed) trajectory back to WGS84."""
    out: list[LatLonRecord] = []
    for p in trajectory.points:
        lat, lon = projection.to_latlon(p)
        out.append((lat, lon, p.t))
    return out
