"""Trajectories: ordered timestamped point sequences and their operations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import EmptyInputError
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point, interpolate


@dataclass(frozen=True)
class Trajectory:
    """An ordered sequence of GPS points belonging to one trip.

    Points are expected (but not required) to be sorted by timestamp;
    :meth:`is_time_ordered` checks, and the :mod:`repro.roadnet` simulator
    always produces ordered trajectories.
    """

    traj_id: str
    points: tuple[Point, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        # Accept any sequence at construction time but store a tuple so the
        # trajectory is hashable and safely shareable.
        if not isinstance(self.points, tuple):
            object.__setattr__(self, "points", tuple(self.points))

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[Point]:
        return iter(self.points)

    def __getitem__(self, index: int) -> Point:
        return self.points[index]

    @property
    def is_empty(self) -> bool:
        return not self.points

    def is_time_ordered(self) -> bool:
        """Whether timestamps are present and non-decreasing."""
        stamps = [p.t for p in self.points]
        if any(t is None for t in stamps):
            return False
        return all(a <= b for a, b in zip(stamps, stamps[1:]))  # type: ignore[operator]

    @property
    def duration(self) -> float:
        """Elapsed seconds between first and last point (0 if untimed)."""
        if len(self.points) < 2:
            return 0.0
        first, last = self.points[0].t, self.points[-1].t
        if first is None or last is None:
            return 0.0
        return last - first

    @property
    def length(self) -> float:
        """Total polyline length in meters."""
        return sum(a.distance_to(b) for a, b in self.segments())

    def bbox(self) -> BoundingBox:
        """Minimum bounding rectangle of the trajectory."""
        if self.is_empty:
            raise EmptyInputError(f"trajectory {self.traj_id!r} has no points")
        return BoundingBox.from_points(self.points)

    def segments(self) -> Iterator[tuple[Point, Point]]:
        """Iterate over consecutive point pairs."""
        return zip(self.points, self.points[1:])

    def max_gap(self) -> float:
        """Largest distance between consecutive points (0 for < 2 points)."""
        return max((a.distance_to(b) for a, b in self.segments()), default=0.0)

    def with_points(self, points: Sequence[Point]) -> "Trajectory":
        """A copy of this trajectory with ``points`` substituted."""
        return Trajectory(self.traj_id, tuple(points))

    def sparsify(self, sparse_distance: float) -> "Trajectory":
        """Impose gaps the way the paper's evaluation does (Section 8).

        Keep the first point, drop every subsequent point within
        ``sparse_distance`` meters (measured along the trajectory) of the
        last kept point, keep the next one, and so on. The final point is
        always kept so the trajectory endpoints are preserved.
        """
        if sparse_distance <= 0:
            raise ValueError(f"sparse_distance must be positive, got {sparse_distance!r}")
        if len(self.points) <= 2:
            return self
        kept = [self.points[0]]
        travelled = 0.0
        for prev, cur in self.segments():
            travelled += prev.distance_to(cur)
            if travelled >= sparse_distance:
                kept.append(cur)
                travelled = 0.0
        if kept[-1] is not self.points[-1]:
            kept.append(self.points[-1])
        return self.with_points(kept)

    def discretize(self, spacing: float) -> list[Point]:
        """Place points every ``spacing`` meters along the polyline.

        This is the discretization the paper's recall/precision metrics use:
        the returned list starts at the first point and walks the polyline,
        emitting one point per ``spacing`` meters of arc length, ending with
        the final point. Timestamps are linearly interpolated.
        """
        if spacing <= 0:
            raise ValueError(f"spacing must be positive, got {spacing!r}")
        if len(self.points) < 2:
            return list(self.points)
        out = [self.points[0]]
        residual = spacing
        for a, b in self.segments():
            seg_len = a.distance_to(b)
            if seg_len == 0.0:
                continue
            offset = residual
            while offset <= seg_len:
                out.append(interpolate(a, b, offset / seg_len))
                offset += spacing
            residual = offset - seg_len
        if out[-1].distance_to(self.points[-1]) > 1e-9:
            out.append(self.points[-1])
        return out

    def resample_time(self, interval_s: float) -> "Trajectory":
        """Downsample to roughly one point every ``interval_s`` seconds.

        Keeps the first point, then every point at least ``interval_s``
        after the last kept one, plus the final point. Used to build the
        paper's "sampling rate" training-density variants (Fig. 12-V).
        """
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s!r}")
        if len(self.points) <= 2 or not self.is_time_ordered():
            return self
        kept = [self.points[0]]
        for p in self.points[1:-1]:
            assert p.t is not None and kept[-1].t is not None
            if p.t - kept[-1].t >= interval_s:
                kept.append(p)
        kept.append(self.points[-1])
        return self.with_points(kept)

    def split(self, max_points: int) -> list["Trajectory"]:
        """Split into chunks of at most ``max_points`` points.

        Consecutive chunks share their boundary point so no segment is lost.
        """
        if max_points < 2:
            raise ValueError(f"max_points must be at least 2, got {max_points!r}")
        if len(self.points) <= max_points:
            return [self]
        chunks: list[Trajectory] = []
        start = 0
        part = 0
        while start < len(self.points) - 1:
            end = min(start + max_points, len(self.points))
            chunks.append(
                Trajectory(f"{self.traj_id}/{part}", self.points[start:end])
            )
            part += 1
            start = end - 1
        return chunks
