"""Axis-aligned bounding boxes in the local planar frame."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import EmptyInputError
from repro.geo.point import Point


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(f"degenerate bounding box: {self!r}")

    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "BoundingBox":
        """The minimum bounding rectangle of ``points``."""
        xs: list[float] = []
        ys: list[float] = []
        for p in points:
            xs.append(p.x)
            ys.append(p.y)
        if not xs:
            raise EmptyInputError("cannot build a bounding box from zero points")
        return cls(min(xs), min(ys), max(xs), max(ys))

    @classmethod
    def union_all(cls, boxes: Sequence["BoundingBox"]) -> "BoundingBox":
        """The smallest box enclosing every box in ``boxes``."""
        if not boxes:
            raise EmptyInputError("cannot union zero bounding boxes")
        return cls(
            min(b.min_x for b in boxes),
            min(b.min_y for b in boxes),
            max(b.max_x for b in boxes),
            max(b.max_y for b in boxes),
        )

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains_point(self, p: Point) -> bool:
        """Whether ``p`` lies inside this box (boundary inclusive)."""
        return self.min_x <= p.x <= self.max_x and self.min_y <= p.y <= self.max_y

    def contains_box(self, other: "BoundingBox") -> bool:
        """Whether ``other`` is fully enclosed (boundary inclusive)."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    def intersects(self, other: "BoundingBox") -> bool:
        """Whether the two boxes overlap (touching edges count)."""
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def expand(self, margin: float) -> "BoundingBox":
        """Return a copy grown by ``margin`` meters on every side."""
        return BoundingBox(
            self.min_x - margin, self.min_y - margin, self.max_x + margin, self.max_y + margin
        )

    def union(self, other: "BoundingBox") -> "BoundingBox":
        """The smallest box enclosing both boxes."""
        return BoundingBox.union_all([self, other])
