"""Deterministic hierarchical profiling on top of the span-tracing hooks.

:class:`Profiler` wraps any block of pipeline work — a ``Kamel.impute``
batch, a whole ``kamel compare`` run — and turns the span trees plus the
metrics-registry delta of that window into a :class:`Profile`:

* **per-stage costs** — the paper's pipeline decomposition (tokenize →
  partition-lookup → beam-score → constraints → detokenize) with wall
  and thread-CPU *self* time, span counts, and stage work units taken
  from the exact counters (model calls, candidates, lookups, tokens);
* a **cost ledger** that attributes masked-model invocations to stages
  from span attributes and reconciles them against the
  ``repro.imputation.model_calls_total`` counter, so unattributed work
  is visible as a coverage shortfall instead of silently missing;
* ``tracemalloc``-based **peak memory** for the window;
* **collapsed-stack** output (``a;b;c <value>`` lines, the format every
  flamegraph tool eats) and, via :mod:`repro.viz.flame`, a
  dependency-free SVG flame view.

Aggregation is deterministic: stages, stacks, and metric deltas are
sorted, and counts come from the registry's exact counters — only the
wall/CPU columns vary run to run.

Usage::

    from repro.obs.profile import Profiler

    with Profiler() as prof:
        system.impute_batch(sparse)
    print(prof.profile.render_table())
    open("flame.svg", "w").write(prof.profile.render_flame())
"""

from __future__ import annotations

import tracemalloc
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.tracing import Span, get_tracer

__all__ = [
    "PIPELINE_STAGES",
    "Profile",
    "Profiler",
    "StageCost",
    "collapsed_stacks",
    "stage_for_span",
]


PIPELINE_STAGES: tuple[str, ...] = (
    "tokenize",
    "partition-lookup",
    "beam-score",
    "constraints",
    "detokenize",
    "other",
)
"""The ledger's stage axis, in pipeline order (``other`` collects spans
outside the imputation path — harness, fit, streaming bookkeeping)."""


_SPAN_STAGE: dict[str, str] = {
    "tokenize": "tokenize",
    "repository.lookup": "partition-lookup",
    "repository.build_model": "partition-lookup",
    "impute.segment": "beam-score",
    "model.predict": "beam-score",
    "bert.forward": "beam-score",
    "constraints.filter": "constraints",
    "detokenize": "detokenize",
}

_STAGE_WORK: dict[str, tuple[str, str]] = {
    "partition-lookup": ("repro.partitioning.lookup_total", "lookups"),
    "beam-score": ("repro.imputation.model_calls_total", "model calls"),
    "constraints": ("repro.constraints.candidates_in_total", "candidates"),
    "detokenize": ("repro.detokenization.tokens_total", "tokens"),
}

_MODEL_CALLS_METRIC = "repro.imputation.model_calls_total"


def stage_for_span(name: str) -> str:
    """The ledger stage a span name belongs to (``other`` if unmapped)."""
    return _SPAN_STAGE.get(name, "other")


@dataclass
class StageCost:
    """One row of the cost ledger."""

    stage: str
    spans: int = 0
    wall_s: float = 0.0
    cpu_s: float = 0.0
    model_calls: int = 0
    work: float = 0.0
    work_unit: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "stage": self.stage,
            "spans": self.spans,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "model_calls": self.model_calls,
            "work": self.work,
            "work_unit": self.work_unit,
        }


def _scalar_values(snapshot: dict[str, dict]) -> dict[str, float]:
    """Monotonic scalars of a registry snapshot, histograms flattened to
    ``<name>.count`` / ``<name>.sum`` (gauges are excluded: deltas of a
    value that can go down mean nothing)."""
    out: dict[str, float] = {}
    for name, data in snapshot.items():
        kind = data.get("type")
        if kind == "counter":
            out[name] = float(data["value"])
        elif kind == "histogram":
            out[f"{name}.count"] = float(data.get("count", 0))
            out[f"{name}.sum"] = float(data.get("sum", 0.0))
    return out


def collapsed_stacks(roots: list[Span], value: str = "wall") -> str:
    """Span trees as collapsed-stack lines (``root;child;leaf <count>``).

    ``value`` selects the sample unit: ``wall`` emits self-time in
    microseconds, ``calls`` emits span counts. Identical stacks merge and
    lines are sorted, so equal trees always render equal text — what the
    determinism tests (and diffing two profiles) rely on.
    """
    if value not in ("wall", "calls"):
        raise ValueError(f"value must be 'wall' or 'calls', got {value!r}")
    totals: dict[tuple[str, ...], float] = {}

    def visit(node: Span, path: tuple[str, ...]) -> None:
        path = path + (node.name,)
        if value == "calls":
            amount = 1.0
        else:
            amount = (node.self_s or 0.0) * 1e6
        totals[path] = totals.get(path, 0.0) + amount
        for child in node.children:
            visit(child, path)

    for root in roots:
        visit(root, ())
    lines = [
        f"{';'.join(path)} {int(round(total))}"
        for path, total in sorted(totals.items())
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def _table(headers: list[str], rows: list[list[str]]) -> str:
    # Local renderer: repro.eval imports repro.core which imports this
    # package, so reaching for repro.eval.report here would be circular.
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    def fmt(cells: list[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    line = "  ".join("-" * w for w in widths)
    return "\n".join([fmt(headers), line] + [fmt(r) for r in rows])


@dataclass
class Profile:
    """What one profiled window cost, by pipeline stage."""

    wall_s: float
    cpu_s: float
    peak_memory_bytes: Optional[int]
    stages: list[StageCost]
    metrics_delta: dict[str, float]
    roots: list[Span] = field(default_factory=list, repr=False)

    # -- ledger reconciliation ------------------------------------------------

    @property
    def attributed_model_calls(self) -> int:
        """Model calls the ledger pinned to a stage (from span attributes)."""
        return sum(s.model_calls for s in self.stages)

    @property
    def reported_model_calls(self) -> float:
        """Model calls the exact ``repro.imputation`` counter reported."""
        return self.metrics_delta.get(_MODEL_CALLS_METRIC, 0.0)

    @property
    def model_call_coverage(self) -> float:
        """Attributed / reported model calls (1.0 when nothing ran)."""
        reported = self.reported_model_calls
        if reported <= 0:
            return 1.0
        return self.attributed_model_calls / reported

    # -- renderings -----------------------------------------------------------

    def collapsed(self, value: str = "wall") -> str:
        """Collapsed-stack lines for external flamegraph tooling."""
        return collapsed_stacks(self.roots, value=value)

    def render_flame(self, width_px: int = 1000) -> str:
        """The dependency-free SVG flame view (see :mod:`repro.viz.flame`)."""
        from repro.viz.flame import render_flame_svg

        return render_flame_svg(self.collapsed(), width_px=width_px)

    def render_table(self) -> str:
        """The human-readable profile: stage ledger + reconciliation."""
        header = (
            f"profile: {self.wall_s:.3f} s wall, {self.cpu_s:.3f} s cpu"
        )
        if self.peak_memory_bytes is not None:
            header += f", peak memory {self.peak_memory_bytes / 1e6:.1f} MB"
        rows = []
        for s in self.stages:
            work = f"{s.work:.6g} {s.work_unit}" if s.work_unit else "-"
            rows.append([
                s.stage,
                f"{s.wall_s:.4f}",
                f"{s.cpu_s:.4f}",
                str(s.spans),
                str(s.model_calls),
                work,
            ])
        table = _table(
            ["stage", "wall_s", "cpu_s", "spans", "model_calls", "work"], rows
        )
        reported = self.reported_model_calls
        ledger = (
            f"cost ledger: {self.attributed_model_calls}/{reported:.0f} "
            f"model calls attributed ({self.model_call_coverage:.1%})"
        )
        return "\n".join([header, "", table, "", ledger])

    def to_dict(self) -> dict[str, Any]:
        return {
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "peak_memory_bytes": self.peak_memory_bytes,
            "stages": [s.to_dict() for s in self.stages],
            "model_calls": {
                "attributed": self.attributed_model_calls,
                "reported": self.reported_model_calls,
                "coverage": self.model_call_coverage,
            },
            "metrics_delta": dict(sorted(self.metrics_delta.items())),
        }


def build_profile(
    roots: list[Span],
    metrics_delta: dict[str, float],
    wall_s: float,
    cpu_s: float,
    peak_memory_bytes: Optional[int] = None,
) -> Profile:
    """Aggregate span trees + a registry delta into a :class:`Profile`.

    Wall/CPU per stage use span *self* time (duration minus children), so
    a ``model.predict`` span nested in ``impute.segment`` is counted once
    even though both map to the beam-score stage.
    """
    stages = {name: StageCost(name) for name in PIPELINE_STAGES}
    for root in roots:
        for node in root.walk():
            cost = stages[stage_for_span(node.name)]
            cost.spans += 1
            cost.wall_s += node.self_s or 0.0
            if node.cpu_s is not None:
                children_cpu = sum(c.cpu_s or 0.0 for c in node.children)
                cost.cpu_s += max(0.0, node.cpu_s - children_cpu)
            if node.name == "impute.segment":
                cost.model_calls += int(node.attributes.get("model_calls", 0))
    for stage, (metric, unit) in _STAGE_WORK.items():
        stages[stage].work = metrics_delta.get(metric, 0.0)
        stages[stage].work_unit = unit
    stages["tokenize"].work = float(stages["tokenize"].spans)
    stages["tokenize"].work_unit = "segments"
    return Profile(
        wall_s=wall_s,
        cpu_s=cpu_s,
        peak_memory_bytes=peak_memory_bytes,
        stages=[stages[name] for name in PIPELINE_STAGES],
        metrics_delta=metrics_delta,
        roots=roots,
    )


class Profiler:
    """Profile a block: spans + CPU capture + registry delta + peak memory.

    Entering the context enables tracing (with CPU capture and an
    uncapped root buffer), clears previously collected spans, snapshots
    the registry, and starts ``tracemalloc``; exiting restores every
    tracer setting it touched and materializes :attr:`profile`. The
    profiled code itself needs no changes — it is the same instrumented
    pipeline the always-on metrics ride.

    ``capture_memory=False`` skips tracemalloc (it roughly doubles
    allocation cost, which skews the wall-time columns of allocation-
    heavy stages).
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        capture_memory: bool = True,
    ) -> None:
        self._registry = registry
        self.capture_memory = capture_memory
        self.profile: Optional[Profile] = None
        self._before: dict[str, float] = {}
        self._saved: tuple[bool, bool, int] = (False, False, 0)
        self._started_tracemalloc = False
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def __enter__(self) -> "Profiler":
        import time

        registry = self._registry if self._registry is not None else get_registry()
        self._registry = registry
        self._before = _scalar_values(registry.snapshot())
        tracer = get_tracer()
        self._saved = (tracer.enabled, tracer.capture_cpu, tracer.max_roots)
        tracer.clear()
        tracer.capture_cpu = True
        tracer.max_roots = 1_000_000
        tracer.enabled = True
        if self.capture_memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        import time

        wall_s = time.perf_counter() - self._wall0
        cpu_s = time.process_time() - self._cpu0
        peak: Optional[int] = None
        if self.capture_memory and tracemalloc.is_tracing():
            _, peak = tracemalloc.get_traced_memory()
            if self._started_tracemalloc:
                tracemalloc.stop()
        tracer = get_tracer()
        roots = tracer.finished()
        tracer.enabled, tracer.capture_cpu, tracer.max_roots = self._saved
        assert self._registry is not None
        after = _scalar_values(self._registry.snapshot())
        delta = {
            name: value - self._before.get(name, 0.0)
            for name, value in after.items()
            if value - self._before.get(name, 0.0) != 0.0
        }
        self.profile = build_profile(roots, delta, wall_s, cpu_s, peak)
        return False
