"""Structured logging for the ``repro`` logger hierarchy.

Every module logs under ``repro.<area>`` (``repro.core.kamel``,
``repro.mlm.bert``, ...) via :func:`get_logger`. The library itself never
configures handlers — importing ``repro`` attaches only a
:class:`logging.NullHandler`, per library convention — while entry points
(the CLI, benchmarks, notebooks) call :func:`configure_logging` once to
get structured output in either ``key=value`` or JSON-lines form.

Structured fields ride on the standard API::

    log = get_logger("core.kamel")
    log.warning("segment fallback", extra={"data": {"segment": 3, "reason": "no_model"}})

The formatters render ``record.data`` as trailing ``key=value`` pairs or
as JSON object members; plain third-party handlers just ignore it.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO, Any, Mapping, Optional, Union

from repro.obs.tracing import current_trace_id

__all__ = [
    "ROOT_LOGGER_NAME",
    "KeyValueFormatter",
    "JsonLinesFormatter",
    "TraceIdFilter",
    "get_logger",
    "configure_logging",
]

ROOT_LOGGER_NAME = "repro"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger in the ``repro`` hierarchy (``repro`` itself for ``None``)."""
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name.startswith(ROOT_LOGGER_NAME + ".") or name == ROOT_LOGGER_NAME:
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def _record_data(record: logging.LogRecord) -> Mapping[str, Any]:
    data = getattr(record, "data", None)
    return data if isinstance(data, Mapping) else {}


class TraceIdFilter(logging.Filter):
    """Stamp each record with the emitting thread's active trace id.

    Attached by :func:`configure_logging`, so every ``repro.*`` record —
    most importantly the segment-fallback WARNINGs — carries the request
    id of the ``trace_scope`` it was emitted under. Runs at emit time on
    the logging thread, which is what makes the thread-local correct even
    when a handler formats records later.
    """

    def filter(self, record: logging.LogRecord) -> bool:
        if getattr(record, "trace_id", None) is None:
            record.trace_id = current_trace_id()
        return True


def _record_trace_id(record: logging.LogRecord) -> Optional[str]:
    """The record's stamped trace id, falling back to the live thread-local
    (covers records formatted without passing through TraceIdFilter)."""
    stamped = getattr(record, "trace_id", None)
    return stamped if stamped is not None else current_trace_id()


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    text = str(value)
    if " " in text or "=" in text or '"' in text:
        return json.dumps(text)
    return text


class KeyValueFormatter(logging.Formatter):
    """``ts=... level=... logger=... msg="..." key=value ...`` lines."""

    def format(self, record: logging.LogRecord) -> str:
        parts = [
            f"ts={self.formatTime(record, datefmt='%Y-%m-%dT%H:%M:%S')}",
            f"level={record.levelname}",
            f"logger={record.name}",
            f"msg={json.dumps(record.getMessage())}",
        ]
        trace_id = _record_trace_id(record)
        if trace_id is not None:
            parts.append(f"trace_id={trace_id}")
        parts.extend(f"{k}={_format_value(v)}" for k, v in _record_data(record).items())
        if record.exc_info:
            parts.append(f"exc={json.dumps(self.formatException(record.exc_info))}")
        return " ".join(parts)


class JsonLinesFormatter(logging.Formatter):
    """One JSON object per log record."""

    def format(self, record: logging.LogRecord) -> str:
        out: dict[str, Any] = {
            "ts": record.created,
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        trace_id = _record_trace_id(record)
        if trace_id is not None:
            out["trace_id"] = trace_id
        data = _record_data(record)
        if data:
            out["data"] = dict(data)
        if record.exc_info:
            out["exc"] = self.formatException(record.exc_info)
        return json.dumps(out, default=str)


def configure_logging(
    level: Union[int, str] = "INFO",
    fmt: str = "kv",
    stream: Optional[IO[str]] = None,
    force: bool = False,
) -> logging.Logger:
    """Attach one structured handler to the ``repro`` root logger.

    Idempotent unless ``force``: a second call only adjusts the level, so
    libraries embedding the CLI cannot stack duplicate handlers. ``fmt``
    is ``"kv"`` (key=value, human-greppable) or ``"json"`` (JSON lines).
    """
    if fmt not in ("kv", "json"):
        raise ValueError(f"fmt must be 'kv' or 'json', got {fmt!r}")
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
        level = resolved
    root = logging.getLogger(ROOT_LOGGER_NAME)
    root.setLevel(level)

    existing = [
        h for h in root.handlers if getattr(h, "_repro_structured", False)
    ]
    if existing and not force:
        for handler in existing:
            handler.setLevel(level)
        return root
    for handler in existing:
        root.removeHandler(handler)

    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setLevel(level)
    handler.setFormatter(KeyValueFormatter() if fmt == "kv" else JsonLinesFormatter())
    handler.addFilter(TraceIdFilter())
    handler._repro_structured = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.propagate = False
    return root


# Library default: silent unless an entry point configures logging.
logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())
