"""Tail-latency attribution: per-request stages and a slow-request recorder.

A p99 you cannot decompose is a number, not a diagnosis. This module
turns one served request's telemetry — the envelope timestamps the
serving pool stamps at submit, the worker's processing clock, and the
span tree the worker ships back — into a fixed **stage breakdown**:

* ``queue_wait``     — submit to the worker dequeuing the task;
* ``model_load``     — parsing models out of the store on LRU misses
  (the ``serve.model_load`` spans);
* ``inference``      — the imputation work proper (processing time not
  attributed to model loading or detokenization);
* ``detokenize``     — mapping imputed tokens back to coordinates (the
  ``detokenize`` spans);
* ``result_transit`` — processing done to the pool accepting the result
  (serialization, the result pipe, and the pool's pump backlog).

The five stages partition the submit-to-result interval: ``queue_wait``
and ``result_transit`` come from epoch clocks shared across processes,
and the middle three split the worker's measured processing seconds — so
their sum tracks the pool's measured wall latency to within clock jitter
(the acceptance bound is 10%; in practice it is far tighter).
``model_load`` and ``detokenize`` need the worker span tree (tracing
enabled); with tracing off they read 0 and the whole processing interval
lands in ``inference``.

:class:`FlightRecorder` is the bounded memory of the slowest-N requests:
full (clock-aligned) span trees, routing context, and the stage
breakdown, plus per-stage worst-case **exemplar** trace ids — the
request you would pull up first. Exposed over HTTP as ``/slow`` (both
:class:`~repro.obs.server.ObservabilityServer` and the pool's
:class:`~repro.serve.aggregate.PoolMetricsServer`) and on the command
line as ``kamel tail``.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Span

__all__ = [
    "STAGES",
    "FlightRecord",
    "FlightRecorder",
    "get_flight_recorder",
    "set_flight_recorder",
    "stage_breakdown",
    "stage_metric",
]


STAGES: tuple[str, ...] = (
    "queue_wait",
    "model_load",
    "inference",
    "detokenize",
    "result_transit",
)
"""The fixed stage vocabulary, in request order."""

_MODEL_LOAD_SPAN = "serve.model_load"
_DETOKENIZE_SPAN = "detokenize"

DEFAULT_CAPACITY = 32
"""Slowest requests the recorder retains unless configured otherwise."""


def stage_metric(stage: str) -> str:
    """The catalog histogram name for one stage."""
    return f"repro.serve.stage.{stage}_seconds"


def _span_seconds(roots: Iterable[Span], name: str) -> float:
    total = 0.0
    for root in roots:
        for span_obj in root.find(name):
            total += span_obj.duration_s or 0.0
    return total


def stage_breakdown(
    process_s: float,
    queue_wait_s: float,
    transit_s: float,
    roots: Sequence[Span] = (),
) -> dict[str, float]:
    """Split one request's latency into the five serving stages.

    ``process_s`` is the worker's measured processing wall time;
    ``roots`` the worker's span trees for the request (may be empty —
    tracing off). All values clamp at zero: epoch-clock skew between
    processes must never produce a negative stage.
    """
    model_load = _span_seconds(roots, _MODEL_LOAD_SPAN)
    detokenize = _span_seconds(roots, _DETOKENIZE_SPAN)
    # Spans can very slightly overshoot the stopwatch interval that
    # contains them (each span exit reads the clock later than the
    # enclosing stopwatch's); clamp so the three parts never exceed the
    # whole they partition.
    model_load = min(model_load, max(0.0, process_s))
    detokenize = min(detokenize, max(0.0, process_s - model_load))
    return {
        "queue_wait": max(0.0, queue_wait_s),
        "model_load": model_load,
        "inference": max(0.0, process_s - model_load - detokenize),
        "detokenize": detokenize,
        "result_transit": max(0.0, transit_s),
    }


@dataclass
class FlightRecord:
    """Everything retained about one completed request."""

    trace_id: str
    traj_id: str
    latency_s: float
    stages: dict[str, float]
    shard: Optional[int] = None
    worker_id: Optional[int] = None
    replayed: bool = False
    error: Optional[str] = None
    context: dict = field(default_factory=dict)
    """Free-form routing context (strategy name, journal state, …)."""
    roots: list[Span] = field(default_factory=list)
    """The request's span trees, already aligned to the recording
    process's timebase."""

    @property
    def dominant_stage(self) -> str:
        """The stage that cost this request the most."""
        return max(STAGES, key=lambda s: self.stages.get(s, 0.0))

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "traj_id": self.traj_id,
            "latency_s": self.latency_s,
            "stages": dict(self.stages),
            "dominant_stage": self.dominant_stage,
            "shard": self.shard,
            "worker_id": self.worker_id,
            "replayed": self.replayed,
            "error": self.error,
            "context": dict(self.context),
            "spans": [root.to_dict() for root in self.roots],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FlightRecord":
        return cls(
            trace_id=data["trace_id"],
            traj_id=data.get("traj_id", ""),
            latency_s=float(data.get("latency_s") or 0.0),
            stages={k: float(v) for k, v in (data.get("stages") or {}).items()},
            shard=data.get("shard"),
            worker_id=data.get("worker_id"),
            replayed=bool(data.get("replayed")),
            error=data.get("error"),
            context=dict(data.get("context") or {}),
            roots=[Span.from_dict(d) for d in data.get("spans") or []],
        )


class FlightRecorder:
    """A bounded record of the slowest-N requests plus stage telemetry.

    ``record()`` feeds three sinks at once:

    * the per-stage latency histograms in ``registry`` (p50/p99 for
      ``/metrics`` and ``kamel tail``), when a registry is attached;
    * per-stage worst-case exemplars — the trace id of the single most
      expensive observation of each stage so far;
    * a min-heap of the slowest ``capacity`` requests by end-to-end
      latency, span trees and routing context included.

    Thread-safe: the pool records from its drain loop while the HTTP
    handler thread renders ``/slow``.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"flight recorder capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        self._registry = registry
        self._lock = threading.Lock()
        self._heap: list[tuple[float, int, FlightRecord]] = []
        self._seq = 0
        self.recorded_total = 0
        self._exemplars: dict[str, tuple[float, str]] = {}

    def record(self, record: FlightRecord) -> None:
        from repro.obs import instrument as obs

        with self._lock:
            self.recorded_total += 1
            self._seq += 1
            for stage in STAGES:
                value = record.stages.get(stage, 0.0)
                if self._registry is not None:
                    obs.histogram(stage_metric(stage), self._registry).observe(value)
                worst = self._exemplars.get(stage)
                if worst is None or value > worst[0]:
                    self._exemplars[stage] = (value, record.trace_id)
            entry = (record.latency_s, self._seq, record)
            if len(self._heap) < self.capacity:
                heapq.heappush(self._heap, entry)
            elif record.latency_s > self._heap[0][0]:
                heapq.heapreplace(self._heap, entry)

    def slowest(self) -> list[FlightRecord]:
        """Retained records, slowest first."""
        with self._lock:
            entries = sorted(self._heap, reverse=True)
        return [record for _, _, record in entries]

    def exemplars(self) -> dict[str, dict]:
        """Per-stage worst observation: ``{stage: {seconds, trace_id}}``."""
        with self._lock:
            return {
                stage: {"seconds": value, "trace_id": trace_id}
                for stage, (value, trace_id) in sorted(self._exemplars.items())
            }

    def stage_summary(self) -> dict[str, dict]:
        """Count/mean/p50/p99/max per stage, from the attached registry's
        histograms, with the worst-case exemplar trace id folded in."""
        exemplars = self.exemplars()
        out: dict[str, dict] = {}
        for stage in STAGES:
            row: dict = {"count": 0, "mean": 0.0, "p50": None, "p99": None, "max": None}
            if self._registry is not None:
                metric = self._registry.get(stage_metric(stage))
                if metric is not None and metric.count:
                    row = {
                        "count": metric.count,
                        "mean": metric.mean,
                        "p50": metric.quantile(0.5),
                        "p99": metric.quantile(0.99),
                        "max": metric.max,
                    }
            exemplar = exemplars.get(stage)
            if exemplar is not None:
                row["exemplar_trace_id"] = exemplar["trace_id"]
                row["exemplar_seconds"] = exemplar["seconds"]
            out[stage] = row
        return out

    def to_dict(self) -> dict:
        """The self-contained ``/slow`` payload (also what ``kamel tail``
        reads from a file)."""
        return {
            "capacity": self.capacity,
            "recorded_total": self.recorded_total,
            "stages": self.stage_summary(),
            "slowest": [record.to_dict() for record in self.slowest()],
        }

    def clear(self) -> None:
        with self._lock:
            self._heap.clear()
            self._exemplars.clear()
            self.recorded_total = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def __repr__(self) -> str:
        return (
            f"FlightRecorder(capacity={self.capacity}, retained={len(self)}, "
            f"recorded_total={self.recorded_total})"
        )


_default_recorder: Optional[FlightRecorder] = None
_default_lock = threading.Lock()


def get_flight_recorder() -> FlightRecorder:
    """The process-default recorder (what ``/slow`` serves).

    Created on first use, attached to the process-default metrics
    registry. The serving pool records every completed request here
    unless given its own recorder.
    """
    global _default_recorder
    if _default_recorder is None:
        from repro.obs.metrics import get_registry

        with _default_lock:
            if _default_recorder is None:
                _default_recorder = FlightRecorder(registry=get_registry())
    return _default_recorder


def set_flight_recorder(recorder: Optional[FlightRecorder]) -> Optional[FlightRecorder]:
    """Swap the process-default recorder; returns the previous one
    (tests isolate state this way; ``None`` resets to lazy creation)."""
    global _default_recorder
    with _default_lock:
        previous = _default_recorder
        _default_recorder = recorder
    return previous
