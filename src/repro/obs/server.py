"""A background HTTP endpoint exposing live telemetry.

:class:`ObservabilityServer` serves four read-only routes off a daemon
thread, stdlib ``http.server`` only:

* ``GET /metrics``  — the registry in Prometheus text exposition format
  (scrape it with ``curl`` or point a Prometheus job at it);
* ``GET /healthz``  — JSON liveness: status (``ok``, or ``degraded``
  when any rolling-monitor threshold is breached — including the drift
  and calibration monitors, so a drifting deployment reads as
  unhealthy), uptime, scrape count, and the rolling quality monitors
  (windowed failure rate, degraded rate, latency, drift, …);
* ``GET /quality``  — JSON model/data-quality state: drift scores vs the
  training reference sketch, the calibration ledgers (ECE + per-bin
  rows), and the worst spatial cells (see :mod:`repro.obs.quality`);
* ``GET /spans``    — collected span trees as Chrome trace-event JSON
  (save the response and load it in Perfetto), or ``?format=jsonl`` for
  the line-oriented form;
* ``GET /slow``     — the process-default flight recorder
  (:func:`repro.obs.flight.get_flight_recorder`): per-stage latency
  attribution with exemplar trace ids plus the slowest-N requests'
  retained span trees (what ``kamel tail`` renders).

The server binds ``127.0.0.1`` by default (telemetry is not
authenticated; bind a public interface only behind something that is)
and ``port=0`` picks a free ephemeral port — what
:class:`~repro.core.streaming.StreamingImputationService` uses so tests
and demos never collide. Handler logging goes through the ``repro``
logger at DEBUG, never stderr.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlparse

from repro.obs import instrument as obs
from repro.obs.export import (
    CONTENT_TYPE_PROMETHEUS,
    chrome_trace_json,
    render_prometheus,
    spans_to_jsonl,
)
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.quality import quality_report
from repro.obs.tracing import finished_spans

__all__ = ["ObservabilityServer"]

_log = get_logger("obs.server")


class _Handler(BaseHTTPRequestHandler):
    """Routes one request against the owning server's registry."""

    server: "_ObsHTTPServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002 — stdlib signature
        _log.debug(
            "http request",
            extra={"data": {"client": self.address_string(), "line": format % args}},
        )

    def _respond(self, status: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — stdlib dispatch name
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        if route == "/metrics":
            obs.count("repro.obs.scrapes_total")
            self._respond(
                200, render_prometheus(self.server.registry), CONTENT_TYPE_PROMETHEUS
            )
        elif route == "/healthz":
            hub = self.server.registry.monitors
            breached = sorted(
                name
                for name, monitor in hub.all().items()
                if getattr(monitor, "breached", False)
            )
            body = json.dumps(
                {
                    # "degraded" (not unhealthy): the ladder is still
                    # serving every request, just below full strength.
                    "status": "degraded" if breached else "ok",
                    "breached_monitors": breached,
                    "uptime_s": round(time.monotonic() - self.server.started_monotonic, 3),
                    "metrics": len(self.server.registry),
                    "monitors": self.server.registry.monitors.to_dict(),
                },
                default=float,
            )
            self._respond(200, body, "application/json; charset=utf-8")
        elif route == "/quality":
            body = json.dumps(quality_report(self.server.registry), default=float)
            self._respond(200, body, "application/json; charset=utf-8")
        elif route == "/spans":
            query = parse_qs(parsed.query)
            fmt = (query.get("format") or ["chrome"])[0]
            roots = finished_spans()
            if fmt == "jsonl":
                self._respond(200, spans_to_jsonl(roots), "application/x-ndjson")
            else:
                self._respond(
                    200, chrome_trace_json(roots), "application/json; charset=utf-8"
                )
        elif route == "/slow":
            from repro.obs.flight import get_flight_recorder

            body = json.dumps(get_flight_recorder().to_dict(), default=float)
            self._respond(200, body, "application/json; charset=utf-8")
        else:
            self._respond(
                404,
                "not found: try /metrics, /healthz, /quality, /spans, /slow\n",
                "text/plain",
            )


class _ObsHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    registry: MetricsRegistry
    started_monotonic: float


class ObservabilityServer:
    """The scrape endpoint a long-running service (or demo) hangs out.

    Usage::

        server = ObservabilityServer(port=0).start()
        print(server.url)           # e.g. http://127.0.0.1:49537
        ...
        server.stop()

    Also a context manager. ``registry=None`` serves the process-default
    registry, re-read on every request — so a registry swapped in later
    is *not* picked up; pass the registry explicitly to pin one.
    """

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._requested_port = port
        self.host = host
        self._registry = registry
        self._httpd: Optional[_ObsHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ObservabilityServer":
        if self._httpd is not None:
            return self
        httpd = _ObsHTTPServer((self.host, self._requested_port), _Handler)
        # Explicit None check: an empty registry is falsy (it has __len__).
        httpd.registry = get_registry() if self._registry is None else self._registry
        httpd.started_monotonic = time.monotonic()
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            name=f"obs-server:{self.port}",
            daemon=True,
        )
        self._thread.start()
        _log.info(
            "observability endpoint up",
            extra={"data": {"url": self.url}},
        )
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "ObservabilityServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- introspection -----------------------------------------------------

    @property
    def running(self) -> bool:
        return self._httpd is not None

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral pick)."""
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return f"ObservabilityServer({self.url}, {state})"
