"""Observability for the KAMEL pipeline: metrics, tracing, logging.

Four dependency-free modules:

* :mod:`repro.obs.metrics` — a process-local :class:`MetricsRegistry` of
  counters, gauges, and histograms (fixed buckets + streaming quantiles),
  with snapshot/reset and JSON export;
* :mod:`repro.obs.tracing` — nestable :func:`span` context managers that
  build per-operation span trees, free when disabled (the default);
* :mod:`repro.obs.logging` — the structured ``repro`` logger hierarchy
  (key=value or JSON-lines formatting);
* :mod:`repro.obs.instrument` — the integration layer the pipeline
  modules import: the canonical metric-name catalog, stopwatches, and
  decorators.

Quick look at what a run did::

    from repro.obs import get_registry
    system.impute_batch(sparse)
    print(get_registry().to_json())

See ``docs/observability.md`` for the metric catalog and span hierarchy.
"""

from repro.obs.logging import configure_logging, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.tracing import (
    Span,
    clear_spans,
    disable_tracing,
    enable_tracing,
    finished_spans,
    get_tracer,
    span,
    tracing_enabled,
)
from repro.obs.instrument import METRIC_CATALOG, Stopwatch, stopwatch, timed

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "METRIC_CATALOG",
    "MetricsRegistry",
    "Span",
    "Stopwatch",
    "clear_spans",
    "configure_logging",
    "disable_tracing",
    "enable_tracing",
    "finished_spans",
    "get_logger",
    "get_registry",
    "get_tracer",
    "set_registry",
    "span",
    "stopwatch",
    "timed",
    "tracing_enabled",
]
