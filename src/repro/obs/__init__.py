"""Observability for the KAMEL pipeline: metrics, tracing, logging, export.

Ten dependency-free modules:

* :mod:`repro.obs.metrics` — a process-local :class:`MetricsRegistry` of
  counters, gauges, and histograms (fixed buckets + streaming quantiles),
  with snapshot/reset and JSON export;
* :mod:`repro.obs.monitor` — rolling-window quality monitors (windowed
  failure rate, latency, rejection ratio, pyramid hit rate) with
  edge-triggered threshold callbacks, one :class:`MonitorHub` per
  registry;
* :mod:`repro.obs.tracing` — nestable :func:`span` context managers that
  build per-operation span trees, free when disabled (the default), plus
  request-scoped :func:`trace_scope` ids correlating spans and logs;
* :mod:`repro.obs.logging` — the structured ``repro`` logger hierarchy
  (key=value or JSON-lines formatting, trace ids stamped on every line);
* :mod:`repro.obs.export` — Prometheus text exposition for the registry
  and Chrome-trace / JSONL exporters for span trees;
* :mod:`repro.obs.server` — a background ``/metrics`` + ``/healthz`` +
  ``/spans`` HTTP endpoint (:class:`ObservabilityServer`);
* :mod:`repro.obs.instrument` — the integration layer the pipeline
  modules import: the canonical metric-name catalog, stopwatches, and
  decorators;
* :mod:`repro.obs.profile` — the hierarchical :class:`Profiler` built on
  the span hooks: per-stage wall/CPU self time, a model-call cost
  ledger, peak-memory capture, and collapsed-stack / SVG flame output
  (``kamel profile``);
* :mod:`repro.obs.drift` — input-drift detection: a compact
  :class:`DistributionSketch` of training-time cell and feature
  distributions, an online :class:`DriftDetector` over recent serving
  traffic, and divergence scores (unseen-cell mass, PSI, JS) wired to
  the ``drift`` monitor;
* :mod:`repro.obs.quality` — confidence calibration and spatial quality
  attribution: a :class:`ReliabilityLedger` (ECE + per-bin rows), a
  per-cell :class:`SpatialQualityMap`, and the :class:`QualityTracker`
  feeding the ``calibration`` monitor and the ``/quality`` endpoint;
* :mod:`repro.obs.flight` — tail-latency attribution for the serving
  tier: the five-stage per-request breakdown
  (:func:`stage_breakdown`) and the slowest-N :class:`FlightRecorder`
  behind the ``/slow`` route and ``kamel tail``.

Quick look at what a run did::

    from repro.obs import get_registry, render_prometheus
    system.impute_batch(sparse)
    print(get_registry().to_json())
    print(render_prometheus())     # same registry, scrape format

See ``docs/observability.md`` for the metric catalog, span hierarchy,
and the exporting/monitoring walkthrough.
"""

from repro.obs.logging import configure_logging, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.monitor import (
    LevelWindow,
    MonitorHub,
    RollingMonitor,
    RollingWindow,
    Threshold,
)
from repro.obs.flight import (
    STAGES,
    FlightRecord,
    FlightRecorder,
    get_flight_recorder,
    set_flight_recorder,
    stage_breakdown,
)
from repro.obs.tracing import (
    Span,
    clear_spans,
    clock_offset,
    current_trace_id,
    disable_tracing,
    enable_tracing,
    finished_spans,
    get_tracer,
    new_trace_id,
    span,
    trace_scope,
    tracing_enabled,
)
from repro.obs.export import (
    chrome_trace_json,
    prometheus_name,
    render_prometheus,
    spans_to_chrome_trace,
    spans_to_jsonl,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.obs.server import ObservabilityServer
from repro.obs.drift import (
    DistributionSketch,
    DriftDetector,
    population_stability_index,
    smoothed_js_divergence,
)
from repro.obs.quality import (
    BinRow,
    QualityTracker,
    ReliabilityLedger,
    SpatialQualityMap,
    quality_report,
    quality_state,
)
from repro.obs.profile import (
    PIPELINE_STAGES,
    Profile,
    Profiler,
    StageCost,
    collapsed_stacks,
)
from repro.obs.instrument import (
    METRIC_CATALOG,
    Stopwatch,
    monitors,
    stopwatch,
    timed,
)

__all__ = [
    "BinRow",
    "Counter",
    "DistributionSketch",
    "DriftDetector",
    "FlightRecord",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "LevelWindow",
    "METRIC_CATALOG",
    "MetricsRegistry",
    "MonitorHub",
    "ObservabilityServer",
    "PIPELINE_STAGES",
    "Profile",
    "Profiler",
    "QualityTracker",
    "ReliabilityLedger",
    "RollingMonitor",
    "RollingWindow",
    "STAGES",
    "Span",
    "SpatialQualityMap",
    "Stopwatch",
    "Threshold",
    "chrome_trace_json",
    "clear_spans",
    "clock_offset",
    "collapsed_stacks",
    "configure_logging",
    "current_trace_id",
    "disable_tracing",
    "enable_tracing",
    "finished_spans",
    "get_flight_recorder",
    "get_logger",
    "get_registry",
    "get_tracer",
    "monitors",
    "new_trace_id",
    "population_stability_index",
    "prometheus_name",
    "quality_report",
    "quality_state",
    "render_prometheus",
    "set_flight_recorder",
    "set_registry",
    "smoothed_js_divergence",
    "span",
    "stage_breakdown",
    "spans_to_chrome_trace",
    "spans_to_jsonl",
    "stopwatch",
    "timed",
    "trace_scope",
    "tracing_enabled",
    "write_chrome_trace",
    "write_spans_jsonl",
]
