"""The integration layer between ``repro.obs`` and the KAMEL pipeline.

The instrumented modules (``core.kamel``, ``core.imputation``,
``core.partitioning``, ``core.constraints``, ``core.detokenization``,
``mlm.bert``, ``core.streaming``, ``eval.harness``) import *only* this
module: it owns the canonical metric names (:data:`METRIC_CATALOG`), the
timing helpers, and the decorators, so the rest of the codebase never
hand-rolls ``time.perf_counter`` or invents ad-hoc metric names.

Naming convention: ``repro.<module>.<what>[_total|_seconds]`` — counters
end in ``_total``, wall-time histograms in ``_seconds``. Rejection and
mode counters append one ``.<reason>`` segment from a closed set listed
in the catalog (``docs/observability.md`` renders the full table).
"""

from __future__ import annotations

import functools
import time
from typing import Callable, Optional, Sequence, TypeVar

from repro.obs.metrics import (
    COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    get_registry,
)
from repro.obs.monitor import MonitorHub
from repro.obs.tracing import span

__all__ = [
    "METRIC_CATALOG",
    "counter",
    "gauge",
    "histogram",
    "count",
    "observe",
    "monitors",
    "Stopwatch",
    "stopwatch",
    "timed",
    "catalog_description",
]

F = TypeVar("F", bound=Callable)


METRIC_CATALOG: dict[str, str] = {
    # -- system front (core.kamel) ----------------------------------------
    "repro.kamel.fit_seconds": "Wall time of Kamel.fit.",
    "repro.kamel.impute_seconds": "Wall time of one Kamel.impute trajectory.",
    "repro.kamel.trajectories_total": "Trajectories imputed.",
    "repro.kamel.segments_total": "Sparse segments examined (gap or not).",
    "repro.kamel.segments_imputed_total": "Segments wider than maxgap, sent to the imputer.",
    "repro.kamel.segments_failed_total": "Segments that fell back to the straight line (the linear ladder rung).",
    "repro.kamel.segments_degraded_total": "Segments resolved below the top ladder rung (reduced beam, counting, or linear).",
    "repro.kamel.fallback.endpoint_unseen_total": "Fallbacks: an endpoint cell never seen in training.",
    "repro.kamel.fallback.no_model_total": "Fallbacks: no repository model covers the segment.",
    "repro.kamel.fallback.search_failed_total": "Fallbacks: search starved or budget exhausted.",
    "repro.kamel.fallback.deadline_total": "Fallbacks: the impute deadline expired mid-segment.",
    "repro.kamel.fallback.circuit_open_total": "Fallbacks: a guard circuit was open at every usable rung.",
    "repro.kamel.fallback.rung_error_total": "Fallbacks: an infrastructure fault outlived the retries at every usable rung.",
    "repro.kamel.failure_rate": "Windowed failure rate over the most recent imputed segments (the paper's Section 8 metric); cumulative = segments_failed_total / segments_imputed_total.",
    "repro.kamel.degraded_rate": "Windowed share of recent segments resolved below the top ladder rung; cumulative = segments_degraded_total / segments_imputed_total.",
    "repro.kamel.rung.full_total": "Segments resolved by the full-strength imputer (top ladder rung).",
    "repro.kamel.rung.reduced_beam_total": "Segments resolved by the reduced-beam ladder rung.",
    "repro.kamel.rung.counting_total": "Segments resolved by the counting-fallback-model ladder rung.",
    "repro.kamel.rung.linear_total": "Segments resolved by straight-line interpolation (bottom ladder rung).",
    "repro.kamel.model_calls_total": "Masked-model calls across all segments.",
    "repro.kamel.training_trajectories_total": "Trajectories ingested by fit/add_training.",
    # -- multipoint imputation (core.imputation) --------------------------
    "repro.imputation.segments_total": "Segment searches run, any strategy.",
    "repro.imputation.iterative.segments_total": "Segments run by Algorithm 1 (iterative).",
    "repro.imputation.beam.segments_total": "Segments run by Algorithm 2 (beam search).",
    "repro.imputation.single_point.segments_total": "Segments run by the single-point ablation.",
    "repro.imputation.failures_total": "Segment searches that returned no token sequence.",
    "repro.imputation.model_calls_total": "Exact masked-model calls across segment searches (the calls_per_segment quantiles are P² estimates; use this counter for totals).",
    "repro.imputation.budget_exhausted_total": "Segment searches stopped by the model-call budget.",
    "repro.imputation.calls_per_segment": "Model calls spent on one segment.",
    "repro.imputation.budget_consumed_ratio": "Fraction of the per-segment call budget spent.",
    # -- model repository (core.partitioning) -----------------------------
    "repro.partitioning.lookup_total": "Repository retrievals.",
    "repro.partitioning.lookup_miss_total": "Retrievals finding no covering model.",
    "repro.partitioning.lookup_hit.single_total": "Retrievals served by a single-cell model.",
    "repro.partitioning.lookup_hit.neighbor_total": "Retrievals served by a neighbor-pair model.",
    "repro.partitioning.lookup_hit_level": "Pyramid level of each lookup hit.",
    "repro.partitioning.model_builds_total": "Models (re)trained by maintenance.",
    "repro.partitioning.model_build_seconds": "Wall time of one model (re)build.",
    # -- constraint filtering (core.constraints) --------------------------
    "repro.constraints.candidates_in_total": "Candidate tokens entering the Section 5 filters.",
    "repro.constraints.candidates_out_total": "Candidate tokens surviving all filters.",
    "repro.constraints.rejected.special_total": "Rejected: special vocabulary token.",
    "repro.constraints.rejected.speed_ellipse_total": "Rejected: outside the speed ellipse.",
    "repro.constraints.rejected.local_detour_total": "Rejected: local detour budget exceeded.",
    "repro.constraints.rejected.length_budget_total": "Rejected: path length budget exceeded.",
    "repro.constraints.rejected.direction_cone_total": "Rejected: inside a forbidden direction cone.",
    "repro.constraints.rejected.cycle_total": "Rejected: would create a repeated token block.",
    # -- detokenization (core.detokenization) -----------------------------
    "repro.detokenization.tokens_total": "Imputed tokens detokenized.",
    "repro.detokenization.mode.cell_centroid_total": "Outcome: geometric cell centroid (no metadata).",
    "repro.detokenization.mode.data_centroid_total": "Outcome: training-data centroid (no clusters).",
    "repro.detokenization.mode.single_cluster_total": "Outcome: the cell's only cluster.",
    "repro.detokenization.mode.direction_match_total": "Outcome: best direction-aligned cluster.",
    "repro.detokenization.mode.largest_cluster_total": "Outcome: largest cluster (no direction context).",
    # -- BERT backend (mlm.bert) ------------------------------------------
    "repro.bert.forward_seconds": "One BertModel forward pass.",
    "repro.bert.forward_batch_size": "Sequences per forward pass.",
    "repro.bert.predictions_total": "predict_masked calls served.",
    "repro.bert.train_steps_total": "Optimizer steps taken across fits.",
    "repro.bert.fit_seconds": "Wall time of one BertMaskedLM.fit.",
    # -- streaming service (core.streaming) -------------------------------
    "repro.streaming.trajectories_in_total": "Raw trajectories entering the service.",
    "repro.streaming.trips_out_total": "Cleaned trips imputed.",
    "repro.streaming.points_in_total": "Raw points received.",
    "repro.streaming.points_out_total": "Points emitted after imputation.",
    "repro.streaming.process_seconds": "Wall time of one service.process call.",
    "repro.streaming.training_flushes_total": "Offline enrichment batches flushed.",
    "repro.streaming.alerts_total": "Rolling-monitor threshold alerts fired by the service.",
    "repro.streaming.quarantined_total": "Inputs dead-lettered to the quarantine store.",
    "repro.streaming.journal_replayed_total": "Pending journal entries reprocessed on service recovery.",
    # -- serving tier (repro.serve) ----------------------------------------
    "repro.serve.queue_depth": "Trajectories submitted to the serving pool and not yet dequeued by a worker (all shards; queued only — in-flight work is repro.serve.inflight).",
    "repro.serve.inflight": "Trajectories dequeued by a worker with no result accepted yet (all shards).",
    "repro.serve.shed_total": "Requests refused or evicted by admission control (typed OverloadError results; accounted, not lost).",
    "repro.serve.expired_in_queue_total": "Tasks dropped by a worker at dequeue because their request deadline passed while queued.",
    "repro.serve.submit_blocked_total": "submit() calls that had to wait on a full shard under the block admission policy.",
    "repro.serve.brownout_level": "Current pool brownout level: 0 full ladder, 1 reduced-beam cap, 2 counting cap.",
    "repro.serve.brownout_steps_total": "Brownout controller level changes (either direction).",
    "repro.serve.submitted_total": "Trajectories routed into worker task queues by the pool.",
    "repro.serve.results_total": "Trajectory results accepted from workers (after deduplication).",
    "repro.serve.duplicate_results_total": "Duplicate worker results dropped by the pool (at-least-once replay can resend).",
    "repro.serve.latency_seconds": "Submit-to-result wall time of one pooled trajectory (includes queueing).",
    "repro.serve.worker_deaths_total": "Worker processes that died and were replaced by the pool.",
    "repro.serve.journal_replayed_total": "Journal entries replayed by a replacement worker after a death.",
    "repro.serve.worker.trajectories_total": "Trajectories processed by one worker (per-worker registries; the pool merges them and labels per-worker samples).",
    "repro.serve.worker_errors_total": "Worker-side processing errors returned as error results instead of crashing the worker.",
    "repro.serve.model_lru.hits_total": "Model-LRU cache hits in a worker (model already resident).",
    "repro.serve.model_lru.misses_total": "Model-LRU cache misses in a worker (model parsed from the store).",
    "repro.serve.model_lru.evictions_total": "Models evicted from a worker's LRU after exceeding its capacity.",
    "repro.serve.model_lru.resident": "Models currently resident in a worker's LRU.",
    "repro.serve.lost_total": "Trajectories declared lost when their shard was retired with no replacement worker (submitted, never to complete).",
    "repro.serve.traced_requests_total": "Pooled trajectories whose worker span trees were shipped back and merged (tracing enabled).",
    "repro.serve.spans_dropped_total": "Worker root spans not shipped with a result because the per-result span batch was full.",
    "repro.serve.stage.queue_wait_seconds": "Per-request stage: submit to the worker dequeuing the task (shard queue wait).",
    "repro.serve.stage.model_load_seconds": "Per-request stage: parsing models out of the store on LRU misses (0 unless tracing ships the serve.model_load spans).",
    "repro.serve.stage.inference_seconds": "Per-request stage: imputation work proper — worker processing time not attributed to model loading or detokenization.",
    "repro.serve.stage.detokenize_seconds": "Per-request stage: mapping imputed tokens back to coordinates (0 unless tracing ships the detokenize spans).",
    "repro.serve.stage.result_transit_seconds": "Per-request stage: worker processing done to the pool accepting the result (serialization, the result pipe, pump backlog).",
    # -- resilience layer (repro.resilience) -------------------------------
    "repro.resilience.deadline_exceeded_total": "Segment/trajectory deadlines that expired mid-imputation.",
    "repro.resilience.rung_errors_total": "Ladder rungs abandoned after an unexpected (infrastructure) error.",
    "repro.resilience.retries_total": "Transient-failure retries across all retry policies.",
    "repro.resilience.breaker_open_total": "Circuit-breaker trips (closed/half-open to open).",
    "repro.resilience.breaker.lookup_state": "Repository-lookup breaker state: 0 closed, 1 half-open, 2 open.",
    "repro.resilience.breaker.inference_state": "Model-inference breaker state: 0 closed, 1 half-open, 2 open.",
    "repro.resilience.chaos.faults_total": "Injected faults raised by the chaos harness.",
    "repro.resilience.chaos.delays_total": "Injected latency spikes from the chaos harness.",
    "repro.resilience.chaos.corruptions_total": "Grid-cell corruptions injected by the chaos harness.",
    "repro.resilience.chaos.stalls_total": "Injected worker stalls (the deterministic overload driver: one worker wedges, its queue backs up).",
    "repro.resilience.chaos.ipc_delays_total": "Injected IPC delays (slow dequeue / delayed result pipe).",
    "repro.resilience.brownout_skips_total": "Ladder rungs skipped because a brownout cap was in force.",
    # -- evaluation harness (eval.harness) --------------------------------
    "repro.eval.train_seconds": "Harness: training one method on one workload.",
    "repro.eval.impute_seconds": "Harness: imputing one workload's test set.",
    # -- observability endpoint (obs.server) ------------------------------
    "repro.obs.scrapes_total": "GET /metrics requests served by the endpoint.",
    # -- input drift (obs.drift) ------------------------------------------
    "repro.drift.unseen_cell_mass": "Fraction of recent serving points landing in grid cells the training data never visited (the headline drift score: robust to thin windows, near 0 for same-region traffic).",
    "repro.drift.cell_psi": "Population stability index of recent serving traffic's cell histogram vs the training reference sketch (trend gauge; inflated until the window covers the region).",
    "repro.drift.cell_js": "Smoothed Jensen-Shannon divergence of the same cell histograms (bounded by ln 2; a second opinion on cell_psi).",
    "repro.drift.feature.segment_length_psi": "PSI of the point-to-point segment-length distribution vs training (diagnostic only: sparse serving input shifts this by construction).",
    "repro.drift.feature.gap_duration_psi": "PSI of the point-to-point time-gap distribution vs training (diagnostic only).",
    "repro.drift.feature.speed_psi": "PSI of the point-to-point speed distribution vs training (diagnostic only).",
    "repro.drift.window_trajectories": "Serving trajectories currently in the rolling drift window.",
    "repro.drift.observations_total": "Serving trajectories folded into the drift detector.",
    # -- quality & calibration (obs.quality) ------------------------------
    "repro.quality.ece": "Expected calibration error of the reliability ledger (ground-truth ledger when fed, else the online proxy ledger).",
    "repro.quality.calibration_gap": "Windowed mean |confidence - realized accuracy| over recent scored segments (proxy accuracy online, realized accuracy under the eval harness).",
    "repro.quality.records_total": "Segments folded into the quality tracker.",
    "repro.quality.cells_tracked": "Grid cells with per-cell quality counters.",
    "repro.quality.snap_distance_m": "Detokenization snap distance: meters between each imputed segment's points and their token-cell centroids (segment mean; large values mean the detokenizer is working far from its cluster metadata).",
}
"""Every metric the pipeline emits, with its meaning (the name registry
``docs/observability.md`` renders; tests assert emitted names appear here)."""

_COUNT_HISTOGRAMS = {
    "repro.imputation.calls_per_segment",
    "repro.partitioning.lookup_hit_level",
    "repro.bert.forward_batch_size",
    "repro.quality.snap_distance_m",
}

_RATIO_BUCKETS: tuple[float, ...] = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0)


def catalog_description(name: str) -> str:
    return METRIC_CATALOG.get(name, "")


def _buckets_for(name: str) -> Sequence[float]:
    if name in _COUNT_HISTOGRAMS:
        return COUNT_BUCKETS
    if name.endswith("_ratio"):
        return _RATIO_BUCKETS
    return LATENCY_BUCKETS


def _resolve(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    # Explicit None check: an empty registry is falsy (it has __len__),
    # and must not silently fall back to the global one.
    return get_registry() if registry is None else registry


def counter(name: str, registry: Optional[MetricsRegistry] = None) -> Counter:
    """The catalog counter ``name`` in the default (or given) registry."""
    return _resolve(registry).counter(name, catalog_description(name))


def histogram(name: str, registry: Optional[MetricsRegistry] = None) -> Histogram:
    """The catalog histogram ``name``, with buckets chosen by its kind."""
    return _resolve(registry).histogram(
        name, catalog_description(name), buckets=_buckets_for(name)
    )


def gauge(name: str, registry: Optional[MetricsRegistry] = None) -> Gauge:
    """The catalog gauge ``name`` in the default (or given) registry."""
    return _resolve(registry).gauge(name, catalog_description(name))


def count(name: str, amount: float = 1) -> None:
    """Increment a catalog counter on the default registry."""
    counter(name).inc(amount)


def observe(name: str, value: float) -> None:
    """Record one observation into a catalog histogram."""
    histogram(name).observe(value)


def monitors(registry: Optional[MetricsRegistry] = None) -> MonitorHub:
    """The rolling quality monitors of the default (or given) registry."""
    return _resolve(registry).monitors


class Stopwatch:
    """A perf_counter block timer, optionally feeding a histogram.

    ``seconds`` is live while the block runs and frozen at exit, so
    callers that also keep their own timing fields (``StreamStats``,
    ``MethodScores``) read the *same* measurement the registry records.
    """

    __slots__ = ("metric", "_start", "_elapsed")

    def __init__(self, metric: Optional[str] = None) -> None:
        self.metric = metric
        self._start: Optional[float] = None
        self._elapsed: Optional[float] = None

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._elapsed = time.perf_counter() - self._start
        if self.metric is not None:
            observe(self.metric, self._elapsed)
        return False

    @property
    def seconds(self) -> float:
        if self._elapsed is not None:
            return self._elapsed
        if self._start is None:
            return 0.0
        return time.perf_counter() - self._start


def stopwatch(metric: Optional[str] = None) -> Stopwatch:
    """``with stopwatch("repro.eval.train_seconds") as sw: ...`` — then
    ``sw.seconds`` holds exactly what the histogram recorded."""
    return Stopwatch(metric)


def timed(metric: str, span_name: Optional[str] = None) -> Callable[[F], F]:
    """Decorator: record the call's wall time (and optionally a span)."""

    def decorate(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if span_name is None:
                with stopwatch(metric):
                    return fn(*args, **kwargs)
            with span(span_name):
                with stopwatch(metric):
                    return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate
